"""Tests for the control-centric baseline: tiling, permutation, fusion."""

import numpy as np
import pytest

from repro.backends import compile_program
from repro.ir import parse_program, to_source
from repro.ir.nodes import Loop
from repro.kernels import adi, matmul
from repro.memsim import Arena
from repro.tiling import (
    can_fuse_adjacent,
    can_permute,
    fuse_adjacent_loops,
    permute_loops,
    sink_to_perfect_nest,
    tile_perfect_nest,
)


def test_figure3_tiled_matmul():
    """Tiling matmul with 25x25x25 tiles gives the paper's Figure 3."""
    p = matmul.program()
    tiled = tile_perfect_nest(p, [25, 25, 25])
    text = to_source(tiled, header=False)
    assert text.count("do ") == 6
    assert "(N+24)/25" in text
    assert "min(N, 25*tI)" in text
    # Execution matches the original.
    arena = Arena(p, {"N": 13})
    buf = arena.allocate()
    matmul.init(arena, buf, np.random.default_rng(1))
    blocked = buf.copy()
    compile_program(p, arena).run(buf)
    compile_program(tiled, arena).run(blocked)
    assert np.allclose(buf, blocked)


def test_tile_band_subset():
    p = matmul.program()
    tiled = tile_perfect_nest(p, [10, 10], band=range(0, 2))
    text = to_source(tiled, header=False)
    assert text.count("do ") == 5
    assert "do K = 1, N" in text


def test_tile_rejects_non_permutable():
    p = parse_program(
        """
program antidiag(N)
array A[N,N]
assume N >= 3
do I = 2, N
  do J = 1, N-1
    S1: A[I,J] = A[I-1,J+1]
"""
    )
    with pytest.raises(ValueError, match="not fully permutable"):
        tile_perfect_nest(p, [4, 4])


def test_tile_rejects_imperfect():
    p = parse_program(
        """
program imperfect(N)
array A[N]
do I = 1, N
  S1: A[I] = 0
  do J = 1, N
    S2: A[J] = A[J] + 1
"""
    )
    with pytest.raises(ValueError, match="perfectly nested"):
        tile_perfect_nest(p, [4, 4])


def test_permute_matmul_all_orders():
    p = matmul.program()
    assert can_permute(p, ["K", "J", "I"])
    permuted = permute_loops(p, ["J", "K", "I"])
    outer = permuted.body[0]
    assert isinstance(outer, Loop) and outer.var == "J"
    arena = Arena(p, {"N": 9})
    buf = arena.allocate()
    matmul.init(arena, buf, np.random.default_rng(3))
    other = buf.copy()
    compile_program(p, arena).run(buf)
    compile_program(permuted, arena).run(other)
    assert np.allclose(buf, other)


def test_permute_illegal_detected():
    p = parse_program(
        """
program skew(N)
array A[N,N]
assume N >= 3
do I = 2, N
  do J = 1, N-1
    S1: A[I,J] = A[I-1,J+1]
"""
    )
    assert not can_permute(p, ["J", "I"])
    with pytest.raises(ValueError, match="illegal"):
        permute_loops(p, ["J", "I"])


def test_adi_fuse_then_interchange_matches_paper():
    """The control-centric route to Figure 14(ii): fuse k loops, then
    interchange i and k — legal, and equal to the original semantics."""
    p = adi.program()
    fused = fuse_adjacent_loops(p, parent_var="i")
    # One i loop containing a single fused k loop with both statements.
    i_loop = fused.body[0]
    assert len(i_loop.body) == 1 and isinstance(i_loop.body[0], Loop)
    assert len(i_loop.body[0].body) == 2
    assert can_permute(fused, ["k1", "i"])
    final = permute_loops(fused, ["k1", "i"])
    arena = Arena(p, {"n": 9})
    buf = arena.allocate()
    adi.init(arena, buf, np.random.default_rng(5))
    out = buf.copy()
    compile_program(p, arena).run(buf)
    compile_program(final, arena).run(out)
    assert np.allclose(buf, out)


def test_fusion_illegal_case():
    p = parse_program(
        """
program bad(N)
array A[N]
array B[N]
do I1 = 1, N
  S1: A[I1] = B[I1]
do I2 = 1, N
  S2: B[I2] = A[N+1-I2]
"""
    )
    first, second = p.body
    assert not can_fuse_adjacent(p, first, second)
    fused = fuse_adjacent_loops(p)
    # Refused: still two loops.
    assert len(fused.body) == 2


def test_fusion_legal_case_executes_correctly():
    p = parse_program(
        """
program ok(N)
array A[N]
array B[N]
do I1 = 1, N
  S1: A[I1] = I1
do I2 = 1, N
  S2: B[I2] = A[I2] * 2
"""
    )
    fused = fuse_adjacent_loops(p)
    assert len(fused.body) == 1
    arena = Arena(p, {"N": 6})
    buf = arena.allocate()
    out = buf.copy()
    compile_program(p, arena).run(buf)
    compile_program(fused, arena).run(out)
    assert np.allclose(buf, out)


def test_sinking_left_looking_shape():
    p = parse_program(
        """
program two_level(N)
array A[N,N]
assume N >= 1
do J = 1, N
  S1: A[J,J] = 1
  do I = 1, N
    S2: A[I,J] = A[I,J] + 1
"""
    )
    sunk = sink_to_perfect_nest(p)
    # Perfect J-I nest now.
    j_loop = sunk.body[0]
    assert isinstance(j_loop, Loop) and len(j_loop.body) == 1
    i_loop = j_loop.body[0]
    assert isinstance(i_loop, Loop)
    arena = Arena(p, {"N": 5})
    buf = arena.allocate()
    out = buf.copy()
    compile_program(p, arena).run(buf)
    compile_program(sunk, arena).run(out)
    assert np.allclose(buf, out)


def test_sinking_trailing_statement():
    p = parse_program(
        """
program trail(N)
array A[N]
assume N >= 1
do J = 1, N
  do I = 1, N
    S1: A[I] = A[I] + 1
  S2: A[J] = A[J] * 2
"""
    )
    sunk = sink_to_perfect_nest(p)
    arena = Arena(p, {"N": 5})
    buf = arena.allocate()
    buf[:] = 1.0
    out = buf.copy()
    compile_program(p, arena).run(buf)
    compile_program(sunk, arena).run(out)
    assert np.allclose(buf, out)


def test_sinking_cholesky_refused():
    """Right-looking Cholesky cannot be sunk naively: S1 would sink into
    the I loop, which runs zero iterations when J = N — the instance
    would be lost.  The exact non-emptiness check must refuse (this is
    the paper's Section 3 point that sinking choices are subtle; the
    correct derivation jams the I and L loops first)."""
    from repro.kernels import cholesky

    p = cholesky.program("right")
    with pytest.raises(ValueError, match="zero iterations"):
        sink_to_perfect_nest(p)


def test_tiling_rejects_wrong_tile_count():
    p = matmul.program()
    with pytest.raises(ValueError, match="one tile size"):
        tile_perfect_nest(p, [10, 10])


def test_cholesky_jam_update_loops():
    """The paper's Section 3 prescription for right-looking Cholesky:
    'jam the I and L loops together' — legal, semantics preserved."""
    from repro.kernels import cholesky

    p = cholesky.program("right")
    fused = fuse_adjacent_loops(p, parent_var="J")
    j_loop = fused.body[0]
    # S1 followed by ONE fused loop containing S2 and the K nest.
    assert len(j_loop.body) == 2
    fused_loop = j_loop.body[1]
    assert isinstance(fused_loop, Loop) and len(fused_loop.body) == 2

    arena = Arena(p, {"N": 9})
    buf = arena.allocate()
    rng = np.random.default_rng(7)
    from repro.kernels import cholesky as ch

    ch.init(arena, buf, rng)
    out = buf.copy()
    compile_program(p, arena).run(buf)
    compile_program(fused, arena).run(out)
    assert np.allclose(buf, out)
