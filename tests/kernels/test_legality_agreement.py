"""Legality checker vs brute-force oracle on every paper kernel.

The Theorem-1 checker decides legality symbolically for all parameter
values; :func:`repro.fuzz.oracles.brute_force_legal` sorts the concrete
instances by their shackled execution order and checks every brute-force
dependence pair directly.  The oracle relation is one-sided — *accept*
must imply *order-preserving at the tested size* — and the known-legal
paper shackles additionally pin the expected verdicts, so this suite
cross-checks both analyses on every kernel in ``repro.kernels``.
"""

import pytest

from repro.core import check_legality
from repro.fuzz.oracles import brute_force_legal
from repro.kernels import adi, cholesky, gmtry, matmul, qr, relaxation, syrk, trisolve, trsm

# (id, program factory, shackle factory, concrete env, expected verdict)
SHACKLES = [
    ("matmul-c", matmul.program, lambda p: matmul.c_shackle(p, 2), {"N": 4}, True),
    ("matmul-ca", matmul.program, lambda p: matmul.ca_product(p, 2), {"N": 4}, True),
    (
        "matmul-two-level",
        matmul.program,
        lambda p: matmul.two_level(p, 4, 2),
        {"N": 4},
        True,
    ),
    (
        "cholesky-writes",
        cholesky.program,
        lambda p: cholesky.writes_shackle(p, 2),
        {"N": 5},
        True,
    ),
    (
        "cholesky-reads",
        cholesky.program,
        lambda p: cholesky.reads_shackle(p, 2),
        {"N": 5},
        True,
    ),
    (
        "cholesky-fully-blocked",
        cholesky.program,
        lambda p: cholesky.fully_blocked(p, 2),
        {"N": 5},
        True,
    ),
    ("syrk-c", syrk.program, lambda p: syrk.c_shackle(p, 2), {"N": 4}, True),
    ("syrk-ca", syrk.program, lambda p: syrk.ca_product(p, 2), {"N": 4}, True),
    (
        "trsm-column",
        trsm.program,
        lambda p: trsm.column_shackle(p, 2),
        {"N": 4, "M": 3},
        True,
    ),
    (
        "trsm-tile",
        trsm.program,
        lambda p: trsm.tile_product(p, 2),
        {"N": 4, "M": 3},
        True,
    ),
    (
        "trisolve-forward",
        trisolve.program,
        lambda p: trisolve.x_shackle(p, 2),
        {"N": 5},
        True,
    ),
    (
        "trisolve-backward-ascending",
        lambda: trisolve.program("backward"),
        lambda p: trisolve.x_shackle(p, 2, descending=False),
        {"N": 5},
        False,
    ),
    (
        "trisolve-backward-descending",
        lambda: trisolve.program("backward"),
        lambda p: trisolve.x_shackle(p, 2, descending=True),
        {"N": 5},
        True,
    ),
    ("gmtry-writes", gmtry.program, lambda p: gmtry.writes_shackle(p, 2), {"N": 4}, True),
    (
        "gmtry-fully-blocked",
        gmtry.program,
        lambda p: gmtry.fully_blocked(p, 2),
        {"N": 4},
        True,
    ),
    ("qr-column", qr.program, lambda p: qr.column_shackle(p, 2), {"N": 4}, True),
    ("adi-fusion", adi.program, lambda p: adi.fusion_shackle(p), {"n": 4}, True),
    (
        "relaxation-1d-time",
        relaxation.program,
        lambda p: relaxation.lhs_shackle_1d(p, 2),
        {"N": 5, "T": 3},
        None,  # verdict not pinned; only the one-sided oracle relation
    ),
    (
        "relaxation-2d",
        lambda: relaxation.program("2d"),
        lambda p: relaxation.lhs_shackle_2d(p, 2),
        {"N": 4},
        None,
    ),
]


@pytest.mark.parametrize(
    "make_program, make_shackle, env, expected",
    [case[1:] for case in SHACKLES],
    ids=[case[0] for case in SHACKLES],
)
def test_checker_agrees_with_brute_force(make_program, make_shackle, env, expected):
    program = make_program()
    shackle = make_shackle(program)
    legal = check_legality(shackle, first_violation_only=True).legal
    if expected is not None:
        assert legal is expected
    if legal:
        # Theorem 1 quantifies over all parameter values, so acceptance
        # must hold at this concrete size in particular.
        assert brute_force_legal(program, shackle, env), (
            "checker accepted a shackle the brute-force order check rejects"
        )


def test_brute_force_rejects_the_known_illegal_shackle():
    # The one rejected paper shackle must also fail by direct evaluation,
    # confirming the rejection is real and not checker conservatism.
    program = trisolve.program("backward")
    shackle = trisolve.x_shackle(program, 2, descending=False)
    assert not check_legality(shackle, first_violation_only=True).legal
    assert not brute_force_legal(program, shackle, {"N": 5})
