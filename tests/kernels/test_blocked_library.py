"""Tests for the hand-blocked LAPACK-style IR kernels."""

import numpy as np
import pytest

from repro.backends import compile_program
from repro.kernels import blocked_library, cholesky, matmul
from repro.memsim import Arena
from repro.memsim.cost import SP2_SCALED


@pytest.mark.parametrize("nb,n", [(4, 11), (4, 12), (6, 13), (3, 7)])
def test_blocked_cholesky_correct(nb, n):
    prog = blocked_library.blocked_cholesky(nb)
    arena = Arena(prog, {"N": n})
    buf = arena.allocate()
    cholesky.init(arena, buf, np.random.default_rng(0))
    initial = buf.copy()
    compile_program(prog, arena).run(buf)
    assert cholesky.check(arena, initial, buf)


@pytest.mark.parametrize("nb,n", [(4, 10), (5, 12)])
def test_blocked_matmul_correct(nb, n):
    prog = blocked_library.blocked_matmul(nb)
    arena = Arena(prog, {"N": n})
    buf = arena.allocate()
    matmul.init(arena, buf, np.random.default_rng(1))
    initial = buf.copy()
    compile_program(prog, arena).run(buf)
    assert matmul.check(arena, initial, buf)


def test_blocked_cholesky_flops_match_pointwise():
    """The hand-blocked algorithm does the same arithmetic as pointwise."""
    n, nb = 12, 4
    point = cholesky.program("right")
    blocked = blocked_library.blocked_cholesky(nb)
    rng = np.random.default_rng(2)
    results = {}
    for name, prog in [("point", point), ("blocked", blocked)]:
        arena = Arena(prog, {"N": n})
        buf = arena.allocate()
        cholesky.init(arena, buf, rng)
        results[name] = compile_program(prog, arena).run(buf)
    assert results["point"].flops == results["blocked"].flops


def test_blocked_cholesky_traffic_comparable_to_shackled():
    """The compiler's fully blocked code should move a similar amount of
    data as the hand-blocked library algorithm (the paper's claim that
    the compiler-generated code 'has the right block structure')."""
    from repro.core import simplified_code

    n, nb = 48, 8
    prog = cholesky.program("right")
    compiler = simplified_code(cholesky.fully_blocked(prog, nb))
    library = blocked_library.blocked_cholesky(nb)
    misses = {}
    for name, p in [("compiler", compiler), ("library", library)]:
        arena = Arena(p, {"N": n})
        buf = arena.allocate()
        cholesky.init(arena, buf, np.random.default_rng(3))
        hierarchy = SP2_SCALED.hierarchy()
        compile_program(p, arena, trace=True).run(buf, mem=hierarchy)
        misses[name] = hierarchy.levels[0].misses
    ratio = misses["compiler"] / misses["library"]
    assert 0.5 <= ratio <= 2.0, misses


@pytest.mark.parametrize("nb,n", [(4, 11), (4, 12), (3, 7), (5, 10)])
def test_wy_qr_matches_pointwise(nb, n):
    """The WY blocked QR produces the exact reflectors and R of the
    pointwise algorithm (same math, aggregated application)."""
    from repro.kernels import qr

    prog = blocked_library.wy_qr(nb)
    arena = Arena(prog, {"N": n})
    buf = arena.allocate()
    qr.init(arena, buf, np.random.default_rng(0))
    initial = buf.copy()
    compile_program(prog, arena).run(buf)
    assert qr.check(arena, initial, buf)


def test_wy_qr_extra_work_is_bounded():
    """WY pays extra statement instances for forming/applying T, but the
    arithmetic volume stays within a small factor of the pointwise
    algorithm (the T work is O(N^2 nb) against O(N^3))."""
    from repro.kernels import qr

    n, nb = 16, 4
    results = {}
    for name, prog in [("point", qr.program()), ("wy", blocked_library.wy_qr(nb))]:
        arena = Arena(prog, {"N": n})
        buf = arena.allocate()
        qr.init(arena, buf, np.random.default_rng(1))
        results[name] = compile_program(prog, arena).run(buf)
    assert results["wy"].instances > results["point"].instances
    ratio = results["wy"].flops / results["point"].flops
    assert 0.8 <= ratio <= 1.3
