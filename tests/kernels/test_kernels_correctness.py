"""Every kernel, original and shackled, must match its numpy oracle.

This is the end-to-end integration test: parse -> shackle -> legality ->
codegen -> compile (Python backend) -> execute -> compare numerically.
"""

import numpy as np
import pytest

from repro.backends import compile_program
from repro.core import check_legality, naive_code, simplified_code
from repro.kernels import adi, cholesky, gmtry, matmul, qr, trisolve
from repro.memsim import Arena


def run_variants(module_program, shackles, arena_env, init, check, program=None):
    """Run the original and each shackled variant; all must pass check."""
    prog = program if program is not None else module_program
    arena = Arena(prog, arena_env)
    rng = np.random.default_rng(42)
    initial = arena.allocate()
    init(arena, initial, rng)

    baseline = initial.copy()
    compile_program(prog, arena).run(baseline)
    assert check(arena, initial, baseline), "original kernel fails its oracle"

    for shackle in shackles:
        for codegen in (simplified_code, naive_code):
            generated = codegen(shackle)
            buf = initial.copy()
            compile_program(generated, arena).run(buf)
            assert check(arena, initial, buf), (
                f"{codegen.__name__} of {getattr(shackle, 'name', shackle)} "
                f"fails the oracle"
            )


def test_matmul_all_orders_match():
    for order in ("ijk", "jik", "kij"):
        prog = matmul.program(order)
        run_variants(prog, [], {"N": 9}, matmul.init, matmul.check)


def test_matmul_shackled_variants():
    prog = matmul.program()
    shackles = [
        matmul.c_shackle(prog, 4),
        matmul.ca_product(prog, 4),
        matmul.two_level(prog, 6, 2),
    ]
    run_variants(prog, shackles, {"N": 13}, matmul.init, matmul.check)


def test_cholesky_right_and_left_match():
    for variant in ("right", "left"):
        prog = cholesky.program(variant)
        run_variants(prog, [], {"N": 10}, cholesky.init, cholesky.check)


def test_cholesky_shackled_variants():
    prog = cholesky.program("right")
    shackles = [
        cholesky.writes_shackle(prog, 4),
        cholesky.reads_shackle(prog, 4),
        cholesky.fully_blocked(prog, 4),
    ]
    for sh in shackles:
        assert check_legality(sh, first_violation_only=True).legal
    run_variants(prog, shackles, {"N": 11}, cholesky.init, cholesky.check)


def test_banded_cholesky():
    prog = cholesky.program("banded")
    run_variants(prog, [cholesky.writes_shackle(prog, 4)], {"N": 12, "BW": 3},
                 cholesky.init_banded, cholesky.check)


def test_qr_matches_reference_and_numpy():
    prog = qr.program()
    run_variants(prog, [], {"N": 8}, qr.init, qr.check)


def test_qr_column_shackle_legal_and_correct():
    prog = qr.program()
    sh = qr.column_shackle(prog, 3)
    assert check_legality(sh, first_violation_only=True).legal
    run_variants(prog, [sh], {"N": 9}, qr.init, qr.check)


def test_adi_and_fusion_shackle():
    prog = adi.program()
    sh = adi.fusion_shackle(prog)
    assert check_legality(sh, first_violation_only=True).legal
    run_variants(prog, [sh], {"n": 9}, adi.init, adi.check)


def test_gmtry_and_shackles():
    prog = gmtry.program()
    shackles = [gmtry.writes_shackle(prog, 4), gmtry.fully_blocked(prog, 4)]
    for sh in shackles:
        assert check_legality(sh, first_violation_only=True).legal
    run_variants(prog, shackles, {"N": 11}, gmtry.init, gmtry.check)


def test_trisolve_forward():
    prog = trisolve.program("forward")
    sh = trisolve.x_shackle(prog, 3)
    assert check_legality(sh, first_violation_only=True).legal
    run_variants(prog, [sh], {"N": 10}, trisolve.init_forward, trisolve.check_forward)


def test_trisolve_backward_needs_descending():
    prog = trisolve.program("backward")
    ascending = trisolve.x_shackle(prog, 3, descending=False)
    descending = trisolve.x_shackle(prog, 3, descending=True)
    assert not check_legality(ascending, first_violation_only=True).legal
    assert check_legality(descending, first_violation_only=True).legal
    run_variants(
        prog, [descending], {"N": 10}, trisolve.init_backward, trisolve.check_backward
    )


def test_flop_counts_consistent():
    prog = matmul.program()
    arena = Arena(prog, {"N": 6})
    buf = arena.allocate()
    matmul.init(arena, buf, np.random.default_rng(0))
    result = compile_program(prog, arena).run(buf)
    assert result.flops == matmul.flops(6)


def test_syrk_and_shackles():
    from repro.kernels import syrk

    prog = syrk.program()
    shackles = [syrk.c_shackle(prog, 4), syrk.ca_product(prog, 4)]
    for sh in shackles:
        assert check_legality(sh, first_violation_only=True).legal
    run_variants(prog, shackles, {"N": 10}, syrk.init, syrk.check)


def test_syrk_split_codegen():
    from repro.core import split_code
    from repro.ir import to_source
    from repro.kernels import syrk

    prog = syrk.program()
    program = split_code(syrk.c_shackle(prog, 4))
    arena = Arena(prog, {"N": 9})
    buf = arena.allocate()
    syrk.init(arena, buf, np.random.default_rng(5))
    initial = buf.copy()
    compile_program(program, arena).run(buf)
    assert syrk.check(arena, initial, buf)


def test_trsm_and_shackles():
    from repro.kernels import trsm

    prog = trsm.program()
    shackles = [trsm.column_shackle(prog, 3), trsm.tile_product(prog, 3)]
    for sh in shackles:
        assert check_legality(sh, first_violation_only=True).legal
    run_variants(prog, shackles, {"N": 8, "M": 6}, trsm.init, trsm.check)
