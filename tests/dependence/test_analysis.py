"""Dependence analysis tests, anchored by the brute-force oracle."""

import pytest

from repro.dependence import brute_force_dependences, compute_dependences
from repro.dependence.oracle import instantiate_dependences
from repro.ir import parse_program

MATMUL = """
program mm(N)
array A[N,N]
array B[N,N]
array C[N,N]
assume N >= 1
do I = 1, N
  do J = 1, N
    do K = 1, N
      S1: C[I,J] = C[I,J] + A[I,K]*B[K,J]
"""

CHOLESKY = """
program cholesky(N)
array A[N,N]
assume N >= 1
do J = 1, N
  S1: A[J,J] = sqrt(A[J,J])
  do I = J+1, N
    S2: A[I,J] = A[I,J] / A[J,J]
  do L = J+1, N
    do K = J+1, L
      S3: A[L,K] = A[L,K] - A[L,J]*A[K,J]
"""


def test_matmul_dependences_on_c_only():
    p = parse_program(MATMUL)
    deps = compute_dependences(p)
    assert deps, "matmul must have reduction dependences"
    assert {d.array for d in deps} == {"C"}
    # All dependences are carried by the K loop (level 3): for fixed I,J the
    # K iterations read and write C[I,J] in sequence.
    assert {d.level for d in deps} == {3}
    assert {d.kind for d in deps} == {"flow", "anti", "output"}


def test_cholesky_dependence_kinds():
    p = parse_program(CHOLESKY)
    deps = compute_dependences(p)
    pairs = {(d.src.label, d.tgt.label, d.kind) for d in deps}
    # The paper's Section 5.1 example: flow from S1's write of A[J,J] to
    # S2's read of A[J,J].
    assert ("S1", "S2", "flow") in pairs
    # S3 updates feed later factorizations.
    assert ("S3", "S1", "flow") in pairs
    assert ("S3", "S2", "flow") in pairs
    assert ("S2", "S3", "flow") in pairs


def test_s1_to_s2_is_loop_independent():
    p = parse_program(CHOLESKY)
    deps = compute_dependences(p)
    s1s2 = [d for d in deps if d.src.label == "S1" and d.tgt.label == "S2" and d.kind == "flow"]
    # A[J,J] is written in iteration J and read by S2 in the same J iteration
    # only: the dependence must be loop-independent, never carried by J.
    assert s1s2
    assert all(d.level is None for d in s1s2)


@pytest.mark.parametrize("source,n", [(MATMUL, 3), (CHOLESKY, 4)])
def test_matches_bruteforce(source, n):
    """Polyhedral dependences instantiate to exactly the brute-force pairs."""
    p = parse_program(source)
    deps = compute_dependences(p)
    got = instantiate_dependences(deps, {"N": n})
    want = brute_force_dependences(p, {"N": n})
    assert got == want


def test_no_dependence_between_disjoint_arrays():
    p = parse_program(
        """
program indep(N)
array A[N]
array B[N]
do I = 1, N
  S1: A[I] = 1
  S2: B[I] = 2
"""
    )
    assert compute_dependences(p) == []


def test_scalar_style_accumulation():
    p = parse_program(
        """
program acc(N)
array s[1]
array A[N]
do I = 1, N
  S1: s[1] = s[1] + A[I]
"""
    )
    deps = compute_dependences(p)
    kinds = {d.kind for d in deps}
    assert kinds == {"flow", "anti", "output"}
    assert all(d.level == 1 for d in deps)
