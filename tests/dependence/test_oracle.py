"""Direct unit tests for the brute-force oracle itself.

The oracle is ground truth for the whole differential test suite (and
for the fuzzer), so it gets its own hand-computed checks: instance
enumeration order, guard/triangular-bound handling, parameter binding in
subscripts, and exact instantiated dependence sets.
"""

from repro.dependence import brute_force_dependences, compute_dependences
from repro.dependence.oracle import enumerate_instances, instantiate_dependences
from repro.ir import parse_program

RECTANGULAR = """
program rect(N)
array A[N,N]
assume N >= 1
do I = 1, N
  do J = 1, N
    S1: A[I,J] = A[I,J] + 1
"""

TRIANGULAR_GUARDED = """
program tri(N)
array A[N,N]
assume N >= 1
do I = 1, N
  S1: A[I,I] = A[I,I] + 1
  do J = I, N
    if J >= I+1
      S2: A[I,J] = A[I,J-1] + 1
"""

REVERSAL = """
program rev(N)
array A[N]
assume N >= 1
do I = 1, N
  S1: A[N-I+1] = A[I] + 1
"""

CHAIN = """
program chain(N)
array A[N]
assume N >= 1
do I = 1, N
  S1: A[I] = A[I] + 1
  S2: A[I] = A[I] * 2
"""


def test_enumerate_instances_rectangular_order():
    instances = enumerate_instances(parse_program(RECTANGULAR), {"N": 3})
    assert len(instances) == 9
    # Original program order: I outer, J inner, both ascending.
    assert [ivec for _, ivec in instances] == [
        (i, j) for i in (1, 2, 3) for j in (1, 2, 3)
    ]
    assert {ctx.label for ctx, _ in instances} == {"S1"}


def test_enumerate_instances_triangular_and_guard():
    instances = enumerate_instances(parse_program(TRIANGULAR_GUARDED), {"N": 3})
    got = [(ctx.label, ivec) for ctx, ivec in instances]
    # S2 exists only where J >= I+1 (the guard tightens J >= I); the
    # interleaving follows original program order at each I.
    assert got == [
        ("S1", (1,)),
        ("S2", (1, 2)),
        ("S2", (1, 3)),
        ("S1", (2,)),
        ("S2", (2, 3)),
        ("S1", (3,)),
    ]


def test_brute_force_binds_parameters_in_subscripts():
    # A[N-I+1] needs N's value while evaluating elements; a bare loop-var
    # binding would crash.  At N=3: writes hit 3,2,1 and reads hit 1,2,3,
    # so I=1 writes A[3] which I=3 reads, and I=2 touches A[2] twice.
    deps = brute_force_dependences(parse_program(REVERSAL), {"N": 3})
    assert ("flow", "S1", (1,), "S1", (3,)) in deps
    # I=2 writes A[2] after reading it in the same instance — no pair —
    # and nothing else collides except the symmetric anti dependence.
    assert ("anti", "S1", (1,), "S1", (3,)) in deps


def test_instantiate_matches_brute_force_on_chain():
    program = parse_program(CHAIN)
    deps = compute_dependences(program)
    env = {"N": 4}
    got = instantiate_dependences(deps, env)
    want = brute_force_dependences(program, env)
    assert got == want
    # Hand check: per I, S1 -> S2 flow (write then read+write of A[I]).
    for i in range(1, 5):
        assert ("flow", "S1", (i,), "S2", (i,)) in got
        assert ("output", "S1", (i,), "S2", (i,)) in got
    # No cross-iteration pairs: distinct I touch distinct elements.
    assert all(src == tgt for _, _, src, _, tgt in got)


def test_instantiate_dependences_respects_env():
    program = parse_program(CHAIN)
    deps = compute_dependences(program)
    small = instantiate_dependences(deps, {"N": 2})
    large = instantiate_dependences(deps, {"N": 5})
    assert len(small) < len(large)
    assert small == {p for p in large if p[2][0] <= 2}
