"""Direction/permutability tests for the control-centric baseline."""

from repro.dependence import (
    carried_component_sign,
    compute_dependences,
    loops_fully_permutable,
)
from repro.ir import parse_program

MATMUL = """
program mm(N)
array A[N,N]
array B[N,N]
array C[N,N]
assume N >= 1
do I = 1, N
  do J = 1, N
    do K = 1, N
      S1: C[I,J] = C[I,J] + A[I,K]*B[K,J]
"""

SKEWED = """
program stencil(N)
array A[N,N]
assume N >= 2
do I = 2, N
  do J = 2, N
    S1: A[I,J] = A[I-1,J] + A[I,J-1]
"""

ANTIDIAG = """
program antidiag(N)
array A[N,N]
assume N >= 3
do I = 2, N
  do J = 1, N-1
    S1: A[I,J] = A[I-1,J+1]
"""


def test_matmul_fully_permutable():
    p = parse_program(MATMUL)
    deps = compute_dependences(p)
    assert loops_fully_permutable(deps, range(0, 3))


def test_matmul_component_signs():
    p = parse_program(MATMUL)
    deps = compute_dependences(p)
    flow = next(d for d in deps if d.kind == "flow")
    assert carried_component_sign(flow, 0) == {"="}
    assert carried_component_sign(flow, 1) == {"="}
    assert carried_component_sign(flow, 2) == {"<"}


def test_stencil_permutable():
    p = parse_program(SKEWED)
    deps = compute_dependences(p)
    # Distances (1,0) and (0,1): non-negative everywhere, permutable.
    assert loops_fully_permutable(deps, range(0, 2))


def test_antidiagonal_not_permutable():
    p = parse_program(ANTIDIAG)
    deps = compute_dependences(p)
    # Distance (1,-1): carried at level 1 with a negative J component.
    assert not loops_fully_permutable(deps, range(0, 2))
    flow = next(d for d in deps if d.kind == "flow")
    assert ">" in carried_component_sign(flow, 1)
