"""Tests for the exact rational matrix (rank, span, solve)."""

from fractions import Fraction

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.linalg import FracMatrix

small_ints = st.integers(-5, 5)


def test_identity_and_shape():
    eye = FracMatrix.identity(3)
    assert eye.nrows == eye.ncols == 3
    assert eye[0, 0] == 1 and eye[0, 1] == 0
    assert eye.rank() == 3


def test_ragged_rows_rejected():
    with pytest.raises(ValueError):
        FracMatrix([[1, 2], [3]])


def test_rank_of_dependent_rows():
    m = FracMatrix([[1, 2, 3], [2, 4, 6], [1, 0, 0]])
    assert m.rank() == 2


def test_rref_idempotent():
    m = FracMatrix([[2, 4], [1, 3]])
    assert m.rref().rref() == m.rref()


def test_transpose():
    m = FracMatrix([[1, 2, 3], [4, 5, 6]])
    t = m.transpose()
    assert t.nrows == 3 and t.ncols == 2
    assert t[2, 1] == 6


def test_matmul_matvec():
    a = FracMatrix([[1, 2], [3, 4]])
    b = FracMatrix([[0, 1], [1, 0]])
    assert a.matmul(b).rows == [[Fraction(2), Fraction(1)], [Fraction(4), Fraction(3)]]
    assert a.matvec([1, 1]) == [Fraction(3), Fraction(7)]


def test_row_space_contains():
    # The Theorem-2 example from the paper: C[I,J] has access rows
    # (1,0,0) and (0,1,0); row (0,0,1) of B's access matrix is NOT spanned,
    # but adding A[I,K]'s rows (1,0,0),(0,0,1) makes every row spanned.
    c_rows = FracMatrix([[1, 0, 0], [0, 1, 0]])
    assert not c_rows.row_space_contains([0, 0, 1])
    ca_rows = FracMatrix([[1, 0, 0], [0, 1, 0], [1, 0, 0], [0, 0, 1]])
    assert ca_rows.row_space_contains([0, 0, 1])
    assert ca_rows.row_space_contains([0, 1, 0])
    assert ca_rows.row_space_contains([2, -3, 5])


def test_row_space_contains_empty_matrix():
    empty = FracMatrix([])
    assert empty.row_space_contains([0, 0])
    assert not empty.row_space_contains([1, 0])


def test_solve_unique():
    m = FracMatrix([[2, 0], [0, 4]])
    assert m.solve([4, 8]) == [Fraction(2), Fraction(2)]


def test_solve_inconsistent():
    m = FracMatrix([[1, 1], [1, 1]])
    assert m.solve([1, 2]) is None


def test_solve_underdetermined_returns_some_solution():
    m = FracMatrix([[1, 1]])
    x = m.solve([5])
    assert x is not None
    assert x[0] + x[1] == 5


@given(st.lists(st.lists(small_ints, min_size=3, max_size=3), min_size=1, max_size=4))
def test_rank_le_min_dims(rows):
    m = FracMatrix(rows)
    assert 0 <= m.rank() <= min(m.nrows, m.ncols)
    assert m.rank() == m.transpose().rank()


@given(
    st.lists(st.lists(small_ints, min_size=3, max_size=3), min_size=1, max_size=3),
    st.lists(small_ints, min_size=1, max_size=3),
)
def test_linear_combination_in_row_space(rows, weights):
    m = FracMatrix(rows)
    combo = [
        sum(weights[i % len(weights)] * rows[i][j] for i in range(len(rows)))
        for j in range(3)
    ]
    assert m.row_space_contains(combo)
