"""Unit and property tests for the exact integer helpers."""

import math
from fractions import Fraction

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.linalg import ceil_div, ext_gcd, floor_div, gcd_list, lcm, lcm_list, sign


def test_sign():
    assert sign(5) == 1
    assert sign(-3) == -1
    assert sign(0) == 0
    assert sign(Fraction(-1, 7)) == -1


def test_gcd_list():
    assert gcd_list([]) == 0
    assert gcd_list([0, 0]) == 0
    assert gcd_list([4, 6, 8]) == 2
    assert gcd_list([-4, 6]) == 2
    assert gcd_list([7]) == 7


def test_lcm():
    assert lcm(4, 6) == 12
    assert lcm(0, 5) == 0
    assert lcm(-4, 6) == 12


def test_lcm_list():
    assert lcm_list([]) == 1
    assert lcm_list([2, 3, 4]) == 12
    assert lcm_list([2, 0]) == 0


@given(st.integers(-100, 100), st.integers(-100, 100))
def test_ext_gcd_bezout(a, b):
    g, x, y = ext_gcd(a, b)
    assert g == math.gcd(a, b)
    assert a * x + b * y == g


@given(st.integers(-1000, 1000), st.integers(1, 50))
def test_floor_ceil_div(num, den):
    assert floor_div(num, den) == num // den
    assert ceil_div(num, den) == -((-num) // den)
    assert floor_div(num, den) <= Fraction(num, den) <= ceil_div(num, den)


def test_div_with_fractions():
    assert floor_div(Fraction(7, 2), 1) == 3
    assert ceil_div(Fraction(7, 2), 1) == 4
    assert floor_div(7, Fraction(2)) == 3
