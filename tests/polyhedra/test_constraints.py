"""Tests for constraint normalization and system basics."""

from fractions import Fraction

import pytest

from repro.polyhedra import Constraint, System


def test_normalization_drops_zero_coeffs():
    c = Constraint.ge({"x": 0, "y": 2}, 4)
    assert c.coeffs == {"y": 1}
    assert c.const == 2


def test_inequality_gcd_tightening():
    # 2x - 1 >= 0 over integers means x >= 1, i.e. x - 1 >= 0.
    c = Constraint.ge({"x": 2}, -1)
    assert c.coeffs == {"x": 1}
    assert c.const == -1


def test_rational_input_scaled_to_integers():
    c = Constraint.ge({"x": Fraction(1, 2), "y": Fraction(1, 3)}, Fraction(1, 6))
    assert c.coeffs == {"x": 3, "y": 2}
    assert c.const == 1


def test_equality_keeps_fractional_const_for_infeasibility():
    # 2x + 1 == 0 has no integer solution; normalization must not hide that.
    c = Constraint.eq({"x": 2}, 1)
    assert c.const.denominator != 1 or c.coeffs.get("x", 0) * 2 != 2


def test_trivial_checks():
    assert Constraint.ge({}, 0).is_trivially_true()
    assert Constraint.ge({}, -1).is_trivially_false()
    assert Constraint.eq({}, 0).is_trivially_true()
    assert Constraint.eq({}, 3).is_trivially_false()
    assert not Constraint.ge({"x": 1}, 0).is_trivially_true()


def test_negated():
    c = Constraint.ge({"x": 1}, -5)  # x >= 5
    n = c.negated()  # x <= 4
    assert n.evaluate({"x": 4})
    assert not n.evaluate({"x": 5})
    with pytest.raises(ValueError):
        Constraint.eq({"x": 1}, 0).negated()


def test_le_expr():
    # x + 1 <= y  <=>  y - x - 1 >= 0
    c = Constraint.le_expr({"x": 1}, 1, {"y": 1}, 0)
    assert c.evaluate({"x": 1, "y": 2})
    assert not c.evaluate({"x": 2, "y": 2})


def test_substitute():
    c = Constraint.ge({"x": 2, "y": 1}, 0)
    s = c.substitute("x", {"z": 1}, 3)  # x := z + 3
    assert s.evaluate({"z": 0, "y": -6})
    assert not s.evaluate({"z": 0, "y": -7})


def test_rename():
    c = Constraint.ge({"x": 1}, 0).rename({"x": "w"})
    assert c.coeffs == {"w": 1}


def test_system_dedup_and_trivia():
    s = System([Constraint.ge({"x": 1}, 0), Constraint.ge({"x": 1}, 0), Constraint.ge({}, 7)])
    assert len(s) == 1


def test_system_conjoin_variables():
    s = System([Constraint.ge({"x": 1}, 0)])
    t = s.conjoin(Constraint.ge({"y": 1}, 0), System([Constraint.eq({"z": 1}, -1)]))
    assert t.variables() == {"x", "y", "z"}
    assert len(t.equalities()) == 1
    assert len(t.inequalities()) == 2


def test_system_evaluate():
    s = System([Constraint.ge({"x": 1}, 0), Constraint.ge({"x": -1}, 5)])
    assert s.evaluate({"x": 3})
    assert not s.evaluate({"x": 6})
