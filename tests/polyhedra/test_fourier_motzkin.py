"""Soundness tests for rational Fourier-Motzkin elimination."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.polyhedra import Constraint, System, eliminate_variable, project, rational_feasible


def box(var, lo, hi):
    return [Constraint.ge({var: 1}, -lo), Constraint.ge({var: -1}, hi)]


def test_eliminate_removes_variable():
    s = System(box("x", 1, 5) + [Constraint.ge({"y": 1, "x": -1}, 0)])  # y >= x
    out = eliminate_variable(s, "x")
    assert "x" not in out.variables()
    # y >= x >= 1 must survive as y >= 1.
    assert out.evaluate({"y": 1})
    assert not out.evaluate({"y": 0})


def test_eliminate_rejects_equalities():
    s = System([Constraint.eq({"x": 1, "y": -1}, 0)])
    try:
        eliminate_variable(s, "x")
    except ValueError:
        pass
    else:
        raise AssertionError("expected ValueError")


def test_project_keeps_only_requested():
    s = System(
        box("x", 1, 10)
        + box("y", 1, 10)
        + [Constraint.eq({"z": 1, "x": -1, "y": -1}, 0)]  # z == x + y
    )
    out = project(s, {"z"})
    assert out.variables() <= {"z"}
    assert out.evaluate({"z": 2})
    assert out.evaluate({"z": 20})
    assert not out.evaluate({"z": 1})
    assert not out.evaluate({"z": 21})


def test_rational_feasible_basic():
    assert rational_feasible(System(box("x", 0, 5)))
    assert not rational_feasible(System([Constraint.ge({"x": 1}, -3), Constraint.ge({"x": -1}, 0)]))


@settings(max_examples=80, deadline=None)
@given(
    st.lists(
        st.builds(
            lambda cx, cy, const: Constraint.ge({"x": cx, "y": cy}, const),
            st.integers(-3, 3),
            st.integers(-3, 3),
            st.integers(-5, 5),
        ),
        max_size=4,
    ),
    st.integers(-4, 4),
    st.integers(-4, 4),
)
def test_projection_contains_shadow_of_points(cs, px, py):
    """Any point of the polyhedron projects into the eliminated system."""
    s = System(box("x", -4, 4) + box("y", -4, 4) + cs)
    if not s.evaluate({"x": px, "y": py}):
        return
    out = eliminate_variable(s, "x")
    assert out.evaluate({"y": py})
