"""Exactness tests for the integer feasibility (Omega) test.

The key oracle is brute-force enumeration on bounded random systems: the
Omega test must agree exactly with exhaustive search.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.polyhedra import Constraint, System, integer_feasible, integer_sample
from repro.polyhedra.omega import enumerate_points


def box(var, lo, hi):
    return [Constraint.ge({var: 1}, -lo), Constraint.ge({var: -1}, hi)]


def test_empty_system_feasible():
    assert integer_feasible(System())


def test_trivially_false():
    assert not integer_feasible(System([Constraint.ge({}, -1)]))


def test_simple_box():
    s = System(box("x", 1, 10) + box("y", 1, 10) + [Constraint.ge({"x": 1, "y": -1}, 0)])
    assert integer_feasible(s)


def test_contradictory_bounds():
    s = System([Constraint.ge({"x": 1}, -10), Constraint.ge({"x": -1}, 5)])  # x>=10, x<=5
    assert not integer_feasible(s)


def test_integer_gap():
    # 2 <= 2x <= 3 has a rational solution (x=1.25) but no integer one...
    # wait: 2x>=2 -> x>=1; 2x<=3 -> x<=1 after tightening, so x=1 works.
    # A true gap: 3 <= 2x <= 3, i.e. 2x == 3.
    s = System([Constraint.eq({"x": 2}, -3)])
    assert not integer_feasible(s)


def test_gcd_infeasible_equality():
    # 2x + 4y == 1 has no integer solution.
    s = System([Constraint.eq({"x": 2, "y": 4}, -1)])
    assert not integer_feasible(s)


def test_equality_lattice():
    # 3x - 6y == 3 is solvable (x = 1 + 2y).
    s = System([Constraint.eq({"x": 3, "y": -6}, -3)])
    assert integer_feasible(s)


def test_dark_shadow_gap_classic():
    # Pugh's classic: 0 <= 3x - 2y <= 1, 1 <= x <= 2, integer solutions exist
    # (x=1,y=1). Then exclude them to force gray-region reasoning:
    # 27 <= 11x <= 28 -> no integer x.
    s = System(
        [Constraint.ge({"x": 11}, -27), Constraint.ge({"x": -11}, 28)]
    )
    assert not integer_feasible(s)


def test_coupled_divisibility():
    # x == 2a, x == 3b, 1 <= x <= 5 -> x must be divisible by 6: infeasible.
    s = System(
        [
            Constraint.eq({"x": 1, "a": -2}, 0),
            Constraint.eq({"x": 1, "b": -3}, 0),
            Constraint.ge({"x": 1}, -1),
            Constraint.ge({"x": -1}, 5),
        ]
    )
    assert not integer_feasible(s)
    # Widening to x <= 6 makes x = 6 work.
    s2 = System(
        [
            Constraint.eq({"x": 1, "a": -2}, 0),
            Constraint.eq({"x": 1, "b": -3}, 0),
            Constraint.ge({"x": 1}, -1),
            Constraint.ge({"x": -1}, 6),
        ]
    )
    assert integer_feasible(s2)


def test_unbounded_direction():
    s = System([Constraint.ge({"x": 1}, -1000000)])
    assert integer_feasible(s)


def test_sample_satisfies_system():
    s = System(
        box("x", 3, 9)
        + box("y", 0, 4)
        + [Constraint.eq({"x": 1, "y": -2}, 0)]  # x == 2y
    )
    pt = integer_sample(s)
    assert pt is not None
    assert s.evaluate(pt)
    assert pt["x"] == 2 * pt["y"]


def test_sample_none_when_infeasible():
    s = System([Constraint.eq({"x": 2}, -3)])
    assert integer_sample(s) is None


def test_enumerate_points_small_triangle():
    # 1 <= x <= 3, 1 <= y <= x.
    s = System(
        box("x", 1, 3)
        + [Constraint.ge({"y": 1}, -1), Constraint.ge({"x": 1, "y": -1}, 0)]
    )
    pts = enumerate_points(s, ["x", "y"])
    assert pts == [(1, 1), (2, 1), (2, 2), (3, 1), (3, 2), (3, 3)]


constraint_strategy = st.builds(
    lambda cx, cy, cz, const, eq: Constraint(
        {"x": cx, "y": cy, "z": cz}, const, is_eq=eq
    ),
    st.integers(-3, 3),
    st.integers(-3, 3),
    st.integers(-3, 3),
    st.integers(-6, 6),
    st.booleans(),
)


@settings(max_examples=120, deadline=None)
@given(st.lists(constraint_strategy, min_size=0, max_size=4))
def test_omega_matches_bruteforce(random_constraints):
    bounds = box("x", -4, 4) + box("y", -4, 4) + box("z", -4, 4)
    s = System(bounds + random_constraints)
    brute = any(
        s.evaluate({"x": x, "y": y, "z": z})
        for x in range(-4, 5)
        for y in range(-4, 5)
        for z in range(-4, 5)
    )
    assert integer_feasible(s) == brute


@settings(max_examples=60, deadline=None)
@given(st.lists(constraint_strategy, min_size=1, max_size=3))
def test_sample_agrees_with_feasibility(random_constraints):
    bounds = box("x", -3, 3) + box("y", -3, 3) + box("z", -3, 3)
    s = System(bounds + random_constraints)
    pt = integer_sample(s)
    if pt is None:
        assert not integer_feasible(s)
    else:
        assert s.evaluate(pt)
