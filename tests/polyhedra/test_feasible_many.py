"""The batched family solve: one vectorized solve per dependence family.

``feasible_many`` must be observationally identical to mapping
``feasible`` over the conjoined members (same verdicts, same memo
behavior), the two-limb int128 combine path must agree with the scalar
oracle at the int64 boundary instead of punting, and the whole family
must share a single budget scope.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.metrics import METRICS
from repro.polyhedra import Constraint, System, integer_feasible_scalar
from repro.polyhedra import budget, solver
from repro.polyhedra.budget import SolverBudget
from repro.polyhedra.fm_vector import feasible_family


@pytest.fixture(autouse=True)
def _fresh_memo():
    solver.clear_memo()
    yield
    solver.clear_memo()
    solver.set_solver_cache(None)


@st.composite
def families(draw):
    """A base system plus sibling deltas, legality-family shaped: the
    base bounds every variable and carries optional equalities; each
    delta adds prefix-equality and strict-decrease style rows."""
    variables = ["x", "y", "z"]
    constraints = []
    for v in variables:
        lo = draw(st.integers(min_value=-4, max_value=4))
        constraints.append(Constraint.ge({v: 1}, -lo))
        constraints.append(Constraint.ge({v: -1}, lo + draw(st.integers(0, 6))))
    for _ in range(draw(st.integers(min_value=0, max_value=2))):
        coeffs = {
            v: draw(st.integers(min_value=-5, max_value=5)) for v in variables
        }
        constraints.append(
            Constraint(
                coeffs,
                draw(st.integers(min_value=-8, max_value=8)),
                is_eq=draw(st.booleans()),
            )
        )
    base = System(constraints)
    deltas = []
    for _ in range(draw(st.integers(min_value=1, max_value=4))):
        rows = []
        for _ in range(draw(st.integers(min_value=1, max_value=2))):
            coeffs = {
                v: draw(st.integers(min_value=-3, max_value=3)) for v in variables
            }
            rows.append(
                Constraint(
                    coeffs,
                    draw(st.integers(min_value=-6, max_value=6)),
                    is_eq=draw(st.booleans()),
                )
            )
        deltas.append(System(rows))
    return base, deltas


@settings(deadline=None, max_examples=60)
@given(families())
def test_feasible_many_agrees_with_feasible_and_scalar(family):
    base, deltas = family
    solver.clear_memo()
    batched = solver.feasible_many(base, deltas)
    solver.clear_memo()
    single = [solver.feasible(base.conjoin(d)) for d in deltas]
    oracle = [integer_feasible_scalar(base.conjoin(d)) for d in deltas]
    assert batched == single == oracle


@settings(deadline=None, max_examples=30)
@given(families())
def test_feasible_many_warm_path_serves_from_memo(family):
    base, deltas = family
    solver.clear_memo()
    first = solver.feasible_many(base, deltas)
    solves_before = METRICS.get("solver.solves")
    assert solver.feasible_many(base, deltas) == first
    assert [solver.feasible(base.conjoin(d)) for d in deltas] == first
    assert METRICS.get("solver.solves") == solves_before


def test_family_engine_agrees_on_shared_equality_prefix():
    # The shared Hermite solve and prefix elimination run once; every
    # member verdict must still match the scalar oracle exactly.
    base = System(
        [
            Constraint.eq({"x": 1, "y": -1}, 0),
            Constraint.ge({"x": 1}, 0),
            Constraint.ge({"x": -1}, 10),
            Constraint.ge({"z": 1}, 0),
            Constraint.ge({"z": -1}, 5),
        ]
    )
    deltas = [
        System([Constraint.ge({"y": 1, "z": -1}, -k)]) for k in range(-2, 3)
    ] + [System([Constraint.eq({"y": 1, "z": 1}, -30)])]
    got = feasible_family(base, deltas, recurse=solver.feasible)
    want = [integer_feasible_scalar(base.conjoin(d)) for d in deltas]
    assert got == want


def _int128_system(infeasible: bool) -> System:
    # Every row entangles x and y with coprime non-unit coefficients, so
    # per-row GCD tightening cannot normalize anything to a unit and no
    # column is exact: eliminating x pairs the two big-coefficient rows
    # with multipliers ~2^20 against 2^42 constants, tripping the
    # combine's conservative int64 guard ((a+b) * peak >= 2^62) while
    # staying under the two-limb multiplier limit — the int128 path must
    # decide it, in both verdict directions.  (big is odd on purpose:
    # gcd(big, 2) = 1 keeps the rows un-tightenable.)
    big, huge = (1 << 20) + 1, 1 << 42
    return System(
        [
            Constraint.ge({"x": big, "y": 2}, huge),
            Constraint.ge({"x": -big, "y": 3}, huge),
            Constraint.ge({"x": 2, "y": -5}, -2 * huge if infeasible else 0),
        ]
    )


@pytest.mark.parametrize("infeasible", [False, True])
def test_int128_combine_boundary_agrees_with_scalar(infeasible):
    system = _int128_system(infeasible)
    before = METRICS.get("solver.int128_combines")
    fallbacks = METRICS.get("solver.vector_fallbacks")
    assert solver.feasible(system) == integer_feasible_scalar(system)
    assert METRICS.get("solver.int128_combines") > before
    assert METRICS.get("solver.vector_fallbacks") == fallbacks


def test_multiplier_overflow_still_falls_back_to_scalar():
    # Same shape as _int128_system but with multipliers at 2^31 — past
    # the two-limb mult limit: the int128 path must refuse (Fallback ->
    # the scalar engine), never answer wrongly.
    big, huge = (1 << 31) + 1, 1 << 42
    system = System(
        [
            Constraint.ge({"x": big, "y": 2}, huge),
            Constraint.ge({"x": -big, "y": 3}, huge),
            Constraint.ge({"x": 2, "y": -5}, 0),
        ]
    )
    fallbacks = METRICS.get("solver.vector_fallbacks")
    assert solver.feasible(system) == integer_feasible_scalar(system)
    assert METRICS.get("solver.vector_fallbacks") > fallbacks


def _budget_family():
    base = System(
        [
            Constraint.ge({"x": 1}, 0),
            Constraint.ge({"y": 1}, 0),
            Constraint.ge({"x": -1, "y": -1}, 40),
            Constraint.ge({"x": 1, "y": -2}, 7),
            Constraint.ge({"x": -2, "y": 1}, 9),
        ]
    )
    deltas = [
        System([Constraint.ge({"x": 1, "y": 1}, -3 * k - 2)]) for k in range(4)
    ]
    return base, deltas


def test_budget_is_shared_across_the_family():
    base, deltas = _budget_family()
    # Calibrate: the eliminations one lone member needs, unbudgeted.
    before = METRICS.get("fm.vector_eliminations")
    assert solver.feasible(base.conjoin(deltas[0])) is True
    single_cost = int(METRICS.get("fm.vector_eliminations") - before)
    assert single_cost >= 1

    # Each member fits the per-query budget on its own...
    policy = budget.set_policy(max_steps=single_cost)
    try:
        for delta in deltas:
            solver.clear_memo()
            assert solver.feasible(base.conjoin(delta)) is True
        # ...but the family shares ONE scope, so the cumulative charge
        # trips: feasible_many opens a single budget window per family.
        solver.clear_memo()
        exceeded = METRICS.get("solver.budget_exceeded")
        with pytest.raises(SolverBudget):
            solver.feasible_many(base, deltas)
        assert METRICS.get("solver.budget_exceeded") == exceeded + 1
    finally:
        budget.restore_policy(policy)

    # A budget trip never poisons the memo: rerunning unbudgeted gives
    # the exact verdicts.
    solver.clear_memo()
    assert solver.feasible_many(base, deltas) == [
        integer_feasible_scalar(base.conjoin(d)) for d in deltas
    ]


def test_batch_counters_track_families_and_members():
    base, deltas = _budget_family()
    families_before = METRICS.get("solver.batch_families")
    members_before = METRICS.get("solver.batch_members")
    reuse_before = METRICS.get("solver.batch_prefix_reuse")
    solver.feasible_many(base, deltas)
    assert METRICS.get("solver.batch_families") == families_before + 1
    assert METRICS.get("solver.batch_members") == members_before + len(deltas)
    assert (
        METRICS.get("solver.batch_prefix_reuse") == reuse_before + len(deltas) - 1
    )
    # Warm: everything from the memo, no new family.
    solver.feasible_many(base, deltas)
    assert METRICS.get("solver.batch_families") == families_before + 1


def test_drop_shared_hook_is_detectably_unsound():
    # The batch-bad-prefix mutation must actually change answers, or the
    # planted-bug test proves nothing.  After the shared prefix reduces,
    # the dropped row carries the contradiction for every member.
    base = System(
        [
            Constraint.ge({"x": 1}, 0),
            Constraint.ge({"x": -1}, -5),  # x <= -5 contradicts x >= 0
        ]
    )
    deltas = [System([Constraint.ge({"y": 1, "x": 1}, -k)]) for k in range(2)]
    honest = feasible_family(base, deltas, recurse=solver.feasible)
    assert honest == [False, False]
    broken = feasible_family(
        base, deltas, recurse=solver.feasible, drop_shared=True
    )
    assert broken != honest
