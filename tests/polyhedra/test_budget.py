"""Solver budgets: typed trips, no poisoned memo, conservative legality."""

import pytest

from repro.core import DataBlocking, DataShackle, check_legality
from repro.core.shackle import _parse_ref
from repro.engine.metrics import METRICS
from repro.kernels import cholesky
from repro.polyhedra import Constraint, System, solver
from repro.polyhedra import budget
from repro.polyhedra.budget import BudgetPolicy, SolverBudget


@pytest.fixture(autouse=True)
def _unbudgeted():
    """Tests install their own policy; everything restores afterwards."""
    previous = budget.set_policy()  # no limits
    solver.clear_memo()
    yield
    budget.restore_policy(previous)
    solver.clear_memo()


def _nontrivial_system() -> System:
    """Small but not empty: feasibility needs at least one elimination."""
    return System(
        [
            Constraint.ge({"x": 1}, 0),  # x >= 0
            Constraint.ge({"x": -1}, 10),  # x <= 10
            Constraint.ge({"y": 1, "x": -1}, 0),  # y >= x
            Constraint.ge({"y": -1}, 10),  # y <= 10
            Constraint.ge({"x": 1, "y": 1}, -3),  # x + y >= 3
        ]
    )


def test_policy_defaults_to_disabled():
    assert not BudgetPolicy().enabled
    assert BudgetPolicy(max_steps=5).enabled
    assert BudgetPolicy(max_seconds=0.5).enabled


def test_step_budget_trips_with_typed_reason():
    budget.set_policy(max_steps=0)
    before = METRICS.get("solver.budget_exceeded")
    with pytest.raises(SolverBudget) as excinfo:
        solver.feasible(_nontrivial_system())
    assert excinfo.value.reason == "steps"
    assert excinfo.value.limit == 0
    assert METRICS.get("solver.budget_exceeded") == before + 1


def test_time_budget_trips_with_typed_reason():
    budget.set_policy(max_seconds=0.0)
    with pytest.raises(SolverBudget) as excinfo:
        solver.feasible(_nontrivial_system())
    assert excinfo.value.reason == "seconds"


def test_budget_trip_never_poisons_the_memo():
    system = _nontrivial_system()
    budget.set_policy(max_steps=0)
    with pytest.raises(SolverBudget):
        solver.feasible(system)
    # With the budget lifted the same query must be *solved*, not served
    # from a memo entry recorded by the aborted attempt.
    budget.set_policy()
    assert solver.feasible(system) is True


def test_unbudgeted_queries_are_unaffected():
    assert solver.feasible(_nontrivial_system()) is True


def test_charge_is_noop_outside_query_scope():
    budget.set_policy(max_steps=0)
    budget.charge(100)  # no active scope: must not raise


def test_env_policy_parsing(monkeypatch):
    monkeypatch.setenv("REPRO_SOLVER_STEPS", "123")
    monkeypatch.setenv("REPRO_SOLVER_SECONDS", "4.5")
    policy = budget._policy_from_env()
    assert policy == BudgetPolicy(max_steps=123, max_seconds=4.5)
    monkeypatch.delenv("REPRO_SOLVER_STEPS")
    monkeypatch.delenv("REPRO_SOLVER_SECONDS")
    assert not budget._policy_from_env().enabled


def test_legality_maps_budget_to_conservative_reject():
    """Unknown feasibility must reject the candidate, never accept it."""
    prog = cholesky.program("right")
    shackle = DataShackle(
        prog,
        DataBlocking.grid("A", 2, 25),
        {
            "S1": _parse_ref("A[J,J]"),
            "S2": _parse_ref("A[I,J]"),
            "S3": _parse_ref("A[L,K]"),
        },
    )
    # Dependence analysis runs unbudgeted: the conservative mapping under
    # test lives in the legality checker's feasibility queries.
    from repro.dependence import compute_dependences

    deps = compute_dependences(prog)
    assert check_legality(shackle, deps, verdict_cache={}).legal  # honest verdict

    solver.clear_memo()
    budget.set_policy(max_steps=0)
    before = METRICS.get("legality.budget_exceeded")
    verdict = check_legality(shackle, deps, verdict_cache={})
    assert not verdict.legal  # every query unknown => candidate rejected
    assert METRICS.get("legality.budget_exceeded") > before
