"""Tests for loop-bound extraction (polyhedron scanning)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.polyhedra import Constraint, System, scan_bounds
from repro.polyhedra.omega import enumerate_points
from repro.polyhedra.scan import scan_points


def box(var, lo, hi):
    return [Constraint.ge({var: 1}, -lo), Constraint.ge({var: -1}, hi)]


def enumerate_via_bounds(bounds, residual, order, env=None):
    """Walk the generated loop nest and collect points (test helper)."""
    env = dict(env or {})
    for c in residual:
        if not c.evaluate(env):
            return []
    points = []

    def walk(level, env):
        if level == len(bounds):
            points.append(tuple(env[v] for v in order))
            return
        b = bounds[level]
        lo = max((bb.evaluate_lower(env) for bb in b.lowers), default=None)
        hi = min((bb.evaluate_upper(env) for bb in b.uppers), default=None)
        assert lo is not None and hi is not None, f"unbounded {b.var}"
        for val in range(lo, hi + 1):
            walk(level + 1, {**env, b.var: val})

    walk(0, env)
    return points


def test_triangle_bounds():
    # 1 <= x <= 5, 1 <= y <= x.
    s = System(box("x", 1, 5) + [Constraint.ge({"y": 1}, -1), Constraint.ge({"x": 1, "y": -1}, 0)])
    bounds, residual = scan_bounds(s, ["x", "y"])
    assert residual == []
    pts = enumerate_via_bounds(bounds, residual, ["x", "y"])
    assert pts == enumerate_points(s, ["x", "y"])


def test_block_bounds_shape():
    """The matmul block-loop shape: 25b-24 <= i <= 25b, 1 <= i <= N."""
    s = System(
        [
            Constraint.ge({"i": 1, "b": -25}, 24),
            Constraint.ge({"i": -1, "b": 25}, 0),
            Constraint.ge({"i": 1}, -1),
            Constraint.ge({"i": -1, "N": 1}, 0),
        ]
    )
    bounds, residual = scan_bounds(s, ["b", "i"])
    # b ranges over ceil(1/25)=1 .. floor((N+24)/25); the generated upper
    # bound for b must be (N+24)/25.
    b_bounds = bounds[0]
    uppers = {(tuple(sorted(u.coeffs.items())), u.const, u.den) for u in b_bounds.uppers}
    assert ((("N", 1),), 24, 25) in uppers
    # With N = 60 the walk must produce exactly i in 1..60 partitioned by b.
    pts = enumerate_via_bounds(bounds, residual, ["b", "i"], env={"N": 60})
    assert len(pts) == 60
    assert all(25 * b - 24 <= i <= 25 * b for b, i in pts)


def test_equality_collapses_loop():
    # x == y + 1, 1 <= y <= 4: scanning [y, x] should pin x.
    s = System(box("y", 1, 4) + [Constraint.eq({"x": 1, "y": -1}, -1)])
    bounds, residual = scan_bounds(s, ["y", "x"])
    pts = enumerate_via_bounds(bounds, residual, ["y", "x"])
    assert pts == [(y, y + 1) for y in range(1, 5)]


def test_residual_parameter_constraints():
    s = System([Constraint.ge({"N": 1}, -10)] + box("x", 1, 3))
    bounds, residual = scan_bounds(s, ["x"])
    assert len(residual) == 1
    assert residual[0].coeff("N") == 1


@settings(max_examples=60, deadline=None)
@given(
    st.lists(
        st.builds(
            lambda cx, cy, const: Constraint.ge({"x": cx, "y": cy}, const),
            st.integers(-2, 2),
            st.integers(-2, 2),
            st.integers(-4, 4),
        ),
        max_size=3,
    ),
    st.booleans(),
)
def test_scan_matches_enumeration(cs, prune):
    """Scanning a bounded polyhedron enumerates exactly its integer points.

    The real-shadow over-approximation means outer loops may visit extra
    values, but those must produce empty inner ranges — the *set* of full
    points must match exactly.
    """
    s = System(box("x", -3, 3) + box("y", -3, 3) + cs)
    bounds, residual = scan_bounds(s, ["x", "y"], prune=prune)
    got = enumerate_via_bounds(bounds, residual, ["x", "y"])
    want = enumerate_points(s, ["x", "y"])
    assert sorted(got) == sorted(want)


# -- the vectorized enumerator (scan_points) ---------------------------------------


def test_scan_points_triangle_order_and_set():
    # 0 <= j <= i <= 4: the classic triangle, lexicographic in (i, j).
    s = System(
        [
            Constraint.ge({"i": 1}, 0),
            Constraint.ge({"i": -1}, 4),
            Constraint.ge({"j": 1}, 0),
            Constraint.ge({"i": 1, "j": -1}, 0),
        ]
    )
    got = scan_points(s, ["i", "j"])
    assert got == enumerate_points(s, ["i", "j"])
    assert got == [(i, j) for i in range(5) for j in range(i + 1)]


def test_scan_points_empty_domain():
    s = System(box("x", 0, 5) + [Constraint.ge({"x": 1}, -10)])  # x >= 10, x <= 5
    assert scan_points(s, ["x"]) == []
    assert enumerate_points(s, ["x"]) == []


def test_scan_points_single_point_equality_pinned():
    # x == 3 and y == x - 1: a degenerate one-point domain.
    s = System(
        box("x", -5, 5)
        + box("y", -5, 5)
        + [Constraint.eq({"x": 1}, -3), Constraint.eq({"y": 1, "x": -1}, 1)]
    )
    assert scan_points(s, ["x", "y"]) == [(3, 2)]
    assert enumerate_points(s, ["x", "y"]) == [(3, 2)]


def test_scan_points_unbounded_raises_like_scalar():
    s = System([Constraint.ge({"x": 1}, 0)])
    with pytest.raises(ValueError, match="unbounded"):
        enumerate_points(s, ["x"])
    with pytest.raises(ValueError, match="unbounded"):
        scan_points(s, ["x"])


def test_scan_points_missing_order_raises_like_scalar():
    s = System(box("x", 0, 2) + box("y", 0, 2))
    with pytest.raises(ValueError, match="missing"):
        enumerate_points(s, ["x"])
    with pytest.raises(ValueError, match="missing"):
        scan_points(s, ["x"])


def test_scan_points_parameters_pinned_by_equalities():
    # The dependence-oracle usage pattern: params first in the order,
    # pinned to their values by equality constraints.
    s = System(
        [Constraint.eq({"N": 1}, -4)]
        + [
            Constraint.ge({"i": 1}, -1),
            Constraint.ge({"i": -1, "N": 1}, 0),
            Constraint.ge({"j": 1}, -1),
            Constraint.ge({"j": -1, "i": 1}, 0),
        ]
    )
    got = scan_points(s, ["N", "i", "j"])
    assert got == enumerate_points(s, ["N", "i", "j"])
    assert got[0] == (4, 1, 1) and all(p[0] == 4 for p in got)


@settings(max_examples=80, deadline=None)
@given(
    st.lists(
        st.builds(
            lambda cx, cy, cz, const, eq: (
                Constraint.eq({"x": cx, "y": cy, "z": cz}, const)
                if eq
                else Constraint.ge({"x": cx, "y": cy, "z": cz}, const)
            ),
            st.integers(-2, 2),
            st.integers(-2, 2),
            st.integers(-2, 2),
            st.integers(-4, 4),
            st.booleans(),
        ),
        max_size=4,
    )
)
def test_scan_points_matches_scalar_set_and_order(cs):
    """The vectorized enumerator is a drop-in for the scalar one:
    identical points in identical (lexicographic) order, including on
    empty and degenerate domains."""
    s = System(
        box("x", -3, 3) + box("y", -3, 3) + box("z", -2, 2) + cs
    )
    order = ["x", "y", "z"]
    assert scan_points(s, order) == enumerate_points(s, order)
