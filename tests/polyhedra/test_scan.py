"""Tests for loop-bound extraction (polyhedron scanning)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.polyhedra import Constraint, System, scan_bounds
from repro.polyhedra.omega import enumerate_points


def box(var, lo, hi):
    return [Constraint.ge({var: 1}, -lo), Constraint.ge({var: -1}, hi)]


def enumerate_via_bounds(bounds, residual, order, env=None):
    """Walk the generated loop nest and collect points (test helper)."""
    env = dict(env or {})
    for c in residual:
        if not c.evaluate(env):
            return []
    points = []

    def walk(level, env):
        if level == len(bounds):
            points.append(tuple(env[v] for v in order))
            return
        b = bounds[level]
        lo = max((bb.evaluate_lower(env) for bb in b.lowers), default=None)
        hi = min((bb.evaluate_upper(env) for bb in b.uppers), default=None)
        assert lo is not None and hi is not None, f"unbounded {b.var}"
        for val in range(lo, hi + 1):
            walk(level + 1, {**env, b.var: val})

    walk(0, env)
    return points


def test_triangle_bounds():
    # 1 <= x <= 5, 1 <= y <= x.
    s = System(box("x", 1, 5) + [Constraint.ge({"y": 1}, -1), Constraint.ge({"x": 1, "y": -1}, 0)])
    bounds, residual = scan_bounds(s, ["x", "y"])
    assert residual == []
    pts = enumerate_via_bounds(bounds, residual, ["x", "y"])
    assert pts == enumerate_points(s, ["x", "y"])


def test_block_bounds_shape():
    """The matmul block-loop shape: 25b-24 <= i <= 25b, 1 <= i <= N."""
    s = System(
        [
            Constraint.ge({"i": 1, "b": -25}, 24),
            Constraint.ge({"i": -1, "b": 25}, 0),
            Constraint.ge({"i": 1}, -1),
            Constraint.ge({"i": -1, "N": 1}, 0),
        ]
    )
    bounds, residual = scan_bounds(s, ["b", "i"])
    # b ranges over ceil(1/25)=1 .. floor((N+24)/25); the generated upper
    # bound for b must be (N+24)/25.
    b_bounds = bounds[0]
    uppers = {(tuple(sorted(u.coeffs.items())), u.const, u.den) for u in b_bounds.uppers}
    assert ((("N", 1),), 24, 25) in uppers
    # With N = 60 the walk must produce exactly i in 1..60 partitioned by b.
    pts = enumerate_via_bounds(bounds, residual, ["b", "i"], env={"N": 60})
    assert len(pts) == 60
    assert all(25 * b - 24 <= i <= 25 * b for b, i in pts)


def test_equality_collapses_loop():
    # x == y + 1, 1 <= y <= 4: scanning [y, x] should pin x.
    s = System(box("y", 1, 4) + [Constraint.eq({"x": 1, "y": -1}, -1)])
    bounds, residual = scan_bounds(s, ["y", "x"])
    pts = enumerate_via_bounds(bounds, residual, ["y", "x"])
    assert pts == [(y, y + 1) for y in range(1, 5)]


def test_residual_parameter_constraints():
    s = System([Constraint.ge({"N": 1}, -10)] + box("x", 1, 3))
    bounds, residual = scan_bounds(s, ["x"])
    assert len(residual) == 1
    assert residual[0].coeff("N") == 1


@settings(max_examples=60, deadline=None)
@given(
    st.lists(
        st.builds(
            lambda cx, cy, const: Constraint.ge({"x": cx, "y": cy}, const),
            st.integers(-2, 2),
            st.integers(-2, 2),
            st.integers(-4, 4),
        ),
        max_size=3,
    ),
    st.booleans(),
)
def test_scan_matches_enumeration(cs, prune):
    """Scanning a bounded polyhedron enumerates exactly its integer points.

    The real-shadow over-approximation means outer loops may visit extra
    values, but those must produce empty inner ranges — the *set* of full
    points must match exactly.
    """
    s = System(box("x", -3, 3) + box("y", -3, 3) + cs)
    bounds, residual = scan_bounds(s, ["x", "y"], prune=prune)
    got = enumerate_via_bounds(bounds, residual, ["x", "y"])
    want = enumerate_points(s, ["x", "y"])
    assert sorted(got) == sorted(want)
