"""Canonical-form properties: the memo key must be presentation-blind.

The solver memoizes feasibility by canonical form, so the canonical key
must be invariant under every transformation that cannot change a
system's integer solutions-as-a-set up to variable renaming: constraint
order, positive scaling, duplicated rows, equality sign, and variable
names.  A key collision between genuinely different systems would make
the memo *wrong*, so distinctness is tested too.
"""

from fractions import Fraction

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.polyhedra import Constraint, System, canonical_fingerprint, canonical_key
from repro.polyhedra.canonical import key_fingerprint


def _demo_system() -> System:
    return System(
        [
            Constraint.ge({"i": 1}, -1),
            Constraint.ge({"i": -1, "N": 1}, 0),
            Constraint.ge({"j": 1, "i": -1}, -1),
            Constraint.ge({"b": 25, "j": -1}, 24),
            Constraint.eq({"j": 1, "k": -1}, 0),
        ]
    )


def test_invariant_under_row_permutation():
    system = _demo_system()
    permuted = System(reversed(list(system.constraints)))
    assert canonical_key(permuted) == canonical_key(system)


def test_invariant_under_positive_row_scaling():
    system = _demo_system()
    scaled = System(
        Constraint(
            {v: 7 * a for v, a in c.coeffs.items()}, 7 * c.const, c.is_eq
        )
        for c in system.constraints
    )
    assert canonical_key(scaled) == canonical_key(system)
    fractional = System(
        Constraint(
            {v: Fraction(a, 3) for v, a in c.coeffs.items()},
            Fraction(c.const, 3),
            c.is_eq,
        )
        for c in system.constraints
    )
    assert canonical_key(fractional) == canonical_key(system)


def test_invariant_under_duplicated_constraints():
    system = _demo_system()
    doubled = System(list(system.constraints) * 2)
    assert canonical_key(doubled) == canonical_key(system)


def test_invariant_under_equality_sign():
    a = System([Constraint.eq({"x": 1, "y": -1}, 3)])
    b = System([Constraint.eq({"x": -1, "y": 1}, -3)])
    assert canonical_key(a) == canonical_key(b)


def test_invariant_under_variable_renaming():
    system = _demo_system()
    renamed = system.rename(
        {"i": "_ws1_0", "j": "_wt1_0", "k": "_q", "b": "_blk", "N": "_param"}
    )
    assert canonical_key(renamed) == canonical_key(system)
    assert canonical_fingerprint(renamed) == canonical_fingerprint(system)


def test_distinct_systems_get_distinct_keys():
    base = _demo_system()
    tighter = base.conjoin(Constraint.ge({"i": -1}, 100))
    shifted = System(
        [Constraint.ge({"i": 1}, -2)]
        + [c for c in base.constraints if c.coeffs != {"i": 1}]
    )
    keys = {canonical_key(base), canonical_key(tighter), canonical_key(shifted)}
    assert len(keys) == 3


def test_empty_system_key():
    assert canonical_key(System()) == (0, ())


def test_fingerprint_is_deterministic():
    key = canonical_key(_demo_system())
    assert key_fingerprint(key) == key_fingerprint(key)
    assert key_fingerprint(key) != key_fingerprint(canonical_key(System()))


@st.composite
def small_systems(draw):
    variables = ["x", "y", "z"]
    n = draw(st.integers(min_value=1, max_value=5))
    constraints = []
    for _ in range(n):
        coeffs = {
            v: draw(st.integers(min_value=-4, max_value=4)) for v in variables
        }
        const = draw(st.integers(min_value=-6, max_value=6))
        is_eq = draw(st.booleans())
        constraints.append(Constraint(coeffs, const, is_eq=is_eq))
    return System(constraints)


@settings(deadline=None, max_examples=60)
@given(small_systems(), st.permutations(["x", "y", "z"]))
def test_random_systems_rename_and_permute(system, names):
    mapping = dict(zip(["x", "y", "z"], names))
    transformed = System(reversed(list(system.rename(mapping).constraints)))
    assert canonical_key(transformed) == canonical_key(system)
