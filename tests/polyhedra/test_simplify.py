"""Tests for implication testing and the gist operator."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.polyhedra import Constraint, System, gist, implies
from repro.polyhedra.simplify import remove_redundant


def box(var, lo, hi):
    return [Constraint.ge({var: 1}, -lo), Constraint.ge({var: -1}, hi)]


def test_implies_basic():
    ctx = System([Constraint.ge({"x": 1}, -5)])  # x >= 5
    assert implies(ctx, Constraint.ge({"x": 1}, -3))  # x >= 3
    assert not implies(ctx, Constraint.ge({"x": 1}, -7))  # x >= 7


def test_implies_equality():
    ctx = System([Constraint.eq({"x": 1, "y": -1}, 0)])  # x == y
    assert implies(ctx, Constraint.eq({"x": 2, "y": -2}, 0))
    assert not implies(ctx, Constraint.eq({"x": 1}, 0))


def test_implies_uses_integrality():
    # Context: 1 <= x <= 2 and x == 2y. Over the rationals x could be 1,
    # but over the integers x must be 2 (y=1). So x >= 2 is implied.
    ctx = System(
        box("x", 1, 2) + box("y", -5, 5) + [Constraint.eq({"x": 1, "y": -2}, 0)]
    )
    assert implies(ctx, Constraint.ge({"x": 1}, -2))


def test_gist_removes_implied_guards():
    # This is the paper's Figure 5 -> Figure 6 situation in miniature:
    # the guard "1 <= I <= N" is implied by the loop context.
    context = System(
        [
            Constraint.ge({"I": 1}, -1),
            Constraint.ge({"I": -1, "N": 1}, 0),
        ]
    )
    guards = System(
        [
            Constraint.ge({"I": 1}, -1),  # implied
            Constraint.ge({"I": 1, "b": -25}, 24),  # 25b - 24 <= I: kept
        ]
    )
    out = gist(guards, context)
    assert len(out) == 1
    assert out.constraints[0].coeff("b") == -25


def test_gist_empty_when_fully_implied():
    ctx = System(box("x", 1, 10))
    out = gist(System(box("x", 0, 11)), ctx)
    assert len(out) == 0


def test_remove_redundant():
    s = System(
        [
            Constraint.ge({"x": 1}, -5),  # x >= 5
            Constraint.ge({"x": 1}, -3),  # x >= 3 (redundant)
        ]
    )
    out = remove_redundant(s)
    assert len(out) == 1
    assert out.constraints[0].const == -5


@settings(max_examples=40, deadline=None)
@given(
    st.lists(
        st.builds(
            lambda cx, cy, const: Constraint.ge({"x": cx, "y": cy}, const),
            st.integers(-2, 2),
            st.integers(-2, 2),
            st.integers(-4, 4),
        ),
        min_size=1,
        max_size=4,
    )
)
def test_gist_preserves_integer_set(cs):
    """gist(S, ctx) ∧ ctx must equal S ∧ ctx on a bounded grid."""
    ctx = System(box("x", -3, 3) + box("y", -3, 3))
    s = System(cs)
    g = gist(s, ctx)
    for x in range(-3, 4):
        for y in range(-3, 4):
            env = {"x": x, "y": y}
            assert (s.evaluate(env) and ctx.evaluate(env)) == (
                g.evaluate(env) and ctx.evaluate(env)
            )
