"""The memoized solver: engines agree, memo is bounded, tiers compose.

The vectorized engine is differentially tested against the scalar Omega
oracle on random bounded systems (the same class of systems the fuzz
``solver`` check draws from real shackles), the process-global memo is
held to its LRU bound, and the optional engine-cache tier is verified to
serve verdicts across a memo clear — exactly the cross-process scenario
worker pools rely on.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.cache import ResultCache
from repro.engine.metrics import METRICS
from repro.polyhedra import Constraint, System, integer_feasible_scalar
from repro.polyhedra import solver
from repro.polyhedra.fm_vector import Fallback, feasible_vector
from repro.polyhedra.solver import SolverMemo


@pytest.fixture(autouse=True)
def _fresh_memo():
    solver.clear_memo()
    yield
    solver.clear_memo()
    solver.set_solver_cache(None)


@st.composite
def bounded_systems(draw):
    variables = ["x", "y", "z"]
    constraints = []
    for v in variables:
        lo = draw(st.integers(min_value=-4, max_value=4))
        constraints.append(Constraint.ge({v: 1}, -lo))
        constraints.append(Constraint.ge({v: -1}, lo + draw(st.integers(0, 6))))
    for _ in range(draw(st.integers(min_value=0, max_value=4))):
        coeffs = {
            v: draw(st.integers(min_value=-5, max_value=5)) for v in variables
        }
        constraints.append(
            Constraint(
                coeffs,
                draw(st.integers(min_value=-8, max_value=8)),
                is_eq=draw(st.booleans()),
            )
        )
    return System(constraints)


@settings(deadline=None, max_examples=80)
@given(bounded_systems())
def test_vector_engine_agrees_with_scalar_oracle(system):
    got = feasible_vector(system, recurse=solver.feasible)
    want = integer_feasible_scalar(system)
    assert got == want


@settings(deadline=None, max_examples=40)
@given(bounded_systems())
def test_memoized_entrypoint_agrees_and_is_stable(system):
    first = solver.feasible(system)
    assert first == integer_feasible_scalar(system)
    assert solver.feasible(system) == first  # memo hit, same verdict


def test_engine_selection_round_trips():
    previous = solver.set_engine("scalar")
    try:
        assert solver.get_engine() == "scalar"
        assert solver.feasible(System([Constraint.ge({"x": 1}, -3)]))
    finally:
        solver.set_engine(previous)
    with pytest.raises(ValueError):
        solver.set_engine("quantum")


def test_vector_overflow_falls_back_to_scalar():
    # a*x == b*y with coprime ~2^31 coefficients forces Bezout
    # multipliers beyond int64 headroom during equality elimination; the
    # vectorized engine must refuse and the solver answer via the scalar
    # path (both verdicts stay exact).
    a, b = (1 << 31) + 1, (1 << 31) - 1
    base = [
        Constraint.eq({"x": a, "y": -b}, 0),  # x = b*t, y = a*t
        Constraint.ge({"x": b, "y": 1}, 0),
    ]
    feasible = System(base)
    infeasible = System(
        base + [Constraint.ge({"x": -1}, -1), Constraint.ge({"y": 1}, -1)]
    )
    with pytest.raises(Fallback):
        feasible_vector(feasible, recurse=solver.feasible)
    before = METRICS.get("solver.vector_fallbacks")
    previous = solver.set_engine("vector")
    try:
        assert solver.feasible(feasible) is True
        assert solver.feasible(infeasible) is False
    finally:
        solver.set_engine(previous)
    assert METRICS.get("solver.vector_fallbacks") == before + 2


def test_memo_is_lru_bounded():
    memo = SolverMemo(capacity=4)
    for i in range(10):
        memo.put(("key", i), i % 2 == 0)
    assert len(memo) == 4
    assert memo.evictions == 6
    assert memo.get(("key", 9)) is not None
    assert memo.get(("key", 0)) is None  # evicted long ago
    # A get refreshes recency: key 6 survives the next insertion, 7 dies.
    memo.get(("key", 6))
    memo.put(("key", 10), True)
    assert memo.get(("key", 6)) is not None
    assert memo.get(("key", 7)) is None
    with pytest.raises(ValueError):
        SolverMemo(capacity=0)


def test_result_cache_memory_tier_bounded_by_solver_entries():
    # Regression: fine-grained solver verdicts must not grow the engine
    # cache's memory tier past its capacity.
    cache = ResultCache(capacity=8)
    for i in range(100):
        cache.put(f"solver-{i:03d}", bool(i % 2))
    assert len(cache) == 8
    assert cache.evictions == 92
    assert cache.get("solver-099") is True
    assert cache.get("solver-000") is None


def test_cache_tier_serves_verdicts_across_memo_clear():
    cache = ResultCache(capacity=64)
    solver.set_solver_cache(cache)
    system = System(
        [Constraint.ge({"x": 1, "y": 2}, -7), Constraint.ge({"x": -3, "y": 1}, 0)]
    )
    verdict = solver.feasible(system)
    stored = [k for k in cache._memory if k.startswith(solver._CACHE_PREFIX)]
    assert len(stored) == 1

    solver.clear_memo()  # simulate a different process sharing the cache
    solves_before = METRICS.get("solver.solves")
    hits_before = METRICS.get("solver.cache_hits")
    assert solver.feasible(system) == verdict
    assert METRICS.get("solver.solves") == solves_before  # no fresh solve
    assert METRICS.get("solver.cache_hits") == hits_before + 1


def test_renamed_system_hits_canonical_tier():
    system = System(
        [
            Constraint.ge({"i": 1}, -1),
            Constraint.ge({"i": -1, "N": 1}, 0),
            Constraint.ge({"j": 2, "i": -3}, 5),
        ]
    )
    verdict = solver.feasible(system)
    hits_before = METRICS.get("solver.canonical_hits")
    renamed = system.rename({"i": "_a", "j": "_b", "N": "_n"})
    assert solver.feasible(renamed) == verdict
    assert METRICS.get("solver.canonical_hits") == hits_before + 1


def test_bad_prune_hook_is_detectably_unsound():
    # The drop_last hook exists so the fuzzer can plant a bad prune; it
    # must actually change answers (else the planted mutation tests prove
    # nothing).  On this infeasible system the dropped combined row is
    # the one carrying the contradiction, so the hooked engine wrongly
    # answers feasible.
    system = System(
        [
            Constraint.ge({"x": 1}, -2),
            Constraint.ge({"x": -1, "y": 1}, 1),
            Constraint.ge({"y": 1}, -1),
            Constraint.ge({"y": -1}, 3),
            Constraint.ge({"x": -2, "y": 1}, -4),
            Constraint.ge({"x": -1, "y": -2}, 6),
        ]
    )
    assert integer_feasible_scalar(system) is False
    assert (
        feasible_vector(system, recurse=integer_feasible_scalar, drop_last=True)
        is True
    )
