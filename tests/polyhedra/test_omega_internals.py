"""Focused tests for the Omega test's internal phases."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.polyhedra import Constraint, System, integer_feasible
from repro.polyhedra.omega import _Infeasible, _solve_equalities


def box(var, lo, hi):
    return [Constraint.ge({var: 1}, -lo), Constraint.ge({var: -1}, hi)]


class TestEqualityLattice:
    def test_substitution_into_inequalities(self):
        # x == 2y, x >= 5 -> over the lattice parameter: y >= 3 (integer).
        # The output is expressed over fresh lattice variables, so narrow
        # the original system before eliminating.
        s = System([Constraint.eq({"x": 1, "y": -2}, 0), Constraint.ge({"x": 1}, -5)])
        out = _solve_equalities(s)
        assert not out.equalities()
        assert integer_feasible(out)
        narrowed = _solve_equalities(s.conjoin(Constraint.ge({"y": -1}, 2)))  # y <= 2
        assert not integer_feasible(narrowed)

    def test_inconsistent_equalities(self):
        s = System([Constraint.eq({"x": 1}, -3), Constraint.eq({"x": 1}, -4)])
        with pytest.raises(_Infeasible):
            _solve_equalities(s)

    def test_gcd_infeasibility(self):
        s = System([Constraint.eq({"x": 4, "y": 6}, -1)])
        with pytest.raises(_Infeasible):
            _solve_equalities(s)

    def test_redundant_equalities_ok(self):
        s = System(
            [Constraint.eq({"x": 1, "y": -1}, 0), Constraint.eq({"x": 2, "y": -2}, 0)]
        )
        out = _solve_equalities(s)
        assert not out.equalities()

    def test_full_rank_point_solution(self):
        s = System(
            [
                Constraint.eq({"x": 1, "y": 1}, -7),  # x + y == 7
                Constraint.eq({"x": 1, "y": -1}, -1),  # x - y == 1
            ]
        )
        out = _solve_equalities(s)  # x=4, y=3: consistent, no free vars
        assert integer_feasible(out)
        bad = System(
            [
                Constraint.eq({"x": 1, "y": 1}, -7),
                Constraint.eq({"x": 1, "y": -1}, -2),  # forces x=4.5
            ]
        )
        with pytest.raises(_Infeasible):
            _solve_equalities(bad)


class TestGrayRegion:
    def test_splinter_needed_case(self):
        # x == 5y + 3z with 2 <= x <= 3, y,z in small boxes: coupled
        # divisibility that dark/real shadows alone cannot settle.
        s = System(
            box("x", 2, 3)
            + box("y", -2, 2)
            + box("z", -2, 2)
            + [Constraint.eq({"x": 1, "y": -5, "z": -3}, 0)]
        )
        # x=2: 5y+3z=2 -> y=1,z=-1. Feasible.
        assert integer_feasible(s)

    def test_wide_coefficients_agree_with_bruteforce(self):
        for lo, hi, expected in [(13, 17, True), (8, 9, True), (29, 29, False)]:
            # 6a + 10b in [lo, hi] with small a, b: gcd 2 lattice.
            s = System(
                box("a", -3, 3)
                + box("b", -3, 3)
                + [
                    Constraint.ge({"a": 6, "b": 10}, -lo),
                    Constraint.ge({"a": -6, "b": -10}, hi),
                ]
            )
            brute = any(
                lo <= 6 * a + 10 * b <= hi
                for a in range(-3, 4)
                for b in range(-3, 4)
            )
            assert brute == expected
            assert integer_feasible(s) == expected


@settings(max_examples=80, deadline=None)
@given(
    st.lists(
        st.builds(
            lambda cx, cy, const: Constraint.eq({"x": cx, "y": cy}, const),
            st.integers(-4, 4),
            st.integers(-4, 4),
            st.integers(-8, 8),
        ),
        min_size=1,
        max_size=3,
    )
)
def test_equality_elimination_preserves_feasibility(eqs):
    bounds = box("x", -6, 6) + box("y", -6, 6)
    s = System(bounds + eqs)
    brute = any(
        s.evaluate({"x": x, "y": y}) for x in range(-6, 7) for y in range(-6, 7)
    )
    assert integer_feasible(s) == brute
