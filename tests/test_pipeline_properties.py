"""Whole-pipeline property tests on randomly generated programs.

Hypothesis builds small random loop nests with affine subscripts; for
each we check the full chain against brute force:

* dependence analysis instantiates to exactly the brute-force pairs;
* the Theorem-1 legality verdict matches a direct order check of the
  shackled instance stream;
* for legal shackles, naive / simplified / split code generation all
  execute the enumerator's exact instance order;
* executing the generated code produces the same array contents as the
  original program.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.backends import compile_program
from repro.core import (
    DataBlocking,
    DataShackle,
    check_legality,
    instance_schedule,
    naive_code,
    simplified_code,
    split_code,
)
from repro.dependence import brute_force_dependences, compute_dependences
from repro.dependence.oracle import enumerate_instances, instantiate_dependences
from repro.ir import Affine, ProgramBuilder
from repro.memsim import Arena

# -- random program generation -------------------------------------------------

N_VALUE = 6  # concrete size used for brute-force comparisons


@st.composite
def random_program(draw):
    """A 2-deep loop nest over one 2-D array with 1-3 affine statements."""
    pb = ProgramBuilder("rand", params=["N"])
    pb.array("A", "N+2", "N+2")  # padding so off-by-one subscripts stay legal
    pb.assume_ge("N", 1)
    n_statements = draw(st.integers(1, 3))

    def subscript(vars_in_scope):
        v = draw(st.sampled_from(vars_in_scope))
        offset = draw(st.integers(0, 2))
        return Affine.var(v) + offset

    with pb.loop("I", 1, "N"):
        with pb.loop("J", 1, "N"):
            for k in range(n_statements):
                lhs = pb.ref("A", subscript(["I", "J"]), subscript(["I", "J"]))
                read = pb.ref("A", subscript(["I", "J"]), subscript(["I", "J"]))
                pb.assign(f"S{k}", lhs, read + pb.const(k + 1))
    return pb.build()


def shackled_order_bruteforce(program, shackle, env):
    """Order instances by (traversal block of the chosen ref, program order)."""
    instances = enumerate_instances(program, env)

    def key(ctx, ivec):
        scope = dict(zip(ctx.loop_vars, ivec))
        point = [int(a.evaluate(scope)) for a in shackle.subscripts(ctx.label)]
        return (shackle.blocking.traversal_of(point), ctx.schedule_key(ivec))

    return sorted(instances, key=lambda t: key(*t))


common = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


@common
@given(random_program())
def test_dependences_match_bruteforce(program):
    deps = compute_dependences(program)
    got = instantiate_dependences(deps, {"N": N_VALUE})
    want = brute_force_dependences(program, {"N": N_VALUE})
    assert got == want


@common
@given(random_program(), st.integers(2, 4), st.sampled_from([(1, 1), (1, -1), (-1, 1)]))
def test_legality_matches_bruteforce(program, block, directions):
    blocking = DataBlocking.grid("A", 2, block, directions=list(directions))
    shackle = DataShackle(
        program, blocking, {s.label: s.lhs for s in program.statements()}
    )
    verdict = check_legality(shackle, first_violation_only=True).legal

    env = {"N": N_VALUE}
    position = {}
    for rank, (ctx, ivec) in enumerate(shackled_order_bruteforce(program, shackle, env)):
        position[(ctx.label, ivec)] = rank
    brute = all(
        position[(sl, si)] < position[(tl, ti)]
        for _, sl, si, tl, ti in brute_force_dependences(program, env)
    )
    # Exact check is over ALL N; brute force is at one N. Legal (exact)
    # must imply legal (brute); an exact violation might need a larger N
    # than brute checks, so only assert the sound direction plus agreement
    # when brute finds a violation.
    if verdict:
        assert brute
    if not brute:
        assert not verdict


@common
@given(random_program(), st.integers(2, 4))
def test_codegen_order_and_results(program, block):
    blocking = DataBlocking.grid("A", 2, block)
    shackle = DataShackle(
        program, blocking, {s.label: s.lhs for s in program.statements()}
    )
    if not check_legality(shackle, first_violation_only=True).legal:
        return
    env = {"N": N_VALUE}
    enumerated = [(ctx.label, ivec) for _, ctx, ivec in instance_schedule(shackle, env)]

    arena = Arena(program, env)
    rng = np.random.default_rng(0)
    initial = arena.allocate()
    initial[:] = rng.random(arena.total_size)
    want = initial.copy()
    compile_program(program, arena).run(want)

    for codegen in (naive_code, simplified_code, split_code):
        generated = codegen(shackle)
        # Execution order must equal the enumerator's (by lhs elements,
        # robust to loop collapsing).
        trace = _element_trace(generated, env)
        expected = [
            _element_of(ctx, ivec) for _, ctx, ivec in instance_schedule(shackle, env)
        ]
        assert trace == expected, codegen.__name__
        # And the numerics must match the original program.
        buf = initial.copy()
        compile_program(generated, arena).run(buf)
        assert np.array_equal(buf, want), codegen.__name__
    assert len(enumerated) == len(expected)


def _element_of(ctx, ivec):
    scope = dict(zip(ctx.loop_vars, ivec))
    stmt = ctx.statement
    return (stmt.label, tuple(int(i.evaluate(scope)) for i in stmt.lhs.indices))


def _element_trace(program, env):
    from repro.ir.nodes import Guard, Loop

    trace = []

    def run(nodes, scope):
        for node in nodes:
            if isinstance(node, Loop):
                lo = max(b.evaluate_lower(scope) for b in node.lowers)
                hi = min(b.evaluate_upper(scope) for b in node.uppers)
                for value in range(lo, hi + 1):
                    run(node.body, {**scope, node.var: value})
            elif isinstance(node, Guard):
                if all(c.evaluate(scope) for c in node.conditions):
                    run(node.body, scope)
            else:
                trace.append(
                    (node.label, tuple(int(i.evaluate(scope)) for i in node.lhs.indices))
                )

    run(program.body, dict(env))
    return trace
