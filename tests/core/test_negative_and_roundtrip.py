"""Negative tests (illegal shackles really do break programs) and
round-trips of generated code through the parser."""

import numpy as np
import pytest

from repro.backends import compile_program
from repro.core import DataBlocking, DataShackle, check_legality, simplified_code
from repro.core.shackle import _parse_ref
from repro.ir import parse_program, to_source
from repro.kernels import cholesky, relaxation
from repro.memsim import Arena


def test_illegal_shackle_produces_wrong_results(cholesky_program):
    """Theorem 1 is load-bearing: generating code for an *illegal*
    shackle executes instances in a dependence-violating order and the
    numerics come out wrong."""
    bad = DataShackle(
        cholesky_program,
        DataBlocking.grid("A", 2, 3),
        {"S1": _parse_ref("A[J,J]"), "S2": _parse_ref("A[J,J]"), "S3": _parse_ref("A[L,K]")},
    )
    assert not check_legality(bad, first_violation_only=True).legal
    program = simplified_code(bad)  # codegen itself never refuses
    arena = Arena(cholesky_program, {"N": 9})
    buf = arena.allocate()
    cholesky.init(arena, buf, np.random.default_rng(0))
    initial = buf.copy()
    compile_program(program, arena).run(buf)
    assert not cholesky.check(arena, initial, buf)


def test_illegal_relaxation_shackle_wrong_results():
    prog = relaxation.program("1d-time")
    shackle = relaxation.lhs_shackle_1d(prog, 4)
    assert not check_legality(shackle, first_violation_only=True).legal
    program = simplified_code(shackle)
    arena = Arena(prog, {"N": 12, "T": 3})
    buf = arena.allocate()
    relaxation.init_1d(arena, buf, np.random.default_rng(1))
    initial = buf.copy()
    compile_program(program, arena).run(buf)
    assert not relaxation.check_1d(arena, initial, buf)


@pytest.mark.parametrize(
    "figure",
    [
        "fig3_tiled_matmul",
        "fig5_naive_shackled_matmul",
        "fig6_simplified_shackled_matmul",
        "fig7_shackled_cholesky",
        "fig10_two_level_matmul",
        "fig14_adi_transformed",
    ],
)
def test_generated_code_reparses(figure):
    """Every generated code figure round-trips through the front end."""
    from repro.experiments.figures import code_figures

    text = code_figures()[figure]
    program = parse_program(text, validate=False)
    assert to_source(program, header=False) == text


def test_split_code_reparses(cholesky_program):
    from repro.core import split_code
    from repro.core.shackle import _parse_ref

    shackle = DataShackle(
        cholesky_program,
        DataBlocking.grid("A", 2, 64, dims=[1, 0]),
        {"S1": _parse_ref("A[J,J]"), "S2": _parse_ref("A[I,J]"), "S3": _parse_ref("A[L,K]")},
    )
    text = to_source(split_code(shackle), header=False)
    reparsed = parse_program(text, validate=False)
    assert to_source(reparsed, header=False) == text
