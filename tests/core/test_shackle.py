"""Tests for shackle construction, reference choice and dummies."""

import pytest

from repro.core import DataBlocking, DataShackle, ShackleProduct, multi_level, shackle_refs
from repro.core.shackle import _parse_ref
from repro.ir import Affine, parse_program


def test_shackle_refs_lhs(matmul_program):
    sh = shackle_refs(matmul_program, DataBlocking.grid("C", 2, 25), "lhs")
    assert sh.subscripts("S1") == _parse_ref("C[I,J]").indices


def test_shackle_explicit_choice(matmul_program):
    sh = shackle_refs(
        matmul_program, DataBlocking.grid("A", 2, 25), {"S1": "A[I,K]"}
    )
    assert sh.subscripts("S1") == _parse_ref("A[I,K]").indices


def test_shackle_rejects_wrong_array(matmul_program):
    with pytest.raises(ValueError, match="not to the blocked array"):
        shackle_refs(matmul_program, DataBlocking.grid("A", 2, 25), {"S1": "C[I,J]"})


def test_shackle_rejects_absent_reference(matmul_program):
    with pytest.raises(ValueError, match="does not occur"):
        shackle_refs(matmul_program, DataBlocking.grid("A", 2, 25), {"S1": "A[K,I]"})


def test_shackle_requires_every_statement(cholesky_program):
    with pytest.raises(ValueError, match="neither a chosen reference nor a dummy"):
        DataShackle(
            cholesky_program,
            DataBlocking.grid("A", 2, 25),
            {"S1": _parse_ref("A[J,J]")},
        )


def test_dummy_references():
    # A statement not touching the blocked array gets a dummy (paper's
    # ``+ 0*B[I,J]`` device).
    p = parse_program(
        """
program two(N)
array A[N]
array B[N]
do I = 1, N
  S1: A[I] = 1
  S2: B[I] = 2
"""
    )
    blocking = DataBlocking.grid("A", 1, 4)
    sh = DataShackle(
        p,
        blocking,
        {"S1": _parse_ref("A[I]")},
        dummies={"S2": [Affine.var("I")]},
    )
    assert sh.subscripts("S2") == (Affine.var("I"),)


def test_dummy_arity_checked():
    p = parse_program(
        """
program two(N)
array A[N,N]
array B[N]
do I = 1, N
  S1: A[I,I] = 1
  S2: B[I] = 2
"""
    )
    with pytest.raises(ValueError, match="arity"):
        DataShackle(
            p,
            DataBlocking.grid("A", 2, 4),
            {"S1": _parse_ref("A[I,I]")},
            dummies={"S2": [Affine.var("I")]},
        )


def test_product_flattens(matmul_program):
    c = shackle_refs(matmul_program, DataBlocking.grid("C", 2, 25), "lhs")
    a = shackle_refs(matmul_program, DataBlocking.grid("A", 2, 25), {"S1": "A[I,K]"})
    prod = ShackleProduct(c, a)
    assert len(prod.factors()) == 2
    assert prod.num_block_dims == 4
    nested = ShackleProduct(prod, c)
    assert len(nested.factors()) == 3


def test_product_requires_same_program(matmul_program, cholesky_program):
    c = shackle_refs(matmul_program, DataBlocking.grid("C", 2, 25), "lhs")
    ch = shackle_refs(cholesky_program, DataBlocking.grid("A", 2, 25), "lhs")
    with pytest.raises(ValueError, match="same program"):
        ShackleProduct(c, ch)


def test_multi_level_flattening(matmul_program):
    def level(size):
        return [
            shackle_refs(matmul_program, DataBlocking.grid("C", 2, size), "lhs"),
            shackle_refs(matmul_program, DataBlocking.grid("A", 2, size), {"S1": "A[I,K]"}),
        ]

    ml = multi_level(level(64), level(8))
    assert len(ml.factors()) == 4
    assert ml.num_block_dims == 8
