"""Edge cases: degenerate blockings, tiny arrays, printer corners."""

import numpy as np

from repro.backends import compile_program
from repro.core import DataBlocking, check_legality, shackle_refs, simplified_code
from repro.ir import to_source
from repro.ir.printer import constraint_to_source
from repro.kernels import cholesky, matmul
from repro.memsim import Arena
from repro.polyhedra import Constraint


def test_block_larger_than_array(matmul_program):
    """A block bigger than the whole array: one block, original order."""
    sh = shackle_refs(matmul_program, DataBlocking.grid("C", 2, 1000), "lhs")
    assert check_legality(sh, first_violation_only=True).legal
    program = simplified_code(sh)
    arena = Arena(matmul_program, {"N": 6})
    buf = arena.allocate()
    matmul.init(arena, buf, np.random.default_rng(0))
    initial = buf.copy()
    compile_program(program, arena).run(buf)
    assert matmul.check(arena, initial, buf)


def test_block_size_one(cholesky_program):
    """1x1 blocks: element-by-element traversal, still legal and correct."""
    sh = shackle_refs(cholesky_program, DataBlocking.grid("A", 2, 1), "lhs")
    assert check_legality(sh, first_violation_only=True).legal
    program = simplified_code(sh)
    arena = Arena(cholesky_program, {"N": 6})
    buf = arena.allocate()
    cholesky.init(arena, buf, np.random.default_rng(1))
    initial = buf.copy()
    compile_program(program, arena).run(buf)
    assert cholesky.check(arena, initial, buf)


def test_n_equals_one(cholesky_program):
    sh = cholesky.fully_blocked(cholesky_program, 4)
    program = simplified_code(sh)
    arena = Arena(cholesky_program, {"N": 1})
    buf = arena.allocate()
    cholesky.init(arena, buf, np.random.default_rng(2))
    initial = buf.copy()
    compile_program(program, arena).run(buf)
    assert cholesky.check(arena, initial, buf)


def test_constraint_printing_corners():
    assert constraint_to_source(Constraint.ge({}, 0)) == "0 >= 0"
    assert constraint_to_source(Constraint.ge({"x": 1}, 0)) == "x >= 0"
    # Normalization divides out the gcd and floors: -2x + 5 >= 0 -> x <= 2.
    assert constraint_to_source(Constraint.ge({"x": -2}, 5)) == "2 >= x"
    assert constraint_to_source(Constraint.eq({"x": 1, "y": -1}, 0)) == "x == y"
    assert constraint_to_source(Constraint.ge({"x": 1, "y": -3}, -4)) == "x >= 3*y + 4"


def test_to_source_includes_assumptions(matmul_program):
    text = to_source(matmul_program)
    assert "assume N >= 1" in text
    assert text.startswith("program mm(N)")


def test_rectangular_array_blocking():
    from repro.ir import parse_program

    p = parse_program(
        """
program rect(N, M)
array A[N,M]
assume N >= 1
assume M >= 1
do I = 1, N
  do J = 1, M
    S1: A[I,J] = A[I,J] + 1
"""
    )
    sh = shackle_refs(p, DataBlocking.grid("A", 2, 3), "lhs")
    assert check_legality(sh, first_violation_only=True).legal
    program = simplified_code(sh)
    arena = Arena(p, {"N": 5, "M": 8})
    buf = arena.allocate()
    compile_program(program, arena).run(buf)
    assert np.all(buf == 1.0)
