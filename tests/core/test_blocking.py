"""Tests for cutting planes and data blockings."""

import pytest

from repro.core import CuttingPlanes, DataBlocking
from repro.ir import Affine
from repro.linalg import FracMatrix
from repro.polyhedra import System


def test_cutting_planes_block_of_paper_convention():
    # spacing 25: block b covers 25b-24 .. 25b (paper Section 5.1).
    plane = CuttingPlanes([1, 0], 25)
    assert plane.block_of((1, 99)) == 1
    assert plane.block_of((25, 1)) == 1
    assert plane.block_of((26, 1)) == 2
    assert plane.block_of((50, 7)) == 2
    assert plane.block_of((51, 7)) == 3


def test_cutting_planes_validation():
    with pytest.raises(ValueError):
        CuttingPlanes([0, 0], 25)
    with pytest.raises(ValueError):
        CuttingPlanes([1, 0], 0)


def test_diagonal_cutting_planes():
    plane = CuttingPlanes([1, -1], 10)
    # Element (i, j) is assigned by the value i - j.
    assert plane.block_of((5, 5)) == 0
    assert plane.block_of((15, 5)) == 1
    assert plane.block_of((5, 15)) == -1


def test_grid_blocking_coords():
    blocking = DataBlocking.grid("A", 2, 25)
    assert blocking.num_dims == 2
    assert blocking.block_of((26, 30)) == (2, 2)
    assert blocking.block_of((1, 1)) == (1, 1)


def test_grid_partial_dims():
    # Column-only blocking (the paper's QR shackle).
    blocking = DataBlocking.grid("A", 2, 8, dims=[1])
    assert blocking.num_dims == 1
    assert blocking.block_of((500, 9)) == (2,)


def test_directions_traversal():
    blocking = DataBlocking.grid("A", 2, 10, directions=[-1, 1])
    assert blocking.block_of((11, 11)) == (2, 2)
    assert blocking.traversal_of((11, 11)) == (-2, 2)


def test_cutting_planes_matrix():
    blocking = DataBlocking.grid("A", 2, 25)
    # Paper Figure 4: the identity cutting-planes matrix.
    assert blocking.cutting_planes_matrix() == FracMatrix([[1, 0], [0, 1]])


def test_membership_constraints_match_block_of():
    blocking = DataBlocking.grid("A", 2, 7)
    indices = (Affine.var("i"), Affine.var("j"))
    constraints = System(blocking.membership_constraints(indices, ["w1", "w2"]))
    for i in range(1, 20):
        for j in range(1, 20):
            z1, z2 = blocking.block_of((i, j))
            assert constraints.evaluate({"i": i, "j": j, "w1": z1, "w2": z2})
            assert not constraints.evaluate({"i": i, "j": j, "w1": z1 + 1, "w2": z2})


def test_membership_constraints_reversed_direction():
    blocking = DataBlocking.grid("A", 1, 5, directions=[-1])
    constraints = System(blocking.membership_constraints((Affine.var("i"),), ["w"]))
    for i in range(1, 26):
        (w,) = blocking.traversal_of((i,))
        assert w == -blocking.block_of((i,))[0]
        assert constraints.evaluate({"i": i, "w": w})
        assert not constraints.evaluate({"i": i, "w": w + 1})


def test_rank_mismatch_rejected():
    planes = [CuttingPlanes([1, 0], 5), CuttingPlanes([1], 5)]
    with pytest.raises(ValueError):
        DataBlocking("A", planes)


def test_bad_directions_rejected():
    with pytest.raises(ValueError):
        DataBlocking.grid("A", 2, 5, directions=[1, 2])
