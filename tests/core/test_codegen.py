"""Code generation tests: golden comparisons with the paper's figures and
execution-order equivalence between naive and simplified forms."""

import pytest

from repro.core import (
    DataBlocking,
    DataShackle,
    ShackleProduct,
    naive_code,
    shackle_refs,
    simplified_code,
)
from repro.core.shackle import _parse_ref
from repro.ir import parse_program, to_source
from repro.ir.nodes import Guard, Loop, Statement

FIGURE6 = """do t1 = 1, (N+24)/25
  do t2 = 1, (N+24)/25
    do I = 25*t1-24, min(N, 25*t1)
      do J = 25*t2-24, min(N, 25*t2)
        do K = 1, N
          S1: C[I,J] = (C[I,J] + (A[I,K] * B[K,J]))
"""


def test_figure6_matmul_golden(matmul_program):
    """The simplified C-shackled matmul is the paper's Figure 6."""
    sh = shackle_refs(matmul_program, DataBlocking.grid("C", 2, 25), "lhs")
    assert to_source(simplified_code(sh), header=False) == FIGURE6


def test_figure3_product_blocks_all_three_loops(matmul_program):
    """The C x A product must constrain I, J and K (paper Figure 3)."""
    c = shackle_refs(matmul_program, DataBlocking.grid("C", 2, 25), "lhs")
    a = shackle_refs(matmul_program, DataBlocking.grid("A", 2, 25), {"S1": "A[I,K]"})
    text = to_source(simplified_code(ShackleProduct(c, a)), header=False)
    # K must now be bounded by a block: no "do K = 1, N" line remains.
    assert "do K = 1, N" not in text
    assert "do K = 25*" in text


def test_figure10_multilevel_shape(matmul_program):
    """Two-level blocking: 64-blocks subdivided into 8-blocks (Figure 10)."""

    def c(s):
        return shackle_refs(matmul_program, DataBlocking.grid("C", 2, s), "lhs")

    def a(s):
        return shackle_refs(matmul_program, DataBlocking.grid("A", 2, s), {"S1": "A[I,K]"})

    prod = ShackleProduct(c(64), a(64), c(8), a(8))
    program = simplified_code(prod)
    text = to_source(program, header=False)
    # Nine loops: three 64-level block loops, three 8-level, three point.
    assert text.count("do ") == 9
    assert "(N+63)/64" in text
    assert "(N+7)/8" in text
    # The 8-level loops are nested inside the 64-level ones and bounded by
    # them: the paper's "64x64 multiplication broken into 8x8 ones".
    assert "8*t1-7" in text


def test_naive_code_structure(matmul_program):
    sh = shackle_refs(matmul_program, DataBlocking.grid("C", 2, 25), "lhs")
    program = naive_code(sh)
    # Two block loops wrapping the original three, with a guarded statement
    # (paper Figure 5).
    outer = program.body[0]
    assert isinstance(outer, Loop)
    depth = 0
    node = program.body
    guards = 0
    while node:
        first = node[0]
        if isinstance(first, Loop):
            depth += 1
            node = first.body
        elif isinstance(first, Guard):
            guards += 1
            node = first.body
        else:
            break
    assert depth == 5 and guards == 1


def execution_trace(program, env, vars_per_label=None):
    """Interpret an AST directly, recording (label, ivec) in order.

    ``vars_per_label`` maps labels to the loop-variable names to record
    (defaults to each statement's loops in ``program``; pass the original
    program's contexts to compare against the instance enumerator).
    """
    from repro.ir.analysis import statement_contexts

    contexts = {c.label: c for c in statement_contexts(program)}
    if vars_per_label is None:
        vars_per_label = {label: ctx.loop_vars for label, ctx in contexts.items()}
    trace = []

    def run(nodes, scope):
        for node in nodes:
            if isinstance(node, Loop):
                lo = max(b.evaluate_lower(scope) for b in node.lowers)
                hi = min(b.evaluate_upper(scope) for b in node.uppers)
                for value in range(lo, hi + 1):
                    run(node.body, {**scope, node.var: value})
            elif isinstance(node, Guard):
                if all(c.evaluate(scope) for c in node.conditions):
                    run(node.body, scope)
            else:
                names = vars_per_label[node.label]
                trace.append((node.label, tuple(scope[v] for v in names)))

    run(program.body, dict(env))
    return trace


@pytest.mark.parametrize("block", [2, 3, 5])
def test_naive_equals_simplified_order_matmul(matmul_program, block):
    sh = shackle_refs(matmul_program, DataBlocking.grid("C", 2, block), "lhs")
    env = {"N": 6}
    naive = execution_trace(naive_code(sh), env)
    simplified = execution_trace(simplified_code(sh), env)
    assert naive == simplified
    assert len(naive) == 6 ** 3


@pytest.mark.parametrize("block", [2, 3])
def test_naive_equals_simplified_order_cholesky(cholesky_program, block):
    sh = shackle_refs(cholesky_program, DataBlocking.grid("A", 2, block), "lhs")
    env = {"N": 7}
    naive = execution_trace(naive_code(sh), env)
    simplified = execution_trace(simplified_code(sh), env)
    assert naive == simplified


def test_codegen_matches_instance_schedule(cholesky_program):
    """Generated code executes instances in exactly the enumerator's order.

    This is the faithful-reproduction criterion for the paper's Figure 7:
    we do not match its textual four-way split (Omega's index-set
    splitting), but the instance execution order is identical.
    """
    from repro.core import instance_schedule

    sh = shackle_refs(cholesky_program, DataBlocking.grid("A", 2, 3), "lhs")
    env = {"N": 8}
    from repro.ir.analysis import statement_contexts

    original_vars = {c.label: c.loop_vars for c in statement_contexts(cholesky_program)}
    generated = execution_trace(simplified_code(sh), env, original_vars)
    enumerated = [(ctx.label, ivec) for _, ctx, ivec in instance_schedule(sh, env)]
    assert generated == enumerated


def test_cholesky_product_codegen_order(cholesky_program):
    writes = DataShackle(
        cholesky_program,
        DataBlocking.grid("A", 2, 3),
        {"S1": _parse_ref("A[J,J]"), "S2": _parse_ref("A[I,J]"), "S3": _parse_ref("A[L,K]")},
    )
    reads = DataShackle(
        cholesky_program,
        DataBlocking.grid("A", 2, 3),
        {"S1": _parse_ref("A[J,J]"), "S2": _parse_ref("A[J,J]"), "S3": _parse_ref("A[K,J]")},
    )
    from repro.core import instance_schedule

    prod = ShackleProduct(writes, reads)
    env = {"N": 6}
    from repro.ir.analysis import statement_contexts

    original_vars = {c.label: c.loop_vars for c in statement_contexts(cholesky_program)}
    generated = execution_trace(simplified_code(prod), env, original_vars)
    enumerated = [(ctx.label, ivec) for _, ctx, ivec in instance_schedule(prod, env)]
    assert generated == enumerated


def test_adi_figure14(capsys):
    """The 1x1 shackle on B achieves fusion + interchange (Figure 14)."""
    adi = parse_program(
        """
program adi(n)
array X[n,n]
array A[n,n]
array B[n,n]
assume n >= 2
do i = 2, n
  do k1 = 1, n
    S1: X[i,k1] = X[i,k1] - X[i-1,k1]*A[i,k1]/B[i-1,k1]
  do k2 = 1, n
    S2: B[i,k2] = B[i,k2] - A[i,k2]*A[i,k2]/B[i-1,k2]
"""
    )
    sh = DataShackle(
        adi,
        DataBlocking.grid("B", 2, 1, dims=[1, 0]),
        {"S1": _parse_ref("B[i-1,k1]"), "S2": _parse_ref("B[i-1,k2]")},
    )
    program = simplified_code(sh)
    text = to_source(program, header=False)
    # The k loops must be gone (collapsed into the block coordinate): the
    # two statements are fused inside the same innermost loop body.
    assert "do k1" not in text and "do k2" not in text
    trace = execution_trace(program, {"n": 4})
    # Fused order: for each column t1, S1 and S2 alternate per row.
    labels = [t[0] for t in trace[:6]]
    assert labels == ["S1", "S2", "S1", "S2", "S1", "S2"]
    assert len(trace) == 2 * 3 * 4  # (n-1) rows * n cols * 2 statements
