"""Tests of block-by-block instance enumeration (the execution engine)."""

import pytest

from repro.core import (
    DataBlocking,
    ShackleProduct,
    enumerate_block_instances,
    instance_schedule,
    shackle_refs,
)
from repro.core.instances import BlockSchedule
from repro.core.shackle import _parse_ref
from repro.dependence import brute_force_dependences
from repro.dependence.oracle import enumerate_instances

from .conftest import shackled_execution_order


def test_matmul_schedule_is_permutation(matmul_program):
    sh = shackle_refs(matmul_program, DataBlocking.grid("C", 2, 3), "lhs")
    sched = instance_schedule(sh, {"N": 7})
    original = enumerate_instances(matmul_program, {"N": 7})
    assert len(sched) == len(original) == 7 ** 3
    assert sorted((ctx.label, ivec) for _, ctx, ivec in sched) == sorted(
        (ctx.label, ivec) for ctx, ivec in original
    )


def test_matmul_blocks_visited_lexicographically(matmul_program):
    sh = shackle_refs(matmul_program, DataBlocking.grid("C", 2, 3), "lhs")
    blocks = [block for block, _ in enumerate_block_instances(sh, {"N": 7})]
    assert blocks == sorted(blocks)
    assert blocks == [(i, j) for i in range(1, 4) for j in range(1, 4)]


def test_matmul_block_contents(matmul_program):
    """Each block must contain exactly the instances writing into it."""
    sh = shackle_refs(matmul_program, DataBlocking.grid("C", 2, 3), "lhs")
    for block, instances in enumerate_block_instances(sh, {"N": 7}):
        for ctx, ivec in instances:
            env = dict(zip(ctx.loop_vars, ivec))
            i, j = (int(a.evaluate(env)) for a in ctx.statement.lhs.indices)
            assert sh.blocking.block_of((i, j)) == block


def test_schedule_matches_bruteforce_order(cholesky_program):
    sh = shackle_refs(cholesky_program, DataBlocking.grid("A", 2, 3), "lhs")
    sched = [(ctx.label, ivec) for _, ctx, ivec in instance_schedule(sh, {"N": 8})]
    brute = [
        (ctx.label, ivec)
        for ctx, ivec in shackled_execution_order(sh, sh.blocking, cholesky_program, {"N": 8})
    ]
    assert sched == brute


def test_schedule_respects_dependences(cholesky_program):
    sh = shackle_refs(cholesky_program, DataBlocking.grid("A", 2, 3), "lhs")
    position = {
        (ctx.label, ivec): k
        for k, (_, ctx, ivec) in enumerate(instance_schedule(sh, {"N": 7}))
    }
    for _, sl, si, tl, ti in brute_force_dependences(cholesky_program, {"N": 7}):
        assert position[(sl, si)] < position[(tl, ti)]


def test_product_schedule_refines_first_factor(matmul_program):
    """Section 6: the second factor must never reorder across first-factor
    partitions — instances ordered by factor-1 blocks stay ordered."""
    c = shackle_refs(matmul_program, DataBlocking.grid("C", 2, 4), "lhs")
    a = shackle_refs(matmul_program, DataBlocking.grid("A", 2, 4), {"S1": "A[I,K]"})
    prod = ShackleProduct(c, a)
    env = {"N": 8}
    product_order = instance_schedule(prod, env)
    c_block_sequence = []
    for _, ctx, ivec in product_order:
        point_env = dict(zip(ctx.loop_vars, ivec))
        point = [int(x.evaluate(point_env)) for x in c.subscripts(ctx.label)]
        c_block_sequence.append(c.blocking.traversal_of(point))
    assert c_block_sequence == sorted(c_block_sequence)


def test_reversed_direction_traversal(trisolve_program):
    choice = {"S1": _parse_ref("x[I]"), "S2": _parse_ref("x[I]")}
    down = shackle_refs(
        trisolve_program, DataBlocking.grid("x", 1, 2, directions=[-1]), choice
    )
    blocks = [b for b, _ in enumerate_block_instances(down, {"N": 6})]
    assert blocks == [(-3,), (-2,), (-1,)]
    # Traversal coordinate -3 is data block 3 (elements 5,6) touched first.
    first_block_rows = {
        ivec[0] if ctx.label == "S1" else None
        for ctx, ivec in dict(enumerate_block_instances(down, {"N": 6}))[(-3,)]
    }
    assert first_block_rows - {None} == {5, 6}


def test_block_schedule_reuse(matmul_program):
    sh = shackle_refs(matmul_program, DataBlocking.grid("C", 2, 3), "lhs")
    schedule = BlockSchedule(sh)
    a = instance_schedule(sh, {"N": 5}, schedule)
    b = instance_schedule(sh, {"N": 6}, schedule)
    assert len(a) == 125 and len(b) == 216
