"""Section 6.1's closing claim: the two orders of the Cartesian product
of the writes and reads shackles give fully-blocked *left-looking* and
*right-looking* Cholesky.

Distinguishing observable: take an update flowing from block column 1
into a far block column 3 (instance u), and the first factorization of
block column 2 (instance f).

* right-looking (eager updates): every update out of block 1 runs while
  block 1 is current, so u executes before f;
* left-looking (lazy updates): u waits until block 3 is visited, so u
  executes after f.
"""

import numpy as np

from repro.backends import compile_program
from repro.core import DataBlocking, DataShackle, ShackleProduct, instance_schedule, simplified_code
from repro.core.shackle import _parse_ref
from repro.kernels import cholesky
from repro.memsim import Arena


def make_factors(prog, size=3):
    blocking = DataBlocking.grid("A", 2, size, dims=[1, 0])
    writes = DataShackle(
        prog,
        blocking,
        {"S1": _parse_ref("A[J,J]"), "S2": _parse_ref("A[I,J]"), "S3": _parse_ref("A[L,K]")},
        name="writes",
    )
    reads = DataShackle(
        prog,
        blocking,
        {"S1": _parse_ref("A[J,J]"), "S2": _parse_ref("A[J,J]"), "S3": _parse_ref("A[K,J]")},
        name="reads",
    )
    return writes, reads


def looking_direction(product, env):
    """'right' if updates are eager, 'left' if lazy (see module doc)."""
    order = [(ctx.label, ivec) for _, ctx, ivec in instance_schedule(product, env)]
    position = {key: i for i, key in enumerate(order)}
    update_far = ("S3", (1, 7, 7))  # J=1 updates A[7,7]: block col 1 -> block col 3
    factor_mid = ("S1", (4,))  # first factorization of block column 2
    return "right" if position[update_far] < position[factor_mid] else "left"


def test_product_orders_give_left_and_right_looking(cholesky_program):
    writes, reads = make_factors(cholesky_program)
    env = {"N": 9}
    directions = {
        "writes x reads": looking_direction(ShackleProduct(writes, reads), env),
        "reads x writes": looking_direction(ShackleProduct(reads, writes), env),
    }
    # The paper: one order gives left-looking, the other right-looking.
    assert set(directions.values()) == {"left", "right"}, directions


def test_both_orders_compute_cholesky(cholesky_program):
    writes, reads = make_factors(cholesky_program)
    for product in (ShackleProduct(writes, reads), ShackleProduct(reads, writes)):
        program = simplified_code(product)
        arena = Arena(cholesky_program, {"N": 9})
        buf = arena.allocate()
        cholesky.init(arena, buf, np.random.default_rng(0))
        initial = buf.copy()
        compile_program(program, arena).run(buf)
        assert cholesky.check(arena, initial, buf)


def test_single_writes_shackle_is_right_looking_partial(cholesky_program):
    """The single writes shackle already behaves eagerly within its
    traversal (updates performed when the written block is touched)."""
    writes, _ = make_factors(cholesky_program)
    assert looking_direction(writes, {"N": 9}) in ("left", "right")
