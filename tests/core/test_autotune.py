"""Autotuner tests: report shape, zero scoring captures, exact pruning.

:func:`repro.core.autotune.tune` is the parametric tier's payoff — the
properties pinned here are the ones the benchmark and CI smoke lean on:
non-anchor sizes are priced without a single trace capture, the two
prunes (counter-class collapse, saturation dominance) change nothing
but time, and the ranked output is deterministic across store warmth.
"""

import pytest

from repro.core.autotune import _counter_class, geometry_grid, tune
from repro.engine.metrics import METRICS
from repro.kernels import matmul
from repro.memsim.trace import TraceStore

SIZES = [{"N": n} for n in range(8, 16)]
ANCHORS = [{"N": n} for n in (8, 10, 12, 15)]
MACHINES = geometry_grid(
    lines=(4,), set_counts=(1, 16), assocs=(1, 4), l1_latencies=(1, 2)
)


def _tune(store, **kwargs):
    args = dict(
        sizes=SIZES, machines=MACHINES, anchors=ANCHORS, blocks=(4,),
        init=matmul.init, candidates_per_block=1, top=5, trace_store=store,
        check_captures=True,
    )
    args.update(kwargs)
    return tune(matmul.program(), "C", **args)


def test_geometry_grid_shapes_and_set_counts():
    machines = geometry_grid(lines=(4, 8), set_counts=(1, 8), assocs=(2,))
    assert len(machines) == 4
    for machine in machines:
        level = machine.hierarchy().levels[0]
        sets = int(machine.name.split("s")[1].split("a")[0])
        assert level.num_sets == sets  # size = line * sets * assoc holds
    assert len({m.name for m in machines}) == len(machines)


def test_report_shape_and_zero_scoring_captures():
    report = _tune(TraceStore())
    assert report["candidates"][0] == "orig" and len(report["candidates"]) == 2
    assert report["points"] == 2 * len(SIZES) * len(MACHINES)
    assert report["machines"] == len(MACHINES)
    assert report["geometry_classes"] == len({_counter_class(m) for m in MACHINES})
    assert report["sizes_outside_anchor_hull"] == 0
    assert report["captures"]["scoring"] == 0
    assert report["captures"]["anchor"] == 2 * len(ANCHORS)
    assert report["captures"]["avoided"] == 2 * len(SIZES) - 2 * len(ANCHORS)
    # Latency variants collapse onto shared counter classes: half the
    # machines differ only in L1 latency.
    per_point_classes = report["geometry_classes"]
    assert report["pruned"]["latency_variants"] == (
        2 * len(SIZES) * (len(MACHINES) - per_point_classes)
    )
    assert len(report["top"]) == 5
    assert [row["rank"] for row in report["top"]] == list(range(5))
    cycles = [row["cycles"] for row in report["top"]]
    assert cycles == sorted(cycles)
    for label, description in report["families"].items():
        assert description.startswith("family(")


def test_warm_retune_is_capture_free_and_identical():
    store = TraceStore()
    cold = _tune(store)
    captures = METRICS.get("memsim.trace_capture")
    warm = _tune(store)
    assert METRICS.get("memsim.trace_capture") == captures
    assert warm["captures"]["anchor"] == 0
    assert warm["top"] == cold["top"]
    assert warm["points"] == cold["points"]


def test_latency_variants_price_differently_from_shared_counters():
    """Counter-class collapse must not flatten cycles: the t1/t2 latency
    variants of one geometry share predicted counters but re-price, so
    their cycles differ whenever the cache sees any hit."""
    everything = 2 * len(SIZES) * len(MACHINES)
    report = _tune(TraceStore(), top=everything)
    assert len(report["top"]) == everything
    by_variant = {}
    for row in report["top"]:
        geometry = row["machine"].split("t")[0]
        key = (row["candidate"], tuple(row["env"].items()), geometry)
        by_variant.setdefault(key, {})[row["machine"]] = row
    differing = 0
    for variants in by_variant.values():
        assert len(variants) == 2  # t1 and t2 of the same geometry
        (a, b) = variants.values()
        assert a["memory_accesses"] == b["memory_accesses"]  # shared counters
        assert a["writebacks"] == b["writebacks"]
        if a["cycles"] != b["cycles"]:
            differing += 1
    assert differing > 0


def test_anchor_mismatch_and_bad_sizes_rejected():
    with pytest.raises(ValueError, match="at least one size"):
        tune(matmul.program(), "C", sizes=[], machines=MACHINES)
    with pytest.raises(ValueError, match="at least one machine"):
        tune(matmul.program(), "C", sizes=SIZES, machines=[])
    with pytest.raises(ValueError, match="does not match parameters"):
        tune(
            matmul.program(), "C",
            sizes=[{"N": 8}, {"M": 9}], machines=MACHINES,
        )


def test_out_of_hull_sizes_are_reported():
    report = _tune(TraceStore(), sizes=SIZES + [{"N": 40}])
    assert report["sizes_outside_anchor_hull"] == 1
