"""Theorem-2 tests: bounded vs unconstrained references under shackles."""

from repro.core import DataBlocking, ShackleProduct, shackle_refs
from repro.core.span import (
    fully_constrained,
    reference_statuses,
    reference_statuses_direct,
    unconstrained_references,
)


def test_matmul_single_shackle_leaves_a_and_b_unconstrained(matmul_program):
    sh = shackle_refs(matmul_program, DataBlocking.grid("C", 2, 25), "lhs")
    free = {str(s.ref) for s in unconstrained_references(sh)}
    assert free == {"A[I,K]", "B[K,J]"}
    assert not fully_constrained(sh)


def test_matmul_product_constrains_everything(matmul_program):
    """The paper: shackling C[I,J] and A[I,K] constrains B[K,J] too."""
    c = shackle_refs(matmul_program, DataBlocking.grid("C", 2, 25), "lhs")
    a = shackle_refs(matmul_program, DataBlocking.grid("A", 2, 25), {"S1": "A[I,K]"})
    prod = ShackleProduct(c, a)
    assert fully_constrained(prod)
    statuses = reference_statuses(prod)
    assert all(s.bounded for s in statuses)


def test_matmul_c_and_b_also_suffice(matmul_program):
    c = shackle_refs(matmul_program, DataBlocking.grid("C", 2, 25), "lhs")
    b = shackle_refs(matmul_program, DataBlocking.grid("B", 2, 25), {"S1": "B[K,J]"})
    assert fully_constrained(ShackleProduct(c, b))


def test_triple_product_adds_nothing(matmul_program):
    """Section 6.1: the C x A x B product produces the same constraint set."""
    c = shackle_refs(matmul_program, DataBlocking.grid("C", 2, 25), "lhs")
    a = shackle_refs(matmul_program, DataBlocking.grid("A", 2, 25), {"S1": "A[I,K]"})
    b = shackle_refs(matmul_program, DataBlocking.grid("B", 2, 25), {"S1": "B[K,J]"})
    assert fully_constrained(ShackleProduct(c, a))
    assert fully_constrained(ShackleProduct(c, a, b))


def test_solver_span_agrees_with_direct_row_space(
    matmul_program, cholesky_program, trisolve_program
):
    """The solver-backed rowspace test (r in rowspace(S) iff {Sx=0, r.x>=1}
    is infeasible) must match the exact fraction-elimination oracle on
    every shackle the paper's kernels produce."""
    shackles = [
        shackle_refs(matmul_program, DataBlocking.grid(arr, 2, 25), {"S1": ref})
        for arr, ref in [("C", "C[I,J]"), ("A", "A[I,K]"), ("B", "B[K,J]")]
    ]
    shackles.append(shackle_refs(cholesky_program, DataBlocking.grid("A", 2, 64), "lhs"))
    shackles.append(
        shackle_refs(
            trisolve_program,
            DataBlocking.grid("x", 1, 4),
            {"S1": "x[I]", "S2": "x[I]"},
        )
    )
    c = shackles[0]
    shackles.append(ShackleProduct(c, shackles[1]))
    for shackle in shackles:
        via_solver = [
            (s.label, str(s.ref), s.bounded) for s in reference_statuses(shackle)
        ]
        direct = [
            (s.label, str(s.ref), s.bounded)
            for s in reference_statuses_direct(shackle)
        ]
        assert via_solver == direct


def test_cholesky_writes_shackle_statuses(cholesky_program):
    sh = shackle_refs(cholesky_program, DataBlocking.grid("A", 2, 64), "lhs")
    free = {(s.label, str(s.ref)) for s in unconstrained_references(sh)}
    # S3's reads A[L,J] / A[K,J] involve loop J which the write A[L,K] does
    # not constrain: the "reads are distributed over the entire left
    # portion of the matrix" remark in Section 4.1.
    assert ("S3", "A[L,J]") in free
    assert ("S3", "A[K,J]") in free
    # The writes themselves are trivially bounded.
    assert ("S3", "A[L,K]") not in free
    assert ("S2", "A[I,J]") not in free
