"""Tests for the automatic shackle search (Section 8 automation sketch)."""

from repro.core import DataBlocking, search_shackles
from repro.core.search import candidate_choices
from repro.core.span import fully_constrained


def test_candidate_enumeration_cholesky(cholesky_program):
    choices = candidate_choices(cholesky_program, "A")
    # S1: A[J,J] (write == read here, deduped to 1 distinct);
    # S2: A[I,J], A[J,J]; S3: A[L,K], A[L,J], A[K,J].
    assert len(choices) == 1 * 2 * 3


def test_candidate_enumeration_requires_references(matmul_program):
    assert candidate_choices(matmul_program, "C") != []
    # Every statement must reference the array.
    from repro.ir import parse_program

    p = parse_program(
        """
program two(N)
array A[N]
array B[N]
do I = 1, N
  S1: A[I] = 1
  S2: B[I] = 2
"""
    )
    assert candidate_choices(p, "A") == []


def test_search_matmul_finds_full_product(matmul_program):
    results = search_shackles(matmul_program, DataBlocking.grid("C", 2, 25), max_product=2)
    assert results
    best = results[0]
    # The best candidate must bound every reference (Theorem 2): a product.
    assert best.unconstrained == 0
    assert fully_constrained(best.shackle)


def test_search_cholesky_legal_singles(cholesky_program):
    results = search_shackles(cholesky_program, DataBlocking.grid("A", 2, 25), max_product=1)
    # Exactly the three legal single shackles from the census.
    assert len(results) == 3
    picks = {tuple(sorted(r.choices.items())) for r in results}
    assert (("S1", "A[J,J]"), ("S2", "A[I,J]"), ("S3", "A[L,K]")) in picks


def test_search_results_are_ranked(cholesky_program):
    results = search_shackles(cholesky_program, DataBlocking.grid("A", 2, 25), max_product=2)
    costs = [r.unconstrained for r in results]
    assert costs == sorted(costs)
    assert all("unconstrained" in r.describe() for r in results[:1])
