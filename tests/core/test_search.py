"""Tests for the automatic shackle search (Section 8 automation sketch)."""

from repro.core import DataBlocking, search_shackles
from repro.core.search import candidate_choices
from repro.core.span import fully_constrained


def test_candidate_enumeration_cholesky(cholesky_program):
    choices = candidate_choices(cholesky_program, "A")
    # S1: A[J,J] (write == read here, deduped to 1 distinct);
    # S2: A[I,J], A[J,J]; S3: A[L,K], A[L,J], A[K,J].
    assert len(choices) == 1 * 2 * 3


def test_candidate_enumeration_requires_references(matmul_program):
    assert candidate_choices(matmul_program, "C") != []
    # Every statement must reference the array.
    from repro.ir import parse_program

    p = parse_program(
        """
program two(N)
array A[N]
array B[N]
do I = 1, N
  S1: A[I] = 1
  S2: B[I] = 2
"""
    )
    assert candidate_choices(p, "A") == []


def test_search_matmul_finds_full_product(matmul_program):
    results = search_shackles(matmul_program, DataBlocking.grid("C", 2, 25), max_product=2)
    assert results
    best = results[0]
    # The best candidate must bound every reference (Theorem 2): a product.
    assert best.unconstrained == 0
    assert fully_constrained(best.shackle)


def test_search_cholesky_legal_singles(cholesky_program):
    results = search_shackles(cholesky_program, DataBlocking.grid("A", 2, 25), max_product=1)
    # Exactly the three legal single shackles from the census.
    assert len(results) == 3
    picks = {tuple(sorted(r.choices.items())) for r in results}
    assert (("S1", "A[J,J]"), ("S2", "A[I,J]"), ("S3", "A[L,K]")) in picks


def test_search_results_are_ranked(cholesky_program):
    results = search_shackles(cholesky_program, DataBlocking.grid("A", 2, 25), max_product=2)
    costs = [r.unconstrained for r in results]
    assert costs == sorted(costs)
    assert all("unconstrained" in r.describe() for r in results[:1])


def _scoring_machines():
    from repro.memsim.cost import MachineSpec

    return [
        MachineSpec("sc-fa", [("L1", 64, 4, 16, 1)], memory_latency=50),
        MachineSpec("sc-sa", [("L1", 128, 4, 2, 1)], memory_latency=50),
    ]


def test_score_candidates_ties_break_by_search_rank(cholesky_program):
    """Candidates with equal predicted cycles keep their search order —
    the scored ranking is a total order, not solver-luck."""
    from repro.core.search import score_candidates

    results = search_shackles(
        cholesky_program, DataBlocking.grid("A", 2, 25), max_product=1
    )
    # Duplicating a result guarantees a genuine cycles tie: identical
    # generated code scores identically on every machine.
    duplicated = [results[0], results[0], results[1]]
    from repro.kernels import cholesky

    scored = score_candidates(
        cholesky_program, duplicated, {"N": 10}, _scoring_machines(),
        init=cholesky.init,
    )
    twins = [s for s in scored if s.result is duplicated[0] or s.result is duplicated[1]]
    assert twins[0].cycles == twins[1].cycles
    assert twins[0].result is duplicated[0]
    assert twins[1].result is duplicated[1]


def test_score_candidates_top_prefix_stable_across_jobs(cholesky_program, tmp_path):
    """--score-top output is identical under jobs=1 and jobs=4: same
    candidate order, same cycles, same per-machine counters."""
    from repro.core.search import score_candidates
    from repro.kernels import cholesky
    from repro.memsim.trace import TraceStore

    results = search_shackles(
        cholesky_program, DataBlocking.grid("A", 2, 25), max_product=2
    )
    machines = _scoring_machines()

    def run(jobs, root):
        return score_candidates(
            cholesky_program, results, {"N": 10}, machines, top=4,
            init=cholesky.init, jobs=jobs, trace_store=TraceStore(root=root),
        )

    seq = run(1, tmp_path / "seq")
    par = run(4, tmp_path / "par")
    assert [s.result.choices for s in seq] == [s.result.choices for s in par]
    assert [s.cycles for s in seq] == [s.cycles for s in par]
    assert [
        [m.stats for m in s.measurements] for s in seq
    ] == [[m.stats for m in s.measurements] for s in par]
