"""Shared kernels and helpers for the shackling-core tests."""

import pytest

from repro.ir import parse_program

MATMUL = """
program mm(N)
array A[N,N]
array B[N,N]
array C[N,N]
assume N >= 1
do I = 1, N
  do J = 1, N
    do K = 1, N
      S1: C[I,J] = C[I,J] + A[I,K]*B[K,J]
"""

RIGHT_CHOLESKY = """
program cholesky(N)
array A[N,N]
assume N >= 1
do J = 1, N
  S1: A[J,J] = sqrt(A[J,J])
  do I = J+1, N
    S2: A[I,J] = A[I,J] / A[J,J]
  do L = J+1, N
    do K = J+1, L
      S3: A[L,K] = A[L,K] - A[L,J]*A[K,J]
"""

TRISOLVE = """
program trisolve(N)
array L[N,N]
array x[N]
array b[N]
assume N >= 1
do I = 1, N
  S1: x[I] = b[I] / L[I,I]
  do J = I+1, N
    S2: b[J] = b[J] - L[J,I]*x[I]
"""


@pytest.fixture(scope="session")
def matmul_program():
    return parse_program(MATMUL)


@pytest.fixture(scope="session")
def cholesky_program():
    return parse_program(RIGHT_CHOLESKY)


@pytest.fixture(scope="session")
def trisolve_program():
    return parse_program(TRISOLVE)


@pytest.fixture(scope="session")
def cholesky_dependences(cholesky_program):
    from repro.dependence import compute_dependences

    return compute_dependences(cholesky_program)


@pytest.fixture(scope="session")
def matmul_dependences(matmul_program):
    from repro.dependence import compute_dependences

    return compute_dependences(matmul_program)


def shackled_execution_order(shackle, blocking, program, env):
    """Brute-force shackled order: sort instances by (block, program order)."""
    from repro.dependence.oracle import enumerate_instances

    instances = enumerate_instances(program, env)

    def key(ctx, ivec):
        point_env = dict(zip(ctx.loop_vars, ivec))
        subscripts = shackle.subscripts(ctx.label)
        point = [int(a.evaluate(point_env)) for a in subscripts]
        return (blocking.traversal_of(point), ctx.schedule_key(ivec))

    return sorted(instances, key=lambda t: key(*t))
