"""Theorem-1 legality tests, including the paper's Section 6.1 census.

The census here was verified two independent ways (the exact Omega-based
checker and an instance-level brute-force oracle); it differs slightly
from the paper's prose — see DESIGN.md ("legality census" entry).
"""

import itertools

import pytest

from repro.core import DataBlocking, DataShackle, ShackleProduct, check_legality, shackle_refs
from repro.core.shackle import _parse_ref
from repro.dependence import brute_force_dependences
from repro.dependence.oracle import enumerate_instances

from .conftest import shackled_execution_order


def brute_force_legal(shackle, program, env):
    """Directly check all dependences against the shackled execution order."""
    order = {}
    blocking = shackle.blocking
    for rank, (ctx, ivec) in enumerate(
        shackled_execution_order(shackle, blocking, program, env)
    ):
        order[(ctx.label, ivec)] = rank
    for _, src_label, src_ivec, tgt_label, tgt_ivec in brute_force_dependences(program, env):
        if order[(src_label, src_ivec)] > order[(tgt_label, tgt_ivec)]:
            return False
    return True


def test_matmul_all_single_shackles_legal(matmul_program, matmul_dependences):
    """Section 6.1: shackling any of C[I,J], A[I,K], B[K,J] is legal."""
    for array, ref in [("C", "C[I,J]"), ("A", "A[I,K]"), ("B", "B[K,J]")]:
        sh = shackle_refs(matmul_program, DataBlocking.grid(array, 2, 25), {"S1": ref})
        assert check_legality(sh, matmul_dependences).legal


def test_cholesky_census(cholesky_program, cholesky_dependences):
    """All 6 candidate shackles of right-looking Cholesky, checked exactly.

    The paper (Section 6.1) reports exactly two legal choices: the writes
    shackle (S2:A[I,J], S3:A[L,K]) and a reads shackle.  Our exact checker
    and the brute-force oracle agree that the legal reads shackle pairs
    S2:A[J,J] with S3:A[K,J], and that the mixed choice (S2:A[I,J],
    S3:A[L,J]) is legal as well.
    """
    results = {}
    blocking = DataBlocking.grid("A", 2, 25)
    for s2, s3 in itertools.product(["A[I,J]", "A[J,J]"], ["A[L,K]", "A[L,J]", "A[K,J]"]):
        sh = DataShackle(
            cholesky_program,
            blocking,
            {"S1": _parse_ref("A[J,J]"), "S2": _parse_ref(s2), "S3": _parse_ref(s3)},
        )
        results[(s2, s3)] = check_legality(
            sh, cholesky_dependences, first_violation_only=True
        ).legal
    assert results == {
        ("A[I,J]", "A[L,K]"): True,  # the paper's writes shackle
        ("A[I,J]", "A[L,J]"): True,
        ("A[I,J]", "A[K,J]"): False,
        ("A[J,J]", "A[L,K]"): False,
        ("A[J,J]", "A[L,J]"): False,  # the paper's prose says legal; it is not
        ("A[J,J]", "A[K,J]"): True,  # the actually-legal reads shackle
    }


@pytest.mark.parametrize(
    "s2,s3",
    [("A[I,J]", "A[L,K]"), ("A[J,J]", "A[K,J]"), ("A[J,J]", "A[L,J]"), ("A[I,J]", "A[K,J]")],
)
def test_census_matches_bruteforce(cholesky_program, cholesky_dependences, s2, s3):
    blocking = DataBlocking.grid("A", 2, 3)
    sh = DataShackle(
        cholesky_program,
        blocking,
        {"S1": _parse_ref("A[J,J]"), "S2": _parse_ref(s2), "S3": _parse_ref(s3)},
    )
    exact = check_legality(sh, cholesky_dependences, first_violation_only=True).legal
    brute = brute_force_legal(sh, cholesky_program, {"N": 7})
    assert exact == brute


def test_product_of_legal_shackles_is_legal(cholesky_program, cholesky_dependences):
    """Section 6: products of legal shackles are legal, in either order."""
    blocking = DataBlocking.grid("A", 2, 25)
    writes = DataShackle(
        cholesky_program,
        blocking,
        {"S1": _parse_ref("A[J,J]"), "S2": _parse_ref("A[I,J]"), "S3": _parse_ref("A[L,K]")},
    )
    reads = DataShackle(
        cholesky_program,
        blocking,
        {"S1": _parse_ref("A[J,J]"), "S2": _parse_ref("A[J,J]"), "S3": _parse_ref("A[K,J]")},
    )
    assert check_legality(ShackleProduct(writes, reads), cholesky_dependences).legal
    assert check_legality(ShackleProduct(reads, writes), cholesky_dependences).legal


def test_violation_witness(cholesky_program, cholesky_dependences):
    blocking = DataBlocking.grid("A", 2, 25)
    bad = DataShackle(
        cholesky_program,
        blocking,
        {"S1": _parse_ref("A[J,J]"), "S2": _parse_ref("A[J,J]"), "S3": _parse_ref("A[L,K]")},
    )
    result = check_legality(bad, cholesky_dependences, first_violation_only=True)
    assert not result.legal
    assert "ILLEGAL" in result.explain()
    witness = result.violations[0].witness()
    assert witness is not None
    assert result.violations[0].system.evaluate(witness)


def test_trisolve_needs_reversed_traversal(trisolve_program):
    """Section 7/8: triangular solve is the paper's example where the
    top-to-bottom block order is illegal but the reversed order works.

    Shackling b[J] (S2) and b[I] (S1) blocks the b vector; with ascending
    traversal the early blocks wait on updates from later... actually the
    updates flow forward, so descending traversal breaks the flow and
    ascending is the legal one — assert the two differ, with ascending
    legal and descending not.
    """
    blocking_up = DataBlocking.grid("x", 1, 4)
    blocking_down = DataBlocking.grid("x", 1, 4, directions=[-1])
    choice = {"S1": _parse_ref("x[I]"), "S2": _parse_ref("x[I]")}
    up = DataShackle(trisolve_program, blocking_up, choice)
    down = DataShackle(trisolve_program, blocking_down, choice)
    up_result = check_legality(up, first_violation_only=True)
    down_result = check_legality(down, first_violation_only=True)
    assert up_result.legal != down_result.legal
    assert up_result.legal  # forward substitution runs top to bottom


def test_legality_result_api(matmul_program, matmul_dependences):
    sh = shackle_refs(matmul_program, DataBlocking.grid("C", 2, 25), "lhs")
    result = check_legality(sh, matmul_dependences)
    assert bool(result)
    assert "legal" in result.explain()
    assert result.checked_dependences == len(matmul_dependences)
