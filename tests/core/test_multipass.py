"""Tests for multi-pass shackling (Section 8) on relaxation kernels."""

import numpy as np
import pytest

from repro.core import check_legality
from repro.core.multipass import multipass_schedule, single_sweep_suffices
from repro.dependence import brute_force_dependences
from repro.kernels import relaxation


def execute_schedule(program, result, env, init, rng_seed=0):
    """Run a multipass schedule's instance order through the arena."""
    from repro.backends.python_backend import CompiledProgram
    from repro.memsim import Arena

    # Execute instance by instance via a tiny per-statement interpreter.
    arena = Arena(program, env)
    buf = arena.allocate()
    init(arena, buf, np.random.default_rng(rng_seed))
    initial = buf.copy()

    import math

    def run_instance(ctx, ivec):
        scope = {**env, **dict(zip(ctx.loop_vars, ivec))}
        stmt = ctx.statement

        def value(expr):
            from repro.ir.expr import AffExpr, BinOp, Call, Const, Ref, UnOp

            if isinstance(expr, Const):
                return float(expr.value)
            if isinstance(expr, AffExpr):
                return float(expr.affine.evaluate(scope))
            if isinstance(expr, Ref):
                idx = tuple(int(i.evaluate(scope)) for i in expr.indices)
                return buf[arena.addr(expr.array, idx)]
            if isinstance(expr, BinOp):
                ops = {
                    "+": lambda a, b: a + b,
                    "-": lambda a, b: a - b,
                    "*": lambda a, b: a * b,
                    "/": lambda a, b: a / b,
                }
                return ops[expr.op](value(expr.left), value(expr.right))
            if isinstance(expr, UnOp):
                return -value(expr.operand)
            if isinstance(expr, Call):
                fns = {"sqrt": math.sqrt, "abs": abs}
                return fns[expr.func](value(expr.args[0]))
            raise TypeError(expr)

        rhs = value(stmt.rhs)
        idx = tuple(int(i.evaluate(scope)) for i in stmt.lhs.indices)
        buf[arena.addr(stmt.lhs.array, idx)] = rhs

    for _, _, ctx, ivec in result.schedule:
        run_instance(ctx, ivec)
    return arena, initial, buf


def test_1d_time_relaxation_needs_multiple_passes():
    prog = relaxation.program("1d-time")
    shackle = relaxation.lhs_shackle_1d(prog, 4)
    # Single-sweep shackling is illegal: time steps of early blocks must
    # wait for earlier time steps of later blocks.
    assert not check_legality(shackle, first_violation_only=True).legal
    env = {"N": 12, "T": 3}
    assert not single_sweep_suffices(shackle, env)
    result = multipass_schedule(shackle, env)
    assert result.passes > 1
    # Everything executed exactly once.
    assert len(result.schedule) == 3 * 10


def test_multipass_respects_dependences():
    prog = relaxation.program("1d-time")
    shackle = relaxation.lhs_shackle_1d(prog, 4)
    env = {"N": 10, "T": 3}
    result = multipass_schedule(shackle, env)
    position = {key: k for k, key in enumerate(result.instance_order())}
    for _, sl, si, tl, ti in brute_force_dependences(prog, env):
        assert position[(sl, si)] < position[(tl, ti)]


def test_multipass_produces_correct_values():
    prog = relaxation.program("1d-time")
    shackle = relaxation.lhs_shackle_1d(prog, 4)
    env = {"N": 12, "T": 3}
    result = multipass_schedule(shackle, env)
    arena, initial, final = execute_schedule(prog, result, env, relaxation.init_1d)
    assert relaxation.check_1d(arena, initial, final)


def test_2d_seidel_single_sweep_is_legal():
    """A single Gauss-Seidel sweep has non-negative dependence distances:
    the LHS shackle is legal outright and one pass suffices."""
    prog = relaxation.program("2d")
    shackle = relaxation.lhs_shackle_2d(prog, 3)
    assert check_legality(shackle, first_violation_only=True).legal
    assert single_sweep_suffices(shackle, {"N": 8})


def test_2d_seidel_shackled_execution_correct():
    prog = relaxation.program("2d")
    shackle = relaxation.lhs_shackle_2d(prog, 3)
    from repro.backends import compile_program
    from repro.core import simplified_code
    from repro.memsim import Arena

    env = {"N": 9}
    arena = Arena(prog, env)
    buf = arena.allocate()
    relaxation.init_2d(arena, buf, np.random.default_rng(2))
    initial = buf.copy()
    compile_program(simplified_code(shackle), arena).run(buf)
    assert relaxation.check_2d(arena, initial, buf)


def test_passes_scale_with_time_steps():
    prog = relaxation.program("1d-time")
    shackle = relaxation.lhs_shackle_1d(prog, 4)
    p2 = multipass_schedule(shackle, {"N": 12, "T": 2}).passes
    p5 = multipass_schedule(shackle, {"N": 12, "T": 5}).passes
    assert p5 > p2
