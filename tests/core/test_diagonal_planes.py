"""Non-axis-aligned cutting planes and the paper's Section 6.2 remark:
"orientation is important for legality of the data shackle".

On a 2-D Gauss-Seidel sweep (dependence distances (1,0) and (0,1)):

* anti-diagonal planes (normal (1,1)) are legal — the plane value i+j
  is non-decreasing along every dependence;
* diagonal planes (normal (1,-1)) are illegal — the value i-j decreases
  along the (0,1) dependence, so some producer lands in a later block.
"""

import numpy as np

from repro.backends import compile_program
from repro.core import CuttingPlanes, DataBlocking, DataShackle, check_legality, simplified_code
from repro.kernels import relaxation
from repro.memsim import Arena


def make_shackle(prog, normal, spacing=4, offset=-1):
    blocking = DataBlocking("A", [CuttingPlanes(normal, spacing, offset)])
    return DataShackle(prog, blocking, {"S1": prog.statement("S1").lhs})


def test_antidiagonal_planes_legal():
    prog = relaxation.program("2d")
    shackle = make_shackle(prog, [1, 1])
    assert check_legality(shackle, first_violation_only=True).legal


def test_diagonal_planes_illegal():
    prog = relaxation.program("2d")
    shackle = make_shackle(prog, [1, -1])
    result = check_legality(shackle, first_violation_only=True)
    assert not result.legal
    witness = result.violations[0].witness()
    assert witness is not None


def test_antidiagonal_shackled_execution_correct():
    prog = relaxation.program("2d")
    shackle = make_shackle(prog, [1, 1])
    program = simplified_code(shackle)
    arena = Arena(prog, {"N": 9})
    buf = arena.allocate()
    relaxation.init_2d(arena, buf, np.random.default_rng(0))
    initial = buf.copy()
    compile_program(program, arena).run(buf)
    assert relaxation.check_2d(arena, initial, buf)


def test_antidiagonal_block_walk_is_a_wavefront():
    """Blocks along the anti-diagonal execute as a wavefront sweep."""
    from repro.core import enumerate_block_instances

    prog = relaxation.program("2d")
    shackle = make_shackle(prog, [1, 1])
    blocks = [b for b, _ in enumerate_block_instances(shackle, {"N": 9})]
    # 1-D block coordinates, strictly increasing: a wavefront.
    assert blocks == sorted(blocks)
    assert len(blocks) >= 3
    # Every instance inside block w writes an element with i+j in its band.
    for block, instances in enumerate_block_instances(shackle, {"N": 9}):
        for ctx, ivec in instances:
            i, j = ivec
            assert shackle.blocking.block_of((i, j)) == block
