"""Index-set splitting tests: Figure 7 structure, order and correctness."""

import numpy as np
import pytest

from repro.backends import compile_program
from repro.core import (
    DataBlocking,
    DataShackle,
    ShackleProduct,
    instance_schedule,
    shackle_refs,
    split_code,
)
from repro.core.shackle import _parse_ref
from repro.ir import to_source
from repro.ir.analysis import statement_contexts
from repro.kernels import cholesky, gmtry, matmul
from repro.memsim import Arena

from .test_codegen import execution_trace


def element_trace(program, env):
    """Execution order as (label, lhs element) — robust to variable
    substitution performed by degenerate-loop collapsing."""
    from repro.ir.nodes import Guard, Loop

    trace = []

    def run(nodes, scope):
        for node in nodes:
            if isinstance(node, Loop):
                lo = max(b.evaluate_lower(scope) for b in node.lowers)
                hi = min(b.evaluate_upper(scope) for b in node.uppers)
                for value in range(lo, hi + 1):
                    run(node.body, {**scope, node.var: value})
            elif isinstance(node, Guard):
                if all(c.evaluate(scope) for c in node.conditions):
                    run(node.body, scope)
            else:
                element = tuple(int(i.evaluate(scope)) for i in node.lhs.indices)
                trace.append((node.label, node.lhs.array, element))

    run(program.body, dict(env))
    return trace


def schedule_element_trace(shackle, env):
    out = []
    for _, ctx, ivec in instance_schedule(shackle, env):
        scope = dict(zip(ctx.loop_vars, ivec))
        stmt = ctx.statement
        element = tuple(int(i.evaluate(scope)) for i in stmt.lhs.indices)
        out.append((stmt.label, stmt.lhs.array, element))
    return out


def figure7_shackle(prog, size):
    """The paper's writes shackle with column planes first (Fig. 7)."""
    blocking = DataBlocking.grid("A", 2, size, dims=[1, 0])
    return DataShackle(
        prog,
        blocking,
        {"S1": _parse_ref("A[J,J]"), "S2": _parse_ref("A[I,J]"), "S3": _parse_ref("A[L,K]")},
    )


def test_figure7_regions_guard_free(cholesky_program):
    program = split_code(figure7_shackle(cholesky_program, 64))
    text = to_source(program, header=False)
    # No residual guards: splitting absorbed them all (as Omega does).
    assert "if " not in text
    # Region (i): updates from the left to the diagonal block.
    assert "do J = 1, 64*t1-64" in text
    # Region (ii): baby Cholesky of the diagonal block.
    assert "do J = 64*t1-63" in text
    # Regions (iii)/(iv): off-diagonal blocks below the diagonal one.
    assert "do t2 = t1+1" in text
    # S3 appears in several regions (copies of the same source statement).
    assert text.count("S3:") >= 3


def test_split_preserves_execution_order(cholesky_program):
    shackle = figure7_shackle(cholesky_program, 3)
    env = {"N": 8}
    generated = element_trace(split_code(shackle), env)
    enumerated = schedule_element_trace(shackle, env)
    assert generated == enumerated


@pytest.mark.parametrize("n", [7, 11])
def test_split_cholesky_numerically_correct(cholesky_program, n):
    shackle = figure7_shackle(cholesky_program, 4)
    program = split_code(shackle)
    arena = Arena(cholesky_program, {"N": n})
    buf = arena.allocate()
    cholesky.init(arena, buf, np.random.default_rng(0))
    initial = buf.copy()
    compile_program(program, arena).run(buf)
    assert cholesky.check(arena, initial, buf)


def test_split_on_product(cholesky_program):
    writes = figure7_shackle(cholesky_program, 3)
    reads = DataShackle(
        cholesky_program,
        DataBlocking.grid("A", 2, 3, dims=[1, 0]),
        {"S1": _parse_ref("A[J,J]"), "S2": _parse_ref("A[J,J]"), "S3": _parse_ref("A[K,J]")},
    )
    prod = ShackleProduct(writes, reads)
    env = {"N": 6}
    generated = element_trace(split_code(prod), env)
    enumerated = schedule_element_trace(prod, env)
    assert generated == enumerated


def test_split_matmul_equals_simplified():
    """With a single statement there is nothing to split: the output is
    equivalent to the scan-based code (same instance order)."""
    prog = matmul.program()
    shackle = matmul.c_shackle(prog, 3)
    env = {"N": 7}
    generated = element_trace(split_code(shackle), env)
    enumerated = schedule_element_trace(shackle, env)
    assert generated == enumerated


def test_split_gmtry_guard_free_and_correct():
    prog = gmtry.program()
    shackle = shackle_refs(prog, DataBlocking.grid("A", 2, 4, dims=[1, 0]), "lhs")
    program = split_code(shackle)
    text = to_source(program, header=False)
    assert "if " not in text
    arena = Arena(prog, {"N": 11})
    buf = arena.allocate()
    gmtry.init(arena, buf, np.random.default_rng(1))
    initial = buf.copy()
    compile_program(program, arena).run(buf)
    assert gmtry.check(arena, initial, buf)


def test_split_respects_max_segments(cholesky_program):
    program = split_code(figure7_shackle(cholesky_program, 4), max_segments=1)
    # With at most one boundary per loop the code still runs correctly.
    arena = Arena(cholesky_program, {"N": 9})
    buf = arena.allocate()
    cholesky.init(arena, buf, np.random.default_rng(3))
    initial = buf.copy()
    compile_program(program, arena).run(buf)
    assert cholesky.check(arena, initial, buf)
