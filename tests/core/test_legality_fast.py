"""The fast legality core must be invisible: memo, engine choice, verdict
reuse, and dependence ordering may change speed, never answers.

Every test here runs the paper's kernels (matmul, right-looking Cholesky,
triangular solve — including the known-illegal descending-traversal
shackle) through ``check_legality`` under different cache/engine states
and asserts bit-identical verdicts, and that violation witnesses stay
valid both cold and warm.
"""

import itertools

import pytest

from repro.core import (
    DataBlocking,
    DataShackle,
    ShackleProduct,
    check_legality,
    shackle_refs,
)
from repro.core.legality import reset_failure_counts
from repro.core.shackle import _parse_ref
from repro.engine.metrics import METRICS
from repro.polyhedra import solver


@pytest.fixture(autouse=True)
def _fresh_memo():
    solver.clear_memo()
    reset_failure_counts()
    yield
    solver.clear_memo()
    reset_failure_counts()


def _cholesky_candidates(program):
    blocking = DataBlocking.grid("A", 2, 25)
    return [
        DataShackle(
            program,
            blocking,
            {"S1": _parse_ref("A[J,J]"), "S2": _parse_ref(s2), "S3": _parse_ref(s3)},
        )
        for s2, s3 in itertools.product(
            ["A[I,J]", "A[J,J]"], ["A[L,K]", "A[L,J]", "A[K,J]"]
        )
    ]


def _trisolve_candidates(program):
    choice = {"S1": _parse_ref("x[I]"), "S2": _parse_ref("x[I]")}
    return [
        DataShackle(program, DataBlocking.grid("x", 1, 4), choice),
        DataShackle(
            program, DataBlocking.grid("x", 1, 4, directions=[-1]), choice
        ),  # the paper's illegal descending traversal
    ]


def _paper_census(matmul_program, cholesky_program, trisolve_program):
    candidates = [
        shackle_refs(matmul_program, DataBlocking.grid(array, 2, 25), {"S1": ref})
        for array, ref in [("C", "C[I,J]"), ("A", "A[I,K]"), ("B", "B[K,J]")]
    ]
    candidates += _cholesky_candidates(cholesky_program)
    candidates += _trisolve_candidates(trisolve_program)
    return candidates


def _verdicts(candidates):
    return [
        check_legality(sh, first_violation_only=True).legal for sh in candidates
    ]


def test_memo_never_changes_verdicts_on_paper_kernels(
    matmul_program, cholesky_program, trisolve_program
):
    candidates = _paper_census(matmul_program, cholesky_program, trisolve_program)
    cold = _verdicts(candidates)
    warm = _verdicts(candidates)  # every query now served by the memo
    assert warm == cold
    assert cold[:3] == [True, True, True]  # matmul: all single shackles legal
    assert cold[-2:] == [True, False]  # trisolve: ascending legal, descending not


def test_scalar_and_vector_engines_agree_on_paper_kernels(
    matmul_program, cholesky_program, trisolve_program
):
    candidates = _paper_census(matmul_program, cholesky_program, trisolve_program)
    vector = _verdicts(candidates)
    previous = solver.set_engine("scalar")
    try:
        solver.clear_memo()
        scalar = _verdicts(candidates)
    finally:
        solver.set_engine(previous)
    assert scalar == vector


def test_witness_stays_valid_cold_and_warm(cholesky_program, cholesky_dependences):
    bad = DataShackle(
        cholesky_program,
        DataBlocking.grid("A", 2, 25),
        {"S1": _parse_ref("A[J,J]"), "S2": _parse_ref("A[J,J]"), "S3": _parse_ref("A[L,K]")},
    )
    for run in ("cold", "warm"):
        result = check_legality(bad, cholesky_dependences, first_violation_only=True)
        assert not result.legal, run
        witness = result.violations[0].witness()
        assert witness is not None, run
        assert result.violations[0].system.evaluate(witness), run


def test_verdict_cache_reuses_factor_verdicts_on_products(
    cholesky_program, cholesky_dependences
):
    singles = _cholesky_candidates(cholesky_program)[:3]
    products = [ShackleProduct(a, b) for a in singles for b in singles if a is not b]

    def census(shared):
        verdicts: dict = {}
        return [
            check_legality(
                sh,
                cholesky_dependences,
                first_violation_only=True,
                verdict_cache=verdicts if shared else None,
            ).legal
            for sh in singles + products
        ]

    without_cache = census(shared=False)
    solver.clear_memo()
    reuse_before = METRICS.get("legality.factor_reuse")
    with_cache = census(shared=True)
    assert with_cache == without_cache
    assert METRICS.get("legality.factor_reuse") > reuse_before


def test_failure_ordering_never_changes_verdicts(
    cholesky_program, cholesky_dependences
):
    candidates = _cholesky_candidates(cholesky_program)
    baseline = [
        check_legality(sh, cholesky_dependences, first_violation_only=True).legal
        for sh in candidates
    ]
    # Accumulated failure counts reorder the dependence list checked
    # first; verdicts must not move.
    for _ in range(3):
        reordered = [
            check_legality(sh, cholesky_dependences, first_violation_only=True).legal
            for sh in candidates
        ]
        assert reordered == baseline
