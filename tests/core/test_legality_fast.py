"""The fast legality core must be invisible: memo, engine choice, verdict
reuse, and dependence ordering may change speed, never answers.

Every test here runs the paper's kernels (matmul, right-looking Cholesky,
triangular solve — including the known-illegal descending-traversal
shackle) through ``check_legality`` under different cache/engine states
and asserts bit-identical verdicts, and that violation witnesses stay
valid both cold and warm.
"""

import itertools

import pytest

from repro.core import (
    DataBlocking,
    DataShackle,
    ShackleProduct,
    check_legality,
    shackle_refs,
)
from repro.core import legality as legality_mod
from repro.core.legality import (
    _complete,
    _witness_store,
    reset_failure_counts,
    reset_witnesses,
)
from repro.polyhedra import Constraint, System
from repro.core.shackle import _parse_ref
from repro.engine.metrics import METRICS
from repro.polyhedra import solver


@pytest.fixture(autouse=True)
def _fresh_memo():
    solver.clear_memo()
    reset_failure_counts()
    yield
    solver.clear_memo()
    reset_failure_counts()


def _cholesky_candidates(program):
    blocking = DataBlocking.grid("A", 2, 25)
    return [
        DataShackle(
            program,
            blocking,
            {"S1": _parse_ref("A[J,J]"), "S2": _parse_ref(s2), "S3": _parse_ref(s3)},
        )
        for s2, s3 in itertools.product(
            ["A[I,J]", "A[J,J]"], ["A[L,K]", "A[L,J]", "A[K,J]"]
        )
    ]


def _trisolve_candidates(program):
    choice = {"S1": _parse_ref("x[I]"), "S2": _parse_ref("x[I]")}
    return [
        DataShackle(program, DataBlocking.grid("x", 1, 4), choice),
        DataShackle(
            program, DataBlocking.grid("x", 1, 4, directions=[-1]), choice
        ),  # the paper's illegal descending traversal
    ]


def _paper_census(matmul_program, cholesky_program, trisolve_program):
    candidates = [
        shackle_refs(matmul_program, DataBlocking.grid(array, 2, 25), {"S1": ref})
        for array, ref in [("C", "C[I,J]"), ("A", "A[I,K]"), ("B", "B[K,J]")]
    ]
    candidates += _cholesky_candidates(cholesky_program)
    candidates += _trisolve_candidates(trisolve_program)
    return candidates


def _verdicts(candidates):
    return [
        check_legality(sh, first_violation_only=True).legal for sh in candidates
    ]


def test_memo_never_changes_verdicts_on_paper_kernels(
    matmul_program, cholesky_program, trisolve_program
):
    candidates = _paper_census(matmul_program, cholesky_program, trisolve_program)
    cold = _verdicts(candidates)
    warm = _verdicts(candidates)  # every query now served by the memo
    assert warm == cold
    assert cold[:3] == [True, True, True]  # matmul: all single shackles legal
    assert cold[-2:] == [True, False]  # trisolve: ascending legal, descending not


def test_scalar_and_vector_engines_agree_on_paper_kernels(
    matmul_program, cholesky_program, trisolve_program
):
    candidates = _paper_census(matmul_program, cholesky_program, trisolve_program)
    vector = _verdicts(candidates)
    previous = solver.set_engine("scalar")
    try:
        solver.clear_memo()
        scalar = _verdicts(candidates)
    finally:
        solver.set_engine(previous)
    assert scalar == vector


def test_witness_stays_valid_cold_and_warm(cholesky_program, cholesky_dependences):
    bad = DataShackle(
        cholesky_program,
        DataBlocking.grid("A", 2, 25),
        {"S1": _parse_ref("A[J,J]"), "S2": _parse_ref("A[J,J]"), "S3": _parse_ref("A[L,K]")},
    )
    for run in ("cold", "warm"):
        result = check_legality(bad, cholesky_dependences, first_violation_only=True)
        assert not result.legal, run
        witness = result.violations[0].witness()
        assert witness is not None, run
        assert result.violations[0].system.evaluate(witness), run


def test_verdict_cache_reuses_factor_verdicts_on_products(
    cholesky_program, cholesky_dependences
):
    singles = _cholesky_candidates(cholesky_program)[:3]
    products = [ShackleProduct(a, b) for a in singles for b in singles if a is not b]

    def census(shared):
        verdicts: dict = {}
        return [
            check_legality(
                sh,
                cholesky_dependences,
                first_violation_only=True,
                verdict_cache=verdicts if shared else None,
            ).legal
            for sh in singles + products
        ]

    without_cache = census(shared=False)
    solver.clear_memo()
    reuse_before = METRICS.get("legality.factor_reuse")
    with_cache = census(shared=True)
    assert with_cache == without_cache
    assert METRICS.get("legality.factor_reuse") > reuse_before


def test_witness_transfer_never_changes_verdicts(
    matmul_program, cholesky_program, trisolve_program, monkeypatch
):
    # The witness cache is a pure short-cut: disabling every transfer
    # (all members "unknown" -> solved) must reproduce the same census.
    candidates = _paper_census(matmul_program, cholesky_program, trisolve_program)
    reset_witnesses()
    with_witnesses = _verdicts(candidates)
    solver.clear_memo()
    reset_witnesses()
    monkeypatch.setattr(
        legality_mod,
        "_witness_hits",
        lambda dep_key, base, deltas: [False] * len(deltas),
    )
    without = _verdicts(candidates)
    assert without == with_witnesses


def test_stored_witnesses_hold_loop_values_only(
    cholesky_program, cholesky_dependences
):
    # Block coordinates are candidate-specific (the same ``_w`` name is a
    # different factor's coordinate in a different product), so storing
    # them would poison transfers; ``_complete`` re-derives them instead.
    reset_witnesses()
    for shackle in _cholesky_candidates(cholesky_program):
        check_legality(shackle, cholesky_dependences, first_violation_only=True)
    assert _witness_store, "census recorded no witnesses to inspect"
    for envs in _witness_store.values():
        for env in envs:
            assert not any(name.startswith("_w") for name in env)
    reset_witnesses()


def test_complete_derives_block_coords_or_rejects():
    # Membership-style rows pin the block coordinate to the floor of its
    # referenced expression: b <= i/4 < b + 1.
    system = System(
        [
            Constraint.ge({"i": 1, "_wc0_0": -4}, 0),
            Constraint.ge({"i": -1, "_wc0_0": 4}, 3),
            Constraint.ge({"i": 1}, -9),
        ]
    )
    full = _complete(system, {"i": 9})
    assert full is not None and full["_wc0_0"] == 2
    assert system.evaluate(full)
    # A point outside the system is rejected, never "completed" wrongly.
    assert _complete(system, {"i": -1}) is None
    # Coordinates that can't be derived one-at-a-time (two unknowns in
    # every row mentioning them) refuse to transfer.
    assert _complete(System([Constraint.ge({"b": 1, "c": 1}, 0)]), {"i": 0}) is None


def test_failure_ordering_never_changes_verdicts(
    cholesky_program, cholesky_dependences
):
    candidates = _cholesky_candidates(cholesky_program)
    baseline = [
        check_legality(sh, cholesky_dependences, first_violation_only=True).legal
        for sh in candidates
    ]
    # Accumulated failure counts reorder the dependence list checked
    # first; verdicts must not move.
    for _ in range(3):
        reordered = [
            check_legality(sh, cholesky_dependences, first_violation_only=True).legal
            for sh in candidates
        ]
        assert reordered == baseline
