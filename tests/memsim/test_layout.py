"""Array layout and arena tests."""

import numpy as np
import pytest

from repro.ir import parse_program
from repro.memsim import Arena, BandedColumnLayout, ColumnMajorLayout, RowMajorLayout
from repro.memsim.cost import SP2_SCALED, CostModel, MachineSpec

PROG = parse_program(
    """
program p(N)
array A[N,N]
array v[N]
do I = 1, N
  S1: v[I] = A[I,I]
"""
)


def test_column_major_addresses():
    arena = Arena(PROG, {"N": 4})
    layout = arena.layout("A")
    assert layout.addr((1, 1)) == 0
    assert layout.addr((2, 1)) == 1  # column-contiguous
    assert layout.addr((1, 2)) == 4
    assert arena.layout("v").base == 16
    assert arena.total_size == 20


def test_row_major_addresses():
    arena = Arena(PROG, {"N": 4}, layout_overrides={"A": RowMajorLayout})
    layout = arena.layout("A")
    assert layout.addr((1, 1)) == 0
    assert layout.addr((1, 2)) == 1  # row-contiguous
    assert layout.addr((2, 1)) == 4


def test_addr_source_agrees_with_addr():
    arena = Arena(PROG, {"N": 5})
    layout = arena.layout("A")
    src = layout.addr_source(["i", "j"])
    for i in range(1, 6):
        for j in range(1, 6):
            assert eval(src, {}, {"i": i, "j": j}) == layout.addr((i, j))


def test_banded_layout():
    prog = parse_program(
        """
program b(N, BW)
array A[N,N]
do I = 1, N
  S1: A[I,I] = 1
"""
    )
    arena = Arena(
        prog,
        {"N": 6, "BW": 2},
        layout_overrides={"A": lambda a, base, ext: BandedColumnLayout(a, base, ext, 2)},
    )
    layout = arena.layout("A")
    # Column j stores rows j..j+BW contiguously.
    assert layout.addr((1, 1)) == 0
    assert layout.addr((2, 1)) == 1
    assert layout.addr((3, 1)) == 2
    assert layout.addr((2, 2)) == 3
    assert layout.size == 6 * 3
    assert layout.in_bounds((3, 1)) and not layout.in_bounds((4, 1))
    src = layout.addr_source(["i", "j"])
    assert eval(src, {}, {"i": 3, "j": 2}) == layout.addr((3, 2))


def test_arena_views_roundtrip():
    arena = Arena(PROG, {"N": 3})
    buf = arena.allocate()
    view = arena.view(buf, "A")
    view[:] = np.arange(9).reshape(3, 3)
    # Column-major: A[2,1] is buf[1].
    assert buf[arena.addr("A", (2, 1))] == view[1, 0]
    assert buf[arena.addr("A", (1, 2))] == view[0, 1]


def test_machine_specs_hierarchies():
    h = SP2_SCALED.hierarchy()
    assert len(h.levels) == 2
    assert "L1" in h.describe()
    model = CostModel(SP2_SCALED)
    h.access(0)
    assert model.cycles(h, flops=10) == h.access_cycles() + 10 * SP2_SCALED.scalar_cpi
    fast = CostModel(SP2_SCALED, use_kernel_cpi=True)
    assert fast.cpi < model.cpi
    assert model.mflops(h, flops=10) > 0
