"""Differential tests of the parametric histogram tier.

The tolerance contract of :mod:`repro.memsim.parametric`, enforced:
for every kernel module, a family fitted at a handful of anchor sizes
must predict per-level miss counts and write-back traffic at *held-out*
sizes (inside the anchor hull, never profiled) within
``family.tolerance(accesses)`` of exact replay — with **zero trace
captures at prediction time**, on fully-associative geometries and on
set-associative ones priced through the fitted conflict ladder.

Also pinned here: the content-addressed family cache (second fit is a
store hit, bit-identical), the ``np.savez`` round-trip, the
``capture=False`` contract, and the fallback counter for geometries
outside the fitted ladder grid.
"""

import numpy as np
import pytest

from repro.backends import compile_program
from repro.engine.metrics import METRICS
from repro.kernels import (
    adi,
    blocked_library,
    cholesky,
    gmtry,
    matmul,
    qr,
    relaxation,
    syrk,
    trisolve,
    trsm,
)
from repro.memsim import Arena, CacheLevel, MemoryHierarchy
from repro.memsim.parametric import (
    anchor_envs,
    family_checksum,
    family_from_arrays,
    family_to_arrays,
    fit_family,
    predict_parametric,
)
from repro.memsim.replay import replay_encoded
from repro.memsim.trace import TraceStore

# One entry per kernel module: anchor ranges per size parameter and a
# held-out size strictly inside the hull.  Sizes are small enough that
# the full matrix (kernels x anchors) stays in tier-1 budget; the
# two-parameter kernels fit at degree 2 (a 4x4 anchor cross).
KERNELS = [
    # adi's column stride makes the 16-set ladder resonate below n~12
    # (N mod S effects the smooth model class excludes); anchored higher.
    ("adi", adi.program(), {"n": (12, 30)}, {"n": 21}, adi.init, 3),
    ("blocked-cholesky", blocked_library.blocked_cholesky(4), {"N": (8, 20)},
     {"N": 14}, cholesky.init, 3),
    ("cholesky-right", cholesky.program("right"), {"N": (8, 20)}, {"N": 14},
     cholesky.init, 3),
    ("cholesky-left", cholesky.program("left"), {"N": (8, 20)}, {"N": 14},
     cholesky.init, 3),
    ("gmtry", gmtry.program(), {"N": (6, 14)}, {"N": 10}, gmtry.init, 3),
    ("matmul", matmul.program(), {"N": (6, 14)}, {"N": 10}, matmul.init, 3),
    ("qr", qr.program(), {"N": (6, 13)}, {"N": 10}, qr.init, 3),
    ("relaxation-1d", relaxation.program("1d-time"), {"N": (16, 32), "T": (3, 7)},
     {"N": 23, "T": 6}, relaxation.init_1d, 2),
    ("syrk", syrk.program(), {"N": (6, 14)}, {"N": 10}, syrk.init, 3),
    ("trisolve-forward", trisolve.program("forward"), {"N": (10, 24)}, {"N": 16},
     trisolve.init_forward, 3),
    ("trsm", trsm.program(), {"N": (6, 13), "M": (4, 8)}, {"N": 11, "M": 7},
     trsm.init, 2),
]
IDS = [k[0] for k in KERNELS]

# Geometries the contract is checked on: a fully-associative cache and a
# 16-set 2-way one priced through the fitted conflict ladder.
FA = MemoryHierarchy([CacheLevel("L1", 64, 4, 16, 1)], memory_latency=50)
SA16 = MemoryHierarchy([CacheLevel("L1", 128, 4, 2, 1)], memory_latency=50)
assert SA16.levels[0].num_sets == 16


def _exact(program, env, init, hierarchy):
    arena = Arena(program, env)
    buf = arena.allocate()
    init(arena, buf, np.random.default_rng(0))
    encoded = compile_program(program, arena, trace="capture").run(buf).trace
    return replay_encoded(encoded, hierarchy, engine="numpy")


def _fit(program, ranges, init, degree, store):
    anchors = anchor_envs(ranges, degree=degree)
    return fit_family(
        program, anchors, init=init, line_shifts=(2,), set_counts=(16,),
        trace_store=store, degree=degree,
    ), anchors


@pytest.mark.parametrize("name,program,ranges,held_out,init,degree", KERNELS, ids=IDS)
def test_held_out_size_within_tolerance_zero_captures(
    name, program, ranges, held_out, init, degree
):
    store = TraceStore()
    family, anchors = _fit(program, ranges, init, degree, store)
    assert not any(
        all(env[p] == held_out[p] for p in family.params) for env in anchors
    ), f"held-out size {held_out} collides with an anchor"

    # Predictions at the unseen size: not a single capture allowed.
    captures = METRICS.get("memsim.trace_capture")
    predicted = {h: predict_parametric(family, held_out, h) for h in (FA, SA16)}
    assert METRICS.get("memsim.trace_capture") == captures, (
        f"{name}: parametric prediction captured a trace at a held-out size"
    )

    for hierarchy in (FA, SA16):
        exact = _exact(program, held_out, init, hierarchy)
        tol = family.tolerance(exact.total_accesses)
        want, got = exact.stats(), predicted[hierarchy].stats()
        assert abs(got["accesses"] - want["accesses"]) <= tol, name
        for level in hierarchy.levels:
            gap = abs(got[f"{level.name}_misses"] - want[f"{level.name}_misses"])
            assert gap <= tol, (name, level.name, gap, tol, want, got)
        wb_gap = abs(
            predicted[hierarchy].writeback_traffic() - exact.writeback_traffic()
        )
        assert wb_gap <= tol, (name, "writebacks", wb_gap, tol)


def test_refit_is_content_addressed_cache_hit():
    store = TraceStore()
    program = matmul.program()
    family, _ = _fit(program, {"N": (6, 14)}, matmul.init, 3, store)
    hits = METRICS.get("memsim.family_cache_hit")
    fits = METRICS.get("memsim.family_fit")
    again, _ = _fit(program, {"N": (6, 14)}, matmul.init, 3, store)
    assert METRICS.get("memsim.family_cache_hit") == hits + 1
    assert METRICS.get("memsim.family_fit") == fits
    assert family_checksum(again) == family_checksum(family)


def test_family_round_trips_through_arrays():
    store = TraceStore()
    family, _ = _fit(matmul.program(), {"N": (6, 14)}, matmul.init, 3, store)
    restored = family_from_arrays(family_to_arrays(family))
    assert family_checksum(restored) == family_checksum(family)
    env = {"N": 11}
    assert (
        restored.predict(env, SA16).stats() == family.predict(env, SA16).stats()
    )
    assert restored.counts_at(env) == family.counts_at(env)
    assert restored.residuals == family.residuals


def test_capture_disabled_raises_on_cold_anchor():
    anchors = anchor_envs({"N": (6, 14)}, degree=3)
    with pytest.raises(RuntimeError, match="capture is disabled"):
        fit_family(
            matmul.program(), anchors, init=matmul.init,
            trace_store=TraceStore(), capture=False,
        )


def test_warm_store_fits_without_capturing():
    """After one fitting pass the anchor traces are in the store, so a
    second family over the same anchors (different set grid, hence a
    different content address) fits with capture=False."""
    store = TraceStore()
    program = matmul.program()
    _fit(program, {"N": (6, 14)}, matmul.init, 3, store)
    anchors = anchor_envs({"N": (6, 14)}, degree=3)
    family = fit_family(
        program, anchors, init=matmul.init, line_shifts=(2,), set_counts=(8, 16),
        trace_store=store, capture=False,
    )
    assert family.set_counts() == (8, 16)


def test_unfitted_set_count_falls_back_and_counts():
    store = TraceStore()
    family, _ = _fit(matmul.program(), {"N": (6, 14)}, matmul.init, 3, store)
    odd = MemoryHierarchy([CacheLevel("L1", 96, 4, 2, 1)], memory_latency=50)
    assert odd.levels[0].num_sets == 12  # not in the fitted ladder grid
    fallbacks = METRICS.get("memsim.parametric_fallback")
    result = family.predict({"N": 11}, odd)
    assert METRICS.get("memsim.parametric_fallback") == fallbacks + 1
    # Fallback prices an equal-capacity FA cache: bounded by accesses.
    assert 0 <= result.stats()["L1_misses"] <= result.total_accesses


def test_predict_many_matches_predict():
    store = TraceStore()
    family, _ = _fit(matmul.program(), {"N": (6, 14)}, matmul.init, 3, store)
    hierarchies = [FA, SA16]
    batch = family.predict_many({"N": 12}, hierarchies)
    single = [family.predict({"N": 12}, h) for h in hierarchies]
    assert [r.stats() for r in batch] == [r.stats() for r in single]
