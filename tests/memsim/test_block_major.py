"""Tests for block-major (reshaped) storage."""

import numpy as np
import pytest

from repro.ir import parse_program
from repro.memsim import Arena, BlockMajorLayout

PROG = parse_program(
    """
program p(N)
array A[N,N]
do I = 1, N
  S1: A[I,I] = 1
"""
)


def make_arena(n=8, block=4):
    return Arena(
        PROG,
        {"N": n},
        layout_overrides={
            "A": lambda a, base, ext: BlockMajorLayout(a, base, ext, block)
        },
    )


def test_block_contiguity():
    arena = make_arena()
    layout = arena.layout("A")
    # All 16 elements of block (1,1) occupy addresses 0..15.
    addrs = {layout.addr((i, j)) for i in range(1, 5) for j in range(1, 5)}
    assert addrs == set(range(16))
    # Block (1,2) (columns 5..8) is the next contiguous chunk.
    addrs2 = {layout.addr((i, j)) for i in range(1, 5) for j in range(5, 9)}
    assert addrs2 == set(range(16, 32))


def test_addr_bijective_and_in_bounds():
    arena = make_arena(n=7, block=3)  # ragged edge blocks
    layout = arena.layout("A")
    seen = set()
    for i in range(1, 8):
        for j in range(1, 8):
            assert layout.in_bounds((i, j))
            a = layout.addr((i, j))
            assert a not in seen
            seen.add(a)
    assert len(seen) == 49


def test_addr_source_matches_addr():
    arena = make_arena(n=7, block=3)
    layout = arena.layout("A")
    src = layout.addr_source(["i", "j"])
    for i in range(1, 8):
        for j in range(1, 8):
            assert eval(src, {}, {"i": i, "j": j}) == layout.addr((i, j))


def test_set_get_roundtrip_through_reshaped_layout():
    arena = make_arena(n=6, block=4)
    buf = arena.allocate()
    values = np.arange(36, dtype=float).reshape(6, 6)
    arena.set_array(buf, "A", values)
    assert np.array_equal(arena.get_array(buf, "A"), values)


def test_block_size_validation():
    with pytest.raises(ValueError, match="one block size"):
        make_arena_bad = Arena(
            PROG,
            {"N": 8},
            layout_overrides={
                "A": lambda a, base, ext: BlockMajorLayout(a, base, ext, [4])
            },
        )


def test_execution_identical_under_reshaping():
    """Reshaping must never change program results, only addresses."""
    from repro.backends import compile_program
    from repro.kernels import matmul

    prog = matmul.program()
    rng = np.random.default_rng(0)
    results = {}
    for name, overrides in [
        ("col", None),
        (
            "blk",
            {"A": lambda a, b, e: BlockMajorLayout(a, b, e, 4),
             "C": lambda a, b, e: BlockMajorLayout(a, b, e, 4)},
        ),
    ]:
        arena = Arena(prog, {"N": 9}, layout_overrides=overrides)
        buf = arena.allocate()
        matmul.init(arena, buf, np.random.default_rng(42))
        compile_program(prog, arena).run(buf)
        results[name] = arena.get_array(buf, "C")
    assert np.allclose(results["col"], results["blk"])
