"""Differential tests: vectorized replay vs the per-access oracle.

The reference :class:`MemoryHierarchy` is the ground truth; the replay
engine must match its hit/miss/writeback counters *exactly* — on random
traces over a spread of cache geometries (hypothesis), and end to end on
the paper's benchmark kernels through :func:`simulate`.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.experiments.harness as harness
from repro.engine.metrics import METRICS
from repro.experiments.harness import SweepPoint, simulate, simulate_sweep
from repro.kernels import adi, cholesky, gmtry, matmul, qr
from repro.memsim import CacheLevel, MemoryHierarchy, _native, replay_encoded
from repro.memsim.cost import SP2_SCALED, TINY, MachineSpec
from repro.memsim.trace import TraceStore

ENGINES = ["numpy"] + (["native"] if _native.load() is not None else [])

# (size, line, assoc, latency) per level: direct-mapped, fully
# associative, and multi-level shapes with growing line sizes.
GEOMETRIES = [
    [(16, 2, 2, 1)],
    [(8, 1, 1, 1)],  # direct-mapped
    [(8, 2, 4, 1)],  # fully associative (one set)
    [(16, 2, 2, 1), (64, 4, 4, 10)],
    [(8, 1, 1, 1), (32, 2, 2, 5), (128, 4, 4, 20)],
    [(16, 4, 4, 1), (32, 4, 8, 7)],  # fully associative L2
]


def _hierarchy(geometry):
    return MemoryHierarchy(
        [CacheLevel(f"L{i + 1}", *spec) for i, spec in enumerate(geometry)],
        memory_latency=100,
    )


def _encode(events):
    return np.array([a * 2 + int(w) for a, w in events], dtype=np.int64)


@pytest.mark.parametrize("geometry", GEOMETRIES)
def test_replay_empty_trace(geometry):
    result = replay_encoded(np.empty(0, dtype=np.int64), _hierarchy(geometry))
    assert result.stats() == _hierarchy(geometry).stats()
    assert result.access_cycles() == 0


@settings(max_examples=80, deadline=None)
@given(
    events=st.lists(st.tuples(st.integers(0, 200), st.booleans()), max_size=300),
    index=st.integers(0, len(GEOMETRIES) - 1),
)
def test_replay_matches_oracle_on_random_traces(events, index):
    geometry = GEOMETRIES[index]
    oracle = _hierarchy(geometry)
    for addr, write in events:
        oracle.access(addr, write)
    for engine in ENGINES:
        result = replay_encoded(_encode(events), _hierarchy(geometry), engine=engine)
        assert result.stats() == oracle.stats()
        assert result.access_cycles() == oracle.access_cycles()
        assert result.writeback_traffic() == oracle.writeback_traffic()


def test_replay_rejects_unknown_engine():
    with pytest.raises(ValueError, match="replay engine"):
        replay_encoded(np.empty(0, dtype=np.int64), _hierarchy(GEOMETRIES[0]),
                       engine="fortran")


def test_replay_falls_back_without_native_kernel(monkeypatch):
    events = [(a % 40, a % 3 == 0) for a in range(300)]
    reference = replay_encoded(_encode(events), _hierarchy(GEOMETRIES[3]),
                               engine="numpy")
    monkeypatch.setenv("REPRO_MEMSIM_NATIVE", "0")
    _native.reset()
    try:
        assert _native.load() is None
        fallback = replay_encoded(_encode(events), _hierarchy(GEOMETRIES[3]))
        assert fallback.stats() == reference.stats()
        with pytest.raises(RuntimeError, match="no C toolchain"):
            replay_encoded(_encode(events), _hierarchy(GEOMETRIES[3]),
                           engine="native")
    finally:
        _native.reset()


KERNELS = [
    ("cholesky-right", cholesky.program("right"), {"N": 16}, cholesky.init),
    ("cholesky-left", cholesky.program("left"), {"N": 16}, cholesky.init),
    ("matmul", matmul.program(), {"N": 12}, matmul.init),
    ("qr", qr.program(), {"N": 10}, qr.init),
    ("gmtry", gmtry.program(), {"N": 10}, gmtry.init),
    ("adi", adi.program(), {"n": 12}, adi.init),
]


@pytest.mark.parametrize("machine", [TINY, SP2_SCALED], ids=lambda m: m.name)
@pytest.mark.parametrize(
    "name,program,env,init", KERNELS, ids=[k[0] for k in KERNELS]
)
def test_paper_kernels_replay_bit_identical(name, program, env, init, machine):
    reference = simulate(
        program, env, machine, init, variant=name, replay=False, seed=3
    )
    replayed = simulate(
        program, env, machine, init, variant=name, replay=True,
        trace_store=TraceStore(), seed=3,
    )
    # Full measurement equality: stats, flops, cycles, seconds, mflops.
    assert replayed == reference


@pytest.mark.skipif(len(ENGINES) < 2, reason="no C toolchain for the native engine")
@pytest.mark.parametrize("machine", [TINY, SP2_SCALED], ids=lambda m: m.name)
def test_kernel_trace_engines_agree(machine):
    from repro.backends import compile_program
    from repro.memsim import Arena
    from repro.memsim.replay import replay_trace

    program = cholesky.program("right")
    arena = Arena(program, {"N": 16})
    buf = arena.allocate()
    cholesky.init(arena, buf, np.random.default_rng(0))
    trace = compile_program(program, arena, trace="capture").run(buf).trace
    numpy_result = replay_trace(trace, machine, engine="numpy")
    native_result = replay_trace(trace, machine, engine="native")
    assert native_result.stats() == numpy_result.stats()
    assert native_result.access_cycles() == numpy_result.access_cycles()


def test_geometry_sweep_captures_once(tmp_path):
    program = cholesky.program("right")
    machines = [
        MachineSpec(f"abl-a{assoc}", [("L1", 128, 4, assoc, 1)], memory_latency=50)
        for assoc in (1, 2, 4)
    ]
    points = [
        SweepPoint(program, {"N": 20}, machine, cholesky.init, machine.name,
                   options={"seed": 0})
        for machine in machines
    ]
    store = TraceStore(root=tmp_path / "traces")
    before = METRICS.get("memsim.trace_capture")
    cold = simulate_sweep(points, trace_store=store)
    # Three geometries, one execution: the trace is captured exactly once.
    assert METRICS.get("memsim.trace_capture") == before + 1
    assert len({m.stats["L1_misses"] for m in cold}) > 1  # geometries differ


def test_warm_store_resimulates_without_executing(tmp_path, monkeypatch):
    program = cholesky.program("right")
    machines = [
        MachineSpec(f"abl-a{assoc}", [("L1", 128, 4, assoc, 1)], memory_latency=50)
        for assoc in (1, 2, 4)
    ]
    points = [
        SweepPoint(program, {"N": 20}, machine, cholesky.init, machine.name,
                   options={"seed": 0})
        for machine in machines
    ]
    root = tmp_path / "traces"
    cold = simulate_sweep(points, trace_store=TraceStore(root=root))

    # A fresh store instance over the same disk root (a new process,
    # effectively) re-simulates the sweep with zero program executions:
    # compilation itself is stubbed out to prove it is never reached.
    def explode(*args, **kwargs):
        raise AssertionError("program was compiled/executed on the warm path")

    monkeypatch.setattr(harness, "compile_program", explode)
    before = METRICS.get("memsim.trace_capture")
    warm = simulate_sweep(points, trace_store=TraceStore(root=root))
    assert METRICS.get("memsim.trace_capture") == before
    assert [m.row() for m in warm] == [m.row() for m in cold]
    assert warm == cold
