"""Cache level and hierarchy unit + property tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memsim import CacheLevel, MemoryHierarchy


def test_cache_basic_hit_miss():
    c = CacheLevel("L1", size_elems=16, line_elems=2, assoc=2, latency=1)
    assert not c.access(0)  # cold miss
    assert c.access(0)  # hit
    assert c.access(1)  # same line
    assert not c.access(2)  # next line


def test_cache_lru_eviction():
    # 1 set x 2 ways of 1-element lines.
    c = CacheLevel("L1", size_elems=2, line_elems=1, assoc=2, latency=1)
    c.access(0)
    c.access(1)
    c.access(0)  # 0 is now MRU
    c.access(2)  # evicts 1 (LRU)
    assert c.access(0)
    assert not c.access(1)


def test_cache_set_mapping():
    # 2 sets, direct mapped, line 1: addresses 0,2 map to set 0; 1,3 to set 1.
    c = CacheLevel("L1", size_elems=2, line_elems=1, assoc=1, latency=1)
    c.access(0)
    c.access(1)
    assert c.access(0) and c.access(1)
    c.access(2)  # evicts 0
    assert not c.access(0)
    assert c.access(1)


def test_cache_validation():
    with pytest.raises(ValueError):
        CacheLevel("L1", size_elems=10, line_elems=3, assoc=1, latency=1)
    with pytest.raises(ValueError):
        CacheLevel("L1", size_elems=9, line_elems=2, assoc=2, latency=1)


def test_hierarchy_counters_and_cycles():
    h = MemoryHierarchy(
        [CacheLevel("L1", 4, 1, 2, 1), CacheLevel("L2", 16, 1, 2, 10)], memory_latency=100
    )
    h.access(0)  # miss everywhere: 1 + 10 + 100
    assert h.access(0) == 1  # L1 hit
    stats = h.stats()
    assert stats["accesses"] == 2
    assert stats["L1_hits"] == 1 and stats["L1_misses"] == 1
    assert stats["memory_accesses"] == 1
    assert h.access_cycles() == 2 * 1 + 1 * 10 + 1 * 100


def test_hierarchy_reset():
    h = MemoryHierarchy([CacheLevel("L1", 4, 1, 2, 1)], memory_latency=10)
    h.access(0)
    h.reset()
    assert h.total_accesses == 0
    assert not h.levels[0].sets[0]


@settings(max_examples=30, deadline=None)
@given(st.lists(st.integers(0, 63), min_size=1, max_size=300))
def test_cache_invariants(addresses):
    c = CacheLevel("L1", size_elems=16, line_elems=2, assoc=2, latency=1)
    for a in addresses:
        c.access(a)
    assert c.hits + c.misses == len(addresses)
    assert 0 <= c.miss_ratio() <= 1
    # No set may exceed associativity.
    assert all(len(s) <= c.assoc for s in c.sets)


@settings(max_examples=30, deadline=None)
@given(st.lists(st.integers(0, 255), min_size=1, max_size=200))
def test_bigger_cache_never_more_misses_fully_assoc(addresses):
    """With full associativity and LRU, misses are monotone in capacity."""
    small = CacheLevel("s", size_elems=8, line_elems=1, assoc=8, latency=1)
    large = CacheLevel("l", size_elems=32, line_elems=1, assoc=32, latency=1)
    for a in addresses:
        small.access(a)
        large.access(a)
    assert large.misses <= small.misses


def test_sequential_scan_spatial_locality():
    c = CacheLevel("L1", size_elems=64, line_elems=4, assoc=4, latency=1)
    for a in range(64):
        c.access(a)
    # One miss per 4-element line.
    assert c.misses == 16
    assert c.hits == 48


def test_writeback_accounting():
    c = CacheLevel("L1", size_elems=2, line_elems=1, assoc=2, latency=1)
    c.access(0, write=True)
    c.access(1)
    c.access(2)  # evicts dirty line 0 -> one writeback
    assert c.writebacks == 1
    c.access(3)  # evicts clean line 1 -> no writeback
    assert c.writebacks == 1


def test_write_hit_marks_dirty():
    c = CacheLevel("L1", size_elems=2, line_elems=1, assoc=2, latency=1)
    c.access(0)  # clean fill
    c.access(0, write=True)  # dirtied on hit
    c.access(1)
    c.access(2)  # evict 0 (LRU) -> writeback
    assert c.writebacks == 1


def test_hierarchy_reports_writebacks():
    h = MemoryHierarchy([CacheLevel("L1", 2, 1, 2, 1)], memory_latency=10)
    h.access(0, write=True)
    h.access(1, write=True)
    h.access(2)
    stats = h.stats()
    assert stats["writebacks"] == 1
    assert h.writeback_traffic() == 1


def test_writeback_propagates_through_hierarchy():
    """A dirty line evicted from L1 lands in L2 (marked dirty there), and
    only reaches memory when L2 evicts it in turn."""
    h = MemoryHierarchy(
        [CacheLevel("L1", 2, 1, 2, 1), CacheLevel("L2", 8, 1, 8, 10)],
        memory_latency=100,
    )
    h.access(0, write=True)  # dirty in L1 (and installed in L2)
    h.access(1)
    h.access(2)  # L1 evicts dirty 0 -> absorbed by L2, not memory
    assert h.memory_writebacks == 0
    assert h.levels[0].writebacks == 1
    # Now flood L2 so line 0 is evicted from it too.
    for a in range(3, 12):
        h.access(a)
    assert h.memory_writebacks == 1
