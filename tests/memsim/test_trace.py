"""Trace capture, fingerprints and the content-addressed trace store."""

import numpy as np
import pytest

from repro.backends import compile_program
from repro.engine.metrics import METRICS
from repro.ir import parse_program
from repro.memsim import Arena, RowMajorLayout, Trace, TraceBuffer, TraceStore, trace_fingerprint

STREAM = """
program s(N)
array A[N]
array B[N]
do I = 1, N
  S1: A[I] = B[I] + A[I]
"""


class Recorder:
    def __init__(self):
        self.log = []

    def access(self, addr, write=False):
        self.log.append((addr, write))
        return 0


def _capture(program, env, chunk_size=None):
    arena = Arena(program, env)
    sink = TraceBuffer(chunk_size) if chunk_size else None
    result = compile_program(program, arena, trace="capture").run(
        arena.allocate(), sink=sink
    )
    return arena, result


def test_capture_matches_callback_trace():
    p = parse_program(STREAM)
    arena = Arena(p, {"N": 7})
    rec = Recorder()
    compile_program(p, arena, trace=True).run(arena.allocate(), mem=rec)
    _, result = _capture(p, {"N": 7})
    assert result.trace.dtype == np.int64
    assert result.trace.tolist() == [a * 2 + int(w) for a, w in rec.log]


def test_capture_crosses_chunk_boundaries():
    # 3 accesses per instance, 5-word chunks: every chunk seals partially
    # full, so the flush path is exercised repeatedly.
    p = parse_program(STREAM)
    arena = Arena(p, {"N": 20})
    rec = Recorder()
    compile_program(p, arena, trace=True).run(arena.allocate(), mem=rec)
    _, result = _capture(p, {"N": 20}, chunk_size=5)
    assert result.trace.tolist() == [a * 2 + int(w) for a, w in rec.log]


def test_capture_rejects_undersized_chunks():
    p = parse_program(STREAM)
    arena = Arena(p, {"N": 4})
    compiled = compile_program(p, arena, trace="capture")
    with pytest.raises(ValueError, match="chunks hold 2 words"):
        compiled.run(arena.allocate(), sink=TraceBuffer(2))


def test_unknown_trace_mode_rejected():
    p = parse_program(STREAM)
    with pytest.raises(ValueError, match="trace mode"):
        compile_program(p, Arena(p, {"N": 2}), trace="record")


def test_trace_decode_properties():
    trace = Trace(np.array([8, 13], dtype=np.int64), {"S1": 1}, {"S1": 1})
    assert len(trace) == 2
    assert trace.addresses.tolist() == [4, 6]
    assert trace.writes.tolist() == [False, True]


def test_trace_fingerprint_keys_program_env_and_layout():
    p = parse_program(
        """
program g(N)
array A[N,N]
do I = 1, N
  S1: A[I,I] = A[I,I] + 1
"""
    )
    arena = Arena(p, {"N": 8})
    fp = trace_fingerprint(p, {"N": 8}, arena)
    assert fp == trace_fingerprint(p, {"N": 8}, Arena(p, {"N": 8}))
    assert fp != trace_fingerprint(p, {"N": 9}, Arena(p, {"N": 9}))
    remapped = Arena(p, {"N": 8}, layout_overrides={"A": RowMajorLayout})
    assert fp != trace_fingerprint(p, {"N": 8}, remapped)


def test_store_memory_roundtrip_and_metrics():
    store = TraceStore()
    trace = Trace(np.arange(4, dtype=np.int64), {"S1": 2}, {"S1": 1})
    assert store.get("ab" * 32) is None
    store.put("ab" * 32, trace)
    before = METRICS.get("memsim.trace_cache_hit")
    assert store.get("ab" * 32) is trace
    assert METRICS.get("memsim.trace_cache_hit") == before + 1


def test_store_capacity_evicts_lru():
    store = TraceStore(capacity=2)
    traces = [
        Trace(np.array([i], dtype=np.int64), {"S1": 1}, {"S1": 1}) for i in range(3)
    ]
    for i, trace in enumerate(traces):
        store.put(f"{i:064d}", trace)
    assert store.get(f"{0:064d}") is None  # evicted
    assert store.get(f"{2:064d}") is traces[2]


def test_store_disk_roundtrip(tmp_path):
    root = tmp_path / "traces"
    trace = Trace(
        np.array([2, 5, 8], dtype=np.int64), {"S2": 3, "S1": 1}, {"S2": 2, "S1": 0}
    )
    fp = "cd" * 32
    TraceStore(root=root).put(fp, trace)
    assert (root / fp[:2] / f"{fp}.npz").is_file()

    fresh = TraceStore(root=root)  # a separate process would see the same
    loaded = fresh.get(fp)
    assert loaded is not None
    assert loaded.encoded.tolist() == [2, 5, 8]
    assert loaded.counts == {"S2": 3, "S1": 1}
    assert list(loaded.counts) == ["S2", "S1"]  # emission order preserved
    assert loaded.flops_per_statement == {"S2": 2, "S1": 0}


def test_store_corrupt_disk_entry_reads_as_miss(tmp_path):
    root = tmp_path / "traces"
    fp = "ef" * 32
    path = root / fp[:2] / f"{fp}.npz"
    path.parent.mkdir(parents=True)
    path.write_bytes(b"not an npz archive")
    assert TraceStore(root=root).get(fp) is None


def test_store_validation():
    with pytest.raises(ValueError):
        TraceStore(capacity=0)
    with pytest.raises(ValueError):
        TraceBuffer(0)


def test_store_corrupt_entry_is_quarantined(tmp_path):
    from repro.engine.metrics import MetricsRegistry

    root = tmp_path / "traces"
    fp = "ab" * 32
    metrics = MetricsRegistry()
    store = TraceStore(root=root, metrics=metrics)
    store.put(fp, Trace(np.array([4, 7], dtype=np.int64), {"S1": 2}, {"S1": 1}))
    path = root / fp[:2] / f"{fp}.npz"
    path.write_bytes(b"scrambled")

    cold = TraceStore(root=root, metrics=metrics)
    assert cold.get(fp) is None
    assert metrics.get("memsim.trace_quarantined") == 1
    # Evidence moved aside; the slot reads as a clean miss afterwards.
    assert not path.exists()
    assert (root / "quarantine" / path.name).exists()
    assert cold.get(fp) is None
    assert metrics.get("memsim.trace_quarantined") == 1  # not re-quarantined


def test_store_checksum_tamper_is_quarantined(tmp_path):
    from repro.engine.metrics import MetricsRegistry

    root = tmp_path / "traces"
    fp = "cd" * 32
    metrics = MetricsRegistry()
    TraceStore(root=root, metrics=metrics).put(
        fp, Trace(np.array([4, 7], dtype=np.int64), {"S1": 2}, {"S1": 1})
    )
    path = root / fp[:2] / f"{fp}.npz"
    with np.load(path, allow_pickle=False) as data:
        payload = {name: data[name] for name in data.files}
    payload["counts"] = payload["counts"] + 1  # stale checksum now
    with open(path, "wb") as fh:
        np.savez_compressed(fh, **payload)

    cold = TraceStore(root=root, metrics=metrics)
    assert cold.get(fp) is None
    assert metrics.get("memsim.trace_quarantined") == 1


# -- the histogram tier ------------------------------------------------------------


def _profile(seed=0, size=300):
    from repro.memsim.reuse import compute_profile

    rng = np.random.default_rng(seed)
    encoded = (rng.integers(0, 64, size=size) * 2 + rng.integers(0, 2, size=size))
    return compute_profile(encoded.astype(np.int64), 1)


def test_histogram_fingerprint_keys_trace_and_line_size():
    from repro.memsim.trace import histogram_fingerprint

    fp = histogram_fingerprint("ab" * 32, 2)
    assert fp == histogram_fingerprint("ab" * 32, 2)  # stable
    assert fp != histogram_fingerprint("ab" * 32, 3)  # line size participates
    assert fp != histogram_fingerprint("cd" * 32, 2)  # trace participates


def test_trace_fingerprint_stable_across_chunked_flushes():
    """Chunking is a capture implementation detail: any chunk size yields
    the identical encoded trace, and therefore the identical
    content-addressed histogram."""
    from repro.memsim.reuse import profile_checksum
    from repro.memsim.trace import _trace_checksum

    p = parse_program(STREAM)
    _, whole = _capture(p, {"N": 20})
    _, chunked = _capture(p, {"N": 20}, chunk_size=5)
    assert chunked.trace.tolist() == whole.trace.tolist()
    args = (["S1"], np.array([20]), np.array([1]))
    assert _trace_checksum(chunked.trace, *args) == _trace_checksum(whole.trace, *args)

    from repro.memsim.reuse import compute_profile

    assert profile_checksum(compute_profile(chunked.trace, 1)) == profile_checksum(
        compute_profile(whole.trace, 1)
    )


def test_histogram_disk_roundtrip(tmp_path):
    from repro.engine.metrics import MetricsRegistry
    from repro.memsim.reuse import profile_checksum
    from repro.memsim.trace import histogram_fingerprint

    root = tmp_path / "traces"
    profile = _profile()
    hist_fp = histogram_fingerprint("ef" * 32, profile.line_shift)
    metrics = MetricsRegistry()
    TraceStore(root=root, metrics=metrics).put_profile(hist_fp, profile)
    assert (root / hist_fp[:2] / f"{hist_fp}.npz").is_file()

    fresh = TraceStore(root=root, metrics=metrics)
    loaded = fresh.get_profile(hist_fp)
    assert loaded is not None
    assert metrics.get("memsim.histogram_cache_hit") == 1
    assert profile_checksum(loaded) == profile_checksum(profile)
    for capacity in (1, 4, 16):
        assert loaded.misses_at(capacity) == profile.misses_at(capacity)
        assert loaded.writebacks_at(capacity) == profile.writebacks_at(capacity)
    # Second get serves from the memory LRU.
    assert fresh.get_profile(hist_fp) is loaded
    assert metrics.get("memsim.histogram_cache_hit") == 2


def test_histogram_tamper_is_quarantined(tmp_path):
    from repro.engine.metrics import MetricsRegistry
    from repro.memsim.trace import histogram_fingerprint

    root = tmp_path / "traces"
    profile = _profile()
    hist_fp = histogram_fingerprint("ab" * 32, profile.line_shift)
    metrics = MetricsRegistry()
    TraceStore(root=root, metrics=metrics).put_profile(hist_fp, profile)
    path = root / hist_fp[:2] / f"{hist_fp}.npz"
    with np.load(path, allow_pickle=False) as data:
        payload = {name: data[name] for name in data.files}
    payload["dist_counts"] = payload["dist_counts"] + 1  # stale checksum now
    with open(path, "wb") as fh:
        np.savez_compressed(fh, **payload)

    cold = TraceStore(root=root, metrics=metrics)
    assert cold.get_profile(hist_fp) is None
    assert metrics.get("memsim.histogram_quarantined") == 1
    # Evidence moved aside; the slot reads as a clean miss afterwards.
    assert not path.exists()
    assert (root / "quarantine" / path.name).exists()
    assert cold.get_profile(hist_fp) is None
    assert metrics.get("memsim.histogram_quarantined") == 1


def test_histogram_garbage_file_is_quarantined(tmp_path):
    from repro.engine.metrics import MetricsRegistry
    from repro.memsim.trace import histogram_fingerprint

    root = tmp_path / "traces"
    hist_fp = histogram_fingerprint("ab" * 32, 1)
    path = root / hist_fp[:2] / f"{hist_fp}.npz"
    path.parent.mkdir(parents=True)
    path.write_bytes(b"not an npz archive")
    metrics = MetricsRegistry()
    assert TraceStore(root=root, metrics=metrics).get_profile(hist_fp) is None
    assert metrics.get("memsim.histogram_quarantined") == 1


def test_profile_for_computes_once_then_serves_from_store(tmp_path):
    from repro.engine.metrics import METRICS as global_metrics

    root = tmp_path / "traces"
    rng = np.random.default_rng(7)
    encoded = (rng.integers(0, 64, size=400) * 2).astype(np.int64)
    loads = []

    def loader():
        loads.append(1)
        return encoded

    store = TraceStore(root=root)
    passes = global_metrics.get("memsim.histogram_pass")
    first = store.profile_for("ab" * 32, loader, 1)
    assert loads == [1]
    assert global_metrics.get("memsim.histogram_pass") == passes + 1

    # Warm in-memory: no recompute, no trace load.
    again = store.profile_for("ab" * 32, loader, 1)
    assert again is first and loads == [1]
    assert global_metrics.get("memsim.histogram_pass") == passes + 1

    # A fresh store over the same disk root (a new process, effectively)
    # serves the histogram without ever touching the trace.
    def explode():
        raise AssertionError("trace was loaded on the warm histogram path")

    cold = TraceStore(root=root).profile_for("ab" * 32, explode, 1)
    assert global_metrics.get("memsim.histogram_pass") == passes + 1
    from repro.memsim.reuse import profile_checksum

    assert profile_checksum(cold) == profile_checksum(first)


def test_profile_memory_lru_bounded():
    from repro.memsim.trace import histogram_fingerprint

    store = TraceStore(capacity=1)  # profile LRU holds 4 * capacity
    profile = _profile()
    fps = [histogram_fingerprint(f"{i:064d}", 1) for i in range(6)]
    for fp in fps:
        store.put_profile(fp, profile)
    held = [fp for fp in fps if store.get_profile(fp) is not None]
    assert held == fps[-4:]


def test_histogram_stats_gauges_and_hit_ratio():
    store = TraceStore()
    baseline = store.histogram_stats()
    assert baseline["entries"] == 0 and baseline["bytes"] == 0
    assert baseline["hit_ratio"] == 0.0

    from repro.memsim.trace import histogram_fingerprint

    fp = histogram_fingerprint("cd" * 32, 1)
    assert store.get_profile(fp) is None  # miss
    store.put_profile(fp, _profile())
    assert store.get_profile(fp) is not None  # hit

    stats = store.histogram_stats()
    assert stats["entries"] == 1
    assert stats["bytes"] > 0
    assert stats["hits"] >= 1 and stats["misses"] >= 1
    assert stats["hit_ratio"] == stats["hits"] / (stats["hits"] + stats["misses"])
    # The same numbers are published as gauges for METRICS.report().
    assert METRICS.gauges["memsim.histogram_store.entries"] == 1
    assert METRICS.gauges["memsim.histogram_store.bytes"] == stats["bytes"]


def test_family_store_roundtrip_and_tamper(tmp_path):
    from repro.kernels import matmul
    from repro.memsim.parametric import (
        anchor_envs,
        family_checksum,
        family_fingerprint,
        fit_family,
    )

    root = tmp_path / "traces"
    program = matmul.program()
    anchors = anchor_envs({"N": (6, 14)}, degree=2)
    family = fit_family(
        program, anchors, init=matmul.init, line_shifts=(2,),
        trace_store=TraceStore(root=root), degree=2,
    )
    # A fresh store over the same root (new process) loads the family
    # from disk, bit-identical.
    hits = METRICS.get("memsim.family_cache_hit")
    reloaded = fit_family(
        program, anchors, init=matmul.init, line_shifts=(2,),
        trace_store=TraceStore(root=root), degree=2, capture=False,
    )
    assert METRICS.get("memsim.family_cache_hit") == hits + 1
    assert family_checksum(reloaded) == family_checksum(family)

    # Corrupting the stored payload quarantines it instead of serving it.
    fp = family_fingerprint(
        program, ("N",), anchors, (2,), (), 2
    )
    payload = TraceStore(root=root)._path(fp)
    assert payload.exists()
    payload.write_bytes(b"garbage")
    refit = fit_family(
        program, anchors, init=matmul.init, line_shifts=(2,),
        trace_store=TraceStore(root=root), degree=2,
    )
    assert family_checksum(refit) == family_checksum(family)
