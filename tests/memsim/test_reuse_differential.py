"""Differential tests: the analytic cache model vs the replay engine.

The replay engine (itself differentially tested against the per-access
:class:`MemoryHierarchy` oracle) is the ground truth here.  For every
kernel in :mod:`repro.kernels` the analytic predictor must be bit-exact
on fully-associative LRU geometries — every counter, including
write-backs — and within the declared tolerance on set-associative
ones, with both stack-distance engines (NumPy and the native Fenwick
kernel).  A planted off-by-one mutation proves the differential
actually bites, and a sweep test pins the headline property: sweeping
many geometries analytically costs one capture and zero replays.
"""

import dataclasses

import numpy as np
import pytest

from repro.backends import compile_program
from repro.engine.metrics import METRICS
from repro.experiments.harness import SweepPoint, simulate, simulate_sweep
from repro.kernels import (
    adi,
    blocked_library,
    cholesky,
    gmtry,
    matmul,
    qr,
    relaxation,
    syrk,
    trisolve,
    trsm,
)
from repro.memsim import Arena, CacheLevel, MemoryHierarchy, _native
from repro.memsim.cost import SP2_SCALED, TINY, MachineSpec
from repro.memsim.replay import replay_encoded
from repro.memsim.reuse import compute_profile, predict, prediction_tolerance
from repro.memsim.trace import TraceStore

ENGINES = ["numpy"] + (["native"] if _native.load() is not None else [])

# One representative program per kernel module, at sizes small enough
# that the whole matrix (kernels x engines x geometries) stays fast.
KERNELS = [
    ("adi", adi.program(), {"n": 10}, adi.init),
    ("blocked-cholesky", blocked_library.blocked_cholesky(4), {"N": 11},
     cholesky.init),
    ("cholesky-right", cholesky.program("right"), {"N": 12}, cholesky.init),
    ("cholesky-left", cholesky.program("left"), {"N": 12}, cholesky.init),
    ("gmtry", gmtry.program(), {"N": 8}, gmtry.init),
    ("matmul", matmul.program(), {"N": 9}, matmul.init),
    ("qr", qr.program(), {"N": 8}, qr.init),
    ("relaxation-1d", relaxation.program("1d-time"), {"N": 24, "T": 6},
     relaxation.init_1d),
    ("syrk", syrk.program(), {"N": 9}, syrk.init),
    ("trisolve-forward", trisolve.program("forward"), {"N": 14},
     trisolve.init_forward),
    ("trsm", trsm.program(), {"N": 8, "M": 6}, trsm.init),
]
IDS = [k[0] for k in KERNELS]

# Fully-associative single-level geometries: (capacity lines, line bytes).
FA_GEOMETRIES = [(4, 2), (16, 2), (8, 4), (64, 4)]


def _capture(program, env, init):
    """Raw encoded trace (addr << 1 | write) of one execution."""
    arena = Arena(program, env)
    buf = arena.allocate()
    init(arena, buf, np.random.default_rng(0))
    return compile_program(program, arena, trace="capture").run(buf).trace


def _fa_hierarchy(capacity, line):
    return MemoryHierarchy(
        [CacheLevel("L1", capacity * line, line, capacity, 1)], memory_latency=50
    )


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("name,program,env,init", KERNELS, ids=IDS)
def test_kernel_analytic_fa_bit_exact(name, program, env, init, engine):
    """Every counter bit-exact on fully-associative LRU, both engines."""
    encoded = _capture(program, env, init)
    for capacity, line in FA_GEOMETRIES:
        shift = line.bit_length() - 1
        profile = compute_profile(encoded, shift, engine=engine)
        predicted = predict({shift: profile}, _fa_hierarchy(capacity, line))
        exact = replay_encoded(encoded, _fa_hierarchy(capacity, line),
                               engine="numpy")
        assert predicted.exact
        assert predicted.stats() == exact.stats(), (name, capacity, line)
        assert predicted.access_cycles() == exact.access_cycles()
        assert predicted.writeback_traffic() == exact.writeback_traffic()


@pytest.mark.parametrize(
    "machine,min_assoc", [(SP2_SCALED, 4), (TINY, 2)], ids=lambda m: getattr(m, "name", m)
)
@pytest.mark.parametrize("name,program,env,init", KERNELS, ids=IDS)
def test_kernel_analytic_set_assoc_within_tolerance(
    name, program, env, init, machine, min_assoc
):
    """Set-associative predictions stay within the declared tolerance."""
    encoded = _capture(program, env, init)
    hierarchy = machine.hierarchy()
    shifts = sorted({level.line_shift for level in hierarchy.levels})
    profiles = {s: compute_profile(encoded, s) for s in shifts}
    predicted = predict(profiles, machine.hierarchy())
    exact = replay_encoded(encoded, machine.hierarchy(), engine="numpy")
    assert not predicted.exact
    tol = prediction_tolerance(len(encoded), min_assoc)
    want, got = exact.stats(), predicted.stats()
    for level in hierarchy.levels:
        gap = abs(got[f"{level.name}_misses"] - want[f"{level.name}_misses"])
        assert gap <= tol, (name, level.name, gap, tol)


FA_MACHINE = MachineSpec(
    "fa-l1", levels=[("L1", 64, 4, 16, 1)], memory_latency=60
)


@pytest.mark.parametrize(
    "name,program,env,init", KERNELS[:4], ids=IDS[:4]
)
def test_simulate_fidelity_analytic_matches_replay_on_fa(name, program, env, init):
    """End to end through simulate(): fidelity="analytic" reproduces the
    replay measurement bit-for-bit on a fully-associative machine —
    stats, cycles, seconds, mflops."""
    store = TraceStore()
    replayed = simulate(
        program, env, FA_MACHINE, init, variant=name, fidelity="replay",
        trace_store=store, seed=1,
    )
    analytic = simulate(
        program, env, FA_MACHINE, init, variant=name, fidelity="analytic",
        trace_store=store, seed=1,
    )
    assert analytic == replayed


def test_analytic_sweep_one_capture_zero_replays(tmp_path):
    """The headline economics: a geometry ablation in analytic mode costs
    exactly one trace capture and zero replays, however many geometries
    are swept (the acceptance criterion for this tier)."""
    program = cholesky.program("right")
    machines = [
        MachineSpec(f"abl-c{capacity}", [("L1", capacity * 4, 4, capacity, 1)],
                    memory_latency=50)
        for capacity in (2, 4, 8, 16, 32, 64, 128)
    ]
    points = [
        SweepPoint(program, {"N": 16}, machine, cholesky.init, machine.name,
                   options={"seed": 0, "fidelity": "analytic"})
        for machine in machines
    ]
    captures = METRICS.get("memsim.trace_capture")
    replays = METRICS.get("memsim.trace_replay")
    predictions = METRICS.get("memsim.analytic_predict")
    results = simulate_sweep(points, trace_store=TraceStore(root=tmp_path / "traces"))
    assert METRICS.get("memsim.trace_capture") == captures + 1
    assert METRICS.get("memsim.trace_replay") == replays
    assert METRICS.get("memsim.analytic_predict") == predictions + len(machines)
    # The sweep is real: geometries disagree, and misses shrink with size.
    misses = [m.stats["L1_misses"] for m in results]
    assert len(set(misses)) > 1
    assert misses == sorted(misses, reverse=True)
    # Every prediction here is fully associative: covered by the
    # bit-exactness guarantee.
    assert all(m.stats["accesses"] == results[0].stats["accesses"] for m in results)


@pytest.mark.parametrize("name,program,env,init", KERNELS[:6], ids=IDS[:6])
@pytest.mark.parametrize("num_sets,assoc", [(4, 2), (16, 2), (32, 4)])
def test_ladder_level_one_misses_are_exact(name, program, env, init, num_sets, assoc):
    """The conflict-aware set-distance ladder is *exact* at level 1 — a
    set-associative LRU cache with S sets is S independent FA caches
    over line residue classes, so the set-local stack distance gives
    bit-exact miss counts, not a Smith/Hill estimate."""
    encoded = _capture(program, env, init)
    line = 4
    shift = line.bit_length() - 1
    hierarchy = MemoryHierarchy(
        [CacheLevel("L1", num_sets * assoc * line, line, assoc, 1)],
        memory_latency=50,
    )
    assert hierarchy.levels[0].num_sets == num_sets
    exact_ladders = METRICS.get("memsim.conflict_exact")
    profile = compute_profile(encoded, shift, set_counts=[num_sets])
    predicted = predict({shift: profile}, hierarchy)
    exact = replay_encoded(encoded, hierarchy, engine="numpy")
    assert METRICS.get("memsim.conflict_exact") == exact_ladders + 1
    assert (
        predicted.stats()["L1_misses"] == exact.stats()["L1_misses"]
    ), (name, num_sets, assoc)


def test_ladder_without_entry_falls_back_to_binomial():
    """A set count with no fitted ladder entry goes through the
    Smith/Hill binomial estimate, and the fallback counter says so."""
    encoded = _capture(matmul.program(), {"N": 9}, matmul.init)
    profile = compute_profile(encoded, 2)  # no set_counts requested
    hierarchy = MemoryHierarchy(
        [CacheLevel("L1", 128, 4, 2, 1)], memory_latency=50
    )
    fallbacks = METRICS.get("memsim.conflict_fallback")
    predict({2: profile}, hierarchy)
    assert METRICS.get("memsim.conflict_fallback") == fallbacks + 1


def test_planted_bad_set_index_is_caught_without_fuzzing():
    """The conflict-aware differential bites: a skewed set-index map
    (line>>1 instead of line) shifts the set-distance ladder's conflict
    distribution and the memsim oracle's exact level-1 gating reports
    it.  Fully-associative counters are untouched by this mutation, so
    only the ladder can see it."""
    from repro.fuzz import run_case_payload
    from repro.fuzz.cases import case_from_shackle

    program = matmul.program()
    case = case_from_shackle(matmul.c_shackle(program, 2), {"N": 4},
                             checks=("memsim",))
    clean = run_case_payload(case.to_payload())
    assert clean["failures"] == []
    mutated = dataclasses.replace(case, mutation="conflict-bad-set-index")
    result = run_case_payload(mutated.to_payload())
    assert result["failures"], "skewed set indexing went undetected"
    assert {f["check"] for f in result["failures"]} == {"memsim"}


def test_planted_off_by_one_is_caught_without_fuzzing():
    """The memsim oracle bites: an off-by-one in the reuse interval
    (inclusive endpoint count) flips hit/miss verdicts and the
    differential reports it, attributed to the memsim check."""
    from repro.fuzz import run_case_payload
    from repro.fuzz.cases import case_from_shackle

    program = matmul.program()
    case = case_from_shackle(matmul.c_shackle(program, 2), {"N": 4},
                             checks=("memsim",))
    clean = run_case_payload(case.to_payload())
    assert clean["failures"] == []
    mutated = dataclasses.replace(case, mutation="reuse-off-by-one")
    result = run_case_payload(mutated.to_payload())
    assert result["failures"], "off-by-one reuse distances went undetected"
    assert {f["check"] for f in result["failures"]} == {"memsim"}
