"""Unit tests for the analytic cache model (reuse-distance histograms).

The heavyweight differential against the replay engine lives in
``test_reuse_differential.py``; this file pins the model's building
blocks: stack distances (both engines), the histogram pass, the exact
write-back accounting, per-array attribution, and serialization.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memsim import _native
from repro.memsim.cache import CacheLevel
from repro.memsim.hierarchy import MemoryHierarchy
from repro.memsim.replay import replay_encoded
from repro.memsim.reuse import (
    LineProfile,
    _distances_numpy,
    _prev_indices,
    compute_profile,
    predict,
    prediction_tolerance,
    profile_checksum,
    profile_from_arrays,
    profile_to_arrays,
    stack_distances,
)

lines64 = lambda *xs: np.array(xs, dtype=np.int64)  # noqa: E731


def fa_hierarchy(capacity_lines: int, line: int = 2, latency: int = 1):
    """A single fully-associative level of ``capacity_lines`` lines."""
    return MemoryHierarchy(
        [CacheLevel("L1", line * capacity_lines, line, capacity_lines, latency)], 10
    )


# -- stack distances ---------------------------------------------------------------


def test_hand_checked_distances():
    # A B A: one distinct line between the As.
    assert stack_distances(lines64(0, 1, 0)).tolist() == [-1, -1, 1]
    # A B C A: two distinct lines.
    assert stack_distances(lines64(0, 1, 2, 0)).tolist() == [-1, -1, -1, 2]
    # A B C B A: the inner B reuse shields nothing — A still saw {B, C}.
    assert stack_distances(lines64(0, 1, 2, 1, 0)).tolist() == [-1, -1, -1, 1, 2]
    # Repeated same line: distance 0 (no distinct lines between).
    assert stack_distances(lines64(7, 7, 7)).tolist() == [-1, 0, 0]


def test_empty_and_singleton():
    assert stack_distances(lines64()).tolist() == []
    assert stack_distances(lines64(42)).tolist() == [-1]


def test_numpy_engine_matches_native():
    if _native.load() is None or not hasattr(_native.load(), "repro_stack_distances"):
        pytest.skip("no native kernel available")
    rng = np.random.default_rng(0)
    for _ in range(50):
        lines = rng.integers(0, 50, size=int(rng.integers(0, 400))).astype(np.int64)
        assert np.array_equal(
            stack_distances(lines, engine="numpy"),
            stack_distances(lines, engine="native"),
        )


def test_unknown_engine_rejected():
    with pytest.raises(ValueError, match="engine"):
        stack_distances(lines64(1, 2), engine="quantum")


@settings(max_examples=60, deadline=None)
@given(st.lists(st.integers(0, 30), max_size=200))
def test_distances_match_reference_lru_stack(seq):
    """Distances agree with a direct LRU-stack reference simulation."""
    lines = np.array(seq, dtype=np.int64)
    got = stack_distances(lines, engine="numpy").tolist()
    stack: list[int] = []
    want = []
    for line in seq:
        if line in stack:
            depth = stack.index(line)
            want.append(depth)
            stack.pop(depth)
        else:
            want.append(-1)
        stack.insert(0, line)
    assert got == want


def test_prev_indices():
    prev = _prev_indices(lines64(5, 3, 5, 5, 3))
    assert prev.tolist() == [-1, -1, 0, 2, 1]
    assert _distances_numpy(prev).tolist() == [-1, -1, 1, 0, 1]


# -- the histogram pass ------------------------------------------------------------


def test_misses_at_matches_stack_property():
    # Trace (element addrs, line=1): A B A B C A.
    encoded = lines64(0, 1, 0, 1, 2, 0) * 2
    profile = compute_profile(encoded, 0)
    assert profile.total == 6 and profile.cold == 3
    # distances: -1 -1 1 1 -1 2
    assert profile.histogram() == {1: 2, 2: 1}
    assert profile.misses_at(1) == 6  # capacity 1: everything misses
    assert profile.misses_at(2) == 4  # d=1 hits
    assert profile.misses_at(3) == 3  # only cold misses remain
    assert profile.misses_at(100) == 3


def test_run_collapse_folds_zero_distances():
    # A A A B B: runs collapse; 3 run-hits at distance 0.
    encoded = lines64(0, 0, 0, 1, 1) * 2
    profile = compute_profile(encoded, 0)
    assert profile.total == 5 and profile.cold == 2
    assert profile.histogram() == {0: 3}
    assert profile.misses_at(1) == 2  # runs hit even at capacity 1


def test_writebacks_match_simulator_across_capacities():
    rng = np.random.default_rng(3)
    for _ in range(40):
        n = int(rng.integers(1, 300))
        addrs = rng.integers(0, 60, size=n).astype(np.int64)
        writes = rng.integers(0, 2, size=n).astype(np.int64)
        encoded = addrs * 2 + writes
        profile = compute_profile(encoded, 1)
        for capacity in (1, 2, 3, 5, 8, 16, 64):
            hierarchy = fa_hierarchy(capacity)
            result = replay_encoded(encoded, hierarchy, engine="numpy")
            assert profile.writebacks_at(capacity) == result.stats()["writebacks"]
            assert profile.misses_at(capacity) == result.stats()["L1_misses"]


def test_dirty_at_end_never_writes_back():
    # One write, never evicted: the simulator does no final flush.
    encoded = lines64(0 * 2 + 1)
    profile = compute_profile(encoded, 0)
    assert profile.writebacks_at(1) == 0


def test_per_array_attribution_sums_to_total():
    rng = np.random.default_rng(4)
    ranges = [("A", 0, 40), ("B", 40, 100), ("C", 100, 160)]
    addrs = rng.integers(0, 160, size=500).astype(np.int64)
    encoded = addrs * 2
    profile = compute_profile(encoded, 1, array_ranges=ranges)
    assert profile.array_names == ("A", "B", "C")
    assert int(profile.array_total.sum()) == 500
    for capacity in (1, 4, 16, 64):
        per = profile.per_array_misses(capacity)
        assert sum(per.values()) == profile.misses_at(capacity)


def test_reuse_intervals_bucketed():
    # A x7 B A: the A reuse gap is 8 collapsed... in original time 9-0=9.
    encoded = lines64(0, 1, 2, 3, 4, 5, 6, 7, 8, 0) * 2
    profile = compute_profile(encoded, 0)
    assert int(profile.interval_log2.sum()) == 1
    assert profile.interval_log2[3] == 1  # log2(9) -> bucket 3


def test_empty_trace_profile():
    profile = compute_profile(lines64(), 2)
    assert profile.total == 0 and profile.cold == 0
    assert profile.misses_at(4) == 0 and profile.writebacks_at(4) == 0


# -- prediction --------------------------------------------------------------------


@settings(max_examples=40, deadline=None)
@given(
    st.lists(st.tuples(st.integers(0, 80), st.booleans()), max_size=250),
    st.sampled_from([1, 2, 4]),
    st.sampled_from([1, 2, 4, 8, 16]),
)
def test_fa_prediction_bit_exact(events, line, capacity):
    """Single-level fully-associative LRU: every counter bit-exact."""
    encoded = np.array([a * 2 + w for a, w in events], dtype=np.int64)
    shift = line.bit_length() - 1
    hierarchy = fa_hierarchy(capacity, line=line)
    exact = replay_encoded(encoded, hierarchy, engine="numpy")
    predicted = predict(
        {shift: compute_profile(encoded, shift)}, fa_hierarchy(capacity, line=line)
    )
    assert predicted.exact
    assert predicted.stats() == exact.stats()
    assert predicted.access_cycles() == exact.access_cycles()


def test_multi_level_l1_exact_l2_within_tolerance():
    rng = np.random.default_rng(5)
    encoded = (rng.integers(0, 200, size=600) * 2 + rng.integers(0, 2, size=600)).astype(
        np.int64
    )

    def mk():
        return MemoryHierarchy(
            [CacheLevel("L1", 32, 2, 16, 1), CacheLevel("L2", 256, 4, 8, 10)], 100
        )

    exact = replay_encoded(encoded, mk(), engine="numpy")
    profiles = {shift: compute_profile(encoded, shift) for shift in (1, 2)}
    predicted = predict(profiles, mk())
    assert not predicted.exact
    want, got = exact.stats(), predicted.stats()
    # L1 is fully associative and sees the whole trace: bit-exact.
    assert got["L1_hits"] == want["L1_hits"] and got["L1_misses"] == want["L1_misses"]
    # L2 uses the standalone approximation: declared tolerance.
    tol = prediction_tolerance(len(encoded), 8)
    assert abs(got["L2_misses"] - want["L2_misses"]) <= tol


def test_analytic_result_metrics():
    from repro.engine.metrics import MetricsRegistry

    encoded = lines64(0, 1, 0) * 2
    predicted = predict({0: compute_profile(encoded, 0)}, fa_hierarchy(2, line=1))
    registry = MetricsRegistry()
    predicted.record_metrics(registry)
    assert registry.get("memsim.analytic_hits") == 1
    assert registry.get("memsim.analytic_misses") == 2
    assert registry.get("memsim.analytic_exact") == 1


# -- serialization -----------------------------------------------------------------


def test_profile_round_trip_and_checksum():
    rng = np.random.default_rng(6)
    encoded = (rng.integers(0, 90, size=400) * 2 + rng.integers(0, 2, size=400)).astype(
        np.int64
    )
    profile = compute_profile(encoded, 1, array_ranges=[("A", 0, 50), ("B", 50, 90)])
    restored = profile_from_arrays(profile_to_arrays(profile))
    assert isinstance(restored, LineProfile)
    assert profile_checksum(restored) == profile_checksum(profile)
    for capacity in (1, 3, 9, 33):
        assert restored.misses_at(capacity) == profile.misses_at(capacity)
        assert restored.writebacks_at(capacity) == profile.writebacks_at(capacity)
        assert restored.per_array_misses(capacity) == profile.per_array_misses(capacity)
    # The checksum is content-sensitive.
    restored.dist_counts = restored.dist_counts.copy()
    if len(restored.dist_counts):
        restored.dist_counts[0] += 1
        assert profile_checksum(restored) != profile_checksum(profile)
