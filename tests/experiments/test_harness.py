"""Unit tests for the experiment harness and reporting."""

import io

import pytest

from repro.experiments import Measurement, format_series, print_table, simulate
from repro.experiments.report import speedup_summary
from repro.kernels import matmul
from repro.memsim.cost import SP2_SCALED, TINY


def test_simulate_basic():
    prog = matmul.program()
    m = simulate(prog, {"N": 8}, SP2_SCALED, matmul.init, variant="orig")
    assert m.flops == matmul.flops(8)
    assert m.stats["accesses"] == 4 * 8 ** 3
    assert m.mflops > 0
    assert m.cycles > 0
    assert m.row()["variant"] == "orig"


def test_simulate_check_fn_passes_and_fails():
    prog = matmul.program()
    m = simulate(
        prog, {"N": 6}, TINY, matmul.init, variant="ok", check_fn=matmul.check
    )
    assert m.flops == matmul.flops(6)

    def bad_check(arena, initial, final):
        return False

    with pytest.raises(AssertionError, match="wrong results"):
        simulate(prog, {"N": 6}, TINY, matmul.init, variant="bad", check_fn=bad_check)


def test_cpi_map_changes_cycles_only():
    prog = matmul.program()
    slow = simulate(prog, {"N": 8}, SP2_SCALED, matmul.init, variant="s")
    fast = simulate(
        prog, {"N": 8}, SP2_SCALED, matmul.init, variant="f", default_cpi="kernel"
    )
    assert fast.stats == slow.stats  # identical trace
    assert fast.cycles < slow.cycles
    assert fast.mflops > slow.mflops


def test_extra_flops_and_overhead():
    prog = matmul.program()
    base = simulate(prog, {"N": 6}, TINY, matmul.init, variant="b")
    loaded = simulate(
        prog, {"N": 6}, TINY, matmul.init, variant="l",
        extra_flops=1000, overhead_cycles=5000,
    )
    assert loaded.cycles == pytest.approx(
        base.cycles + 1000 * TINY.kernel_cpi + 5000
    )


def test_print_table_and_series(capsys):
    rows = [{"a": 1, "b": "x"}, {"a": 22, "b": "yyy"}]
    text = print_table(rows)
    assert "a" in text and "22" in text
    out = io.StringIO()
    print_table(rows, out=out)
    assert out.getvalue() == text
    assert print_table([]) == "(no data)\n"


def test_format_series_pivot():
    rows = [
        Measurement("v1", {"N": 8}, "m", {}, 10, 100.0, 1.0, 5.0),
        Measurement("v2", {"N": 8}, "m", {}, 10, 50.0, 0.5, 10.0),
        Measurement("v1", {"N": 16}, "m", {}, 10, 100.0, 1.0, 6.0),
    ]
    out = io.StringIO()
    text = format_series(rows, x="N", out=out)
    assert "v1" in text and "v2" in text
    lines = text.strip().splitlines()
    assert lines[0].split() == ["N", "v1", "v2"]


def test_speedup_summary():
    rows = [
        Measurement("base", {"N": 8}, "m", {}, 10, 100.0, 2.0, 5.0),
        Measurement("fast", {"N": 8}, "m", {}, 10, 50.0, 1.0, 10.0),
    ]
    assert speedup_summary(rows, baseline="base") == {"fast": 2.0}
