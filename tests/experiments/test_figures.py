"""Smoke tests for the per-figure drivers (tiny sizes; shapes asserted
fully in benchmarks/)."""

from repro.experiments import figures


def test_code_figures_complete():
    out = figures.code_figures()
    assert set(out) == {
        "fig3_tiled_matmul",
        "fig5_naive_shackled_matmul",
        "fig6_simplified_shackled_matmul",
        "fig7_shackled_cholesky",
        "fig10_two_level_matmul",
        "fig14_adi_transformed",
    }
    assert all(isinstance(text, str) and "do " in text for text in out.values())
    assert "(N+24)/25" in out["fig6_simplified_shackled_matmul"]


def test_fig11_quick_with_numeric_check():
    rows = figures.fig11_cholesky(sizes=[16], block=4, verbose=False, check=True)
    assert {m.variant for m in rows} == {
        "input",
        "compiler",
        "compiler+dgemm",
        "lapack",
        "lapack-library",
    }


def test_fig12_quick_with_numeric_check():
    rows = figures.fig12_qr(sizes=[12], block=4, verbose=False, check=True)
    assert len(rows) == 5
    assert any(m.variant == "lapack-wy-measured" for m in rows)


def test_fig13_quick():
    rows = figures.fig13_adi(sizes=[16], verbose=False, check=True)
    assert len(rows) == 2
    rows = figures.fig13_gmtry(n=16, block=4, verbose=False, check=True)
    assert len(rows) == 2


def test_fig15_quick():
    rows = figures.fig15_banded_cholesky(
        n=24, bandwidths=[3, 6], block=4, verbose=False
    )
    assert {m.variant for m in rows} == {"compiler", "lapack"}
    assert len(rows) == 4


def test_main_quick(capsys):
    from repro.experiments.__main__ import main

    assert main(["--quick"]) == 0
    out = capsys.readouterr().out
    assert "Figure 11" in out and "Figure 15" in out and "Ablation" in out
