"""Concurrency correctness: many clients, one warm engine.

The contract under test: N concurrent clients issuing an interleaved
mix of legality / codegen / search / simulate requests get answers
bit-identical to direct in-process :func:`repro.engine.jobs.execute`
calls on the same specs — whether a response was computed fresh, served
from the shared cache, or coalesced onto another client's in-flight
request — and a chaos-enabled server (injected kills and forced solver
budgets) still converges to the same answers through its retries.
"""

import random
import threading

import pytest

from repro.core import DataBlocking
from repro.core.shackle import _parse_ref
from repro.engine import chaos
from repro.engine import jobs as engine_jobs
from repro.engine.metrics import METRICS
from repro.engine.supervise import RetryPolicy
from repro.kernels import cholesky, matmul
from repro.service.client import ServiceClient
from repro.service.server import ServerConfig, ServerThread


def _mixed_specs():
    chol = cholesky.program("right")
    mm = matmul.program()
    blocking_a = DataBlocking.grid("A", 2, 25)
    blocking_c = DataBlocking.grid("C", 2, 25)
    specs = []
    for s2 in ("A[I,J]", "A[J,J]"):
        for s3 in ("A[L,K]", "A[L,J]", "A[K,J]"):
            choice = {
                "S1": _parse_ref("A[J,J]"),
                "S2": _parse_ref(s2),
                "S3": _parse_ref(s3),
            }
            specs.append(engine_jobs.legality_job(chol, blocking_a, choice))
    specs.append(engine_jobs.codegen_job(mm, blocking_c, "lhs", "simplified"))
    specs.append(engine_jobs.search_job(mm, blocking_c, max_product=1))
    from repro.memsim.cost import SP2_SCALED

    specs.append(
        engine_jobs.simulate_job(
            mm, {"N": 12}, SP2_SCALED, variant="conc", options={"seed": 0}
        )
    )
    return specs


def _hammer(address, specs, expected, clients, rounds=2, seed=99):
    """Each client thread replays every spec ``rounds`` times in its own
    shuffled order; returns {(client, index): (fingerprint, value)}."""
    failures = []
    lock = threading.Lock()

    def client_thread(uid):
        rng = random.Random(seed + uid)
        order = list(range(len(specs))) * rounds
        rng.shuffle(order)
        try:
            with ServiceClient(path=address) as client:
                for i in order:
                    value = client.submit(specs[i])
                    if value != expected[i]:
                        with lock:
                            failures.append((uid, i, value))
        except Exception as exc:  # noqa: BLE001 — collected for the assert
            with lock:
                failures.append((uid, "error", repr(exc)))

    threads = [
        threading.Thread(target=client_thread, args=(uid,)) for uid in range(clients)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    return failures


def test_interleaved_mixed_workload_is_bit_identical(tmp_path):
    specs = _mixed_specs()
    expected = [engine_jobs.execute(spec) for spec in specs]
    coalesced_before = METRICS.get("service.flight.coalesced")
    cached_before = METRICS.get("service.flight.cached")
    with ServerThread(
        ServerConfig(batch_window=0.005), path=str(tmp_path / "repro.sock")
    ) as handle:
        failures = _hammer(handle.address, specs, expected, clients=8)
    assert failures == []
    # The sharing machinery must be observable, not incidental: repeated
    # identical work was served by coalescing and/or the warm cache.
    coalesced = METRICS.get("service.flight.coalesced") - coalesced_before
    cached = METRICS.get("service.flight.cached") - cached_before
    assert cached > 0
    assert coalesced + cached > len(specs)


def test_dispatchers_gt_one_same_answers(tmp_path):
    specs = _mixed_specs()
    expected = [engine_jobs.execute(spec) for spec in specs]
    with ServerThread(
        ServerConfig(dispatchers=3, batch_max=4, batch_window=0.005),
        path=str(tmp_path / "repro.sock"),
    ) as handle:
        failures = _hammer(handle.address, specs, expected, clients=6, seed=7)
    assert failures == []


def test_chaos_enabled_server_still_converges(tmp_path):
    specs = _mixed_specs()[:8]  # legality census + codegen
    expected = [engine_jobs.execute(spec) for spec in specs]  # fault-free
    spec_text = "kill=0.3,budget=0.2,seed=7"
    previous = chaos.configure(spec_text)
    try:
        killed_before = METRICS.get("chaos.injected.kill")
        budget_before = METRICS.get("chaos.injected.budget")
        with ServerThread(
            ServerConfig(
                policy=RetryPolicy(failure_mode="return", max_attempts=4),
                batch_window=0.005,
            ),
            path=str(tmp_path / "repro.sock"),
        ) as handle:
            failures = _hammer(handle.address, specs, expected, clients=4, seed=3)
        assert failures == []
        # The chaos layer genuinely fired: with this seed at least one
        # job was killed or budget-tripped on its first attempt.
        injected = (
            METRICS.get("chaos.injected.kill")
            - killed_before
            + METRICS.get("chaos.injected.budget")
            - budget_before
        )
        assert injected > 0
    finally:
        chaos.configure(previous)


@pytest.mark.slow
def test_many_clients_large_interleaving(tmp_path):
    specs = _mixed_specs()
    expected = [engine_jobs.execute(spec) for spec in specs]
    with ServerThread(
        ServerConfig(batch_window=0.002), path=str(tmp_path / "repro.sock")
    ) as handle:
        failures = _hammer(
            handle.address, specs, expected, clients=32, rounds=4, seed=11
        )
    assert failures == []
