"""Fabric resilience: health RPC, retries over transport chaos, the
sharded failover client, the loadgen error breakdown, and the
subprocess replica supervisor (crash detection, respawn, pidfiles).

The theme throughout: every fault is masked *without* a wrong answer —
jobs are idempotent and the store is content-addressed, so a resend,
a hedge, or a failover can at worst recompute, never diverge.
"""

import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.engine import chaos
from repro.engine import jobs as engine_jobs
from repro.engine.metrics import METRICS
from repro.service.client import (
    ConnectionLost,
    FailoverClient,
    ServiceClient,
    ServiceUnavailable,
    classify_error,
    shard_index,
)
from repro.service.loadgen import LoadConfig, paper_tasks, run_load
from repro.service.server import ServerConfig, ServerThread

from tests.service.test_server import _legality_spec, _serve, sleep_kind  # noqa: F401


# -- health RPC --------------------------------------------------------------------


def test_health_rpc_reports_readiness(tmp_path):
    with _serve(tmp_path) as handle:
        with ServiceClient(path=handle.address) as client:
            health = client.health()
    assert health["ready"] is True
    assert health["state"] == "running"
    assert health["pid"] == os.getpid()  # in-process daemon
    assert health["queue_depth"] == 0
    assert health["uptime"] >= 0.0


def test_error_class_counters_surface_in_stats(tmp_path, sleep_kind):  # noqa: F811
    before = METRICS.get(f"service.errors.{sleep_kind}.deadline-exceeded")
    with _serve(tmp_path) as handle:
        with ServiceClient(path=handle.address) as client:
            response = client.request(
                "job", kind=sleep_kind, payload={"seconds": 0.5}, timeout=0.01
            )
            assert response["status"] == "deadline-exceeded"
            stats = client.stats()
    assert stats["errors"][sleep_kind]["deadline-exceeded"] >= 1
    after = METRICS.get(f"service.errors.{sleep_kind}.deadline-exceeded")
    assert after == before + 1


# -- transparent retries over transport chaos --------------------------------------


@pytest.fixture
def transport_chaos(request):
    """Activate a chaos spec for one test, restoring the previous one."""

    def activate(spec_text):
        previous = chaos.configure(spec_text)
        request.addfinalizer(lambda: chaos.configure(previous))

    return activate


def test_retries_mask_connection_reset(tmp_path, transport_chaos):
    spec = _legality_spec()
    expected = engine_jobs.execute(spec)
    transport_chaos("reset=1.0,seed=5")
    before = METRICS.get("chaos.injected.reset")
    with _serve(tmp_path) as handle:
        with ServiceClient(path=handle.address, retries=2) as client:
            assert client.submit(spec) == expected
    assert METRICS.get("chaos.injected.reset") == before + 1


def test_retries_mask_truncated_frame(tmp_path, transport_chaos):
    spec = _legality_spec("A[J,J]", "A[L,J]")
    expected = engine_jobs.execute(spec)
    transport_chaos("truncate=1.0,seed=5")
    with _serve(tmp_path) as handle:
        with ServiceClient(path=handle.address, retries=2) as client:
            assert client.submit(spec) == expected


def test_duplicated_response_is_tolerated(tmp_path, transport_chaos):
    # A dup'd frame leaves a stale response in the stream; the client
    # must skip mismatched ids instead of misattributing answers.
    specs = [_legality_spec(), _legality_spec("A[J,J]", "A[L,J]")]
    expected = [engine_jobs.execute(s) for s in specs]
    transport_chaos("dup=1.0,seed=5")
    with _serve(tmp_path) as handle:
        with ServiceClient(path=handle.address) as client:
            assert [client.submit(s) for s in specs] == expected


def test_zero_retries_keeps_fail_fast(tmp_path, transport_chaos):
    transport_chaos("reset=1.0,seed=5")
    with _serve(tmp_path) as handle:
        with ServiceClient(path=handle.address) as client:
            with pytest.raises(ConnectionLost) as excinfo:
                client.submit(_legality_spec())
    assert classify_error(excinfo.value) == "transport"


# -- failover client ---------------------------------------------------------------


def test_shard_index_is_stable_and_spread():
    fps = [f"{i:08x}{'0' * 56}" for i in range(16)]
    first = [shard_index(fp, 3) for fp in fps]
    assert first == [shard_index(fp, 3) for fp in fps]  # deterministic
    assert set(first) == {0, 1, 2}  # spreads over the ring
    assert shard_index("", 3) == 0


def test_failover_masks_replica_kill(tmp_path):
    specs = [
        _legality_spec(),
        _legality_spec("A[J,J]", "A[L,J]"),
        _legality_spec("A[I,J]", "A[K,J]"),
    ]
    expected = [engine_jobs.execute(s) for s in specs]
    a = ServerThread(ServerConfig(), path=str(tmp_path / "a.sock")).start()
    b = ServerThread(ServerConfig(), path=str(tmp_path / "b.sock")).start()
    try:
        with FailoverClient([a.address, b.address], backoff=0.01) as client:
            assert [client.submit(s) for s in specs] == expected
            a.kill()  # one replica dies; every shard must still answer
            assert [client.submit(s) for s in specs] == expected
            health = client.health_all()
            assert health[0] is None and health[1] is not None
    finally:
        a.kill()
        b.stop()


def test_all_replicas_down_raises_service_unavailable(tmp_path):
    a = ServerThread(ServerConfig(), path=str(tmp_path / "a.sock")).start()
    a.kill()
    with FailoverClient([a.address], cycles=2, backoff=0.01) as client:
        with pytest.raises(ServiceUnavailable) as excinfo:
            client.submit(_legality_spec())
    assert classify_error(excinfo.value) == "transport"


def test_hedged_request_answers_from_backup_replica(tmp_path):
    spec = _legality_spec()
    expected = engine_jobs.execute(spec)
    a = ServerThread(ServerConfig(), path=str(tmp_path / "a.sock")).start()
    b = ServerThread(ServerConfig(), path=str(tmp_path / "b.sock")).start()
    try:
        a.kill()  # the "slow" primary: never answers
        with FailoverClient(
            [a.address, b.address], hedge_after=0.05, backoff=0.01
        ) as client:
            response = client.request(
                "job", kind=spec.kind, payload=spec.payload, shard_key="0" * 64
            )
        assert response["ok"] and response["value"] == expected
    finally:
        b.stop()


def test_failover_loadgen_with_error_breakdown(tmp_path, sleep_kind):  # noqa: F811
    from repro.service.loadgen import LoadTask

    ok_spec = _legality_spec()
    slow = engine_jobs.JobSpec(sleep_kind, {"seconds": 0.3})
    tasks = [
        LoadTask("legality", 1, ok_spec, expect=engine_jobs.execute(ok_spec)),
        LoadTask("slow", 1, slow),
    ]
    a = ServerThread(ServerConfig(), path=str(tmp_path / "a.sock")).start()
    b = ServerThread(ServerConfig(), path=str(tmp_path / "b.sock")).start()
    try:
        config = LoadConfig(users=4, requests=24, seed=3, timeout=0.05, retries=1)
        report = run_load([a.address, b.address], tasks, config)
    finally:
        a.stop()
        b.stop()
    breakdown = report.error_breakdown()
    # The slow task blows its deadline and lands in the per-kind
    # breakdown; verified tasks never mismatch across replicas.
    assert report.mismatches == []
    assert breakdown.get(sleep_kind, {}).get("deadline-exceeded", 0) > 0
    assert "errors" in report.to_payload()
    assert f"errors[{sleep_kind}]" in report.describe()


# -- subprocess fabric -------------------------------------------------------------


def _wait_until(predicate, timeout=20.0, interval=0.05):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


def test_fabric_respawns_crashed_replica(tmp_path):
    from repro.service.fabric import FabricConfig, FabricSupervisor

    config = FabricConfig(
        replicas=2,
        cache=str(tmp_path / "cache"),
        socket_dir=str(tmp_path),
        log_path=str(tmp_path / "fabric.log"),
        max_respawns=2,
    )
    with FabricSupervisor(config) as supervisor:
        with FailoverClient(supervisor.addresses, connect_retry=5.0) as client:
            assert all(h and h["ready"] for h in client.health_all())
            dead = supervisor.kill_replica(0)
            assert dead is not None
            # Requests keep flowing during the outage...
            assert client.ping()["state"] == "running"
            # ...and the supervisor brings slot 0 back.
            assert _wait_until(
                lambda: all(row["alive"] for row in supervisor.status())
            )
            assert supervisor.status()[0]["respawns"] == 1
            assert all(h and h["ready"] for h in client.health_all())
    log = (tmp_path / "fabric.log").read_text()
    assert "crashed (signal 9)" in log
    assert "respawn 1/2" in log
    assert "fabric stopped" in log


def test_clean_drain_is_not_respawned(tmp_path):
    from repro.service.fabric import FabricConfig, FabricSupervisor

    config = FabricConfig(
        replicas=1,
        socket_dir=str(tmp_path),
        log_path=str(tmp_path / "fabric.log"),
    )
    with FabricSupervisor(config) as supervisor:
        with ServiceClient(path=supervisor.addresses[0], connect_retry=5.0) as client:
            client.shutdown_server()
        assert _wait_until(
            lambda: not any(row["alive"] for row in supervisor.status())
        )
        time.sleep(3 * config.poll_interval)  # give a wrong respawn time to happen
        assert supervisor.status()[0]["respawns"] == 0
    log = (tmp_path / "fabric.log").read_text()
    assert "drained cleanly (exit 0)" in log
    assert "respawn" not in log


def test_serve_pidfile_written_and_removed_on_drain(tmp_path):
    sock = tmp_path / "repro.sock"
    pidfile = tmp_path / "repro.pid"
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (str(Path("src").resolve()), env.get("PYTHONPATH")) if p
    )
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve",
         "--socket", str(sock), "--pidfile", str(pidfile)],
        env=env,
    )
    try:
        assert _wait_until(pidfile.exists)
        assert int(pidfile.read_text()) == process.pid
        with ServiceClient(path=str(sock), connect_retry=10.0) as client:
            assert client.health()["ready"]
        process.send_signal(signal.SIGTERM)
        assert process.wait(timeout=20) == 0
        assert not pidfile.exists()  # clean drain cleans up
    finally:
        if process.poll() is None:
            process.kill()
            process.wait()


def test_serve_abnormal_termination_exit_code(tmp_path):
    from repro.cli import main
    from repro.service.fabric import EXIT_ABNORMAL

    # Binding inside a directory that does not exist blows up the serve
    # loop before it ever runs — a crash, not a drain.
    rc = main(["serve", "--socket", str(tmp_path / "missing" / "dir" / "s.sock")])
    assert rc == EXIT_ABNORMAL
