"""Daemon lifecycle tests: fast path, single-flight, backpressure,
deadlines, graceful shutdown, transports, typed errors."""

import threading
import time

import pytest

from repro.core import DataBlocking
from repro.core.shackle import _parse_ref
from repro.engine import jobs as engine_jobs
from repro.engine.metrics import METRICS
from repro.kernels import cholesky
from repro.service.client import (
    BadRequest,
    RequestDeadline,
    ServerOverloaded,
    ServerShuttingDown,
    ServiceClient,
)
from repro.service.server import ServerConfig, ServerThread


def _legality_spec(s2="A[I,J]", s3="A[L,K]"):
    prog = cholesky.program("right")
    blocking = DataBlocking.grid("A", 2, 25)
    choice = {
        "S1": _parse_ref("A[J,J]"),
        "S2": _parse_ref(s2),
        "S3": _parse_ref(s3),
    }
    return engine_jobs.legality_job(prog, blocking, choice)


@pytest.fixture
def sleep_kind(monkeypatch):
    """A controllable slow executor: payload {"seconds": s, "tag": t}."""

    def run_sleep(payload):
        time.sleep(payload["seconds"])
        return {"slept": payload["seconds"], "tag": payload.get("tag")}

    monkeypatch.setitem(engine_jobs.EXECUTORS, "sleep", run_sleep)
    return "sleep"


def _serve(tmp_path, **config_kwargs):
    return ServerThread(
        ServerConfig(**config_kwargs), path=str(tmp_path / "repro.sock")
    )


def test_job_round_trip_matches_direct_execute(tmp_path):
    spec = _legality_spec()
    expected = engine_jobs.execute(spec)
    with _serve(tmp_path) as handle:
        with ServiceClient(path=handle.address) as client:
            assert client.submit(spec) == expected


def test_second_request_served_from_cache_with_flight_annotation(tmp_path):
    spec = _legality_spec()
    with _serve(tmp_path) as handle:
        with ServiceClient(path=handle.address) as client:
            first = client.request("job", kind=spec.kind, payload=spec.payload)
            second = client.request("job", kind=spec.kind, payload=spec.payload)
            assert first["ok"] and second["ok"]
            assert first["value"] == second["value"]
            assert second["flight"] == "cached"
            stats = client.stats()
    assert stats["cache"]["hit_rate"] > 0
    assert "service.latency.legality" in stats["metrics"]["series"]
    assert stats["server"]["state"] == "running"
    # The batched-solver block: a legality job exercises the family path.
    solver_stats = stats["solver"]
    assert solver_stats["batch_families"] >= 1
    assert solver_stats["batch_members"] >= solver_stats["batch_families"]
    for field in ("batch_prefix_reuse", "int128_combines", "vector_fallbacks",
                  "witness_transfers"):
        assert isinstance(solver_stats[field], int)
    # The histogram-store gauge block is always present and well-formed.
    hist = stats["histogram_store"]
    assert set(hist) == {"entries", "bytes", "hits", "misses", "hit_ratio"}
    assert hist["entries"] >= 0 and hist["bytes"] >= 0
    assert 0.0 <= hist["hit_ratio"] <= 1.0


def test_single_flight_coalesces_concurrent_identical_requests(tmp_path, sleep_kind):
    coalesced_before = METRICS.get("service.flight.coalesced")
    executed = {"n": 0}
    results = []

    with _serve(tmp_path) as handle:

        def ask():
            with ServiceClient(path=handle.address) as client:
                results.append(
                    client.call(
                        "job", kind=sleep_kind, payload={"seconds": 0.3, "tag": "sf"}
                    )
                )

        threads = [threading.Thread(target=ask) for _ in range(4)]
        started = time.monotonic()
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        elapsed = time.monotonic() - started

    assert results == [{"slept": 0.3, "tag": "sf"}] * 4
    # Four identical requests cost ~one sleep, not four serialized ones.
    assert elapsed < 4 * 0.3
    assert METRICS.get("service.flight.coalesced") - coalesced_before >= 3


def test_backpressure_returns_typed_overloaded(tmp_path, sleep_kind):
    with _serve(tmp_path, queue_limit=1) as handle:
        blocker_done = []

        def blocker():
            with ServiceClient(path=handle.address) as client:
                blocker_done.append(
                    client.call("job", kind=sleep_kind, payload={"seconds": 0.6})
                )

        t = threading.Thread(target=blocker)
        t.start()
        time.sleep(0.2)  # let the blocker occupy the single pending slot
        with ServiceClient(path=handle.address) as client:
            with pytest.raises(ServerOverloaded):
                client.call("job", kind=sleep_kind, payload={"seconds": 0.0, "tag": "x"})
        t.join()
        assert blocker_done == [{"slept": 0.6, "tag": None}]


def test_request_deadline_then_cached_completion(tmp_path, sleep_kind):
    with _serve(tmp_path) as handle:
        with ServiceClient(path=handle.address) as client:
            with pytest.raises(RequestDeadline):
                client.call(
                    "job",
                    kind=sleep_kind,
                    payload={"seconds": 0.5, "tag": "d"},
                    timeout=0.1,
                )
            # The job kept running; once finished it is served from cache.
            deadline = time.monotonic() + 5
            while time.monotonic() < deadline:
                response = client.request(
                    "job", kind=sleep_kind, payload={"seconds": 0.5, "tag": "d"}
                )
                if response.get("flight") == "cached":
                    assert response["value"] == {"slept": 0.5, "tag": "d"}
                    break
                time.sleep(0.1)
            else:
                pytest.fail("deadline-expired job never landed in the cache")


def test_graceful_shutdown_drains_inflight_and_rejects_new_work(
    tmp_path, sleep_kind
):
    handle = _serve(tmp_path)
    handle.start()
    inflight_result = []

    def inflight():
        with ServiceClient(path=handle.address) as client:
            inflight_result.append(
                client.call("job", kind=sleep_kind, payload={"seconds": 0.8})
            )

    t = threading.Thread(target=inflight)
    t.start()
    time.sleep(0.2)
    with ServiceClient(path=handle.address) as admin:
        assert admin.shutdown_server() == {"state": "draining"}
    time.sleep(0.15)  # let the drain begin
    # A request racing the drain gets the typed shutting-down response
    # (or, once the listener is closed, a connection error).
    try:
        with ServiceClient(path=handle.address) as late:
            with pytest.raises(ServerShuttingDown):
                late.call("job", kind=sleep_kind, payload={"seconds": 0.0})
    except OSError:
        pass
    t.join(timeout=30)
    # The in-flight job was drained, not dropped.
    assert inflight_result == [{"slept": 0.8, "tag": None}]
    handle.stop()
    assert handle.server.engine.closed
    # The pool closes exactly once: the second close is a no-op.
    assert handle.server.engine.close() is False
    with pytest.raises(OSError):
        ServiceClient(path=handle.address).connect()


def test_unknown_kind_and_bad_version_are_typed_bad_requests(tmp_path):
    with _serve(tmp_path) as handle:
        with ServiceClient(path=handle.address) as client:
            with pytest.raises(BadRequest):
                client.call("job", kind="no-such-kind", payload={})
            with pytest.raises(BadRequest):
                client.call("no-such-op")
            response = client.request("ping")
            raw = {"v": 999, "id": 1, "op": "ping"}
            import repro.service.protocol as protocol

            protocol.send_message(client._sock, raw)
            mismatch = protocol.recv_message(client._sock)
            assert response["ok"]
            assert mismatch["status"] == "bad-request"
            assert mismatch["error"]["type"] == "VersionMismatch"


def test_tcp_transport(tmp_path):
    spec = _legality_spec("A[J,J]", "A[K,J]")
    expected = engine_jobs.execute(spec)
    with ServerThread(ServerConfig(), host="127.0.0.1", port=0) as handle:
        host, port = handle.address
        with ServiceClient(host=host, port=port) as client:
            assert client.submit(spec) == expected


def test_batched_dispatch_groups_queued_requests(tmp_path):
    batches_before = METRICS.get("service.batches")
    specs = [_legality_spec(s2, s3) for s2 in ("A[I,J]", "A[J,J]")
             for s3 in ("A[L,K]", "A[L,J]", "A[K,J]")]
    expected = [engine_jobs.execute(spec) for spec in specs]
    with _serve(tmp_path, batch_window=0.05) as handle:

        results = [None] * len(specs)

        def ask(i):
            with ServiceClient(path=handle.address) as client:
                results[i] = client.submit(specs[i])

        threads = [threading.Thread(target=ask, args=(i,)) for i in range(len(specs))]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
    assert results == expected
    batches = METRICS.get("service.batches") - batches_before
    # Six distinct concurrent requests inside one 50ms window must not
    # cost six dispatches.
    assert 1 <= batches < len(specs)
