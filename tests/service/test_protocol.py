"""Wire-protocol tests: framing, versioning, sync socket helpers."""

import socket

import pytest

from repro.service import protocol


def test_frame_round_trip():
    message = {"v": 1, "id": 3, "op": "job", "payload": {"x": [1, 2, {"y": "z"}]}}
    frame = protocol.encode_frame(message)
    assert frame[:4] == len(frame[4:]).to_bytes(4, "big")
    assert protocol.decode_body(frame[4:]) == message


def test_oversized_frame_refused():
    big = {"blob": "x" * (protocol.MAX_FRAME_BYTES + 1)}
    with pytest.raises(protocol.ProtocolError):
        protocol.encode_frame(big)


def test_garbage_body_refused():
    with pytest.raises(protocol.ProtocolError):
        protocol.decode_body(b"{torn json")
    with pytest.raises(protocol.ProtocolError):
        protocol.decode_body(b'"a bare string, not an object"')


def test_request_and_response_builders():
    req = protocol.request("job", 7, kind="legality", payload={"a": 1}, timeout=2.5)
    assert req == {
        "v": protocol.PROTOCOL_VERSION,
        "id": 7,
        "op": "job",
        "kind": "legality",
        "payload": {"a": 1},
        "timeout": 2.5,
    }
    ok = protocol.response(7, value={"legal": True}, flight=protocol.FLIGHT_FRESH)
    assert ok["ok"] and ok["status"] == protocol.STATUS_OK
    assert ok["value"] == {"legal": True}
    err = protocol.response(
        7,
        status=protocol.STATUS_OVERLOADED,
        error=protocol.error_payload("Overloaded", "full"),
    )
    assert not err["ok"] and "value" not in err
    assert err["error"]["type"] == "Overloaded"


def test_sync_socket_round_trip_and_clean_eof():
    a, b = socket.socketpair()
    try:
        protocol.send_message(a, {"v": 1, "id": 1, "op": "ping"})
        assert protocol.recv_message(b) == {"v": 1, "id": 1, "op": "ping"}
        a.close()
        assert protocol.recv_message(b) is None  # EOF at a frame boundary
    finally:
        b.close()


def test_sync_socket_mid_frame_eof_raises():
    a, b = socket.socketpair()
    try:
        frame = protocol.encode_frame({"v": 1, "id": 1, "op": "ping"})
        a.sendall(frame[:6])  # header + 2 body bytes, then hang up
        a.close()
        with pytest.raises(protocol.ProtocolError):
            protocol.recv_message(b)
    finally:
        b.close()
