"""CLI smoke tests (python -m repro ...)."""

import pytest

from repro.cli import main

MM = """
program mm(N)
array A[N,N]
array B[N,N]
array C[N,N]
assume N >= 1
do I = 1, N
  do J = 1, N
    do K = 1, N
      S1: C[I,J] = C[I,J] + A[I,K]*B[K,J]
"""

CHOLESKY = """
program cholesky(N)
array A[N,N]
assume N >= 1
do J = 1, N
  S1: A[J,J] = sqrt(A[J,J])
  do I = J+1, N
    S2: A[I,J] = A[I,J] / A[J,J]
  do L = J+1, N
    do K = J+1, L
      S3: A[L,K] = A[L,K] - A[L,J]*A[K,J]
"""


@pytest.fixture
def mm_file(tmp_path):
    path = tmp_path / "mm.loop"
    path.write_text(MM)
    return str(path)


@pytest.fixture
def cholesky_file(tmp_path):
    path = tmp_path / "cholesky.loop"
    path.write_text(CHOLESKY)
    return str(path)


def test_show(mm_file, capsys):
    assert main(["show", mm_file]) == 0
    out = capsys.readouterr().out
    assert "program mm(N)" in out
    assert "S1: C[I,J]" in out


def test_deps(mm_file, capsys):
    assert main(["deps", mm_file]) == 0
    out = capsys.readouterr().out
    assert "flow" in out and "level 3" in out


def test_shackle_simplified(mm_file, capsys):
    assert main(["shackle", mm_file, "--array", "C", "--block", "25"]) == 0
    out = capsys.readouterr().out
    assert "do t1 = 1, (N+24)/25" in out


def test_shackle_product_and_naive(mm_file, capsys):
    assert (
        main(
            [
                "shackle",
                mm_file,
                "--array",
                "C",
                "--block",
                "25",
                "--product",
                "A:25:S1=A[I,K]",
                "--naive",
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert out.count("do ") == 7  # 4 block loops + 3 original
    assert "if " in out


def test_shackle_split_cholesky(cholesky_file, capsys):
    assert (
        main(
            [
                "shackle",
                cholesky_file,
                "--array",
                "A",
                "--block",
                "64",
                "--dims",
                "1,0",
                "--refs",
                "S1=A[J,J],S2=A[I,J],S3=A[L,K]",
                "--split",
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "do t2 = t1+1" in out
    assert "if " not in out


def test_shackle_illegal_returns_error(cholesky_file, capsys):
    code = main(
        [
            "shackle",
            cholesky_file,
            "--array",
            "A",
            "--block",
            "25",
            "--refs",
            "S1=A[J,J],S2=A[J,J],S3=A[L,K]",
        ]
    )
    assert code == 1
    assert "ILLEGAL" in capsys.readouterr().err


def test_legality(cholesky_file, capsys):
    assert (
        main(["legality", cholesky_file, "--array", "A", "--block", "25"]) == 0
    )
    assert "legal" in capsys.readouterr().out


def test_search(cholesky_file, capsys):
    assert (
        main(["search", cholesky_file, "--array", "A", "--block", "25"]) == 0
    )
    out = capsys.readouterr().out
    assert "unconstrained=" in out


def test_emit_c(mm_file, capsys):
    assert (
        main(["shackle", mm_file, "--array", "C", "--block", "25", "--emit-c"]) == 0
    )
    out = capsys.readouterr().out
    assert "#include <stdio.h>" in out and "malloc" in out


def test_simulate(mm_file, capsys):
    assert (
        main(
            [
                "simulate",
                mm_file,
                "--array",
                "C",
                "--block",
                "8",
                "--size",
                "N=16",
                "--original",
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "mflops" in out and "original" in out and "shackled" in out


def test_version(capsys):
    from repro import __version__

    with pytest.raises(SystemExit) as excinfo:
        main(["--version"])
    assert excinfo.value.code == 0
    assert __version__ in capsys.readouterr().out


def test_search_engine_flags(cholesky_file, tmp_path, capsys, monkeypatch):
    monkeypatch.chdir(tmp_path)
    assert (
        main(
            [
                "search",
                cholesky_file,
                "--array",
                "A",
                "--block",
                "25",
                "--jobs",
                "2",
                "--cache",
                "--metrics",
            ]
        )
        == 0
    )
    cold = capsys.readouterr().out
    assert "unconstrained=" in cold
    assert "engine metrics" in cold
    assert (tmp_path / ".repro_cache").is_dir()

    # Warm re-run: same ranking, every verdict served from the cache.
    assert (
        main(["search", cholesky_file, "--array", "A", "--block", "25", "--cache"])
        == 0
    )
    warm = capsys.readouterr().out
    ranking = [line for line in cold.splitlines() if "unconstrained=" in line]
    assert [line for line in warm.splitlines() if "unconstrained=" in line] == ranking


def test_simulate_replay_matches_oracle_and_persists_traces(mm_file, tmp_path, capsys):
    base = ["simulate", mm_file, "--array", "C", "--block", "8", "--size", "N=12"]
    assert main([*base, "--no-replay"]) == 0
    oracle = capsys.readouterr().out

    trace_dir = tmp_path / "traces"
    assert main([*base, "--trace-cache", str(trace_dir)]) == 0
    replayed = capsys.readouterr().out
    assert replayed == oracle  # bit-identical numbers either way
    assert list(trace_dir.rglob("*.npz"))  # traces persisted on disk

    # Warm re-run serves the trace from the store.
    assert main([*base, "--trace-cache", str(trace_dir), "--metrics"]) == 0
    warm = capsys.readouterr().out
    assert "memsim.trace_cache_hit" in warm
    assert [l for l in warm.splitlines() if "shackled" in l] == [
        l for l in oracle.splitlines() if "shackled" in l
    ]


def test_simulate_fidelity_analytic(mm_file, tmp_path, capsys):
    base = [
        "simulate", mm_file, "--array", "C", "--block", "8", "--size", "N=12",
        "--trace-cache", str(tmp_path / "traces"),
    ]
    assert main([*base, "--fidelity", "analytic", "--metrics"]) == 0
    out = capsys.readouterr().out
    assert "mflops" in out and "shackled" in out
    # The analytic tier ran: histogram passes and predictions reported.
    assert "analytic memsim:" in out
    assert "memsim.analytic_predict" in out

    # Histograms are persisted next to the trace; a warm analytic re-run
    # serves them from disk without recomputing.
    assert main([*base, "--fidelity", "analytic", "--metrics"]) == 0
    warm = capsys.readouterr().out
    assert "memsim.histogram_cache_hit" in warm
    assert [l for l in warm.splitlines() if "shackled" in l] == [
        l for l in out.splitlines() if "shackled" in l
    ]


def test_simulate_fidelity_overrides_replay(mm_file, capsys):
    # --fidelity oracle forces the per-access oracle even though replay
    # is the default; the numbers must agree either way.
    base = ["simulate", mm_file, "--array", "C", "--block", "8", "--size", "N=12"]
    assert main([*base, "--fidelity", "oracle"]) == 0
    oracle = capsys.readouterr().out
    assert main(base) == 0
    replayed = capsys.readouterr().out
    assert [l for l in oracle.splitlines() if "shackled" in l] == [
        l for l in replayed.splitlines() if "shackled" in l
    ]


def test_search_score_ranks_by_analytic_cycles(mm_file, capsys):
    assert (
        main(
            [
                "search", mm_file, "--array", "C", "--block", "8",
                "--score", "N=12", "--score-top", "2",
                "--fidelity", "analytic",
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    rows = [l for l in out.splitlines() if "cycles=" in l]
    assert len(rows) == 2
    cycles = [int(row.rsplit("cycles=", 1)[1]) for row in rows]
    assert cycles == sorted(cycles)  # cheapest candidate first


def test_simulate_engine_flags(mm_file, tmp_path, capsys):
    cache_dir = str(tmp_path / "cache")
    argv = [
        "simulate",
        mm_file,
        "--array",
        "C",
        "--block",
        "8",
        "--size",
        "N=12",
        "--original",
        "--cache",
        cache_dir,
        "--metrics",
    ]
    assert main(argv) == 0
    cold = capsys.readouterr().out
    assert "mflops" in cold and "engine metrics" in cold

    assert main(argv) == 0
    warm = capsys.readouterr().out
    cold_rows = [l for l in cold.splitlines() if "shackled" in l or "original" in l]
    warm_rows = [l for l in warm.splitlines() if "shackled" in l or "original" in l]
    assert warm_rows == cold_rows
