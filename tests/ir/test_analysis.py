"""Tests for statement contexts, domains, schedules and access matrices."""

from repro.ir import access_matrix, iteration_domain, parse_program, statement_contexts
from repro.ir.analysis import common_loop_depth, textually_before
from repro.linalg import FracMatrix
from repro.polyhedra.omega import enumerate_points

CHOLESKY = """
program cholesky(N)
array A[N,N]
assume N >= 1
do J = 1, N
  S1: A[J,J] = sqrt(A[J,J])
  do I = J+1, N
    S2: A[I,J] = A[I,J] / A[J,J]
  do L = J+1, N
    do K = J+1, L
      S3: A[L,K] = A[L,K] - A[L,J]*A[K,J]
"""


def contexts():
    p = parse_program(CHOLESKY)
    return p, {c.label: c for c in statement_contexts(p)}


def test_context_shapes():
    _, ctx = contexts()
    assert ctx["S1"].loop_vars == ["J"]
    assert ctx["S2"].loop_vars == ["J", "I"]
    assert ctx["S3"].loop_vars == ["J", "L", "K"]
    assert ctx["S1"].depth == 1 and ctx["S3"].depth == 3


def test_iteration_domain_counts():
    p, ctx = contexts()
    dom = iteration_domain(ctx["S3"], p)
    # Fix N = 4: S3 runs for J<L, J<K<=L... count triangles.
    fixed = dom.conjoin(
        # N == 4
        __import__("repro.polyhedra.constraints", fromlist=["Constraint"]).Constraint.eq(
            {"N": 1}, -4
        )
    )
    pts = enumerate_points(fixed, ["N", "J", "L", "K"])
    expected = [
        (4, j, l, k)
        for j in range(1, 5)
        for l in range(j + 1, 5)
        for k in range(j + 1, l + 1)
    ]
    assert sorted(pts) == sorted(expected)


def test_schedule_keys_realize_program_order():
    """Brute-force N=3 execution order must match schedule_key sorting."""
    p, ctx = contexts()
    n = 3
    trace = []
    for j in range(1, n + 1):
        trace.append(("S1", (j,)))
        for i in range(j + 1, n + 1):
            trace.append(("S2", (j, i)))
        for l in range(j + 1, n + 1):
            for k in range(j + 1, l + 1):
                trace.append(("S3", (j, l, k)))
    keyed = sorted(trace, key=lambda t: ctx[t[0]].schedule_key(t[1]))
    assert keyed == trace


def test_common_loop_depth():
    _, ctx = contexts()
    assert common_loop_depth(ctx["S1"], ctx["S2"]) == 1
    assert common_loop_depth(ctx["S2"], ctx["S3"]) == 1
    assert common_loop_depth(ctx["S3"], ctx["S3"]) == 3


def test_textually_before():
    _, ctx = contexts()
    assert textually_before(ctx["S1"], ctx["S2"], 1)
    assert textually_before(ctx["S2"], ctx["S3"], 1)
    assert not textually_before(ctx["S3"], ctx["S1"], 1)


def test_access_matrix_paper_example():
    """Theorem 2's worked example: C[I,J], A[I,K], B[K,J] in matmul."""
    p = parse_program(
        """
program mm(N)
array A[N,N]
array B[N,N]
array C[N,N]
do I = 1, N
  do J = 1, N
    do K = 1, N
      S1: C[I,J] = C[I,J] + A[I,K]*B[K,J]
"""
    )
    (ctx,) = statement_contexts(p)
    refs = {str(r): r for r in ctx.statement.references()}
    order = ["I", "J", "K"]
    c_mat = access_matrix(refs["C[I,J]"], order)
    a_mat = access_matrix(refs["A[I,K]"], order)
    b_mat = access_matrix(refs["B[K,J]"], order)
    assert c_mat == FracMatrix([[1, 0, 0], [0, 1, 0]])
    # Row (0,0,1) of B's access matrix is not spanned by C's rows alone...
    assert not c_mat.row_space_contains(b_mat.rows[0])
    # ...but C + A rows span everything (the paper's product argument).
    combined = FracMatrix(c_mat.rows + a_mat.rows)
    assert combined.row_space_contains(b_mat.rows[0])
    assert combined.row_space_contains(b_mat.rows[1])


def test_guard_positions_distinct():
    p = parse_program(
        """
program g(N)
array A[N]
do I = 1, N
  if I >= 2
    S1: A[I] = 0
  S2: A[I] = 1
"""
    )
    ctx = {c.label: c for c in statement_contexts(p)}
    assert ctx["S1"].guards and not ctx["S2"].guards
    # S1 comes before S2 in program order at the static level below loop I.
    assert ctx["S1"].positions[1] < ctx["S2"].positions[1]
