"""Parser and printer tests, including round-tripping."""

import pytest

from repro.ir import parse_program, to_source
from repro.ir.nodes import Guard, Loop, Statement
from repro.ir.parser import ParseError, parse_condition_text

CHOLESKY = """
program cholesky(N)
array A[N,N]
assume N >= 1
do J = 1, N
  S1: A[J,J] = sqrt(A[J,J])
  do I = J+1, N
    S2: A[I,J] = A[I,J] / A[J,J]
  do L = J+1, N
    do K = J+1, L
      S3: A[L,K] = A[L,K] - A[L,J]*A[K,J]
"""


def test_parse_cholesky_structure():
    p = parse_program(CHOLESKY)
    assert p.name == "cholesky"
    assert p.params == ["N"]
    assert [s.label for s in p.statements()] == ["S1", "S2", "S3"]
    outer = p.body[0]
    assert isinstance(outer, Loop) and outer.var == "J"
    assert isinstance(outer.body[0], Statement)
    assert isinstance(outer.body[1], Loop) and outer.body[1].var == "I"
    inner_l = outer.body[2]
    assert isinstance(inner_l, Loop) and inner_l.var == "L"
    assert isinstance(inner_l.body[0], Loop) and inner_l.body[0].var == "K"


def test_parse_bounds():
    p = parse_program(CHOLESKY)
    i_loop = p.body[0].body[1]
    assert str(i_loop.lowers[0]) == "J+1"
    assert str(i_loop.uppers[0]) == "N"


def test_roundtrip_cholesky():
    p = parse_program(CHOLESKY)
    text = to_source(p)
    p2 = parse_program(text)
    assert to_source(p2) == text
    assert [s.label for s in p2.statements()] == ["S1", "S2", "S3"]


def test_parse_augmented_assignment():
    p = parse_program(
        """
program adi(n)
array X[n,n]
array A[n,n]
array B[n,n]
do i = 2, n
  do k = 1, n
    S1: X[i,k] -= X[i-1,k]*A[i,k]/B[i-1,k]
"""
    )
    s = p.statement("S1")
    reads = [str(r) for r in s.reads()]
    assert str(s.lhs) == "X[i,k]"
    assert "X[i,k]" in reads and "B[i-1,k]" in reads


def test_parse_max_min_and_div_bounds():
    p = parse_program(
        """
program blocked(N)
array C[N,N]
do t1 = 1, (N+24)/25
  do I = max(1, 25*t1-24), min(N, 25*t1)
    S1: C[I,I] = 0
"""
    )
    t1 = p.body[0]
    assert t1.uppers[0].den == 25
    i_loop = t1.body[0]
    assert len(i_loop.lowers) == 2 and len(i_loop.uppers) == 2


def test_parse_guard():
    p = parse_program(
        """
program g(N)
array A[N]
do I = 1, N
  if I >= 2 and N >= I + 1
    S1: A[I] = 0
"""
    )
    guard = p.body[0].body[0]
    assert isinstance(guard, Guard)
    assert len(guard.conditions) == 2
    assert guard.conditions[0].evaluate({"I": 2, "N": 5})
    assert not guard.conditions[0].evaluate({"I": 1, "N": 5})


def test_parse_condition_text_ops():
    c = parse_condition_text("25*b - 24 <= I")
    assert c.evaluate({"b": 1, "I": 1})
    assert not c.evaluate({"b": 2, "I": 25})
    eq = parse_condition_text("I == J")
    assert eq.is_eq
    lt = parse_condition_text("I < J")
    assert lt.evaluate({"I": 1, "J": 2}) and not lt.evaluate({"I": 2, "J": 2})


def test_parse_errors():
    with pytest.raises(ParseError):
        parse_program("do = 1, N")
    with pytest.raises(ParseError):
        parse_program("program p(N)\narray A[N]\ndo I = 1, N\n  S1: 3 = A[I]")
    with pytest.raises(ParseError):
        parse_program("program p(N)\narray A[N]\ndo I = 1 N\n  S1: A[I] = 0")


def test_auto_labels():
    p = parse_program(
        """
program p(N)
array A[N]
do I = 1, N
  A[I] = 0
  A[I] = 1
"""
    )
    labels = [s.label for s in p.statements()]
    assert len(set(labels)) == 2


def test_float_constants():
    p = parse_program(
        """
program p(N)
array A[N]
do I = 1, N
  S1: A[I] = 0.5
"""
    )
    assert "0.5" in str(p.statement("S1").rhs)
