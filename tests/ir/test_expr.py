"""Tests for affine expressions and expression trees."""

from fractions import Fraction

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.ir import Affine, BinOp, Call, Const, DivBound, Ref, parse_affine
from repro.ir.expr import AffExpr, UnOp, as_bound, as_expr


def test_affine_basic_arithmetic():
    i = Affine.var("I")
    j = Affine.var("J")
    e = 2 * i - j + 3
    assert e.coeff("I") == 2
    assert e.coeff("J") == -1
    assert e.const == 3
    assert e.evaluate({"I": 1, "J": 5}) == 0


def test_affine_zero_coeffs_dropped():
    i = Affine.var("I")
    assert (i - i).coeffs == {}
    assert (i - i).is_constant()


def test_affine_substitute():
    i = Affine.var("I")
    e = 2 * i + 1
    out = e.substitute({"I": Affine.var("J") + 3})
    assert out == 2 * Affine.var("J") + 7


def test_affine_rename_and_eq_with_int():
    e = Affine.var("I").rename({"I": "X"})
    assert e.coeff("X") == 1
    assert Affine({}, 5) == 5


def test_affine_evaluate_int_rejects_fractions():
    e = Affine.var("I") * Fraction(1, 2)
    with pytest.raises(ValueError):
        e.evaluate_int({"I": 3})
    assert e.evaluate_int({"I": 4}) == 2


def test_parse_affine():
    e = parse_affine("2*N - 3")
    assert e.coeff("N") == 2 and e.const == -3
    assert parse_affine("-(I - J)") == Affine.var("J") - Affine.var("I")
    assert parse_affine("J+1").coeff("J") == 1
    with pytest.raises(ValueError):
        parse_affine("I*J")


def test_affine_str_roundtrip():
    cases = [Affine.var("I") + 1, 2 * Affine.var("N") - 3, Affine({}, 0), -Affine.var("K")]
    for e in cases:
        assert parse_affine(str(e)) == e


@given(st.integers(-9, 9), st.integers(-9, 9), st.integers(-9, 9))
def test_affine_algebra_laws(a, b, c):
    i, j = Affine.var("i"), Affine.var("j")
    left = (a * i + b * j) + c
    right = c + (b * j) + (a * i)
    assert left == right
    assert left - left == Affine({}, 0)
    env = {"i": 2, "j": -3}
    assert (left * 2).evaluate(env) == 2 * left.evaluate(env)


def test_divbound_semantics():
    b = DivBound(parse_affine("N+24"), 25)
    assert b.evaluate_upper({"N": 60}) == 3  # floor(84/25)
    assert b.evaluate_lower({"N": 60}) == 4  # ceil(84/25)
    assert str(b) == "(N+24)/25"
    assert as_bound(5).evaluate_lower({}) == 5
    with pytest.raises(ValueError):
        DivBound("N", 0)


def test_expression_tree_refs_order():
    a = Ref("A", "I", "K")
    b = Ref("B", "K", "J")
    c = Ref("C", "I", "J")
    expr = c + a * b
    assert expr.references() == [c, a, b]


def test_ref_equality_and_hash():
    assert Ref("A", "I") == Ref("A", parse_affine("I"))
    assert hash(Ref("A", "I")) == hash(Ref("A", "I"))
    assert Ref("A", "I") != Ref("A", "J")


def test_expr_operators_and_str():
    x = Ref("X", "I")
    e = -(x + 1) * 2 / x
    text = str(e)
    assert "X[I]" in text and "/" in text
    assert isinstance(e, BinOp)


def test_call_validation():
    with pytest.raises(ValueError):
        Call("frobnicate", Const(1))
    c = Call("sqrt", Ref("A", "J", "J"))
    assert c.references() == [Ref("A", "J", "J")]


def test_unop_validation():
    with pytest.raises(ValueError):
        UnOp("!", Const(1))


def test_as_expr_coercions():
    assert isinstance(as_expr(3), Const)
    assert isinstance(as_expr(Affine.var("I")), AffExpr)
    with pytest.raises(TypeError):
        as_expr(object())


def test_rename_expressions():
    e = (Ref("A", "I") + AffExpr(Affine.var("I"))).rename({"I": "X"})
    refs = e.references()
    assert refs[0].indices[0] == Affine.var("X")
