"""Tests for IR nodes, validation and the fluent builder."""

import pytest

from repro.ir import Loop, ProgramBuilder, Ref
from repro.polyhedra import Constraint


def build_matmul():
    pb = ProgramBuilder("matmul", params=["N"])
    pb.array("A", "N", "N").array("B", "N", "N").array("C", "N", "N")
    pb.assume_ge("N", 1)
    with pb.loop("I", 1, "N"):
        with pb.loop("J", 1, "N"):
            with pb.loop("K", 1, "N"):
                c = pb.ref("C", "I", "J")
                pb.accumulate("S1", c, pb.ref("A", "I", "K") * pb.ref("B", "K", "J"))
    return pb.build()


def test_builder_matmul_shape():
    p = build_matmul()
    assert [s.label for s in p.statements()] == ["S1"]
    loop = p.body[0]
    assert isinstance(loop, Loop)
    assert loop.var == "I"
    assert p.arrays["C"].ndim == 2


def test_statement_lookup():
    p = build_matmul()
    s = p.statement("S1")
    assert s.lhs == Ref("C", "I", "J")
    with pytest.raises(KeyError):
        p.statement("nope")


def test_loop_bounds_constraints():
    loop = Loop("I", 1, "N")
    cs = loop.bounds_constraints()
    assert len(cs) == 2
    assert all(not c.is_eq for c in cs)
    assert cs[0].evaluate({"I": 1, "N": 5})
    assert not cs[0].evaluate({"I": 0, "N": 5})
    assert cs[1].evaluate({"I": 5, "N": 5})
    assert not cs[1].evaluate({"I": 6, "N": 5})


def test_loop_divbound_constraints():
    from repro.ir.expr import DivBound, parse_affine

    # do b = 1, (N+24)/25  -> 25*b <= N+24.
    loop = Loop("b", 1, DivBound(parse_affine("N+24"), 25))
    upper = loop.bounds_constraints()[1]
    assert upper.evaluate({"b": 3, "N": 60})
    assert not upper.evaluate({"b": 4, "N": 60})


def test_validation_catches_shadowing():
    pb = ProgramBuilder("bad", params=["N"])
    pb.array("A", "N")
    with pb.loop("I", 1, "N"):
        with pb.loop("I", 1, "N"):
            pb.assign("S1", pb.ref("A", "I"), 0)
    with pytest.raises(ValueError, match="shadows"):
        pb.build()


def test_validation_catches_unbound_variable():
    pb = ProgramBuilder("bad", params=["N"])
    pb.array("A", "N")
    with pb.loop("I", 1, "N"):
        pb.assign("S1", pb.ref("A", "Q"), 0)
    with pytest.raises(ValueError, match="unbound"):
        pb.build()


def test_validation_catches_undeclared_array():
    pb = ProgramBuilder("bad", params=["N"])
    with pb.loop("I", 1, "N"):
        pb.assign("S1", pb.ref("A", "I"), 0)
    with pytest.raises(ValueError, match="undeclared"):
        pb.build()


def test_validation_catches_arity():
    pb = ProgramBuilder("bad", params=["N"])
    pb.array("A", "N")
    with pb.loop("I", 1, "N"):
        pb.assign("S1", pb.ref("A", "I", "I"), 0)
    with pytest.raises(ValueError, match="arity"):
        pb.build()


def test_validation_catches_duplicate_labels():
    pb = ProgramBuilder("bad", params=["N"])
    pb.array("A", "N")
    with pb.loop("I", 1, "N"):
        pb.assign("S1", pb.ref("A", "I"), 0)
        pb.assign("S1", pb.ref("A", "I"), 1)
    with pytest.raises(ValueError, match="duplicate"):
        pb.build()


def test_guard_builder():
    pb = ProgramBuilder("guarded", params=["N"])
    pb.array("A", "N")
    with pb.loop("I", 1, "N"):
        with pb.guard(Constraint.ge({"I": 1}, -2)):  # I >= 2
            pb.assign("S1", pb.ref("A", "I"), 0)
    p = pb.build()
    assert len(p.statements()) == 1


def test_loop_requires_bounds():
    with pytest.raises(ValueError):
        Loop("I", [], ["N"])
