"""Property test: print -> parse -> print is a fixpoint for random programs."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ir import Affine, ProgramBuilder, parse_program, to_source


@st.composite
def random_program(draw):
    pb = ProgramBuilder("roundtrip", params=["N", "M"])
    pb.array("A", "N", "M")
    pb.array("v", "N")
    pb.assume_ge("N", 1)
    depth = draw(st.integers(1, 3))
    vars_in_scope = []

    def subscript():
        if vars_in_scope and draw(st.booleans()):
            base = Affine.var(draw(st.sampled_from(vars_in_scope)))
        else:
            base = Affine({}, 1)
        return base + draw(st.integers(0, 2))

    def emit(level):
        name = f"i{level}"
        upper = draw(st.sampled_from(["N", "M", "N-1"]))
        with pb.loop(name, 1, upper):
            vars_in_scope.append(name)
            kind = draw(st.integers(0, 2))
            if kind == 0:
                pb.assign(None, pb.ref("v", subscript()), pb.ref("v", subscript()) + 1)
            elif kind == 1:
                pb.assign(
                    None,
                    pb.ref("A", subscript(), subscript()),
                    pb.ref("A", subscript(), subscript()) * 2.0,
                )
            if level < depth:
                emit(level + 1)
            if draw(st.booleans()):
                pb.assign(None, pb.ref("v", subscript()), 0)
            vars_in_scope.pop()

    emit(1)
    return pb.build(validate=False)


@settings(max_examples=60, deadline=None)
@given(random_program())
def test_print_parse_print_fixpoint(program):
    text = to_source(program)
    reparsed = parse_program(text, validate=False)
    assert to_source(reparsed) == text
