"""The runner-level ``chaos`` differential check.

The honest pipeline must be *silent* under injected faults — supervision
masks every kill/delay/budget trip and quarantine heals every corrupted
cache entry, so the chaos pass returns bit-identical results.  The check
must be *loud* for the one bug class only it can see: behavior that
depends on the fault environment (the ``chaos-flaky-legality`` planted
mutation).
"""

import os

import pytest

from repro.engine import chaos
from repro.fuzz import run_fuzz
from repro.fuzz.runner import DEFAULT_CHAOS_SPEC


@pytest.fixture(autouse=True)
def no_ambient_chaos(monkeypatch):
    monkeypatch.delenv(chaos.ENV_VAR, raising=False)
    previous = chaos.configure(None)
    yield
    chaos.configure(previous)


def test_chaos_check_is_silent_on_the_honest_pipeline():
    report = run_fuzz(seed=1, budget=4, checks=("legality", "chaos"), corpus=None)
    assert report.ok
    assert report.chaos_cases == 4
    assert report.chaos_spec == chaos.parse_spec(
        f"{DEFAULT_CHAOS_SPEC},seed=1"
    ).describe()
    assert "chaos differential" in report.describe()
    # The run restores a chaos-free environment behind itself.
    assert chaos.active() is None
    assert chaos.ENV_VAR not in os.environ


def test_chaos_check_catches_fault_dependent_behavior():
    report = run_fuzz(
        seed=3,
        budget=8,
        checks=("legality", "chaos"),
        corpus=None,
        mutation="chaos-flaky-legality",
        shrink=False,
    )
    assert not report.ok
    assert {f.check for f in report.failures} == {"chaos"}
    assert all("chaos" == f.failures[0]["check"] for f in report.failures)


def test_explicit_spec_enables_the_check_without_listing_it():
    report = run_fuzz(
        seed=1, budget=3, checks=("legality",), corpus=None,
        chaos_spec="corrupt=0.5,seed=2",
    )
    assert report.ok
    assert report.chaos_cases == 3
    assert report.chaos_spec == "seed=2,corrupt=0.5"


def test_chaos_alone_falls_back_to_legality_worker_checks():
    # "chaos" is runner-level: workers need at least one real oracle to
    # produce comparable results.
    report = run_fuzz(seed=1, budget=2, checks=("chaos",), corpus=None)
    assert report.ok
    assert report.chaos_cases == 2


def test_clean_pass_ignores_ambient_chaos(monkeypatch):
    # With REPRO_CHAOS exported, the reference pass must still run
    # fault-free or the differential would compare chaos against chaos.
    monkeypatch.setenv(chaos.ENV_VAR, "kill=1,seed=0")
    chaos.configure(chaos.parse_spec("kill=1,seed=0"))
    report = run_fuzz(seed=1, budget=2, checks=("legality", "chaos"), corpus=None)
    assert report.ok
    # The ambient spec is restored afterwards.
    assert os.environ[chaos.ENV_VAR] == "kill=1,seed=0"
    assert chaos.active() == chaos.parse_spec("kill=1,seed=0")
