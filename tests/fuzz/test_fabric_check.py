"""The runner-level ``fabric`` differential check.

The honest pipeline must be *silent* when its jobs are re-served through
a chaos-ridden multi-daemon fabric — transport resets, truncations,
duplicated replies, lag, and a replica killed dead mid-pass are all
masked by retries, failover and the crash-safe store, so every served
value is bit-identical to the clean single-process run.  The check must
be *loud* for the one bug class only it can see: non-idempotent store
publishes (the ``fabric-republish`` planted mutation), which corrupt
the shared cache tier without ever disturbing a fresh compute.
"""

import os

import pytest

from repro.engine import chaos
from repro.fuzz import run_fuzz
from repro.fuzz.runner import DEFAULT_FABRIC_SPEC, FABRIC_REPLICAS


@pytest.fixture(autouse=True)
def no_ambient_chaos(monkeypatch):
    monkeypatch.delenv(chaos.ENV_VAR, raising=False)
    monkeypatch.delenv(chaos.STORE_MUTATION_ENV, raising=False)
    previous = chaos.configure(None)
    yield
    chaos.configure(previous)


def test_fabric_check_is_silent_on_the_honest_pipeline():
    report = run_fuzz(seed=1, budget=4, checks=("legality", "fabric"), corpus=None)
    assert report.ok
    assert report.fabric_cases == 4
    assert report.fabric_spec == chaos.parse_spec(
        f"{DEFAULT_FABRIC_SPEC},seed=1"
    ).describe()
    assert "fabric differential" in report.describe()
    assert f"{FABRIC_REPLICAS} replicas" in report.describe()
    # The pass restores a chaos-free, mutation-free environment.
    assert chaos.active() is None
    assert chaos.ENV_VAR not in os.environ
    assert chaos.STORE_MUTATION_ENV not in os.environ


def test_fabric_check_catches_nonidempotent_publishes():
    # fabric-republish stamps a fresh sequence number into every stored
    # value and bypasses the publish election.  The fresh serve and all
    # per-case oracles still agree with the clean run — only the
    # cache-tier re-serve can observe the corruption.
    report = run_fuzz(
        seed=3,
        budget=6,
        checks=("legality", "fabric"),
        corpus=None,
        mutation="fabric-republish",
        shrink=False,
    )
    assert not report.ok
    assert {f.check for f in report.failures} == {"fabric"}
    details = " ".join(f.failures[0]["detail"] for f in report.failures)
    assert "re-serve diverged" in details
    assert chaos.STORE_MUTATION_ENV not in os.environ


def test_explicit_spec_enables_the_check_without_listing_it():
    report = run_fuzz(
        seed=1, budget=3, checks=("legality",), corpus=None,
        fabric_spec="reset=0.5,seed=2",
    )
    assert report.ok
    assert report.fabric_cases == 3
    assert report.fabric_spec == "seed=2,reset=0.5"


def test_fabric_alone_falls_back_to_legality_worker_checks():
    # "fabric" is runner-level: workers need at least one real oracle to
    # produce comparable results.
    report = run_fuzz(seed=1, budget=2, checks=("fabric",), corpus=None)
    assert report.ok
    assert report.fabric_cases == 2
