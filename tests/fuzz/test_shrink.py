"""The delta-debugging shrinker: termination, validity, minimization."""

import dataclasses

from repro.fuzz import generate_case
from repro.fuzz.cases import build_shackle
from repro.fuzz.shrink import _candidates, _valid, case_size, shrink_case


def test_candidates_are_valid_and_strictly_smaller():
    for index in range(15):
        case = generate_case(5, index)
        size = case_size(case)
        for candidate in _candidates(case):
            if not _valid(candidate):
                continue
            assert case_size(candidate) < size


def test_shrink_terminates_and_minimizes_against_a_fake_oracle():
    # The "bug" fires whenever any factor still blocks array A — an
    # always-reproducible predicate, so the shrinker should strip the
    # case down to something no candidate can reduce further.
    case = generate_case(2, 7)
    assert any(f.blocking["array"] == "A" for f in case.factors)

    def fake_run(payload):
        from repro.fuzz.cases import FuzzCase

        c = FuzzCase.from_payload(payload)
        bug = any(f.blocking["array"] == "A" for f in c.factors)
        return {"failures": [{"check": "legality", "detail": "fake"}] if bug else []}

    minimized, steps = shrink_case(case, "legality", run=fake_run)
    assert steps > 0
    assert case_size(minimized) < case_size(case)
    # Still a valid, reproducing case...
    assert _valid(minimized)
    assert fake_run(minimized.to_payload())["failures"]
    # ...and a local minimum: no valid smaller candidate reproduces.
    for candidate in _candidates(minimized):
        if _valid(candidate) and case_size(candidate) < case_size(minimized):
            assert not fake_run(candidate.to_payload())["failures"]


def test_shrink_keeps_shackle_buildable_after_statement_drops():
    # Dropping a statement must also drop its choice/dummy bindings, or
    # the shrunk shackle would bind labels that no longer exist.
    for index in range(20):
        case = generate_case(9, index)
        if len(case.parsed().statements()) < 2:
            continue
        for candidate in _candidates(case):
            if not _valid(candidate):
                continue
            shackle = build_shackle(candidate)
            labels = {s.label for s in candidate.parsed().statements()}
            for factor in shackle.factors():
                assert set(factor.ref_choice) <= labels
                assert set(factor.dummies) <= labels


def test_crash_during_shrink_counts_as_reproduction():
    case = generate_case(0, 2)

    calls = []

    def crashing_run(payload):
        calls.append(payload)
        raise RuntimeError("boom")

    minimized, steps = shrink_case(case, "codegen", run=crashing_run, max_steps=5)
    # Every candidate "reproduces" (crashes), so shrinking proceeds to
    # the step cap instead of dying.
    assert steps == 5
    assert calls
    assert case_size(minimized) < case_size(case)


def test_mutation_field_survives_shrinking():
    case = dataclasses.replace(generate_case(0, 4), mutation="semantics-perturb-value")

    def fake_run(payload):
        assert payload.get("mutation") == "semantics-perturb-value"
        return {"failures": [{"check": "semantics", "detail": "fake"}]}

    minimized, _ = shrink_case(case, "semantics", run=fake_run, max_steps=3)
    assert minimized.mutation == "semantics-perturb-value"
