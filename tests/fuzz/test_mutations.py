"""Mutation injection: every oracle must catch its planted bug.

This is the validation of the fuzzer itself — a differential oracle that
never fires when its stage is broken is dead weight.  For each named
mutation the fuzzer runs with the bug planted, and must (a) fail, (b)
fail in the targeted oracle, (c) shrink the witness, and (d) persist a
minimized corpus entry that still reproduces the bug.
"""

import dataclasses
import json

import pytest

from repro.backends.c_backend import c_compiler_available
from repro.fuzz import GenConfig, run_case_payload, run_fuzz
from repro.fuzz.cases import case_from_shackle
from repro.fuzz.mutations import MUTATIONS, get
from repro.fuzz.shrink import case_size
from repro.kernels import matmul

BUDGET = 12  # enough for every mutation to trip at seed 0


def test_registry_covers_every_oracle():
    targets = {m.target_oracle for m in MUTATIONS.values()}
    assert targets == {
        "deps", "solver", "legality", "codegen", "semantics", "backend",
        "memsim", "chaos", "fabric",
    }
    with pytest.raises(ValueError):
        get("no-such-mutation")
    assert get(None) is None


def test_planted_semantics_bug_is_caught_without_fuzzing():
    # Fast tier-1 witness: the oracle fires on a single hand-built case.
    program = matmul.program()
    case = case_from_shackle(matmul.c_shackle(program, 2), {"N": 4}, checks=("semantics",))
    case = dataclasses.replace(case, mutation="semantics-perturb-value")
    result = run_case_payload(case.to_payload())
    assert any(f["check"] == "semantics" for f in result["failures"])


@pytest.mark.fuzz
@pytest.mark.parametrize(
    "name",
    [
        "deps-drop-last",
        "solver-bad-prune",
        "batch-bad-prefix",
        "legality-accept-all",
        "codegen-drop-guard",
        "semantics-perturb-value",
        "reuse-off-by-one",
        "conflict-bad-set-index",
    ],
)
def test_each_oracle_catches_and_shrinks_its_planted_bug(name, tmp_path):
    mutation = MUTATIONS[name]
    corpus = tmp_path / "corpus"
    report = run_fuzz(seed=0, budget=BUDGET, corpus=corpus, mutation=name)
    assert report.failures, f"{name} was never caught in {BUDGET} cases"
    assert {f.check for f in report.failures} == {mutation.target_oracle}
    for failure in report.failures:
        assert failure.minimized is not None
        assert case_size(failure.minimized) <= case_size(failure.case)
        assert failure.corpus_path is not None and failure.corpus_path.exists()
        # The persisted minimized entry still reproduces the bug.
        entry = json.loads(failure.corpus_path.read_text())
        assert entry["check"] == mutation.target_oracle
        replayed = run_case_payload(entry["case"])
        assert any(f["check"] == mutation.target_oracle for f in replayed["failures"])
    # At least one witness actually got smaller.
    assert any(
        case_size(f.minimized) < case_size(f.case) for f in report.failures
    ), "shrinker accepted no reduction on any witness"


@pytest.mark.fuzz
@pytest.mark.skipif(not c_compiler_available(), reason="needs a C compiler")
def test_backend_oracle_catches_planted_c_bug(tmp_path):
    cfg = GenConfig(checks=("backend",), backend_stride=1)
    report = run_fuzz(
        seed=0, budget=3, corpus=tmp_path / "corpus", config=cfg,
        mutation="backend-perturb-value",
    )
    assert report.failures
    assert {f.check for f in report.failures} == {"backend"}
    assert all(f.corpus_path is not None for f in report.failures)


@pytest.mark.fuzz
def test_corpus_replay_keeps_reporting_until_fixed(tmp_path):
    corpus = tmp_path / "corpus"
    planted = run_fuzz(seed=0, budget=BUDGET, corpus=corpus, mutation="legality-accept-all")
    assert planted.failures
    # Replay with the bug still planted: every entry still fails, and the
    # failures are attributed to the corpus, not re-shrunk.
    replay = run_fuzz(seed=0, budget=0, corpus=corpus, mutation="legality-accept-all")
    assert replay.corpus_replayed == len(planted.failures)
    assert replay.corpus_still_failing == len(planted.failures)
    # Simulate fixing the bug: with the mutation stripped from each
    # stored case, the very same minimized entries pass clean.
    from repro.fuzz.corpus import load_entries

    for _, case, _ in load_entries(corpus):
        payload = case.to_payload()
        payload.pop("mutation", None)
        assert run_case_payload(payload)["failures"] == []
