"""The case generator: determinism, validity, round-trips."""

from repro.engine.jobs import fingerprint
from repro.fuzz import FuzzCase, GenConfig, generate_case, generate_program
from repro.fuzz.cases import build_shackle, case_from_shackle
from repro.fuzz.gen import case_rng
from repro.kernels import matmul


def test_same_seed_and_index_is_bit_identical():
    for index in range(10):
        a = generate_case(7, index)
        b = generate_case(7, index)
        assert a == b
        assert a.to_payload() == b.to_payload()
        assert fingerprint("fuzz", a.to_payload()) == fingerprint("fuzz", b.to_payload())


def test_different_indices_give_independent_streams():
    cases = [generate_case(0, i) for i in range(20)]
    assert len({fingerprint("fuzz", c.to_payload()) for c in cases}) == 20
    # Programs vary too, not just the shackles.
    assert len({c.program for c in cases}) > 5


def test_different_seeds_differ():
    assert generate_case(0, 3) != generate_case(1, 3)
    assert case_rng(0, 1).random() != case_rng(1, 1).random()


def test_generated_programs_validate_and_shackles_build():
    for index in range(30):
        case = generate_case(11, index)
        program = case.parsed()
        program.validate()
        shackle = build_shackle(case, program)
        assert shackle.factors()


def test_case_payload_round_trip():
    for index in range(10):
        case = generate_case(3, index)
        assert FuzzCase.from_payload(case.to_payload()) == case


def test_backend_stride_controls_c_checks():
    cfg = GenConfig(checks=("semantics", "backend"), backend_stride=4)
    with_backend = [
        i for i in range(12) if "backend" in generate_case(0, i, cfg).checks
    ]
    assert with_backend == [0, 4, 8]
    # Stride only matters when backend is selected at all.
    cfg = GenConfig(checks=("semantics",), backend_stride=4)
    assert all("backend" not in generate_case(0, i, cfg).checks for i in range(8))


def test_case_from_shackle_round_trips_a_paper_shackle():
    program = matmul.program()
    case = case_from_shackle(matmul.ca_product(program, 2), {"N": 4})
    rebuilt = build_shackle(case)
    assert len(rebuilt.factors()) == 2
    assert [f.blocking.array for f in rebuilt.factors()] == ["C", "A"]


def test_generator_covers_products_and_dummies():
    cases = [generate_case(0, i) for i in range(60)]
    assert any(len(c.factors) == 2 for c in cases), "products never sampled"
    assert any(
        f.dummies for c in cases for f in c.factors
    ), "dummy references never sampled"
    assert any(
        d == -1 for c in cases for f in c.factors for d in f.blocking["directions"]
    ), "reversed traversal never sampled"
