"""The ``repro fuzz`` subcommand and the engine integration."""

import dataclasses

import pytest

from repro.cli import main
from repro.engine.cache import ResultCache
from repro.engine.jobs import EXECUTORS, execute
from repro.engine.pool import run_jobs
from repro.fuzz import fuzz_job, generate_case, run_case_payload, run_fuzz
from repro.fuzz.cases import case_from_shackle
from repro.fuzz.corpus import save_entry
from repro.kernels import matmul


def test_fuzz_is_a_registered_job_kind():
    assert "fuzz" in EXECUTORS
    spec = fuzz_job(generate_case(0, 1))
    assert spec.kind == "fuzz"
    assert execute(spec)["failures"] == []
    # Same case -> same fingerprint: the cache can dedup fuzz work.
    assert spec.fingerprint == fuzz_job(generate_case(0, 1)).fingerprint


def test_fuzz_jobs_hit_the_result_cache(tmp_path):
    cache = ResultCache(root=tmp_path / "cache")
    specs = [fuzz_job(generate_case(0, i)) for i in range(3)]
    cold = run_jobs(specs, cache=cache)
    warm = run_jobs(specs, cache=cache)
    assert cold == warm
    assert cache.hits >= 3


def test_run_fuzz_parallel_matches_serial(tmp_path):
    serial = run_fuzz(seed=3, budget=6, corpus=tmp_path / "a", jobs=1)
    parallel = run_fuzz(seed=3, budget=6, corpus=tmp_path / "b", jobs=2)
    assert serial.cases == parallel.cases == 6
    assert serial.legal == parallel.legal
    assert len(serial.failures) == len(parallel.failures) == 0


def test_cli_fuzz_green_run_exits_zero(tmp_path, capsys):
    rc = main(
        ["fuzz", "--seed", "1", "--budget", "3", "--corpus", str(tmp_path / "c"), "--metrics"]
    )
    out = capsys.readouterr().out
    assert rc == 0
    assert "3 cases" in out
    assert "0 failures" in out
    assert "fuzz.cases" in out  # --metrics report includes the verdict counters


def test_cli_fuzz_replays_corpus_and_exits_one_on_failure(tmp_path, capsys):
    corpus = tmp_path / "corpus"
    # Persist a known-failing minimized entry (a planted semantics bug).
    program = matmul.program()
    case = case_from_shackle(matmul.c_shackle(program, 2), {"N": 4}, checks=("semantics",))
    case = dataclasses.replace(case, mutation="semantics-perturb-value")
    failures = run_case_payload(case.to_payload())["failures"]
    assert failures
    save_entry(corpus, case, failures)

    rc = main(["fuzz", "--seed", "1", "--budget", "2", "--corpus", str(corpus)])
    out = capsys.readouterr().out
    assert rc == 1
    assert "1 entries replayed, 1 still failing" in out
    assert "FAIL [corpus]" in out


def test_cli_fuzz_rejects_unknown_check():
    with pytest.raises(SystemExit):
        main(["fuzz", "--check", "nonsense"])


def test_cli_fuzz_chaos_differential_exits_zero(tmp_path, capsys):
    rc = main(
        [
            "fuzz", "--seed", "1", "--budget", "3",
            "--corpus", str(tmp_path / "c"),
            "--check", "legality", "--check", "chaos",
            "--chaos", "kill=0.3,corrupt=0.3,budget=0.2,seed=5",
        ]
    )
    out = capsys.readouterr().out
    assert rc == 0
    assert "chaos differential: 3 cases" in out
    assert "0 divergences" in out


def test_cli_chaos_flag_rejects_bad_spec(tmp_path, capsys):
    import pytest as _pytest

    with _pytest.raises(ValueError):
        main(
            ["fuzz", "--seed", "1", "--budget", "1",
             "--corpus", str(tmp_path / "c"), "--chaos", "explode=2"]
        )
