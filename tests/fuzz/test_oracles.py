"""The differential oracles: hand-checked verdicts plus clean sweeps."""

import pytest

from repro.fuzz import generate_case, run_case_payload
from repro.fuzz.cases import case_from_shackle
from repro.fuzz.oracles import (
    brute_force_legal,
    brute_shackled_order,
    element_trace,
    expected_element_stream,
)
from repro.ir import parse_program
from repro.kernels import matmul, trisolve


def test_brute_force_legal_agrees_on_known_verdicts():
    program = matmul.program()
    assert brute_force_legal(program, matmul.c_shackle(program, 2), {"N": 4})
    backward = trisolve.program("backward")
    assert not brute_force_legal(
        backward, trisolve.x_shackle(backward, 2, descending=False), {"N": 5}
    )
    assert brute_force_legal(
        backward, trisolve.x_shackle(backward, 2, descending=True), {"N": 5}
    )


def test_brute_shackled_order_groups_by_block():
    program = matmul.program()
    shackle = matmul.c_shackle(program, 2)
    order = brute_shackled_order(program, shackle, {"N": 4})
    assert len(order) == 64
    # C[I,J] blocks of spacing 2: the (I,J) pairs must appear block by
    # block, with K (and program order) free inside each block.
    blocks = [((i - 1) // 2, (j - 1) // 2) for _, (i, j, k) in order]
    assert blocks == sorted(blocks)


def test_element_trace_matches_expected_stream_on_original_order():
    program = parse_program(
        """
program t(N)
array A[N,N]
assume N >= 1
do I = 1, N
  do J = I, N
    S1: A[I,J] = A[I,J] + 1
"""
    )
    from repro.dependence.oracle import enumerate_instances

    env = {"N": 4}
    order = [(ctx.label, ivec) for ctx, ivec in enumerate_instances(program, env)]
    assert element_trace(program, env) == expected_element_stream(program, order, env)
    assert len(order) == 10  # triangular count


def test_clean_case_has_no_failures_and_reports_shape():
    case = generate_case(0, 1)
    result = run_case_payload(case.to_payload())
    assert result["failures"] == []
    assert isinstance(result["legal"], bool)
    assert result["instances"] > 0
    assert result["skipped"] == []


def test_paper_shackle_as_case_passes_all_checks():
    program = matmul.program()
    case = case_from_shackle(
        matmul.ca_product(program, 2), {"N": 4}, checks=("deps", "legality", "codegen", "semantics")
    )
    result = run_case_payload(case.to_payload())
    assert result["failures"] == []
    assert result["legal"] is True


@pytest.mark.fuzz
def test_thirty_random_cases_all_agree():
    legal = 0
    for index in range(30):
        case = generate_case(0, index)
        result = run_case_payload(case.to_payload())
        assert result["failures"] == [], (
            f"case (0, {index}) disagrees: {result['failures']}"
        )
        legal += bool(result["legal"])
    # The sampler must exercise both verdicts or the legality oracle is idle.
    assert 0 < legal < 30


@pytest.mark.slow
@pytest.mark.fuzz
def test_deep_sweep_with_backend_differential(tmp_path):
    # The nightly-depth sweep: a different seed stream than CI's smoke
    # run, with the C-vs-Python differential enabled.
    from repro.fuzz import ALL_CHECKS, GenConfig, run_fuzz

    cfg = GenConfig(checks=ALL_CHECKS, backend_stride=10)
    report = run_fuzz(seed=1, budget=100, corpus=tmp_path / "corpus", config=cfg)
    assert report.ok, report.describe()
    assert report.cases == 100
    assert 0 < report.legal < 100
