"""Property tests: emitted bound expressions match DivBound semantics.

Ceiling/floor division of negative quantities is where generated code
usually goes wrong; these tests pin the Python backend's emitted
integer arithmetic (and the walker codegen in repro.core.instances)
against the exact DivBound evaluation.
"""

from hypothesis import given
from hypothesis import strategies as st

from repro.backends.python_backend import _bound_src
from repro.core.instances import _bound_expr
from repro.ir.expr import Affine, DivBound
from repro.polyhedra.scan import Bound


@given(
    st.integers(-30, 30),
    st.integers(-30, 30),
    st.integers(-50, 50),
    st.integers(1, 9),
    st.integers(-20, 20),
    st.integers(-20, 20),
)
def test_python_backend_bound_src(ca, cb, const, den, va, vb):
    bound = DivBound(Affine({"a": ca, "b": cb}, const), den)
    env = {"a": va, "b": vb}
    lower = eval(_bound_src(bound, "lower"), {}, dict(env))
    upper = eval(_bound_src(bound, "upper"), {}, dict(env))
    assert lower == bound.evaluate_lower(env)
    assert upper == bound.evaluate_upper(env)


@given(
    st.integers(-30, 30),
    st.integers(-50, 50),
    st.integers(1, 9),
    st.integers(-20, 20),
)
def test_instance_walker_bound_expr(coeff, const, den, value):
    bound = Bound({"x": coeff}, const, den)
    env = {"x": value}
    lower = eval(_bound_expr(bound, "lower"), {}, dict(env))
    upper = eval(_bound_expr(bound, "upper"), {}, dict(env))
    assert lower == bound.evaluate_lower(env)
    assert upper == bound.evaluate_upper(env)


def test_c_backend_division_helpers_match_python():
    """The C floordiv/ceildiv helpers agree with Python semantics
    (compiled check lives in test_c_backend; this is the source pin)."""
    from repro.backends.c_backend import _PRELUDE

    assert "r != 0 && ((r < 0) != (b < 0))" in _PRELUDE  # true floor division
    assert "-floordiv(-a, b)" in _PRELUDE  # ceil via floor
