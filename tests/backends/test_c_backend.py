"""C backend tests: emission always; compile/run when a compiler exists."""

import numpy as np
import pytest

from repro.backends import c_compiler_available, compile_and_run, emit_c
from repro.core import DataBlocking, shackle_refs, simplified_code
from repro.ir import parse_program
from repro.kernels import matmul

needs_cc = pytest.mark.skipif(not c_compiler_available(), reason="no C compiler")


def test_emit_c_structure():
    p = matmul.program()
    src = emit_c(p)
    assert "for (long I = (1); I <= (N); I++)" in src
    assert "malloc" in src and "checksum" in src
    assert "C[((I)-1)+((J)-1)*(long)((N))]" in src  # column-major addressing


def test_emit_c_divbounds():
    p = parse_program(
        """
program b(N)
array A[N]
do t = 1, (N+2)/3
  do I = 3*t-2, min(N, 3*t)
    S1: A[I] = 1
"""
    )
    src = emit_c(p)
    assert "floordiv((N+2), 3)" in src
    assert "?" in src  # min via ternary


def test_emit_c_guard_and_intrinsics():
    p = parse_program(
        """
program g(N)
array A[N]
do I = 1, N
  if I >= 2
    S1: A[I] = sqrt(abs(A[I]))
"""
    )
    src = emit_c(p)
    assert "if (((I-2) >= 0))" in src
    assert "sqrt(fabs(" in src


@needs_cc
def test_c_runs_and_matches_python_checksum():
    p = parse_program(
        """
program s(N)
array A[N]
do I = 1, N
  S1: A[I] = A[I] + I
"""
    )
    result = compile_and_run(p, {"N": 100})
    # The default init is deterministic; with A[i] += i the checksum is
    # sum(init) + sum(1..100).
    base = sum(0.000001 * ((i * 2654435761) % 1000) for i in range(100))
    assert result.checksum == pytest.approx(base + 5050, rel=1e-9)


@needs_cc
def test_c_original_vs_shackled_same_checksum():
    p = matmul.program()
    sh = matmul.ca_product(p, 8)
    original = compile_and_run(p, {"N": 60})
    blocked = compile_and_run(simplified_code(sh), {"N": 60})
    assert blocked.checksum == pytest.approx(original.checksum, rel=1e-10)


@needs_cc
def test_c_handles_negative_floordiv():
    # Reversed-direction block loops produce negative bounds; ensure the
    # floor/ceil helpers are mathematically correct in C.
    p = parse_program(
        """
program neg(N)
array A[N]
do t = 0-N, (0-1)/2
  do I = 0-t, 0-t
    S1: A[I] = A[I] + 1
"""
    )
    result = compile_and_run(p, {"N": 7})
    base = sum(0.000001 * ((i * 2654435761) % 1000) for i in range(7))
    # t runs -7..-1, so A[1..7] each +1 -> checksum = base + 7.
    assert result.checksum == pytest.approx(base + 7, rel=1e-9)
