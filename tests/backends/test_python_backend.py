"""Python backend tests: semantics, tracing, flop accounting."""

import numpy as np
import pytest

from repro.backends import compile_program
from repro.backends.python_backend import _affine_src
from repro.ir import parse_program
from repro.ir.expr import Affine
from repro.memsim import Arena, MemoryHierarchy, CacheLevel


def test_simple_init_loop():
    p = parse_program(
        """
program init(N)
array A[N]
do I = 1, N
  S1: A[I] = 2*I + 1
"""
    )
    arena = Arena(p, {"N": 5})
    buf = arena.allocate()
    result = compile_program(p, arena).run(buf)
    assert list(buf) == [3, 5, 7, 9, 11]
    assert result.counts == {"S1": 5}
    assert result.instances == 5


def test_guard_execution():
    p = parse_program(
        """
program g(N)
array A[N]
do I = 1, N
  if I >= 3
    S1: A[I] = 1
"""
    )
    arena = Arena(p, {"N": 5})
    buf = arena.allocate()
    compile_program(p, arena).run(buf)
    assert list(buf) == [0, 0, 1, 1, 1]


def test_min_max_divbounds_execution():
    p = parse_program(
        """
program b(N)
array A[N]
do t = 1, (N+2)/3
  do I = 3*t-2, min(N, 3*t)
    S1: A[I] = t
"""
    )
    arena = Arena(p, {"N": 7})
    buf = arena.allocate()
    compile_program(p, arena).run(buf)
    assert list(buf) == [1, 1, 1, 2, 2, 2, 3]


def test_intrinsics():
    p = parse_program(
        """
program f(N)
array A[N]
do I = 1, N
  S1: A[I] = sqrt(A[I]) + sign(A[I]) + abs(0 - A[I])
"""
    )
    arena = Arena(p, {"N": 3})
    buf = arena.allocate()
    buf[:] = [4.0, 9.0, 16.0]
    compile_program(p, arena).run(buf)
    assert list(buf) == [2 + 1 + 4, 3 + 1 + 9, 4 + 1 + 16]


def test_trace_order_reads_then_write():
    p = parse_program(
        """
program t(N)
array A[N]
array B[N]
do I = 1, N
  S1: A[I] = B[I] + A[I]
"""
    )
    arena = Arena(p, {"N": 2})
    buf = arena.allocate()

    class Recorder:
        def __init__(self):
            self.log = []

        def access(self, addr, write=False):
            self.log.append((addr, write))
            return 0

    rec = Recorder()
    compile_program(p, arena, trace=True).run(buf, mem=rec)
    a = arena.layout("A").base
    b = arena.layout("B").base
    # Per instance: read B[I], read A[I], then write A[I].
    assert rec.log == [
        (b, False),
        (a, False),
        (a, True),
        (b + 1, False),
        (a + 1, False),
        (a + 1, True),
    ]


def test_trace_requires_mem():
    p = parse_program("program t(N)\narray A[N]\ndo I = 1, N\n  S1: A[I] = 0")
    arena = Arena(p, {"N": 2})
    cp = compile_program(p, arena, trace=True)
    with pytest.raises(ValueError, match="pass mem="):
        cp.run(arena.allocate())


def test_capture_mode_matches_callback_order():
    p = parse_program(
        """
program t(N)
array A[N]
array B[N]
do I = 1, N
  S1: A[I] = B[I] + A[I]
"""
    )
    arena = Arena(p, {"N": 3})

    class Recorder:
        def __init__(self):
            self.log = []

        def access(self, addr, write=False):
            self.log.append((addr, write))
            return 0

    rec = Recorder()
    compile_program(p, arena, trace=True).run(arena.allocate(), mem=rec)
    result = compile_program(p, arena, trace="capture").run(arena.allocate())
    # Same accesses, same operand order, encoded as addr*2 + is_write.
    assert result.trace.tolist() == [a * 2 + int(w) for a, w in rec.log]
    assert result.counts == {"S1": 3}


def test_unsupported_intrinsic_names_the_function():
    p = parse_program(
        """
program f(N)
array A[N]
do I = 1, N
  S1: A[I] = sqrt(A[I])
"""
    )
    call = p.body[0].body[0].rhs
    call.func = "tanh"  # an intrinsic the IR may grow before the backend does
    with pytest.raises(ValueError, match="'tanh'"):
        compile_program(p, Arena(p, {"N": 2}))


def test_affine_src_unit_coefficients():
    assert _affine_src(Affine({"I": 1, "J": -1}, 0)) == "(I-J)"
    assert _affine_src(Affine({"I": -1}, 1)) == "(-I+1)"
    assert _affine_src(Affine({"I": 2, "J": -3}, 0)) == "(2*I-3*J)"
    assert _affine_src(Affine({}, 5)) == "(5)"


def test_flop_accounting():
    p = parse_program(
        """
program f(N)
array A[N]
do I = 1, N
  S1: A[I] = A[I]*A[I] + 1
  S2: A[I] = sqrt(A[I])
"""
    )
    arena = Arena(p, {"N": 4})
    result = compile_program(p, arena).run(arena.allocate())
    assert result.flops_per_statement == {"S1": 2, "S2": 1}
    assert result.flops == 4 * 2 + 4 * 1


def test_tracing_counts_match_hierarchy():
    p = parse_program(
        """
program t(N)
array A[N]
do I = 1, N
  S1: A[I] = A[I] + 1
"""
    )
    arena = Arena(p, {"N": 10})
    mem = MemoryHierarchy([CacheLevel("L1", 8, 2, 2, 1)], memory_latency=10)
    compile_program(p, arena, trace=True).run(arena.allocate(), mem=mem)
    # 2 accesses per instance (read + write).
    assert mem.total_accesses == 20
