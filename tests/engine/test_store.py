"""Crash-safety tests for the shared-store publish primitives.

The headline test is the multi-process stress: ≥8 writers hammer one
``ResultCache`` store over a shared fingerprint set while a subset of
them is killed *inside* the publish window (holding the lease, with a
half-written temp file on disk).  The store must end with zero corrupt
reads, zero lost publishes, and an empty orphan set after the sweep.
"""

import json
import multiprocessing
import os
import time

import pytest

from repro.engine import store
from repro.engine.cache import ResultCache, quarantine_file
from repro.engine.metrics import MetricsRegistry


def test_unique_tmp_names_never_collide(tmp_path):
    path = tmp_path / "ab" / "entry.json"
    names = {store.unique_tmp(path).name for _ in range(64)}
    assert len(names) == 64
    assert all(store.is_tmp(path.with_name(n)) for n in names)
    # The orphan-sweep glob contract: every temp name carries ".tmp.".
    assert all(".tmp." in n for n in names)


def test_atomic_publish_writes_content_and_cleans_temp(tmp_path):
    path = tmp_path / "ab" / "entry.json"
    store.atomic_publish(path, b'{"x": 1}')
    assert path.read_bytes() == b'{"x": 1}'
    assert list(path.parent.glob("*.tmp.*")) == []


def test_atomic_publish_removes_temp_on_writer_error(tmp_path):
    path = tmp_path / "ab" / "entry.json"

    def exploding(fh):
        fh.write(b"partial")
        raise RuntimeError("boom")

    with pytest.raises(RuntimeError):
        store.atomic_publish(path, writer=exploding)
    assert not path.exists()
    assert list(path.parent.glob("*.tmp.*")) == []


def test_lease_is_exclusive_and_releases(tmp_path):
    path = tmp_path / "ab" / "entry.json"
    first = store.PublishLease(path)
    second = store.PublishLease(path)
    assert first.acquire()
    assert not second.acquire()
    first.release()
    assert second.acquire()
    second.release()
    assert not second.lock_path.exists()


def test_lease_of_dead_pid_is_broken_immediately(tmp_path):
    path = tmp_path / "ab" / "entry.json"
    lease = store.PublishLease(path)
    path.parent.mkdir(parents=True)
    # A lock held by a pid that no longer exists: young, but reclaimable.
    lease.lock_path.write_text("999999999:0.0")
    contender = store.PublishLease(path)
    assert contender.acquire()
    contender.release()


def test_lease_broken_by_age_even_with_live_pid(tmp_path):
    path = tmp_path / "ab" / "entry.json"
    path.parent.mkdir(parents=True)
    lock = store.PublishLease(path).lock_path
    lock.write_text(f"{os.getpid()}:0.0")  # our own (live) pid
    old = time.time() - 10.0
    os.utime(lock, (old, old))
    contender = store.PublishLease(path, stale_after=1.0)
    assert contender.acquire()
    contender.release()


def test_elected_publish_outcomes(tmp_path):
    path = tmp_path / "ab" / "entry.json"
    metrics = MetricsRegistry()
    assert store.elected_publish(path, b"v", metrics=metrics) == "published"
    assert store.elected_publish(path, b"v", metrics=metrics) == "dedup"
    assert path.read_bytes() == b"v"
    assert metrics.get("engine.store.publishes") == 1
    assert metrics.get("engine.store.publish_dedup") == 1


def test_elected_publish_rescues_after_winner_death(tmp_path):
    # The elected writer died between winning the lease and renaming:
    # its lock names a dead pid and no entry ever appears.  The loser
    # must not lose the value — it breaks the lock on its next acquire
    # or, failing that, force-publishes after the wait.
    path = tmp_path / "ab" / "entry.json"
    path.parent.mkdir(parents=True)
    lock = store.PublishLease(path).lock_path
    lock.write_text(f"{os.getpid()}:0.0")  # live pid: lock NOT breakable
    old = time.time()  # young: not age-stale either
    os.utime(lock, (old, old))
    metrics = MetricsRegistry()
    t0 = time.monotonic()
    outcome = store.elected_publish(path, b"v", metrics=metrics)
    assert outcome == "rescue"
    assert time.monotonic() - t0 >= store.LEASE_WAIT_SECONDS * 0.9
    assert path.read_bytes() == b"v"


def test_sweep_orphans_age_threshold(tmp_path):
    root = tmp_path / "store"
    bucket = root / "ab"
    bucket.mkdir(parents=True)
    entry = bucket / "fp.json"
    entry.write_text("{}")
    young = bucket / "fp.json.tmp.1.2.3"
    young.write_text("live publish in flight")
    aged = bucket / "fp2.json.tmp.4.5.6"
    aged.write_text("crashed writer")
    old = time.time() - 2 * store.ORPHAN_AGE_SECONDS
    os.utime(aged, (old, old))
    dead_lock = bucket / "fp3.json.lock"
    dead_lock.write_text("999999999:0.0")
    quarantine = root / "quarantine"
    quarantine.mkdir()
    evidence = quarantine / "bad.json.tmp.7.8.9"
    evidence.write_text("evidence")
    os.utime(evidence, (old, old))

    counts = store.sweep_orphans(root, metrics=MetricsRegistry())
    assert counts == {"tmp": 1, "locks": 1, "kept": 1}
    assert young.exists()  # younger than the threshold: a live writer
    assert not aged.exists()
    assert not dead_lock.exists()
    assert entry.exists()
    assert evidence.exists()  # quarantine is never swept


# -- multi-process stress ----------------------------------------------------

STRESS_FINGERPRINTS = [f"{i:02x}" * 32 for i in range(24)]


def _value_for(fp: str) -> dict:
    return {"fp": fp, "payload": [ord(c) for c in fp[:8]]}


def _stress_writer(root, seed, crash_at, errors):
    """One writer process: publish every fingerprint, verify reads.

    ``crash_at`` (an index into the shuffled fingerprint order, or None)
    makes this writer die *inside* the publish window — lease held,
    temp file written, no rename — exactly where a kill hurts most.
    """
    import random

    rng = random.Random(seed)
    order = list(STRESS_FINGERPRINTS)
    rng.shuffle(order)
    cache = ResultCache(root=root, metrics=MetricsRegistry())
    for index, fp in enumerate(order):
        if crash_at is not None and index == crash_at:
            path = cache._path(fp)
            lease = store.PublishLease(path)
            lease.acquire()  # may lose the election: still die either way
            tmp = store.unique_tmp(path)
            tmp.parent.mkdir(parents=True, exist_ok=True)
            tmp.write_bytes(b'{"half": ')
            os._exit(1)
        cache.put(fp, _value_for(fp))
        got = cache.get(fp)
        if got != _value_for(fp):
            errors.put((fp, "read-back mismatch", repr(got)))
    # Re-read everything through a cold instance: disk-tier reads must
    # never surface a torn or corrupt entry (quarantine counts as one).
    cold = ResultCache(root=root, metrics=MetricsRegistry())
    for fp in order:
        got = cold.get(fp)
        if got is not None and got != _value_for(fp):
            errors.put((fp, "corrupt disk read", repr(got)))
    if cold.quarantined:
        errors.put(("*", "quarantined entries seen", cold.quarantined))


def test_multiprocess_stress_with_kill_injection(tmp_path):
    root = tmp_path / "store"
    ctx = multiprocessing.get_context("fork")
    errors = ctx.Queue()
    procs = []
    for uid in range(12):
        crash_at = (uid * 5) % len(STRESS_FINGERPRINTS) if uid < 4 else None
        procs.append(
            ctx.Process(
                target=_stress_writer, args=(root, uid, crash_at, errors)
            )
        )
    for proc in procs:
        proc.start()
    for proc in procs:
        proc.join(timeout=120)
        assert proc.exitcode is not None, "stress writer hung"

    failures = []
    while not errors.empty():
        failures.append(errors.get())
    assert failures == [], failures

    # Zero lost publishes: every fingerprint some surviving writer put
    # must be readable and intact from a fresh process-level view.
    cache = ResultCache(root=root, metrics=MetricsRegistry())
    for fp in STRESS_FINGERPRINTS:
        assert cache.get(fp) == _value_for(fp), fp
    assert cache.quarantined == 0

    # The killed writers left temp files and possibly leases; the sweep
    # (age thresholds forced to zero — the writers are provably dead)
    # must leave an empty orphan set.
    counts = cache.sweep_orphans(max_age=0.0, lock_stale=0.0)
    assert counts["tmp"] >= 1  # the injected crashes really left orphans
    leftovers = [
        p.name
        for bucket in root.iterdir()
        if bucket.is_dir() and bucket.name != "quarantine"
        for p in bucket.iterdir()
        if store.is_tmp(p) or p.name.endswith(".lock")
    ]
    assert leftovers == []


def _quarantine_racer(root, fp, start, results):
    cache = ResultCache(root=root, metrics=MetricsRegistry())
    start.wait()
    results.put((os.getpid(), cache.get(fp), cache.quarantined))


def test_concurrent_quarantine_of_same_corrupt_entry(tmp_path):
    # Two daemons read the same corrupt entry at the same moment: both
    # race to quarantine it.  Exactly one move wins; the loser's failed
    # rename must be swallowed (a miss, not a crash), and no duplicate
    # or clobbered evidence may result.
    root = tmp_path / "store"
    fp = "ee" * 32
    cache = ResultCache(root=root, metrics=MetricsRegistry())
    cache.put(fp, {"x": 1})
    path = root / "ee" / f"{fp}.json"
    path.write_text("garbage")

    ctx = multiprocessing.get_context("fork")
    start = ctx.Event()
    results = ctx.Queue()
    procs = [
        ctx.Process(target=_quarantine_racer, args=(root, fp, start, results))
        for _ in range(2)
    ]
    for proc in procs:
        proc.start()
    start.set()
    for proc in procs:
        proc.join(timeout=60)
        assert proc.exitcode == 0

    outcomes = [results.get() for _ in range(2)]
    assert all(value is None for _, value, _ in outcomes)
    assert not path.exists()
    evidence = sorted(p.name for p in (root / "quarantine").iterdir())
    # One winner moved the file; a suffixed duplicate is allowed only if
    # both raced past the exists() check before either renamed.
    assert evidence[0] == f"{fp}.json"
    assert len(evidence) <= 2
    assert all(name.startswith(f"{fp}.json") for name in evidence)


def test_quarantine_file_returns_none_when_source_vanished(tmp_path):
    root = tmp_path / "store"
    root.mkdir()
    gone = root / "ab" / "missing.json"
    assert quarantine_file(gone, root, metrics=MetricsRegistry()) is None
