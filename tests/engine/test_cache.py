"""Tests for the two-tier content-addressed result cache."""

import json

import pytest

from repro.engine.cache import ResultCache
from repro.engine.metrics import MetricsRegistry


@pytest.fixture
def metrics():
    return MetricsRegistry()


def test_memory_hit_and_miss(metrics):
    cache = ResultCache(capacity=4, metrics=metrics)
    assert cache.get("aa" * 32) is None
    cache.put("aa" * 32, {"legal": True})
    assert cache.get("aa" * 32) == {"legal": True}
    assert cache.memory_hits == 1
    assert cache.misses == 1
    assert cache.hit_rate == 0.5
    assert metrics.get("engine.cache.hits") == 1
    assert metrics.get("engine.cache.misses") == 1


def test_lru_eviction_order(metrics):
    cache = ResultCache(capacity=2, metrics=metrics)
    cache.put("k1", 1)
    cache.put("k2", 2)
    assert cache.get("k1") == 1  # k1 becomes most-recently-used
    cache.put("k3", 3)  # evicts k2, the least-recently-used
    assert cache.get("k2") is None
    assert cache.get("k1") == 1
    assert cache.get("k3") == 3
    assert cache.evictions == 1
    assert metrics.get("engine.cache.evictions") == 1


def test_disk_persistence_round_trip(tmp_path, metrics):
    root = tmp_path / "store"
    first = ResultCache(root=root, metrics=metrics)
    first.put("ab" * 32, {"results": [1, 2, 3]})
    # A later process with a cold memory tier hits the disk store.
    second = ResultCache(root=root, metrics=metrics)
    assert second.get("ab" * 32) == {"results": [1, 2, 3]}
    assert second.disk_hits == 1
    assert second.memory_hits == 0
    # The promotion lands in memory: the next get is a memory hit.
    assert second.get("ab" * 32) == {"results": [1, 2, 3]}
    assert second.memory_hits == 1


def test_disk_layout_is_sharded_json(tmp_path):
    cache = ResultCache(root=tmp_path / "store")
    fingerprint = "cd" * 32
    cache.put(fingerprint, {"x": 1})
    path = tmp_path / "store" / "cd" / f"{fingerprint}.json"
    assert path.exists()
    assert json.loads(path.read_text()) == {"x": 1}


def test_corrupt_disk_entry_is_a_miss(tmp_path):
    root = tmp_path / "store"
    cache = ResultCache(root=root)
    fingerprint = "ef" * 32
    cache.put(fingerprint, {"x": 1})
    (root / "ef" / f"{fingerprint}.json").write_text("{not json")
    cold = ResultCache(root=root)
    assert cold.get(fingerprint) is None


def test_eviction_does_not_lose_disk_entries(tmp_path):
    cache = ResultCache(capacity=1, root=tmp_path / "store")
    cache.put("k1", 1)
    cache.put("k2", 2)  # evicts k1 from memory; disk still has it
    assert cache.get("k1") == 1
    assert cache.disk_hits == 1


def test_unserializable_value_rejected_up_front():
    cache = ResultCache()
    with pytest.raises(TypeError):
        cache.put("kk", {"fn": object()})
    assert cache.get("kk") is None


def test_clear(tmp_path):
    cache = ResultCache(root=tmp_path / "store")
    cache.put("k1", 1)
    cache.clear()
    assert len(cache) == 0
    assert cache.get("k1") == 1  # still on disk
    cache.clear(disk=True)
    cache._memory.clear()
    assert cache.get("k1") is None


def test_stats_shape():
    cache = ResultCache()
    cache.put("k", 1)
    cache.get("k")
    cache.get("other")
    stats = cache.stats()
    assert stats["memory_entries"] == 1
    assert stats["memory_hits"] == 1
    assert stats["misses"] == 1
    assert stats["puts"] == 1
    assert stats["hit_rate"] == 0.5
