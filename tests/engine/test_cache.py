"""Tests for the two-tier content-addressed result cache."""

import json
import os
import time

import pytest

from repro.engine import store
from repro.engine.cache import CACHE_SCHEMA_VERSION, ResultCache, payload_checksum
from repro.engine.metrics import MetricsRegistry


@pytest.fixture
def metrics():
    return MetricsRegistry()


def test_memory_hit_and_miss(metrics):
    cache = ResultCache(capacity=4, metrics=metrics)
    assert cache.get("aa" * 32) is None
    cache.put("aa" * 32, {"legal": True})
    assert cache.get("aa" * 32) == {"legal": True}
    assert cache.memory_hits == 1
    assert cache.misses == 1
    assert cache.hit_rate == 0.5
    assert metrics.get("engine.cache.hits") == 1
    assert metrics.get("engine.cache.misses") == 1


def test_lru_eviction_order(metrics):
    cache = ResultCache(capacity=2, metrics=metrics)
    cache.put("k1", 1)
    cache.put("k2", 2)
    assert cache.get("k1") == 1  # k1 becomes most-recently-used
    cache.put("k3", 3)  # evicts k2, the least-recently-used
    assert cache.get("k2") is None
    assert cache.get("k1") == 1
    assert cache.get("k3") == 3
    assert cache.evictions == 1
    assert metrics.get("engine.cache.evictions") == 1


def test_disk_persistence_round_trip(tmp_path, metrics):
    root = tmp_path / "store"
    first = ResultCache(root=root, metrics=metrics)
    first.put("ab" * 32, {"results": [1, 2, 3]})
    # A later process with a cold memory tier hits the disk store.
    second = ResultCache(root=root, metrics=metrics)
    assert second.get("ab" * 32) == {"results": [1, 2, 3]}
    assert second.disk_hits == 1
    assert second.memory_hits == 0
    # The promotion lands in memory: the next get is a memory hit.
    assert second.get("ab" * 32) == {"results": [1, 2, 3]}
    assert second.memory_hits == 1


def test_disk_layout_is_sharded_json(tmp_path):
    cache = ResultCache(root=tmp_path / "store")
    fingerprint = "cd" * 32
    cache.put(fingerprint, {"x": 1})
    path = tmp_path / "store" / "cd" / f"{fingerprint}.json"
    assert path.exists()
    envelope = json.loads(path.read_text())
    assert envelope["value"] == {"x": 1}
    assert envelope["schema"] == CACHE_SCHEMA_VERSION
    assert envelope["check"] == payload_checksum('{"x":1}')


def test_corrupt_disk_entry_is_a_miss(tmp_path):
    root = tmp_path / "store"
    cache = ResultCache(root=root)
    fingerprint = "ef" * 32
    cache.put(fingerprint, {"x": 1})
    (root / "ef" / f"{fingerprint}.json").write_text("{not json")
    cold = ResultCache(root=root)
    assert cold.get(fingerprint) is None


def test_eviction_does_not_lose_disk_entries(tmp_path):
    cache = ResultCache(capacity=1, root=tmp_path / "store")
    cache.put("k1", 1)
    cache.put("k2", 2)  # evicts k1 from memory; disk still has it
    assert cache.get("k1") == 1
    assert cache.disk_hits == 1


def test_unserializable_value_rejected_up_front():
    cache = ResultCache()
    with pytest.raises(TypeError):
        cache.put("kk", {"fn": object()})
    assert cache.get("kk") is None


def test_clear(tmp_path):
    cache = ResultCache(root=tmp_path / "store")
    cache.put("k1", 1)
    cache.clear()
    assert len(cache) == 0
    assert cache.get("k1") == 1  # still on disk
    cache.clear(disk=True)
    cache._memory.clear()
    assert cache.get("k1") is None


def test_stats_shape():
    cache = ResultCache()
    cache.put("k", 1)
    cache.get("k")
    cache.get("other")
    stats = cache.stats()
    assert stats["memory_entries"] == 1
    assert stats["memory_hits"] == 1
    assert stats["misses"] == 1
    assert stats["puts"] == 1
    assert stats["hit_rate"] == 0.5


# -- integrity: quarantine, schema stamps, orphan sweep ----------------------------


def test_corrupt_entry_is_quarantined_not_refailed(tmp_path, metrics):
    root = tmp_path / "store"
    fingerprint = "ab" * 32
    ResultCache(root=root, metrics=metrics).put(fingerprint, {"x": 1})
    path = root / "ab" / f"{fingerprint}.json"
    path.write_text('{"torn": ')  # simulated torn write / bit rot

    cold = ResultCache(root=root, metrics=metrics)
    assert cold.get(fingerprint) is None
    assert cold.quarantined == 1
    assert metrics.get("engine.cache.quarantined") == 1
    # The damaged file moved aside as evidence; the slot is clean again.
    assert not path.exists()
    assert (root / "quarantine" / path.name).exists()
    # Recompute-and-store works over the now-empty slot.
    cold.put(fingerprint, {"x": 2})
    assert ResultCache(root=root, metrics=metrics).get(fingerprint) == {"x": 2}


def test_schema_mismatch_quarantines(tmp_path):
    root = tmp_path / "store"
    fingerprint = "cd" * 32
    cache = ResultCache(root=root)
    cache.put(fingerprint, {"x": 1})
    path = root / "cd" / f"{fingerprint}.json"
    envelope = json.loads(path.read_text())
    envelope["schema"] = CACHE_SCHEMA_VERSION + 1
    path.write_text(json.dumps(envelope))

    cold = ResultCache(root=root)
    assert cold.get(fingerprint) is None
    assert cold.quarantined == 1


def test_checksum_mismatch_quarantines(tmp_path):
    root = tmp_path / "store"
    fingerprint = "ef" * 32
    ResultCache(root=root).put(fingerprint, {"x": 1})
    path = root / "ef" / f"{fingerprint}.json"
    envelope = json.loads(path.read_text())
    envelope["value"] = {"x": 999}  # payload flipped, checksum stale
    path.write_text(json.dumps(envelope))

    cold = ResultCache(root=root)
    assert cold.get(fingerprint) is None
    assert cold.quarantined == 1


def test_quarantine_collision_gets_suffixed(tmp_path):
    root = tmp_path / "store"
    fingerprint = "aa" * 32
    cache = ResultCache(root=root)
    for _ in range(2):
        cache.put(fingerprint, {"x": 1})
        path = root / "aa" / f"{fingerprint}.json"
        path.write_text("garbage")
        cache._memory.clear()
        assert cache.get(fingerprint) is None
    names = sorted(p.name for p in (root / "quarantine").iterdir())
    assert names == [f"{fingerprint}.json", f"{fingerprint}.json.1"]


def test_clear_disk_sweeps_tmp_orphans_keeps_quarantine(tmp_path):
    root = tmp_path / "store"
    cache = ResultCache(root=root)
    fingerprint = "bb" * 32
    cache.put(fingerprint, {"x": 1})
    # A writer that crashed between write and rename leaves an orphan;
    # age it past the sweep threshold so it qualifies for removal.
    orphan = root / "bb" / f"{fingerprint}.json.tmp.9999.1.0"
    orphan.write_text("half-written")
    old = time.time() - 2 * store.ORPHAN_AGE_SECONDS
    os.utime(orphan, (old, old))
    # A *young* temp file is a live writer mid-publish in another
    # process: sweeping it would tear that publish, so it must survive.
    live = root / "bb" / f"{'cc' * 32}.json.tmp.8888.1.0"
    live.write_text("in-flight")
    # And a previously quarantined file is evidence, not cache state.
    (root / "quarantine").mkdir()
    evidence = root / "quarantine" / "old-corrupt.json"
    evidence.write_text("garbage")

    cache.clear(disk=True)
    assert not orphan.exists()
    assert live.exists()
    assert not (root / "bb" / f"{fingerprint}.json").exists()
    assert evidence.exists()


def test_missing_file_is_plain_miss_not_quarantine(tmp_path):
    cache = ResultCache(root=tmp_path / "store")
    assert cache.get("99" * 32) is None
    assert cache.quarantined == 0
    assert not (tmp_path / "store" / "quarantine").exists()


def test_memory_tier_is_thread_safe_under_contention():
    # The daemon's handlers and dispatchers share one cache; hammer the
    # LRU (capacity < working set forces constant eviction churn) from
    # many threads and check nothing corrupts and accounting balances.
    import threading

    metrics = MetricsRegistry()
    cache = ResultCache(capacity=32, metrics=metrics)
    errors = []

    def worker(uid):
        try:
            for i in range(500):
                key = f"{uid:02d}{i % 64:02d}" * 16
                value = cache.get(key)
                if value is not None:
                    assert value == {"uid": uid, "i": i % 64}
                cache.put(key, {"uid": uid, "i": i % 64})
        except Exception as exc:  # noqa: BLE001 — surfaced by the assert below
            errors.append(repr(exc))

    threads = [threading.Thread(target=worker, args=(uid,)) for uid in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert errors == []
    assert len(cache) <= 32
    assert cache.puts == 8 * 500
    assert cache.hits + cache.misses == 8 * 500
