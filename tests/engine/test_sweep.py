"""Engine-backed experiment sweeps: parallel equality and warm cache."""

import pytest

from repro.engine.cache import ResultCache
from repro.engine.metrics import METRICS
from repro.experiments.harness import (
    SweepPoint,
    measurement_from_payload,
    measurement_payload,
    random_init,
    simulate_sweep,
)
from repro.ir import parse_program
from repro.memsim.cost import TINY

MM = """
program mm(N)
array A[N,N]
array B[N,N]
array C[N,N]
assume N >= 1
do I = 1, N
  do J = 1, N
    do K = 1, N
      S1: C[I,J] = C[I,J] + A[I,K]*B[K,J]
"""


@pytest.fixture
def points():
    program = parse_program(MM)
    return [
        SweepPoint(program, {"N": n}, TINY, random_init, f"mm-{n}", options={"seed": 0})
        for n in (4, 6, 8)
    ]


def _rows(measurements):
    return [m.row() for m in measurements]


def test_measurement_payload_round_trip(points):
    [m] = simulate_sweep(points[:1])
    rebuilt = measurement_from_payload(measurement_payload(m))
    assert rebuilt == m


def test_parallel_sweep_matches_serial(points):
    serial = simulate_sweep(points)
    parallel = simulate_sweep(points, jobs=2)
    assert _rows(parallel) == _rows(serial)


def test_warm_cache_runs_zero_fresh_simulations(points, tmp_path):
    cache = ResultCache(root=tmp_path / "store")
    cold = simulate_sweep(points, cache=cache)

    before = METRICS.get("engine.executed.simulate")
    warm = simulate_sweep(points, cache=cache)
    assert METRICS.get("engine.executed.simulate") == before
    assert _rows(warm) == _rows(cold)


def test_uncacheable_points_bypass_cache(points, tmp_path):
    # A live check_fn has no canonical JSON form: the point simply runs.
    program = parse_program(MM)
    point = SweepPoint(
        program,
        {"N": 4},
        TINY,
        random_init,
        "checked",
        options={"seed": 0, "check_fn": lambda arena, initial, buf: True},
    )
    cache = ResultCache(root=tmp_path / "store")
    before = METRICS.get("engine.executed.simulate")
    simulate_sweep([point], cache=cache)
    simulate_sweep([point], cache=cache)
    assert METRICS.get("engine.executed.simulate") == before + 2
    assert cache.puts == 0


def test_sweep_records_memsim_metrics(points):
    before = METRICS.get("memsim.accesses")
    simulate_sweep(points[:1])
    assert METRICS.get("memsim.accesses") > before
