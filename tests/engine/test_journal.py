"""Journaled checkpoints: durability, torn-tail tolerance, and the
kill-at-a-random-point resume proof for ``tune`` and ``search``.

The resume contract under test: a run killed at ANY append boundary
(including mid-line, leaving a torn tail) re-runs to a report that is
bit-identical to an uninterrupted run — and provably does less work
the second time (journal replays instead of fresh scoring).
"""

import json
import multiprocessing
import os
import random

import pytest

from repro.core import DataBlocking, search_shackles
from repro.core.autotune import geometry_grid, tune
from repro.engine import journal as journal_mod
from repro.engine.journal import Journal, resolve_journal
from repro.engine.metrics import METRICS
from repro.kernels import matmul

mp = multiprocessing.get_context("fork")


# -- unit behavior -----------------------------------------------------------------


def test_append_then_replay_round_trips(tmp_path):
    with Journal(tmp_path, "ab" * 32) as journal:
        journal.append("one", {"rows": [1, 2], "x": 1.5})
        journal.append("two", {"rows": []})
    fresh = Journal(tmp_path, "ab" * 32)
    assert fresh.replay() == {"one": {"rows": [1, 2], "x": 1.5}, "two": {"rows": []}}
    assert (tmp_path / "journal" / "ab" / ("ab" * 32 + ".jsonl")).exists()


def test_last_valid_record_wins_and_duplicates_are_harmless(tmp_path):
    with Journal(tmp_path, "cd" * 32) as journal:
        journal.append("k", {"v": 1})
        journal.append("k", {"v": 1})  # duplicate-on-retry
    assert Journal(tmp_path, "cd" * 32).replay() == {"k": {"v": 1}}


def test_torn_tail_and_corrupt_lines_are_skipped(tmp_path):
    journal = Journal(tmp_path, "ef" * 32)
    journal.append("good", {"v": 1})
    journal.append("bad", {"v": 2})
    journal.close()
    # Corrupt the second record's checksum and append a torn tail.
    lines = journal.path.read_bytes().splitlines()
    record = json.loads(lines[1])
    record["payload"]["v"] = 99  # body no longer matches its checksum
    lines[1] = json.dumps(record).encode()
    torn = lines[0][: len(lines[0]) // 2]  # a crash mid-write
    journal.path.write_bytes(b"\n".join(lines) + b"\n" + torn)
    skipped_before = METRICS.get("engine.journal.skipped")
    assert Journal(tmp_path, "ef" * 32).replay() == {"good": {"v": 1}}
    assert METRICS.get("engine.journal.skipped") - skipped_before == 2


def test_resolve_journal_guards_key_mismatch(tmp_path):
    assert resolve_journal(None, "aa" * 32) is None
    journal = resolve_journal(tmp_path, "aa" * 32)
    assert isinstance(journal, Journal)
    assert resolve_journal(journal, "aa" * 32) is journal
    with pytest.raises(ValueError):
        resolve_journal(journal, "bb" * 32)


# -- resumable tune ----------------------------------------------------------------


def _tune_kwargs(tmp_path):
    return dict(
        sizes=[{"N": n} for n in (9, 11, 13, 15)],
        machines=geometry_grid(lines=(4,), set_counts=(1, 4), assocs=(1, 2)),
        anchors=[{"N": n} for n in (8, 12, 16)],
        blocks=(4,),
        candidates_per_block=1,
        trace_store=str(tmp_path / "traces"),
    )


def _strip_volatile(report):
    """Drop the fields that legitimately vary with store warmth and
    wall clock (timings, capture accounting, journal provenance); the
    scored results themselves must be bit-identical."""
    report = dict(report)
    for key in ("seconds", "points_per_sec", "captures", "journal"):
        report.pop(key, None)
    return report


def _tune_in_child(tmp_path, kill_after, queue):
    """Run a journaled tune in a forked child, optionally told to die
    after its N-th journal append (REPRO_JOURNAL_KILL_AFTER)."""
    journal_mod._appends = 0  # the fork inherited the parent's count
    if kill_after is not None:
        os.environ[journal_mod.KILL_ENV] = kill_after
    else:
        os.environ.pop(journal_mod.KILL_ENV, None)
    report = tune(
        matmul.program(), "C", journal=str(tmp_path), **_tune_kwargs(tmp_path)
    )
    queue.put(report)


def _run_tune_child(tmp_path, kill_after):
    queue = mp.Queue()
    child = mp.Process(target=_tune_in_child, args=(tmp_path, kill_after, queue))
    child.start()
    child.join(timeout=300)
    report = queue.get() if not queue.empty() else None
    return child.exitcode, report


@pytest.mark.parametrize("torn", [False, True], ids=["clean-kill", "torn-tail"])
def test_tune_killed_at_random_point_resumes_bit_identical(tmp_path, torn):
    baseline_report = tune(matmul.program(), "C", **_tune_kwargs(tmp_path / "base"))
    assert baseline_report["journal"] is None
    baseline = _strip_volatile(baseline_report)
    total_blocks = len(baseline["candidates"]) * baseline["sizes"]
    assert total_blocks >= 4

    # Kill after a random (seeded) append strictly inside the sweep.
    kill_at = random.Random(torn).randint(1, total_blocks - 1)
    spec = f"{kill_at}:torn" if torn else str(kill_at)
    exitcode, report = _run_tune_child(tmp_path, spec)
    assert exitcode == 1 and report is None  # it really died mid-run

    exitcode, report = _run_tune_child(tmp_path, None)
    assert exitcode == 0
    journal_info = report["journal"]
    assert _strip_volatile(report) == baseline
    # The resumed run provably skipped work: every block that became
    # durable before the kill was replayed, not re-scored.  A torn
    # final record is skipped and re-scored — never trusted.
    expected_resumed = kill_at if not torn else kill_at - 1
    assert journal_info["resumed_blocks"] == expected_resumed
    assert journal_info["scored_blocks"] == total_blocks - expected_resumed


def test_tune_rerun_with_complete_journal_scores_nothing(tmp_path):
    first = tune(
        matmul.program(), "C", journal=str(tmp_path), **_tune_kwargs(tmp_path)
    )
    assert first["journal"]["resumed_blocks"] == 0
    second = tune(
        matmul.program(), "C", journal=str(tmp_path), **_tune_kwargs(tmp_path)
    )
    assert second["journal"]["scored_blocks"] == 0
    assert second["journal"]["resumed_blocks"] == first["journal"]["scored_blocks"]
    assert _strip_volatile(first) == _strip_volatile(second)


def test_tune_journal_key_isolates_different_invocations(tmp_path):
    kwargs = _tune_kwargs(tmp_path)
    tune(matmul.program(), "C", journal=str(tmp_path), **kwargs)
    changed = dict(kwargs, sizes=[{"N": n} for n in (10, 12)])
    report = tune(matmul.program(), "C", journal=str(tmp_path), **changed)
    # A different invocation keys a different journal: nothing resumed.
    assert report["journal"]["resumed_blocks"] == 0


# -- resumable search --------------------------------------------------------------


def _search_in_child(tmp_path, kill_after, queue):
    journal_mod._appends = 0  # the fork inherited the parent's count
    if kill_after is not None:
        os.environ[journal_mod.KILL_ENV] = kill_after
    else:
        os.environ.pop(journal_mod.KILL_ENV, None)
    program = matmul.program()
    blocking = DataBlocking.grid("C", 2, 25)
    results = search_shackles(
        program, blocking, max_product=2, journal=str(tmp_path)
    )
    queue.put([(r.describe(), r.unconstrained) for r in results])


def test_search_killed_mid_census_resumes_same_ranking(tmp_path):
    program = matmul.program()
    blocking = DataBlocking.grid("C", 2, 25)
    baseline = [
        (r.describe(), r.unconstrained)
        for r in search_shackles(program, blocking, max_product=2)
    ]

    queue = mp.Queue()
    child = mp.Process(target=_search_in_child, args=(tmp_path, "2", queue))
    child.start()
    child.join(timeout=300)
    assert child.exitcode == 1  # killed after the 2nd verdict

    appends_before = METRICS.get("engine.journal.appends")
    resumed_before = METRICS.get("engine.journal.resumed")
    results = search_shackles(program, blocking, max_product=2, journal=str(tmp_path))
    assert [(r.describe(), r.unconstrained) for r in results] == baseline
    assert METRICS.get("engine.journal.resumed") - resumed_before == 2
    # Only the un-journaled remainder was re-checked and appended.
    appended = METRICS.get("engine.journal.appends") - appends_before
    assert appended > 0
