"""Tests for supervised execution: retries, timeouts, crashes, deadlines.

Worker functions live at module top level so they pickle across the
process boundary; crash/flake behavior is keyed on marker files under
``tmp_path`` so a retried attempt observably differs from the first.
"""

import os
import time

import pytest

from repro.engine.metrics import MetricsRegistry
from repro.engine.supervise import (
    JobFailure,
    RetryPolicy,
    supervised_map,
)

FAST_RETRY = dict(backoff=0.01, max_backoff=0.05, jitter=0.0)


def _square(x):
    return x * x


def _boom(x):
    if x == 3:
        raise ValueError("bad job 3")
    return x * x


def _kill_once(arg):
    """Hard-exit the worker on the first attempt at item 2."""
    x, marker = arg
    if x == 2 and not os.path.exists(marker):
        open(marker, "w").close()
        os._exit(1)
    return x * x


def _sleep_on_one(arg):
    x, seconds = arg
    if x == 1:
        time.sleep(seconds)
    return x * x


def _flaky_until_marked(arg):
    """Fail transiently: the first attempt plants the marker and raises."""
    x, marker = arg
    if not os.path.exists(marker):
        open(marker, "w").close()
        raise RuntimeError("transient infrastructure hiccup")
    return x + 1


def _slow(x):
    time.sleep(0.1)
    return x


def test_serial_map_preserves_order_and_results():
    assert supervised_map(_square, [3, 1, 2]) == [9, 1, 4]


def test_keys_must_match_items():
    with pytest.raises(ValueError):
        supervised_map(_square, [1, 2], keys=["only-one"])


def test_worker_crash_mid_batch_completes_with_rebuild(tmp_path):
    """os._exit in a worker breaks the pool; the batch still finishes."""
    metrics = MetricsRegistry()
    marker = str(tmp_path / "killed-once")
    items = [(x, marker) for x in range(6)]
    results = supervised_map(
        _kill_once,
        items,
        jobs=2,
        metrics=metrics,
        policy=RetryPolicy(max_attempts=4, **FAST_RETRY),
    )
    assert results == [x * x for x in range(6)]
    assert metrics.get("engine.supervise.pool_rebuilds") >= 1
    assert metrics.get("engine.supervise.retries") >= 1
    assert metrics.get("engine.supervise.failures") == 0


def test_job_past_timeout_fails_structured_others_survive():
    """A sleeping job trips its per-attempt timeout; siblings complete."""
    metrics = MetricsRegistry()
    policy = RetryPolicy(
        max_attempts=2, timeout=0.3, failure_mode="return", **FAST_RETRY
    )
    items = [(x, 5.0) for x in range(4)]
    results = supervised_map(
        _sleep_on_one, items, jobs=2, metrics=metrics, policy=policy
    )
    failure = results[1]
    assert isinstance(failure, JobFailure)
    assert failure.timed_out
    assert failure.error_type == "JobTimeout"
    assert failure.attempts == 2
    assert [results[i] for i in (0, 2, 3)] == [0, 4, 9]
    assert metrics.get("engine.supervise.timeouts") >= 1
    assert metrics.get("engine.supervise.failures") == 1
    # Structured failures serialize without the live exception.
    payload = failure.to_payload()
    assert payload["error_type"] == "JobTimeout" and payload["timed_out"]


def test_transient_failure_is_retried_to_success(tmp_path):
    metrics = MetricsRegistry()
    marker = str(tmp_path / "flaked-once")
    results = supervised_map(
        _flaky_until_marked,
        [(7, marker)],
        metrics=metrics,
        policy=RetryPolicy(max_attempts=3, **FAST_RETRY),
    )
    assert results == [8]
    assert metrics.get("engine.supervise.retries") == 1
    assert metrics.get("engine.supervise.failures") == 0


def test_failure_mode_raise_surfaces_original_exception():
    with pytest.raises(ValueError, match="bad job 3"):
        supervised_map(
            _boom, [1, 2, 3], policy=RetryPolicy(max_attempts=2, **FAST_RETRY)
        )


def test_failure_mode_return_isolates_the_bad_item():
    metrics = MetricsRegistry()
    results = supervised_map(
        _boom,
        [1, 2, 3, 4],
        metrics=metrics,
        policy=RetryPolicy(max_attempts=2, failure_mode="return", **FAST_RETRY),
    )
    assert results[0] == 1 and results[1] == 4 and results[3] == 16
    failure = results[2]
    assert isinstance(failure, JobFailure)
    assert failure.error_type == "ValueError"
    assert failure.attempts == 2
    assert not failure.timed_out
    assert metrics.get("engine.supervise.failures") == 1


def test_batch_deadline_abandons_unfinished_items():
    metrics = MetricsRegistry()
    policy = RetryPolicy(
        deadline=0.15, failure_mode="return", max_attempts=1, **FAST_RETRY
    )
    results = supervised_map(
        _slow, list(range(6)), metrics=metrics, policy=policy
    )
    abandoned = [r for r in results if isinstance(r, JobFailure)]
    assert abandoned, "deadline never fired"
    assert all(f.error_type == "DeadlineExceeded" for f in abandoned)
    assert all(f.timed_out for f in abandoned)
    assert metrics.get("engine.supervise.deadline_abandoned") == len(abandoned)


def test_unpicklable_work_degrades_to_supervised_serial():
    metrics = MetricsRegistry()
    seen = []

    def closure(x):  # not picklable: falls back, still supervised
        seen.append(x)
        return x + 1

    assert supervised_map(closure, [1, 2, 3], jobs=4, metrics=metrics) == [2, 3, 4]
    assert metrics.get("engine.pool.fallbacks") == 1


def test_policy_validation():
    with pytest.raises(ValueError):
        RetryPolicy(max_attempts=0)
    with pytest.raises(ValueError):
        RetryPolicy(failure_mode="explode")
