"""Chaos harness tests: spec grammar, determinism, and the acceptance
property — a full Cholesky census (6 singles + 36 pairwise products)
run under injected worker kills, cache corruption and forced solver
budgets completes bit-identical to the fault-free run, with only the
faulted jobs re-executed.
"""

import pytest

from repro.core import DataBlocking, DataShackle
from repro.core.product import ShackleProduct
from repro.core.shackle import _parse_ref
from repro.engine import chaos
from repro.engine.cache import ResultCache
from repro.engine.jobs import JobSpec
from repro.engine.metrics import MetricsRegistry
from repro.engine.pool import run_jobs
from repro.engine.supervise import JobFailure, RetryPolicy
from repro.fuzz.cases import case_from_shackle
from repro.kernels import cholesky


@pytest.fixture(autouse=True)
def no_ambient_chaos(monkeypatch):
    """Each test starts fault-free regardless of the environment."""
    monkeypatch.delenv(chaos.ENV_VAR, raising=False)
    previous = chaos.configure(None)
    yield
    chaos.configure(previous)


# -- spec grammar ------------------------------------------------------------------


def test_parse_spec_full_grammar():
    spec = chaos.parse_spec("kill=0.25,delay=0.5:0.2,corrupt=0.1,budget=0.05,seed=9")
    assert spec.kill == 0.25
    assert spec.delay == 0.5 and spec.delay_seconds == 0.2
    assert spec.corrupt == 0.1 and spec.budget == 0.05
    assert spec.seed == 9
    assert spec.enabled


def test_spec_describe_round_trips():
    for text in (
        "kill=0.25,delay=0.5:0.2,corrupt=0.1,budget=0.05,seed=9",
        "seed=3,kill=1",
        "corrupt=0.5",
    ):
        spec = chaos.parse_spec(text)
        assert chaos.parse_spec(spec.describe()) == spec


@pytest.mark.parametrize(
    "bad",
    [
        "explode=0.5",  # unknown fault
        "kill=1.5",  # rate out of range
        "kill=-0.1",
        "kill=0.5:3",  # parameter on a non-delay fault
        "kill0.5",  # missing '='
        "kill=lots",  # malformed rate
    ],
)
def test_parse_spec_rejects(bad):
    with pytest.raises(ValueError):
        chaos.parse_spec(bad)


def test_inactive_spec_is_disabled():
    assert not chaos.ChaosSpec(seed=5).enabled
    assert chaos.active() is None
    assert not chaos.should("kill", "any-key")


# -- decision determinism ----------------------------------------------------------


def test_decisions_are_deterministic_and_rate_shaped():
    spec = chaos.ChaosSpec(seed=1, kill=0.3)
    draws = [chaos.decide(spec, "kill", f"job-{i}") for i in range(2000)]
    again = [chaos.decide(spec, "kill", f"job-{i}") for i in range(2000)]
    assert draws == again  # pure function of (seed, fault, key, attempt)
    rate = sum(draws) / len(draws)
    assert 0.25 < rate < 0.35  # sha256 draws track the configured rate
    other_seed = chaos.ChaosSpec(seed=2, kill=0.3)
    assert draws != [chaos.decide(other_seed, "kill", f"job-{i}") for i in range(2000)]


def test_job_faults_fire_on_first_attempt_only():
    chaos.configure(chaos.ChaosSpec(seed=0, kill=1.0, corrupt=1.0))
    assert chaos.should("kill", "some-job", attempt=0)
    assert not chaos.should("kill", "some-job", attempt=1)  # retries converge
    # Corruption targets files, not attempts: it stays on.
    assert chaos.should("corrupt", "some-job", attempt=3)


def test_serial_kill_degrades_to_exception():
    chaos.configure(chaos.ChaosSpec(seed=0, kill=1.0))
    with pytest.raises(chaos.WorkerKilled):
        chaos.apply_job_faults("victim", attempt=0, in_worker=False)


def test_chaos_budget_raises_solver_budget():
    from repro.polyhedra.budget import SolverBudget

    chaos.configure(chaos.ChaosSpec(seed=0, budget=1.0))
    with pytest.raises(SolverBudget):
        chaos.apply_job_faults("victim", attempt=0, in_worker=False)


def test_corrupt_bytes_do_not_decode():
    import json

    torn = chaos.corrupt_bytes(b'{"schema": 1, "value": 42}')
    with pytest.raises(ValueError):
        json.loads(torn)


# -- the acceptance property: census under chaos -----------------------------------

REF_PAIRS = [
    (s2, s3)
    for s2 in ("A[I,J]", "A[J,J]")
    for s3 in ("A[L,K]", "A[L,J]", "A[K,J]")
]


def _census_specs():
    """The Cholesky census as fuzz jobs: 6 singles + 36 products."""
    prog = cholesky.program("right")
    blocking = DataBlocking.grid("A", 2, 3)
    singles = [
        DataShackle(
            prog,
            blocking,
            {"S1": _parse_ref("A[J,J]"), "S2": _parse_ref(s2), "S3": _parse_ref(s3)},
        )
        for s2, s3 in REF_PAIRS
    ]
    products = [ShackleProduct(a, b) for a in singles for b in singles]
    cases = [
        case_from_shackle(sh, {"N": 6}, checks=("legality",))
        for sh in singles + products
    ]
    return [JobSpec("fuzz", case.to_payload()) for case in cases]


def test_census_under_chaos_is_bit_identical(tmp_path):
    specs = _census_specs()
    assert len(specs) == 42
    fingerprints = [spec.fingerprint for spec in specs]
    unique = len(set(fingerprints))

    clean_metrics = MetricsRegistry()
    clean = run_jobs(specs, jobs=1, metrics=clean_metrics)
    assert clean_metrics.get("engine.executed.fuzz") == unique

    spec = chaos.parse_spec("kill=0.2,corrupt=0.3,budget=0.2,seed=11")
    faulted = {
        fp
        for fp in set(fingerprints)
        if chaos.decide(spec, "kill", fp) or chaos.decide(spec, "budget", fp)
    }
    corrupted = {fp for fp in set(fingerprints) if chaos.decide(spec, "corrupt", fp)}
    assert faulted and corrupted, "chosen seed must actually inject faults"

    cache = ResultCache(root=tmp_path / "store")
    chaos_metrics = MetricsRegistry()
    chaos.configure(spec)
    try:
        chaotic = run_jobs(
            specs,
            jobs=1,
            cache=cache,
            metrics=chaos_metrics,
            policy=RetryPolicy(failure_mode="return", backoff=0.01, jitter=0.0),
        )
    finally:
        chaos.configure(None)

    # The acceptance criterion: every job completes, no failure leaks,
    # and the results are bit-identical to the fault-free run.
    assert not any(isinstance(out, JobFailure) for out in chaotic)
    assert chaotic == clean
    # Every unique job executed exactly once to completion...
    assert chaos_metrics.get("engine.executed.fuzz") == unique
    # ...and exactly the faulted jobs consumed a retry (serial execution:
    # no innocent in-flight work gets charged when a sibling dies).
    assert chaos_metrics.get("engine.supervise.retries") == len(faulted)
    assert chaos_metrics.get("engine.supervise.failures") == 0

    # Corrupted cache entries are detected, quarantined, and recomputed.
    cold = ResultCache(root=tmp_path / "store", metrics=MetricsRegistry())
    for fp, result in zip(fingerprints, clean):
        got = cold.get(fp)
        if fp in corrupted:
            assert got is None  # scrambled on write, quarantined on read
        else:
            assert got == result  # intact entries survive verification
    assert cold.quarantined == len(corrupted)
    quarantine = tmp_path / "store" / "quarantine"
    assert quarantine.is_dir()
    assert len(list(quarantine.iterdir())) >= len(corrupted)


def test_census_under_chaos_parallel_matches_serial(tmp_path):
    """Worker kills are real os._exit deaths on the parallel path."""
    specs = _census_specs()[:12]  # singles + first products: keep it quick
    clean = run_jobs(specs, jobs=1)
    chaos.configure(chaos.parse_spec("kill=0.25,budget=0.2,seed=11"))
    try:
        chaotic = run_jobs(
            specs,
            jobs=2,
            metrics=MetricsRegistry(),
            policy=RetryPolicy(
                max_attempts=5, failure_mode="return", backoff=0.01, jitter=0.0
            ),
        )
    finally:
        chaos.configure(None)
    assert chaotic == clean


# -- transport faults and the store-mutation hook ----------------------------------


def test_parse_spec_transport_grammar():
    spec = chaos.parse_spec("reset=0.2,truncate=0.1,dup=0.3,lag=0.5:0.02,seed=4")
    assert spec.reset == 0.2 and spec.truncate == 0.1
    assert spec.dup == 0.3
    assert spec.lag == 0.5 and spec.lag_seconds == 0.02
    assert spec.enabled
    assert chaos.parse_spec(spec.describe()) == spec


def test_transport_plan_is_deterministic_and_first_serve_only():
    chaos.configure(chaos.parse_spec("reset=0.5,dup=0.5,seed=3"))
    keys = [f"fp{i}" for i in range(200)]
    plans = [chaos.transport_plan(key, 0) for key in keys]
    assert plans == [chaos.transport_plan(key, 0) for key in keys]
    faulted = sum(1 for plan in plans if plan)
    assert 0 < faulted < len(keys)  # rate-shaped, neither never nor always
    # A daemon's later serves of the same fingerprint are always clean,
    # so bounded retries converge.
    assert all(chaos.transport_plan(key, 1) == () for key in keys)


def test_transport_plan_empty_without_active_spec():
    assert chaos.transport_plan("fp", 0) == ()


def test_store_mutation_stamps_every_publish(monkeypatch):
    monkeypatch.setenv(chaos.STORE_MUTATION_ENV, "fabric-republish")
    first = chaos.mutate_store_value({"legal": True})
    second = chaos.mutate_store_value({"legal": True})
    assert first != {"legal": True}  # non-idempotent: the planted bug
    assert first != second  # each publish stamps a fresh sequence
    assert chaos.mutate_store_value([1, 2])["value"] == [1, 2]


def test_store_mutation_inactive_is_identity(monkeypatch):
    monkeypatch.delenv(chaos.STORE_MUTATION_ENV, raising=False)
    value = {"legal": True}
    assert chaos.mutate_store_value(value) is value
