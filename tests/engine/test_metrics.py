"""Tests for the engine metrics registry."""

import time

from repro.engine.metrics import METRICS, MetricsRegistry


def test_counters_accumulate():
    m = MetricsRegistry()
    m.inc("a")
    m.inc("a", 4)
    m.inc("b", 2.5)
    assert m.get("a") == 5
    assert m.get("b") == 2.5
    assert m.get("missing") == 0
    assert m.get("missing", 7) == 7


def test_timer_context_manager():
    m = MetricsRegistry()
    with m.timer("work"):
        time.sleep(0.01)
    with m.timer("work"):
        pass
    snap = m.snapshot()
    assert snap["timers"]["work"]["count"] == 2
    assert snap["timers"]["work"]["seconds"] >= 0.01


def test_timer_records_on_exception():
    m = MetricsRegistry()
    try:
        with m.timer("failing"):
            raise RuntimeError("boom")
    except RuntimeError:
        pass
    assert m.snapshot()["timers"]["failing"]["count"] == 1


def test_reset_clears_everything():
    m = MetricsRegistry()
    m.inc("x")
    with m.timer("t"):
        pass
    m.reset()
    assert m.snapshot() == {"counters": {}, "timers": {}}
    assert "(no events recorded)" in m.report()


def test_merge_folds_snapshots():
    a = MetricsRegistry()
    b = MetricsRegistry()
    a.inc("n", 2)
    b.inc("n", 3)
    b.observe("t", 0.5)
    a.merge(b.snapshot())
    assert a.get("n") == 5
    assert a.snapshot()["timers"]["t"] == {"count": 1, "seconds": 0.5}


def test_report_includes_hit_rate():
    m = MetricsRegistry()
    m.inc("engine.cache.hits", 3)
    m.inc("engine.cache.misses", 1)
    report = m.report()
    assert "engine.cache.hit_rate" in report
    assert "75.0%" in report


def test_global_registry_is_instrumented_by_legality():
    from repro.core import DataBlocking, check_legality, shackle_refs
    from repro.ir import parse_program

    program = parse_program(
        """
program mm(N)
array C[N,N]
assume N >= 1
do I = 1, N
  do J = 1, N
    S1: C[I,J] = C[I,J] + 1
"""
    )
    before = {
        name: METRICS.get(name)
        for name in ("legality.checks", "omega.feasibility_calls")
    }
    shackle = shackle_refs(program, DataBlocking.grid("C", 2, 8), "lhs")
    assert check_legality(shackle).legal
    assert METRICS.get("legality.checks") == before["legality.checks"] + 1
    assert METRICS.get("omega.feasibility_calls") > before["omega.feasibility_calls"]
