"""Tests for the engine metrics registry."""

import time

from repro.engine.metrics import METRICS, MetricsRegistry


def test_counters_accumulate():
    m = MetricsRegistry()
    m.inc("a")
    m.inc("a", 4)
    m.inc("b", 2.5)
    assert m.get("a") == 5
    assert m.get("b") == 2.5
    assert m.get("missing") == 0
    assert m.get("missing", 7) == 7


def test_timer_context_manager():
    m = MetricsRegistry()
    with m.timer("work"):
        time.sleep(0.01)
    with m.timer("work"):
        pass
    snap = m.snapshot()
    assert snap["timers"]["work"]["count"] == 2
    assert snap["timers"]["work"]["seconds"] >= 0.01


def test_timer_records_on_exception():
    m = MetricsRegistry()
    try:
        with m.timer("failing"):
            raise RuntimeError("boom")
    except RuntimeError:
        pass
    assert m.snapshot()["timers"]["failing"]["count"] == 1


def test_reset_clears_everything():
    m = MetricsRegistry()
    m.inc("x")
    with m.timer("t"):
        pass
    m.reset()
    assert m.snapshot() == {"counters": {}, "timers": {}}
    assert "(no events recorded)" in m.report()


def test_merge_folds_snapshots():
    a = MetricsRegistry()
    b = MetricsRegistry()
    a.inc("n", 2)
    b.inc("n", 3)
    b.observe("t", 0.5)
    a.merge(b.snapshot())
    assert a.get("n") == 5
    assert a.snapshot()["timers"]["t"] == {"count": 1, "seconds": 0.5}


def test_report_includes_hit_rate():
    m = MetricsRegistry()
    m.inc("engine.cache.hits", 3)
    m.inc("engine.cache.misses", 1)
    report = m.report()
    assert "engine.cache.hit_rate" in report
    assert "75.0%" in report


def test_gauges_and_series_snapshot():
    m = MetricsRegistry()
    m.set_gauge("queue_depth", 7)
    m.set_gauge("queue_depth", 3)  # last write wins
    for value in (1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0):
        m.record("latency", value)
    snap = m.snapshot()
    assert snap["gauges"] == {"queue_depth": 3}
    series = snap["series"]["latency"]
    assert series["count"] == 10
    assert series["p50"] == 5.0
    assert series["p90"] == 9.0
    assert series["p99"] == 10.0
    assert series["max"] == 10.0


def test_percentile_nearest_rank():
    from repro.engine.metrics import percentile

    assert percentile([], 50) == 0.0
    assert percentile([42.0], 99) == 42.0
    assert percentile([1.0, 2.0, 3.0, 4.0], 50) == 2.0
    assert percentile([1.0, 2.0, 3.0, 4.0], 99) == 4.0


def test_series_reservoir_is_bounded():
    from repro.engine.metrics import SERIES_RESERVOIR

    m = MetricsRegistry()
    for i in range(SERIES_RESERVOIR + 100):
        m.record("s", float(i))
    series = m.snapshot()["series"]["s"]
    assert series["count"] == SERIES_RESERVOIR + 100  # lifetime count kept
    # Percentiles come from the freshest SERIES_RESERVOIR samples.
    assert series["max"] == float(SERIES_RESERVOIR + 99)


def test_json_report_is_machine_readable_snapshot():
    import json

    m = MetricsRegistry()
    m.inc("engine.cache.hits", 3)
    m.set_gauge("service.inflight", 2)
    m.record("service.latency.legality", 0.25)
    decoded = json.loads(m.report(fmt="json"))
    assert decoded == m.snapshot()
    assert decoded["counters"]["engine.cache.hits"] == 3
    assert decoded["gauges"]["service.inflight"] == 2
    assert decoded["series"]["service.latency.legality"]["p50"] == 0.25


def test_report_rejects_unknown_format():
    import pytest

    with pytest.raises(ValueError):
        MetricsRegistry().report(fmt="xml")


def test_text_report_shows_gauges_and_series():
    m = MetricsRegistry()
    m.set_gauge("service.queue_depth", 4)
    m.record("service.latency.all", 0.5)
    report = m.report()
    assert "service.queue_depth" in report
    assert "p50=0.5" in report


def test_merge_folds_gauges_and_series_counts():
    a = MetricsRegistry()
    b = MetricsRegistry()
    b.set_gauge("g", 9)
    b.record("lat", 1.0)
    b.record("lat", 2.0)
    a.merge(b.snapshot())
    assert a.get_gauge("g") == 9
    assert a.get("lat.merged") == 2


def test_registry_is_thread_safe_under_contention():
    import threading

    m = MetricsRegistry()

    def worker():
        for i in range(2000):
            m.inc("n")
            m.record("s", float(i))
            m.set_gauge("g", i)

    threads = [threading.Thread(target=worker) for _ in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert m.get("n") == 8 * 2000
    assert m.snapshot()["series"]["s"]["count"] == 8 * 2000


def test_global_registry_is_instrumented_by_legality():
    from repro.core import DataBlocking, check_legality, shackle_refs
    from repro.ir import parse_program

    program = parse_program(
        """
program mm(N)
array C[N,N]
assume N >= 1
do I = 1, N
  do J = 1, N
    S1: C[I,J] = C[I,J] + 1
"""
    )
    before = {
        name: METRICS.get(name)
        for name in ("legality.checks", "omega.feasibility_calls")
    }
    shackle = shackle_refs(program, DataBlocking.grid("C", 2, 8), "lhs")
    assert check_legality(shackle).legal
    assert METRICS.get("legality.checks") == before["legality.checks"] + 1
    assert METRICS.get("omega.feasibility_calls") > before["omega.feasibility_calls"]
