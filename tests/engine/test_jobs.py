"""Tests for canonical job specs and their content fingerprints."""

from repro.core import DataBlocking, check_legality, simplified_code
from repro.core.shackle import _parse_ref, shackle_refs
from repro.engine.jobs import (
    blocking_from_spec,
    blocking_spec,
    codegen_job,
    execute,
    legality_job,
    search_job,
    simulate_job,
)
from repro.ir import parse_program, to_source
from repro.kernels import cholesky
from repro.memsim.cost import TINY

CENSUS_CHOICE = {
    "S1": _parse_ref("A[J,J]"),
    "S2": _parse_ref("A[I,J]"),
    "S3": _parse_ref("A[L,K]"),
}


def _program():
    return cholesky.program("right")


def test_fingerprint_stable_across_object_identity():
    prog = _program()
    blocking = DataBlocking.grid("A", 2, 25)
    a = legality_job(prog, blocking, CENSUS_CHOICE)
    # A freshly reparsed program and a rebuilt blocking hash identically.
    reparsed = parse_program(to_source(prog))
    b = legality_job(reparsed, DataBlocking.grid("A", 2, 25), dict(CENSUS_CHOICE))
    assert a.fingerprint == b.fingerprint


def test_fingerprint_choice_order_insensitive():
    prog = _program()
    blocking = DataBlocking.grid("A", 2, 25)
    forward = legality_job(prog, blocking, CENSUS_CHOICE)
    reordered = legality_job(
        prog, blocking, dict(reversed(list(CENSUS_CHOICE.items())))
    )
    assert forward.fingerprint == reordered.fingerprint


def test_fingerprint_sensitive_to_inputs():
    prog = _program()
    blocking = DataBlocking.grid("A", 2, 25)
    base = legality_job(prog, blocking, CENSUS_CHOICE)
    other_block = legality_job(prog, DataBlocking.grid("A", 2, 64), CENSUS_CHOICE)
    other_choice = legality_job(
        prog, blocking, {**CENSUS_CHOICE, "S3": _parse_ref("A[K,J]")}
    )
    assert len({base.fingerprint, other_block.fingerprint, other_choice.fingerprint}) == 3
    # Kind participates in the fingerprint too.
    assert search_job(prog, blocking).fingerprint != base.fingerprint


def test_blocking_spec_round_trip():
    blocking = DataBlocking.grid("A", 2, 25, dims=[1], directions=[-1])
    rebuilt = blocking_from_spec(blocking_spec(blocking))
    assert blocking_spec(rebuilt) == blocking_spec(blocking)


def test_execute_legality_matches_direct_check():
    prog = _program()
    blocking = DataBlocking.grid("A", 2, 25)
    legal = execute(legality_job(prog, blocking, CENSUS_CHOICE))
    assert legal == {"legal": True}
    illegal_choice = {**CENSUS_CHOICE, "S2": _parse_ref("A[J,J]"), "S3": _parse_ref("A[L,K]")}
    assert execute(legality_job(prog, blocking, illegal_choice)) == {"legal": False}


def test_execute_codegen_matches_direct_generation():
    prog = _program()
    blocking = DataBlocking.grid("A", 2, 25)
    out = execute(codegen_job(prog, blocking, CENSUS_CHOICE, mode="simplified"))
    from repro.core import DataShackle

    direct = simplified_code(DataShackle(prog, blocking, CENSUS_CHOICE))
    assert out["source"] == to_source(direct)


def test_execute_search_job():
    prog = _program()
    out = execute(search_job(prog, DataBlocking.grid("A", 2, 25), max_product=1))
    assert len(out["results"]) == 3  # the Section 6.1 census's legal singles
    assert all(r["factors"] == 1 for r in out["results"])


def test_execute_simulate_job():
    prog = parse_program(
        """
program mm(N)
array A[N,N]
array B[N,N]
array C[N,N]
assume N >= 1
do I = 1, N
  do J = 1, N
    do K = 1, N
      S1: C[I,J] = C[I,J] + A[I,K]*B[K,J]
"""
    )
    out = execute(
        simulate_job(prog, {"N": 6}, TINY, variant="input", options={"seed": 0})
    )
    assert out["variant"] == "input"
    assert out["flops"] == 2 * 6**3
    assert out["mflops"] > 0
