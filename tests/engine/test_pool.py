"""Tests for the worker pool and the cached job runner."""

from repro.core import DataBlocking
from repro.core.shackle import _parse_ref
from repro.engine.cache import ResultCache
from repro.engine.jobs import legality_job
from repro.engine.metrics import MetricsRegistry
from repro.engine.pool import WorkerPool, run_jobs
from repro.kernels import cholesky


def _census_specs():
    prog = cholesky.program("right")
    blocking = DataBlocking.grid("A", 2, 25)
    specs = []
    for s2 in ("A[I,J]", "A[J,J]"):
        for s3 in ("A[L,K]", "A[L,J]", "A[K,J]"):
            choice = {
                "S1": _parse_ref("A[J,J]"),
                "S2": _parse_ref(s2),
                "S3": _parse_ref(s3),
            }
            specs.append(legality_job(prog, blocking, choice))
    return specs


def test_serial_map_preserves_order():
    pool = WorkerPool(1)
    assert pool.map(abs, [-3, 1, -2]) == [3, 1, 2]


def test_parallel_map_preserves_order():
    pool = WorkerPool(2)
    items = list(range(-20, 20))
    assert pool.map(abs, items) == [abs(x) for x in items]


def test_unpicklable_work_falls_back_to_serial():
    metrics = MetricsRegistry()
    pool = WorkerPool(2, metrics=metrics)
    captured = []

    def closure(x):  # local function: not picklable for a process pool
        captured.append(x)
        return x + 1

    assert pool.map(closure, [1, 2, 3]) == [2, 3, 4]
    assert metrics.get("engine.pool.fallbacks") == 1


def test_run_jobs_census_matches_known_verdicts():
    specs = _census_specs()
    outs = run_jobs(specs, jobs=1)
    verdicts = [out["legal"] for out in outs]
    # (S2, S3) in census order; see bench_legality_census.
    assert verdicts == [True, True, False, False, False, True]


def test_run_jobs_parallel_matches_serial():
    specs = _census_specs()
    assert run_jobs(specs, jobs=2) == run_jobs(specs, jobs=1)


def test_run_jobs_deduplicates_within_batch():
    metrics = MetricsRegistry()
    spec = _census_specs()[0]
    outs = run_jobs([spec, spec, spec], jobs=1, metrics=metrics)
    assert outs == [{"legal": True}] * 3
    assert metrics.get("engine.executed.legality") == 1
    assert metrics.get("engine.jobs.submitted") == 3


def test_run_jobs_warm_cache_executes_nothing():
    specs = _census_specs()
    cache = ResultCache()
    cold_metrics = MetricsRegistry()
    cold = run_jobs(specs, jobs=1, cache=cache, metrics=cold_metrics)
    assert cold_metrics.get("engine.executed.legality") == len(specs)

    warm_metrics = MetricsRegistry()
    warm = run_jobs(specs, jobs=1, cache=cache, metrics=warm_metrics)
    assert warm == cold
    assert warm_metrics.get("engine.executed.legality") == 0
    assert cache.hits == len(specs)


def test_run_jobs_disk_cache_spans_processes(tmp_path):
    specs = _census_specs()
    root = tmp_path / "store"
    run_jobs(specs, jobs=1, cache=ResultCache(root=root))
    # A fresh cache over the same store (as a new process would build)
    # serves every verdict from disk.
    metrics = MetricsRegistry()
    cold_memory = ResultCache(root=root)
    out = run_jobs(specs, jobs=1, cache=cold_memory, metrics=metrics)
    assert [o["legal"] for o in out] == [True, True, False, False, False, True]
    assert metrics.get("engine.executed.legality") == 0
    assert cold_memory.disk_hits == len(specs)
