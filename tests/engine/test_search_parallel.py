"""Engine-backed search: parallel/serial equality, warm cache, dedup.

The acceptance bar for the engine: parallel search returns bitwise-
identical rankings to serial search on the Section 6.1 Cholesky census,
and a warm-cache re-run performs zero fresh legality checks.
"""

import pytest

from repro.core import DataBlocking, search_shackles
from repro.engine.cache import ResultCache
from repro.engine.metrics import METRICS
from repro.kernels import cholesky


@pytest.fixture
def program():
    return cholesky.program("right")


@pytest.fixture
def blocking():
    return DataBlocking.grid("A", 2, 25)


def _ranking(results):
    return [r.describe() for r in results]


def test_parallel_ranking_identical_to_serial(program, blocking):
    serial = search_shackles(program, blocking, max_product=2)
    parallel = search_shackles(program, blocking, max_product=2, jobs=2)
    assert _ranking(parallel) == _ranking(serial)


def test_engine_path_matches_legacy_path(program, blocking):
    # jobs=1 with a cache still routes through the engine; the verdicts
    # and therefore the ranking must be unchanged.
    legacy = search_shackles(program, blocking, max_product=2)
    engine = search_shackles(program, blocking, max_product=2, cache=ResultCache())
    assert _ranking(engine) == _ranking(legacy)


def test_warm_cache_runs_zero_fresh_legality_checks(program, blocking, tmp_path):
    cache = ResultCache(root=tmp_path / "store")
    cold = search_shackles(program, blocking, max_product=2, cache=cache)

    before = METRICS.get("engine.executed.legality")
    warm = search_shackles(program, blocking, max_product=2, cache=cache)
    assert METRICS.get("engine.executed.legality") == before  # zero fresh checks
    assert _ranking(warm) == _ranking(cold)


def test_warm_disk_cache_survives_process_boundary(program, blocking, tmp_path):
    root = tmp_path / "store"
    cold = search_shackles(program, blocking, max_product=2, cache=ResultCache(root=root))
    before = METRICS.get("engine.executed.legality")
    # A fresh ResultCache models a new process: memory tier cold, disk warm.
    warm = search_shackles(
        program, blocking, max_product=2, cache=ResultCache(root=root)
    )
    assert METRICS.get("engine.executed.legality") == before
    assert _ranking(warm) == _ranking(cold)


def test_products_deduplicated_unordered(program, blocking):
    # A x B and B x A constrain the same references; only one may be ranked.
    results = search_shackles(program, blocking, max_product=2)
    keys = [tuple(sorted(r.choices.items())) for r in results if len(r.shackle.factors()) > 1]
    unordered = [
        tuple(sorted((label, tuple(sorted(refs.split("*")))) for label, refs in key))
        for key in keys
    ]
    assert len(unordered) == len(set(unordered))


def test_no_self_products(program, blocking):
    # Repeating a factor adds no constraint; such products must be pruned.
    results = search_shackles(program, blocking, max_product=2)
    for r in results:
        factors = r.shackle.factors()
        if len(factors) == 1:
            continue
        signatures = [
            (f.blocking.array, tuple(sorted((l, str(ref)) for l, ref in f.ref_choice.items())))
            for f in factors
        ]
        assert len(signatures) == len(set(signatures))


def test_frontier_cap_bounds_extension(program, blocking):
    capped = search_shackles(program, blocking, max_product=3, max_frontier=1)
    uncapped = search_shackles(program, blocking, max_product=3)
    assert len(capped) <= len(uncapped)
    costs = [r.unconstrained for r in capped]
    assert costs == sorted(costs)  # still ranked

def test_matmul_parallel_full_product(matmul_source=None):
    from repro.ir import parse_program

    program = parse_program(
        """
program mm(N)
array A[N,N]
array B[N,N]
array C[N,N]
assume N >= 1
do I = 1, N
  do J = 1, N
    do K = 1, N
      S1: C[I,J] = C[I,J] + A[I,K]*B[K,J]
"""
    )
    blocking = DataBlocking.grid("C", 2, 25)
    serial = search_shackles(program, blocking, max_product=2)
    parallel = search_shackles(program, blocking, max_product=2, jobs=2)
    assert _ranking(parallel) == _ranking(serial)
    assert serial[0].unconstrained == 0
