"""Smoke-run every example script so the walkthroughs never rot.

Each example's ``main()`` is imported and executed; assertions inside
the examples (they verify their own numerics) run as part of this.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted((Path(__file__).parent.parent / "examples").glob("*.py"))


def load_module(path: Path):
    spec = importlib.util.spec_from_file_location(f"example_{path.stem}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(path, capsys, monkeypatch):
    if path.stem == "native_codegen":
        from repro.backends import c_compiler_available

        if not c_compiler_available():
            pytest.skip("no C compiler")
        # Keep the native example fast under test.
        monkeypatch.setattr(sys, "argv", [str(path), "128"])
    module = load_module(path)
    module.main()
    out = capsys.readouterr().out
    assert out.strip(), f"{path.stem} produced no output"
