"""Regenerate every experiment: ``python -m repro.experiments``.

Prints the paper's code figures and performance figures (on the scaled
simulated machine) plus the ablations.  Use ``--quick`` for smaller
sweeps, ``--native`` to additionally time C-compiled code on this host.
"""

from __future__ import annotations

import argparse
import sys

from repro.experiments import figures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="python -m repro.experiments")
    parser.add_argument("--quick", action="store_true", help="smaller sweeps")
    parser.add_argument("--native", action="store_true", help="also time C code on this host")
    parser.add_argument(
        "--check", action="store_true", help="verify numerics against numpy oracles"
    )
    args = parser.parse_args(argv)

    print("=" * 72)
    print("Code figures")
    print("=" * 72)
    for name, text in figures.code_figures().items():
        print(f"\n--- {name} ---")
        print(text)

    print("=" * 72)
    print("Performance figures (simulated machine: sp2-scaled)")
    print("=" * 72)
    check = args.check
    if args.quick:
        figures.fig11_cholesky(sizes=[24, 48], check=check)
        figures.fig12_qr(sizes=[16, 32], check=check)
        figures.fig13_gmtry(n=48, check=check)
        figures.fig13_adi(sizes=[32, 64], check=check)
        figures.fig15_banded_cholesky(n=64, bandwidths=[4, 16, 32], check=check)
        figures.ablation_block_size(n=32)
        figures.ablation_multilevel(n=48)
        figures.ablation_shackle_vs_tiling(n=32)
        figures.ablation_traversal_order(n=32)
        figures.ablation_data_reshaping(n=32, block=8)
        figures.ablation_register_blocking(n=24)
        figures.ablation_associativity(n=32)
        figures.ablation_writeback_traffic(n=32)
    else:
        figures.fig11_cholesky(sizes=[24, 48, 72, 96, 120], check=check)
        figures.fig12_qr(sizes=[16, 32, 48, 64, 96], check=check)
        figures.fig13_gmtry(n=80, check=check)
        figures.fig13_adi(sizes=[32, 64, 96, 128], check=check)
        figures.fig15_banded_cholesky(n=96, bandwidths=[4, 8, 16, 32, 48], check=check)
        figures.ablation_block_size(n=48, blocks=[2, 4, 8, 12, 16, 24, 48])
        figures.ablation_multilevel(n=80)
        figures.ablation_shackle_vs_tiling(n=48)
        figures.ablation_traversal_order(n=48)
        figures.ablation_data_reshaping(n=64, block=8)
        figures.ablation_register_blocking(n=48)
        figures.ablation_associativity(n=64, block=8)
        figures.ablation_writeback_traffic(n=96, block=8)

    if args.native:
        from repro.backends import c_compiler_available, compile_and_run
        from repro.core import simplified_code
        from repro.kernels import matmul

        if c_compiler_available():
            print("Native C timings (this host, cc -O2), matmul N=384:")
            prog = matmul.program()
            blocked = simplified_code(matmul.ca_product(prog, 48))
            orig = compile_and_run(prog, {"N": 384}, repeats=2)
            shak = compile_and_run(blocked, {"N": 384}, repeats=2)
            print(f"  original: {orig.seconds:.4f}s   blocked(48): {shak.seconds:.4f}s")
        else:
            print("no C compiler found; skipping --native")
    return 0


if __name__ == "__main__":
    sys.exit(main())
