"""ASCII reporting of experiment results (the paper's figures as tables)."""

from __future__ import annotations

from typing import Iterable

from repro.experiments.harness import Measurement


def print_table(rows: Iterable[dict], columns: list[str] | None = None, out=None) -> str:
    """Render dict rows as a fixed-width ASCII table; returns the text."""
    rows = list(rows)
    if not rows:
        return "(no data)\n"
    if columns is None:
        columns = list(rows[0].keys())
    widths = {c: max(len(str(c)), max(len(str(r.get(c, ""))) for r in rows)) for c in columns}
    lines = [
        "  ".join(str(c).rjust(widths[c]) for c in columns),
        "  ".join("-" * widths[c] for c in columns),
    ]
    for r in rows:
        lines.append("  ".join(str(r.get(c, "")).rjust(widths[c]) for c in columns))
    text = "\n".join(lines) + "\n"
    if out is not None:
        out.write(text)
    else:
        print(text, end="")
    return text


def format_series(
    measurements: Iterable[Measurement],
    x: str,
    value: str = "mflops",
    out=None,
) -> str:
    """Pivot measurements into an x-vs-variant table (one figure's lines)."""
    measurements = list(measurements)
    variants: list[str] = []
    xs: list = []
    table: dict[tuple, float] = {}
    for m in measurements:
        if m.variant not in variants:
            variants.append(m.variant)
        key_x = m.env.get(x, getattr(m, x, None))
        if key_x not in xs:
            xs.append(key_x)
        table[(key_x, m.variant)] = getattr(m, value) if hasattr(m, value) else m.stats[value]
    rows = []
    for key_x in xs:
        row = {x: key_x}
        for v in variants:
            cell = table.get((key_x, v))
            row[v] = round(cell, 2) if isinstance(cell, float) else cell
        rows.append(row)
    return print_table(rows, [x] + variants, out=out)


def speedup_summary(measurements: Iterable[Measurement], baseline: str) -> dict[str, float]:
    """Per-variant speedup over the named baseline (matched by env)."""
    measurements = list(measurements)
    base = {tuple(sorted(m.env.items())): m.seconds for m in measurements if m.variant == baseline}
    out: dict[str, list[float]] = {}
    for m in measurements:
        if m.variant == baseline:
            continue
        key = tuple(sorted(m.env.items()))
        if key in base and m.seconds > 0:
            out.setdefault(m.variant, []).append(base[key] / m.seconds)
    return {v: sum(vals) / len(vals) for v, vals in out.items()}
