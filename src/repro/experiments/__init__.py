"""Experiment harness reproducing the paper's evaluation (Section 7).

Each ``fig*`` function in :mod:`repro.experiments.figures` regenerates one
performance figure of the paper on the simulated machine; the code
figures (3, 5, 6, 7, 10, 14) are covered by golden tests and the
benchmark suite.  EXPERIMENTS.md records paper-vs-measured for each.
"""

from repro.experiments.harness import Measurement, simulate
from repro.experiments.report import format_series, print_table

__all__ = ["Measurement", "format_series", "print_table", "simulate"]
