"""Run one program variant through the simulated machine.

The measurement pipeline: allocate the arena, initialize arrays with the
kernel's ``init``, compile with tracing, execute while the memory
hierarchy records the trace, then convert counters into cycles and
simulated MFlops with the machine's cost model.

Per-statement CPI overrides model the paper's "Matrix Multiply replaced
by DGEMM" experiments: the same generated code, with the matrix-multiply
statements costed at hand-tuned-kernel CPI instead of scalar-backend CPI.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.backends import compile_program
from repro.engine.metrics import METRICS
from repro.ir.nodes import Program
from repro.memsim import Arena
from repro.memsim.cost import MachineSpec


@dataclass
class Measurement:
    """One simulated run of one variant."""

    variant: str
    env: dict
    machine: str
    stats: dict = field(repr=False)
    flops: int
    cycles: float
    seconds: float
    mflops: float

    def row(self) -> dict:
        out = {"variant": self.variant, **self.env, "flops": self.flops,
               "cycles": round(self.cycles), "mflops": round(self.mflops, 2)}
        out.update(self.stats)
        return out


def measurement_payload(measurement: Measurement) -> dict:
    """JSON-serializable form of a measurement (engine cache value)."""
    return {
        "variant": measurement.variant,
        "env": dict(measurement.env),
        "machine": measurement.machine,
        "stats": dict(measurement.stats),
        "flops": measurement.flops,
        "cycles": measurement.cycles,
        "seconds": measurement.seconds,
        "mflops": measurement.mflops,
    }


def measurement_from_payload(payload: dict) -> Measurement:
    """Inverse of :func:`measurement_payload`."""
    return Measurement(**payload)


def random_init(arena: Arena, buf, rng) -> None:
    """Generic initializer: fill the whole arena with uniform randoms."""
    buf[:] = rng.random(arena.total_size)


def simulate(
    program: Program,
    env: dict[str, int],
    machine: MachineSpec,
    init_fn,
    *,
    variant: str,
    layout_overrides: dict | None = None,
    cpi_map: dict[str, str] | None = None,
    default_cpi: str = "scalar",
    extra_flops: float = 0.0,
    overhead_cycles: float = 0.0,
    check_fn=None,
    seed: int = 1234,
) -> Measurement:
    """Simulate ``program`` at ``env`` on ``machine``.

    ``cpi_map`` maps statement labels to ``"kernel"`` or ``"scalar"``;
    unmapped statements use ``default_cpi``.  ``extra_flops`` (costed at
    kernel CPI) and ``overhead_cycles`` support modeled baselines such as
    the LAPACK WY overhead; both default to zero for honest measurements.
    """
    arena = Arena(program, env, layout_overrides=layout_overrides)
    buf = arena.allocate()
    rng = np.random.default_rng(seed)
    init_fn(arena, buf, rng)
    initial = buf.copy() if check_fn is not None else None

    hierarchy = machine.hierarchy()
    compiled = compile_program(program, arena, trace=True)
    with METRICS.timer("memsim.run"):
        result = compiled.run(buf, mem=hierarchy)
    hierarchy.record_metrics()
    if check_fn is not None and not check_fn(arena, initial, buf):
        raise AssertionError(f"variant {variant!r} produced wrong results at {env}")

    cpis = {"scalar": machine.scalar_cpi, "kernel": machine.kernel_cpi}
    flop_cycles = 0.0
    for label, count in result.counts.items():
        kind = (cpi_map or {}).get(label, default_cpi)
        flop_cycles += count * result.flops_per_statement[label] * cpis[kind]
    flop_cycles += extra_flops * machine.kernel_cpi

    cycles = hierarchy.access_cycles() + flop_cycles + overhead_cycles
    seconds = cycles / (machine.clock_mhz * 1e6)
    flops = result.flops
    mflops = (flops / 1e6) / seconds if seconds > 0 else 0.0
    return Measurement(
        variant=variant,
        env=dict(env),
        machine=machine.name,
        stats=hierarchy.stats(),
        flops=flops,
        cycles=cycles,
        seconds=seconds,
        mflops=mflops,
    )


@dataclass
class SweepPoint:
    """One point of an experiment sweep: a program at one size/machine.

    ``init`` must be a module-level callable (it crosses process
    boundaries under ``jobs > 1``); ``options`` are extra keyword
    arguments forwarded to :func:`simulate` (cpi_map, check_fn, seed,
    ...).
    """

    program: Program
    env: dict
    machine: MachineSpec
    init: object
    variant: str
    options: dict = field(default_factory=dict)


def _run_sweep_point(point: SweepPoint) -> Measurement:
    """Top-level (hence picklable) executor for one sweep point."""
    return simulate(
        point.program,
        point.env,
        point.machine,
        point.init,
        variant=point.variant,
        **point.options,
    )


def _point_fingerprint(point: SweepPoint) -> str | None:
    """Content fingerprint of a sweep point, or None if uncacheable.

    Points whose options hold live objects (e.g. a ``check_fn``
    callable) have no stable canonical form and simply bypass the cache.
    """
    from repro.engine.jobs import canonical_json, fingerprint
    from repro.ir import to_source

    init_name = f"{getattr(point.init, '__module__', '?')}.{getattr(point.init, '__qualname__', repr(point.init))}"
    payload = {
        "program": to_source(point.program),
        "env": {k: int(v) for k, v in point.env.items()},
        "machine": point.machine.name,
        "variant": point.variant,
        "init": init_name,
        "options": point.options,
    }
    try:
        canonical_json(payload)
    except TypeError:
        return None
    return fingerprint("simulate", payload)


def simulate_sweep(
    points: list[SweepPoint],
    *,
    jobs: int = 1,
    cache=None,
) -> list[Measurement]:
    """Simulate every sweep point, returning measurements in order.

    Independent points fan out across worker processes when ``jobs > 1``
    (results are identical to the serial order) and are served from the
    engine's content-addressed ``cache`` when provided — a warm re-run
    of a sweep performs zero fresh simulations.
    """
    from repro.engine.metrics import METRICS
    from repro.engine.pool import WorkerPool

    results: list[Measurement | None] = [None] * len(points)
    pending: list[tuple[int, SweepPoint, str | None]] = []
    for index, point in enumerate(points):
        fp = _point_fingerprint(point) if cache is not None else None
        cached = cache.get(fp) if fp is not None else None
        if cached is not None:
            results[index] = measurement_from_payload(cached)
            continue
        pending.append((index, point, fp))

    if pending:
        pool = WorkerPool(jobs)
        measurements = pool.map(_run_sweep_point, [point for _, point, _ in pending])
        for (index, _, fp), measurement in zip(pending, measurements):
            METRICS.inc("engine.executed.simulate")
            if cache is not None and fp is not None:
                cache.put(fp, measurement_payload(measurement))
            results[index] = measurement
    return results
