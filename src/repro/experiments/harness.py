"""Run one program variant through the simulated machine.

The measurement pipeline is capture-once, replay-everywhere: allocate the
arena, initialize arrays with the kernel's ``init``, compile in trace
*capture* mode and execute once to record the address trace, then replay
the trace through the vectorized cache simulator
(:mod:`repro.memsim.replay`) and convert counters into cycles and
simulated MFlops with the machine's cost model.  Traces live in a
content-addressed :class:`~repro.memsim.trace.TraceStore`, so repeated
measurements of the same (program, env, layout) — in particular ablation
sweeps over cache geometry — replay without re-executing the program at
all.  ``replay=False`` selects the original per-access simulation, which
is bit-identical and kept as the differential oracle.

``fidelity`` picks the tier explicitly: ``"oracle"`` (per-access
simulation), ``"replay"`` (capture once, replay per geometry), or
``"analytic"`` (capture once, one reuse-distance histogram pass per
line size, then predict any LRU geometry from the histogram — zero
replays; see :mod:`repro.memsim.reuse` for the exactness contract).

Per-statement CPI overrides model the paper's "Matrix Multiply replaced
by DGEMM" experiments: the same generated code, with the matrix-multiply
statements costed at hand-tuned-kernel CPI instead of scalar-backend CPI.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.backends import compile_program
from repro.engine.metrics import METRICS
from repro.ir.nodes import Program
from repro.memsim import Arena
from repro.memsim.cost import MachineSpec
from repro.memsim.replay import replay_trace
from repro.memsim.trace import Trace, TraceStore, resolve_trace_store, trace_fingerprint


@dataclass
class Measurement:
    """One simulated run of one variant."""

    variant: str
    env: dict
    machine: str
    stats: dict = field(repr=False)
    flops: int
    cycles: float
    seconds: float
    mflops: float

    def row(self) -> dict:
        out = {"variant": self.variant, **self.env, "flops": self.flops,
               "cycles": round(self.cycles), "mflops": round(self.mflops, 2)}
        out.update(self.stats)
        return out


def measurement_payload(measurement: Measurement) -> dict:
    """JSON-serializable form of a measurement (engine cache value)."""
    return {
        "variant": measurement.variant,
        "env": dict(measurement.env),
        "machine": measurement.machine,
        "stats": dict(measurement.stats),
        "flops": measurement.flops,
        "cycles": measurement.cycles,
        "seconds": measurement.seconds,
        "mflops": measurement.mflops,
    }


def measurement_from_payload(payload: dict) -> Measurement:
    """Inverse of :func:`measurement_payload`."""
    return Measurement(**payload)


FIDELITIES = frozenset({"oracle", "replay", "analytic"})
"""Valid ``fidelity`` arguments to :func:`simulate`."""


def random_init(arena: Arena, buf, rng) -> None:
    """Generic initializer: fill the whole arena with uniform randoms."""
    buf[:] = rng.random(arena.total_size)


def _machine_key(machine: MachineSpec) -> tuple:
    """Hashable geometry key for the replay memo (names included, so two
    machines that differ only in level names do not share stats rows)."""
    return (tuple(tuple(level) for level in machine.levels), machine.memory_latency)


def _execute(program, arena, init_fn, seed, check_fn, trace_mode):
    """Allocate, initialize and run once; returns (run result, buffers)."""
    buf = arena.allocate()
    rng = np.random.default_rng(seed)
    init_fn(arena, buf, rng)
    initial = buf.copy() if check_fn is not None else None
    compiled = compile_program(program, arena, trace=trace_mode)
    with METRICS.timer("memsim.run"):
        result = compiled.run(buf)
    return result, buf, initial


def _finish_measurement(
    variant, env, machine, counts, flops_per_statement, mem_result,
    cpi_map, default_cpi, extra_flops, overhead_cycles,
) -> Measurement:
    """Shared cost-model tail of both simulation paths."""
    cpis = {"scalar": machine.scalar_cpi, "kernel": machine.kernel_cpi}
    flop_cycles = 0.0
    flops = 0
    for label, count in counts.items():
        kind = (cpi_map or {}).get(label, default_cpi)
        flop_cycles += count * flops_per_statement[label] * cpis[kind]
        flops += count * flops_per_statement[label]
    flop_cycles += extra_flops * machine.kernel_cpi

    cycles = mem_result.access_cycles() + flop_cycles + overhead_cycles
    seconds = cycles / (machine.clock_mhz * 1e6)
    mflops = (flops / 1e6) / seconds if seconds > 0 else 0.0
    return Measurement(
        variant=variant,
        env=dict(env),
        machine=machine.name,
        stats=mem_result.stats(),
        flops=flops,
        cycles=cycles,
        seconds=seconds,
        mflops=mflops,
    )


def simulate(
    program: Program,
    env: dict[str, int],
    machine: MachineSpec,
    init_fn,
    *,
    variant: str,
    layout_overrides: dict | None = None,
    cpi_map: dict[str, str] | None = None,
    default_cpi: str = "scalar",
    extra_flops: float = 0.0,
    overhead_cycles: float = 0.0,
    check_fn=None,
    seed: int = 1234,
    replay: bool = True,
    fidelity: str | None = None,
    trace_store: TraceStore | str | None = None,
) -> Measurement:
    """Simulate ``program`` at ``env`` on ``machine``.

    ``cpi_map`` maps statement labels to ``"kernel"`` or ``"scalar"``;
    unmapped statements use ``default_cpi``.  ``extra_flops`` (costed at
    kernel CPI) and ``overhead_cycles`` support modeled baselines such as
    the LAPACK WY overhead; both default to zero for honest measurements.

    With ``replay`` (the default) the program's address trace is captured
    once and replayed through the vectorized simulator; the trace is
    keyed by (program, env, layout) in ``trace_store`` (``None`` = the
    process-global store, a string/path = an on-disk ``.npz`` store), so
    a warm store measures without executing the program.  Counters and
    cycles are bit-identical to ``replay=False``, the per-access oracle.

    ``fidelity`` (``"oracle"`` | ``"replay"`` | ``"analytic"``) selects
    the tier explicitly and overrides ``replay``; ``"analytic"`` predicts
    counters from stored reuse-distance histograms without replaying —
    bit-exact for fully-associative single-level geometries, within
    :data:`~repro.memsim.reuse.ASSOC_TOLERANCE` otherwise.
    """
    if fidelity is None:
        fidelity = "replay" if replay else "oracle"
    if fidelity not in FIDELITIES:
        raise ValueError(f"unknown fidelity {fidelity!r} (expected one of {sorted(FIDELITIES)})")
    if fidelity == "oracle":
        arena = Arena(program, env, layout_overrides=layout_overrides)
        hierarchy = machine.hierarchy()
        buf = arena.allocate()
        rng = np.random.default_rng(seed)
        init_fn(arena, buf, rng)
        initial = buf.copy() if check_fn is not None else None
        compiled = compile_program(program, arena, trace=True)
        with METRICS.timer("memsim.run"):
            result = compiled.run(buf, mem=hierarchy)
        hierarchy.record_metrics()
        if check_fn is not None and not check_fn(arena, initial, buf):
            raise AssertionError(f"variant {variant!r} produced wrong results at {env}")
        return _finish_measurement(
            variant, env, machine, result.counts, result.flops_per_statement,
            hierarchy, cpi_map, default_cpi, extra_flops, overhead_cycles,
        )

    store = resolve_trace_store(trace_store)
    arena = Arena(program, env, layout_overrides=layout_overrides)
    fp = trace_fingerprint(program, env, arena)
    trace = store.get(fp)
    if trace is None:
        result, buf, initial = _execute(
            program, arena, init_fn, seed, check_fn, trace_mode="capture"
        )
        trace = Trace(result.trace, dict(result.counts), dict(result.flops_per_statement))
        store.put(fp, trace)
        METRICS.inc("memsim.trace_capture")
        if check_fn is not None and not check_fn(arena, initial, buf):
            raise AssertionError(f"variant {variant!r} produced wrong results at {env}")
    elif check_fn is not None:
        # The trace is known but the caller wants the numbers checked:
        # execute without any tracing (the cheapest possible run).
        _, buf, initial = _execute(
            program, arena, init_fn, seed, check_fn, trace_mode=False
        )
        if not check_fn(arena, initial, buf):
            raise AssertionError(f"variant {variant!r} produced wrong results at {env}")

    if fidelity == "analytic":
        from repro.memsim.reuse import ladder_requirements, predict

        memo_key = (fp, "analytic", _machine_key(machine))
        predicted = store.replay_memo.get(memo_key)
        if predicted is None:
            ranges = [
                (name, layout.base, layout.base + layout.size)
                for name, layout in arena.layouts.items()
            ]
            wanted = ladder_requirements([machine.hierarchy()])
            profiles = {
                shift: store.profile_for(
                    fp, trace.encoded, shift,
                    array_ranges=ranges, set_counts=sorted(counts),
                )
                for shift, counts in sorted(wanted.items())
            }
            predicted = predict(profiles, machine.hierarchy())
            store.replay_memo[memo_key] = predicted
        predicted.record_metrics()
        return _finish_measurement(
            variant, env, machine, trace.counts, trace.flops_per_statement,
            predicted, cpi_map, default_cpi, extra_flops, overhead_cycles,
        )

    memo_key = (fp, _machine_key(machine))
    replayed = store.replay_memo.get(memo_key)
    if replayed is None:
        replayed = replay_trace(trace, machine)
        store.replay_memo[memo_key] = replayed
    replayed.record_metrics()
    return _finish_measurement(
        variant, env, machine, trace.counts, trace.flops_per_statement,
        replayed, cpi_map, default_cpi, extra_flops, overhead_cycles,
    )


def parametric_measurement(
    family,
    env: dict[str, int],
    machine: MachineSpec,
    *,
    variant: str,
    cpi_map: dict[str, str] | None = None,
    default_cpi: str = "scalar",
    extra_flops: float = 0.0,
    overhead_cycles: float = 0.0,
) -> Measurement:
    """A :class:`Measurement` from a fitted parametric family — no trace.

    The fourth fidelity tier: counters come from
    :meth:`~repro.memsim.parametric.ParametricFamily.predict` and
    statement counts from the family's fitted count polynomials, so
    pricing a (size, machine) point is a handful of polynomial
    evaluations.  Accuracy follows the family's declared tolerance, not
    the replay exactness contract.
    """
    predicted = family.predict(env, machine)
    predicted.record_metrics()
    return _finish_measurement(
        variant, env, machine, family.counts_at(env), family.flops_per_statement(),
        predicted, cpi_map, default_cpi, extra_flops, overhead_cycles,
    )


@dataclass
class SweepPoint:
    """One point of an experiment sweep: a program at one size/machine.

    ``init`` must be a module-level callable (it crosses process
    boundaries under ``jobs > 1``); ``options`` are extra keyword
    arguments forwarded to :func:`simulate` (cpi_map, check_fn, seed,
    ...).
    """

    program: Program
    env: dict
    machine: MachineSpec
    init: object
    variant: str
    options: dict = field(default_factory=dict)


def _run_sweep_point(point: SweepPoint) -> Measurement:
    """Top-level (hence picklable) executor for one sweep point."""
    return simulate(
        point.program,
        point.env,
        point.machine,
        point.init,
        variant=point.variant,
        **point.options,
    )


def _point_fingerprint(point: SweepPoint) -> str | None:
    """Content fingerprint of a sweep point, or None if uncacheable.

    Points whose options hold live objects (e.g. a ``check_fn``
    callable) have no stable canonical form and simply bypass the cache.
    Options that cannot change the measurement (``replay``,
    ``trace_store`` — the replay path is bit-identical) are excluded, so
    results cached either way are shared.
    """
    from repro.engine.jobs import NONSEMANTIC_SIMULATE_OPTIONS, canonical_json, fingerprint
    from repro.ir import to_source

    init_name = f"{getattr(point.init, '__module__', '?')}.{getattr(point.init, '__qualname__', repr(point.init))}"
    payload = {
        "program": to_source(point.program),
        "env": {k: int(v) for k, v in point.env.items()},
        "machine": point.machine.name,
        "variant": point.variant,
        "init": init_name,
        "options": {
            k: v for k, v in point.options.items()
            if k not in NONSEMANTIC_SIMULATE_OPTIONS
        },
    }
    try:
        canonical_json(payload)
    except TypeError:
        return None
    return fingerprint("simulate", payload)


def _with_trace_store(point: SweepPoint, trace_store, jobs: int) -> SweepPoint:
    """Inject the sweep-level trace store into a point's options.

    A point that already names a store keeps it.  Under ``jobs > 1`` a
    live :class:`TraceStore` cannot cross process boundaries: its on-disk
    root is passed instead (workers then share traces through the
    filesystem), and a memory-only store stays parent-side only.
    """
    if trace_store is None or "trace_store" in point.options:
        return point
    token = trace_store
    if jobs > 1 and isinstance(token, TraceStore):
        if token.root is None:
            return point
        token = str(token.root)
    return replace(point, options={**point.options, "trace_store": token})


def simulate_sweep(
    points: list[SweepPoint],
    *,
    jobs: int = 1,
    cache=None,
    trace_store=None,
) -> list[Measurement]:
    """Simulate every sweep point, returning measurements in order.

    Independent points fan out across worker processes when ``jobs > 1``
    (results are identical to the serial order) and are served from the
    engine's content-addressed ``cache`` when provided — a warm re-run
    of a sweep performs zero fresh simulations.  ``trace_store`` routes
    every point's capture/replay through one shared store, so a sweep
    that varies only machine geometry executes its program once and
    replays N times.
    """
    from repro.engine.metrics import METRICS
    from repro.engine.pool import WorkerPool

    results: list[Measurement | None] = [None] * len(points)
    pending: list[tuple[int, SweepPoint, str | None]] = []
    for index, point in enumerate(points):
        fp = _point_fingerprint(point) if cache is not None else None
        cached = cache.get(fp) if fp is not None else None
        if cached is not None:
            results[index] = measurement_from_payload(cached)
            continue
        pending.append((index, point, fp))

    if pending:
        pool = WorkerPool(jobs)
        work = [_with_trace_store(point, trace_store, jobs) for _, point, _ in pending]
        measurements = pool.map(_run_sweep_point, work)
        for (index, _, fp), measurement in zip(pending, measurements):
            METRICS.inc("engine.executed.simulate")
            if cache is not None and fp is not None:
                cache.put(fp, measurement_payload(measurement))
            results[index] = measurement
    return results
