"""Run one program variant through the simulated machine.

The measurement pipeline: allocate the arena, initialize arrays with the
kernel's ``init``, compile with tracing, execute while the memory
hierarchy records the trace, then convert counters into cycles and
simulated MFlops with the machine's cost model.

Per-statement CPI overrides model the paper's "Matrix Multiply replaced
by DGEMM" experiments: the same generated code, with the matrix-multiply
statements costed at hand-tuned-kernel CPI instead of scalar-backend CPI.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.backends import compile_program
from repro.ir.nodes import Program
from repro.memsim import Arena
from repro.memsim.cost import MachineSpec


@dataclass
class Measurement:
    """One simulated run of one variant."""

    variant: str
    env: dict
    machine: str
    stats: dict = field(repr=False)
    flops: int
    cycles: float
    seconds: float
    mflops: float

    def row(self) -> dict:
        out = {"variant": self.variant, **self.env, "flops": self.flops,
               "cycles": round(self.cycles), "mflops": round(self.mflops, 2)}
        out.update(self.stats)
        return out


def simulate(
    program: Program,
    env: dict[str, int],
    machine: MachineSpec,
    init_fn,
    *,
    variant: str,
    layout_overrides: dict | None = None,
    cpi_map: dict[str, str] | None = None,
    default_cpi: str = "scalar",
    extra_flops: float = 0.0,
    overhead_cycles: float = 0.0,
    check_fn=None,
    seed: int = 1234,
) -> Measurement:
    """Simulate ``program`` at ``env`` on ``machine``.

    ``cpi_map`` maps statement labels to ``"kernel"`` or ``"scalar"``;
    unmapped statements use ``default_cpi``.  ``extra_flops`` (costed at
    kernel CPI) and ``overhead_cycles`` support modeled baselines such as
    the LAPACK WY overhead; both default to zero for honest measurements.
    """
    arena = Arena(program, env, layout_overrides=layout_overrides)
    buf = arena.allocate()
    rng = np.random.default_rng(seed)
    init_fn(arena, buf, rng)
    initial = buf.copy() if check_fn is not None else None

    hierarchy = machine.hierarchy()
    compiled = compile_program(program, arena, trace=True)
    result = compiled.run(buf, mem=hierarchy)
    if check_fn is not None and not check_fn(arena, initial, buf):
        raise AssertionError(f"variant {variant!r} produced wrong results at {env}")

    cpis = {"scalar": machine.scalar_cpi, "kernel": machine.kernel_cpi}
    flop_cycles = 0.0
    for label, count in result.counts.items():
        kind = (cpi_map or {}).get(label, default_cpi)
        flop_cycles += count * result.flops_per_statement[label] * cpis[kind]
    flop_cycles += extra_flops * machine.kernel_cpi

    cycles = hierarchy.access_cycles() + flop_cycles + overhead_cycles
    seconds = cycles / (machine.clock_mhz * 1e6)
    flops = result.flops
    mflops = (flops / 1e6) / seconds if seconds > 0 else 0.0
    return Measurement(
        variant=variant,
        env=dict(env),
        machine=machine.name,
        stats=hierarchy.stats(),
        flops=flops,
        cycles=cycles,
        seconds=seconds,
        mflops=mflops,
    )
