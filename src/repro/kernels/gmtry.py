"""The Gmtry kernel (SPEC Dnasa7): Gaussian elimination without pivoting.

Paper Figure 13(i): data shackling blocks the array in both dimensions
and produces code similar to the shackled Cholesky; the elimination
kernel speeds up about 3x on the SP-2.
"""

from __future__ import annotations

import numpy as np

from repro.core import DataBlocking, ShackleProduct, DataShackle, shackle_refs
from repro.core.shackle import _parse_ref
from repro.ir import parse_program
from repro.ir.nodes import Program

GAUSS = """
program gmtry(N)
array A[N,N]
assume N >= 2
do k = 1, N-1
  do i1 = k+1, N
    S1: A[i1,k] = A[i1,k] / A[k,k]
  do i2 = k+1, N
    do j = k+1, N
      S2: A[i2,j] = A[i2,j] - A[i2,k]*A[k,j]
"""


def program() -> Program:
    return parse_program(GAUSS)


def reference(a: np.ndarray) -> np.ndarray:
    """In-place LU without pivoting: L (unit diag, below) and U (upper)."""
    a = a.astype(float).copy()
    n = a.shape[0]
    for k in range(n - 1):
        a[k + 1 :, k] /= a[k, k]
        a[k + 1 :, k + 1 :] -= np.outer(a[k + 1 :, k], a[k, k + 1 :])
    return a


def init(arena, buf, rng) -> None:
    n = arena.env["N"]
    # Diagonally dominant: elimination without pivoting is stable.
    arena.set_array(buf, "A", rng.random((n, n)) + n * np.eye(n))


def check(arena, initial, final) -> bool:
    want = reference(arena.view(initial, "A"))
    return np.allclose(arena.view(final, "A"), want)


def flops(n: int) -> int:
    return 2 * n ** 3 // 3


def writes_shackle(prog: Program, size: int) -> DataShackle:
    """Block A in both dimensions via the written references."""
    return shackle_refs(prog, DataBlocking.grid("A", 2, size), "lhs")


def fully_blocked(prog: Program, size: int) -> ShackleProduct:
    """Writes x reads product, analogous to the Cholesky one.

    The second factor shackles the multiplier-column reads (A[i1,k] from
    S1 and A[i2,k] from S2); both factors are individually legal, so the
    product is (found by :func:`repro.core.search_shackles`, which ranks
    this product Theorem-2-complete).
    """
    writes = writes_shackle(prog, size)
    reads = DataShackle(
        prog,
        DataBlocking.grid("A", 2, size),
        {"S1": _parse_ref("A[i1,k]"), "S2": _parse_ref("A[i2,k]")},
        name="gmtry-reads",
    )
    return ShackleProduct(writes, reads)
