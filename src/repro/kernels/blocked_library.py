"""Hand-blocked "LAPACK-style" kernels written directly as IR.

The paper's baseline curves come from LAPACK: block algorithms written
by hand by library authors.  These are those algorithms, expressed in
the same IR as everything else, so the simulator measures their true
memory traces.  The block size is baked into the program text (as in a
library tuned for one machine).

``blocked_cholesky`` is the classic left-looking block algorithm
(LAPACK dpotrf structure): update the current block column with a
matrix-multiply over all previous block columns, then factor the panel
right-looking.
"""

from __future__ import annotations

from repro.ir import parse_program
from repro.ir.nodes import Program


def blocked_cholesky(nb: int) -> Program:
    """Left-looking block Cholesky with literal block size ``nb``."""
    return parse_program(
        f"""
program cholesky_blocked_{nb}(N)
array A[N,N]
assume N >= 1
do kb = 1, (N+{nb - 1})/{nb}
  do jb = 1, kb-1
    do c = {nb}*kb-{nb - 1}, min({nb}*kb, N)
      do i = c, N
        do p = {nb}*jb-{nb - 1}, {nb}*jb
          S1: A[i,c] = A[i,c] - A[i,p]*A[c,p]
  do j = {nb}*kb-{nb - 1}, min({nb}*kb, N)
    S2: A[j,j] = sqrt(A[j,j])
    do i2 = j+1, N
      S3: A[i2,j] = A[i2,j] / A[j,j]
    do l = j+1, N
      do k = j+1, min(l, {nb}*kb)
        S4: A[l,k] = A[l,k] - A[l,j]*A[k,j]
"""
    )


def blocked_matmul(nb: int) -> Program:
    """Hand-tiled matrix multiplication (the Level-3 BLAS structure)."""
    return parse_program(
        f"""
program matmul_blocked_{nb}(N)
array A[N,N]
array B[N,N]
array C[N,N]
assume N >= 1
do ib = 1, (N+{nb - 1})/{nb}
  do jb = 1, (N+{nb - 1})/{nb}
    do kb = 1, (N+{nb - 1})/{nb}
      do I = {nb}*ib-{nb - 1}, min({nb}*ib, N)
        do J = {nb}*jb-{nb - 1}, min({nb}*jb, N)
          do K = {nb}*kb-{nb - 1}, min({nb}*kb, N)
            S1: C[I,J] = C[I,J] + A[I,K]*B[K,J]
"""
    )


def wy_qr(nb: int) -> Program:
    """Blocked Householder QR with the compact WY representation.

    The LAPACK ``dgeqrf`` structure: factor a panel of ``nb`` columns
    pointwise (``dgeqr2``), form the upper-triangular T matrix
    (``dlarft``, forward columnwise), then apply the aggregated block
    reflector ``Q^T = I - V T^T V^T`` to the trailing matrix
    (``dlarfb``).  This is exactly the domain-specific algorithm the
    paper says a compiler should not be expected to derive (Section 8);
    here a library author writes it by hand in the IR.

    The reflectors and R produced are bit-identical in exact arithmetic
    to the pointwise algorithm in :mod:`repro.kernels.qr`.
    """
    pw = f"min({nb}, N-{nb}*kb+{nb})"  # panel width (short last panel)
    base = f"{nb}*kb-{nb}"  # global column offset of the panel
    return parse_program(
        f"""
program qr_wy_{nb}(N)
array A[N,N]
array t[N]
array d[N]
array tau[N]
array g[N]
array Tm[{nb},{nb}]
array w[{nb}]
array W2[{nb}]
assume N >= 1
do kb = 1, (N+{nb - 1})/{nb}
  do j = {base}+1, min({nb}*kb, N)
    S0: t[j] = 0
    do i0 = j, N
      S1: t[j] = t[j] + A[i0,j]*A[i0,j]
    S2: t[j] = sqrt(t[j])
    S3: d[j] = A[j,j] + sign(A[j,j])*t[j]
    S4: tau[j] = (t[j] + abs(A[j,j])) / t[j]
    do i1 = j+1, N
      S5: A[i1,j] = A[i1,j] / d[j]
    S6: A[j,j] = 0 - sign(d[j])*t[j]
    do jj = j+1, min({nb}*kb, N)
      S7: g[jj] = A[j,jj]
      do i2 = j+1, N
        S8: g[jj] = g[jj] + A[i2,j]*A[i2,jj]
      S9: A[j,jj] = A[j,jj] - tau[j]*g[jj]
      do i3 = j+1, N
        S10: A[i3,jj] = A[i3,jj] - tau[j]*A[i3,j]*g[jj]
  do c = 1, {pw}
    S11: Tm[c,c] = tau[{base}+c]
    do r1 = 1, c-1
      S12: w[r1] = A[{base}+c, {base}+r1]
      do i4 = {base}+c+1, N
        S13: w[r1] = w[r1] + A[i4, {base}+r1]*A[i4, {base}+c]
    do r2 = 1, c-1
      S14: Tm[r2,c] = 0
      do s = r2, c-1
        S15: Tm[r2,c] = Tm[r2,c] + Tm[r2,s]*w[s]
      S16: Tm[r2,c] = 0 - tau[{base}+c]*Tm[r2,c]
  do jj2 = {nb}*kb+1, N
    do r3 = 1, {pw}
      S17: w[r3] = A[{base}+r3, jj2]
      do i5 = {base}+r3+1, N
        S18: w[r3] = w[r3] + A[i5, {base}+r3]*A[i5, jj2]
    do c2 = 1, {pw}
      S19: W2[c2] = 0
      do r4 = 1, c2
        S20: W2[c2] = W2[c2] + Tm[r4,c2]*w[r4]
    do c3 = 1, {pw}
      S21: A[{base}+c3, jj2] = A[{base}+c3, jj2] - W2[c3]
      do i6 = {base}+c3+1, N
        S22: A[i6, jj2] = A[i6, jj2] - A[i6, {base}+c3]*W2[c3]
"""
    )


def gemm_statements_wy_qr() -> list[str]:
    """WY-QR statements a library would run as Level-3 BLAS."""
    return ["S13", "S15", "S18", "S20", "S22"]


def gemm_statements_cholesky() -> list[str]:
    """Statements of :func:`blocked_cholesky` that a library would run as
    Level-3 BLAS (used for kernel-CPI pricing in the experiments)."""
    return ["S1", "S4"]
