"""Relaxation kernels — the Section 8 multi-pass motivation.

``seidel1d`` is an in-place time-iterated 1-D relaxation: every element
is eventually affected by every other, so a single block sweep cannot be
legal for any blocking of A — the case the paper's multi-pass proposal
addresses.  ``seidel2d`` is a single Gauss-Seidel sweep, which *is*
single-sweep shackleable (its dependence distances are non-negative).
"""

from __future__ import annotations

import numpy as np

from repro.core import DataBlocking, DataShackle, shackle_refs
from repro.ir import parse_program
from repro.ir.nodes import Program

SEIDEL_1D_TIME = """
program seidel1d(N, T)
array A[N]
assume N >= 3
assume T >= 1
do t = 1, T
  do i = 2, N-1
    S1: A[i] = (A[i-1] + A[i] + A[i+1]) / 3
"""

SEIDEL_2D = """
program seidel2d(N)
array A[N,N]
assume N >= 3
do i = 2, N-1
  do j = 2, N-1
    S1: A[i,j] = (A[i-1,j] + A[i+1,j] + A[i,j-1] + A[i,j+1] + A[i,j]) / 5
"""


def program(variant: str = "1d-time") -> Program:
    if variant == "1d-time":
        return parse_program(SEIDEL_1D_TIME)
    if variant == "2d":
        return parse_program(SEIDEL_2D)
    raise ValueError(f"unknown relaxation variant {variant!r}")


def reference_1d(a: np.ndarray, steps: int) -> np.ndarray:
    a = a.astype(float).copy()
    n = a.shape[0]
    for _ in range(steps):
        for i in range(1, n - 1):
            a[i] = (a[i - 1] + a[i] + a[i + 1]) / 3
    return a


def reference_2d(a: np.ndarray) -> np.ndarray:
    a = a.astype(float).copy()
    n = a.shape[0]
    for i in range(1, n - 1):
        for j in range(1, n - 1):
            a[i, j] = (a[i - 1, j] + a[i + 1, j] + a[i, j - 1] + a[i, j + 1] + a[i, j]) / 5
    return a


def init_1d(arena, buf, rng) -> None:
    arena.set_array(buf, "A", rng.random(arena.env["N"]))


def init_2d(arena, buf, rng) -> None:
    n = arena.env["N"]
    arena.set_array(buf, "A", rng.random((n, n)))


def check_1d(arena, initial, final) -> bool:
    want = reference_1d(arena.view(initial, "A"), arena.env["T"])
    return np.allclose(arena.view(final, "A"), want)


def check_2d(arena, initial, final) -> bool:
    want = reference_2d(arena.view(initial, "A"))
    return np.allclose(arena.view(final, "A"), want)


def lhs_shackle_1d(prog: Program, size: int) -> DataShackle:
    return shackle_refs(prog, DataBlocking.grid("A", 1, size), "lhs")


def lhs_shackle_2d(prog: Program, size: int) -> DataShackle:
    return shackle_refs(prog, DataBlocking.grid("A", 2, size), "lhs")
