"""Cholesky factorization kernels (paper Figures 1(ii), 1(iii), 15).

Right-looking and left-looking point algorithms, the banded variant, the
paper's shackles for them, and numpy oracles.  The factor is stored in
the lower triangle (column form), matching the paper's codes.
"""

from __future__ import annotations

import numpy as np

from repro.core import DataBlocking, DataShackle, ShackleProduct, shackle_refs
from repro.core.shackle import _parse_ref
from repro.ir import parse_program
from repro.ir.nodes import Program

RIGHT_LOOKING = """
program cholesky_right(N)
array A[N,N]
assume N >= 1
do J = 1, N
  S1: A[J,J] = sqrt(A[J,J])
  do I = J+1, N
    S2: A[I,J] = A[I,J] / A[J,J]
  do L = J+1, N
    do K = J+1, L
      S3: A[L,K] = A[L,K] - A[L,J]*A[K,J]
"""

LEFT_LOOKING = """
program cholesky_left(N)
array A[N,N]
assume N >= 1
do J = 1, N
  do L = J, N
    do K = 1, J-1
      S3: A[L,J] = A[L,J] - A[L,K]*A[J,K]
  S1: A[J,J] = sqrt(A[J,J])
  do I = J+1, N
    S2: A[I,J] = A[I,J] / A[J,J]
"""

BANDED = """
program cholesky_banded(N, BW)
array A[N,N]
assume N >= 1
assume BW >= 1
do J = 1, N
  S1: A[J,J] = sqrt(A[J,J])
  do I = J+1, N
    if J + BW >= I
      S2: A[I,J] = A[I,J] / A[J,J]
  do L = J+1, N
    if J + BW >= L
      do K = J+1, L
        S3: A[L,K] = A[L,K] - A[L,J]*A[K,J]
"""


def program(variant: str = "right") -> Program:
    if variant == "right":
        return parse_program(RIGHT_LOOKING)
    if variant == "left":
        return parse_program(LEFT_LOOKING)
    if variant == "banded":
        return parse_program(BANDED)
    raise ValueError(f"unknown Cholesky variant {variant!r}")


def reference(a: np.ndarray) -> np.ndarray:
    """Lower Cholesky factor with the upper triangle left as the input."""
    out = a.copy()
    n = a.shape[0]
    lower = np.linalg.cholesky(a)
    for j in range(n):
        out[j:, j] = lower[j:, j]
    return out


def init(arena, buf, rng) -> None:
    """Symmetric positive definite fill (both triangles)."""
    n = arena.env["N"]
    m = rng.random((n, n))
    spd = m @ m.T + n * np.eye(n)
    arena.set_array(buf, "A", spd)


def init_banded(arena, buf, rng) -> None:
    """SPD matrix with the given bandwidth (zeros outside the band)."""
    n = arena.env["N"]
    bw = arena.env["BW"]
    m = np.zeros((n, n))
    for d in range(bw + 1):
        vals = rng.random(n - d)
        m += np.diag(vals, -d)
    spd = m @ m.T + (bw + 2) * np.eye(n)
    # Re-banding: the product widens the band back to bw exactly? The
    # product of band-bw factors has band 2*bw; truncate and re-dominate.
    banded = np.where(np.abs(np.subtract.outer(np.arange(n), np.arange(n))) <= bw, spd, 0.0)
    banded = (banded + banded.T) / 2 + (bw + 2) * np.eye(n)
    arena.store_dense(buf, "A", banded)


def check(arena, initial, final, triangle_only: bool = True) -> bool:
    a0 = arena.view(initial, "A").copy()
    a0 = (a0 + a0.T) / 2
    want = np.linalg.cholesky(a0)
    got = arena.view(final, "A")
    n = a0.shape[0]
    mask = np.tril(np.ones((n, n), dtype=bool))
    return np.allclose(got[mask], want[mask])


def flops(n: int) -> int:
    return n ** 3 // 3 + 2 * n ** 2


def writes_shackle(prog: Program, size: int) -> DataShackle:
    """The paper's legal writes shackle (S1:A[J,J], S2:A[I,J], S3:A[L,K])."""
    return shackle_refs(prog, DataBlocking.grid("A", 2, size), "lhs")


def reads_shackle(prog: Program, size: int) -> DataShackle:
    """The legal reads shackle (S1:A[J,J], S2:A[J,J], S3:A[K,J]).

    The paper's prose lists S3:A[L,J] here; exact checking (and a brute
    force oracle) shows A[K,J] is the legal reads choice — see DESIGN.md.
    """
    return DataShackle(
        prog,
        DataBlocking.grid("A", 2, size),
        {"S1": _parse_ref("A[J,J]"), "S2": _parse_ref("A[J,J]"), "S3": _parse_ref("A[K,J]")},
    )


def fully_blocked(prog: Program, size: int) -> ShackleProduct:
    """Writes x reads product: fully blocked Cholesky (paper Section 6.1)."""
    return ShackleProduct(writes_shackle(prog, size), reads_shackle(prog, size))
