"""Triangular solve with multiple right-hand sides (Level-3 TRSM).

Solves ``L * X = B`` in place (X overwrites B), L unit-free lower
triangular.  Column blocking of B shackles each right-hand-side panel —
the blocked algorithm libraries use — and a full 2-D product also blocks
the rows, giving the tile-by-tile substitution.
"""

from __future__ import annotations

import numpy as np

from repro.core import DataBlocking, DataShackle, ShackleProduct, shackle_refs
from repro.ir import parse_program
from repro.ir.nodes import Program

TRSM = """
program trsm(N, M)
array L[N,N]
array B[N,M]
assume N >= 1
assume M >= 1
do j = 1, M
  do i = 1, N
    S1: B[i,j] = B[i,j] / L[i,i]
    do k = i+1, N
      S2: B[k,j] = B[k,j] - L[k,i]*B[i,j]
"""


def program() -> Program:
    return parse_program(TRSM)


def reference(l: np.ndarray, b: np.ndarray) -> np.ndarray:
    return np.linalg.solve(np.tril(l), b)


def init(arena, buf, rng) -> None:
    n, m = arena.env["N"], arena.env["M"]
    arena.set_array(buf, "L", np.tril(rng.random((n, n))) + n * np.eye(n))
    arena.set_array(buf, "B", rng.random((n, m)))


def check(arena, initial, final) -> bool:
    want = reference(arena.view(initial, "L"), arena.view(initial, "B"))
    return np.allclose(arena.view(final, "B"), want)


def flops(n: int, m: int) -> int:
    return m * n * n


def column_shackle(prog: Program, size: int) -> DataShackle:
    """Block the right-hand sides: one panel of columns at a time."""
    return shackle_refs(prog, DataBlocking.grid("B", 2, size, dims=[1]), "lhs")


def tile_product(prog: Program, size: int) -> ShackleProduct:
    """Rows x columns of B: tile-by-tile forward substitution."""
    cols = column_shackle(prog, size)
    rows = shackle_refs(prog, DataBlocking.grid("B", 2, size, dims=[0]), "lhs")
    return ShackleProduct(rows, cols)
