"""Symmetric rank-k update: C := C + A * A^T (lower triangle).

A Level-3 BLAS family member beyond the paper's benchmarks; included to
exercise shackling on triangular iteration spaces where the blocked
code's diagonal blocks are ragged.
"""

from __future__ import annotations

import numpy as np

from repro.core import DataBlocking, ShackleProduct, shackle_refs
from repro.ir import parse_program
from repro.ir.nodes import Program

SYRK = """
program syrk(N)
array A[N,N]
array C[N,N]
assume N >= 1
do I = 1, N
  do J = 1, I
    do K = 1, N
      S1: C[I,J] = C[I,J] + A[I,K]*A[J,K]
"""


def program() -> Program:
    return parse_program(SYRK)


def reference(a: np.ndarray, c: np.ndarray) -> np.ndarray:
    out = c.copy()
    full = a @ a.T
    return out + np.tril(full)


def init(arena, buf, rng) -> None:
    n = arena.env["N"]
    arena.set_array(buf, "A", rng.random((n, n)))
    arena.set_array(buf, "C", 0.0)


def check(arena, initial, final) -> bool:
    a = arena.view(initial, "A")
    c0 = arena.view(initial, "C")
    want = reference(a, c0)
    got = arena.view(final, "C")
    n = a.shape[0]
    mask = np.tril(np.ones((n, n), dtype=bool))
    return np.allclose(got[mask], want[mask])


def flops(n: int) -> int:
    return n * n * (n + 1)


def c_shackle(prog: Program, size: int):
    return shackle_refs(prog, DataBlocking.grid("C", 2, size), "lhs")


def ca_product(prog: Program, size: int) -> ShackleProduct:
    c = c_shackle(prog, size)
    a = shackle_refs(prog, DataBlocking.grid("A", 2, size), {"S1": "A[I,K]"})
    return ShackleProduct(c, a)
