"""QR factorization with Householder reflections (paper Figure 12).

The pointwise algorithm, as the paper's compiler sees it: no WY
aggregation, scalars held in auxiliary vectors.  After the factorization,
``A``'s upper triangle holds R and the strict lower triangle holds the
Householder vectors normalized to unit first component; ``tau`` holds the
reflector coefficients.

The paper blocks only the *columns* of the matrix ("dependences prevent
complete two-dimensional blocking"); :func:`column_shackle` reproduces
that, with the update statements shackled to the column they touch —
lazy (left-looking) application of reflectors, which is what makes the
blocked code profitable.
"""

from __future__ import annotations

import numpy as np

from repro.core import DataBlocking, DataShackle
from repro.core.shackle import _parse_ref
from repro.ir import Affine, parse_program
from repro.ir.nodes import Program

HOUSEHOLDER = """
program qr(N)
array A[N,N]
array t[N]
array d[N]
array tau[N]
array g[N]
assume N >= 1
do k = 1, N
  S0: t[k] = 0
  do i0 = k, N
    S1: t[k] = t[k] + A[i0,k]*A[i0,k]
  S2: t[k] = sqrt(t[k])
  S3: d[k] = A[k,k] + sign(A[k,k])*t[k]
  S4: tau[k] = (t[k] + abs(A[k,k])) / t[k]
  do i1 = k+1, N
    S5: A[i1,k] = A[i1,k] / d[k]
  S6: A[k,k] = 0 - sign(d[k])*t[k]
  do j = k+1, N
    S7: g[j] = A[k,j]
    do i2 = k+1, N
      S8: g[j] = g[j] + A[i2,k]*A[i2,j]
    S9: A[k,j] = A[k,j] - tau[k]*g[j]
    do i3 = k+1, N
      S10: A[i3,j] = A[i3,j] - tau[k]*A[i3,k]*g[j]
"""


def program() -> Program:
    return parse_program(HOUSEHOLDER)


def reference(a: np.ndarray):
    """Run the identical pointwise algorithm in numpy; return (A, tau)."""
    a = a.astype(float).copy()
    n = a.shape[0]
    tau = np.zeros(n)
    for k in range(n):
        x = a[k:, k]
        t = float(np.sqrt(np.sum(x * x)))
        s = 1.0 if a[k, k] >= 0 else -1.0
        if a[k, k] == 0:
            s = 0.0
        d = a[k, k] + s * t
        tau[k] = (t + abs(a[k, k])) / t
        a[k + 1 :, k] = a[k + 1 :, k] / d
        sign_d = 1.0 if d > 0 else (-1.0 if d < 0 else 0.0)
        a[k, k] = -sign_d * t
        for j in range(k + 1, n):
            g = a[k, j] + float(np.dot(a[k + 1 :, k], a[k + 1 :, j]))
            a[k, j] -= tau[k] * g
            a[k + 1 :, j] -= tau[k] * a[k + 1 :, k] * g
    return a, tau


def init(arena, buf, rng) -> None:
    n = arena.env["N"]
    # Diagonally biased so sign() never sees an exact zero pivot.
    arena.set_array(buf, "A", rng.random((n, n)) + np.eye(n))


def check(arena, initial, final) -> bool:
    a0 = arena.view(initial, "A").copy()
    want_a, want_tau = reference(a0)
    got_a = arena.view(final, "A")
    got_tau = arena.view(final, "tau")
    if not np.allclose(got_a, want_a):
        return False
    if not np.allclose(got_tau, want_tau):
        return False
    # Cross-validate |R| against numpy's QR of the original matrix.
    n = a0.shape[0]
    want_r = np.abs(np.triu(np.linalg.qr(a0)[1]))
    got_r = np.abs(np.triu(got_a))
    return np.allclose(got_r, want_r, atol=1e-8)


def flops(n: int) -> int:
    return 4 * n ** 3 // 3


def column_shackle(prog: Program, size: int) -> DataShackle:
    """Column blocking with lazy updates (the paper's QR shackle).

    Panel work (S0-S6) is shackled to column ``k``; the reflector
    applications (S7-S10) to the column ``j`` they update, deferring them
    until that column's block is touched.
    """
    k, j = Affine.var("k"), Affine.var("j")
    blocking = DataBlocking.grid("A", 2, size, dims=[1])
    return DataShackle(
        prog,
        blocking,
        ref_choice={
            "S1": _parse_ref("A[i0,k]"),
            "S3": _parse_ref("A[k,k]"),
            "S5": _parse_ref("A[i1,k]"),
            "S6": _parse_ref("A[k,k]"),
            "S7": _parse_ref("A[k,j]"),
            "S8": _parse_ref("A[i2,j]"),
            "S9": _parse_ref("A[k,j]"),
            "S10": _parse_ref("A[i3,j]"),
        },
        dummies={
            "S0": [k, k],
            "S2": [k, k],
            "S4": [k, k],
        },
        name="qr-columns",
    )
