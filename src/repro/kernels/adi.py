"""The ADI kernel of McKinley et al., as used in the paper (Figures 13-14).

Two adjacent k-loops inside an i-loop; the data-centric route to the
fused-and-interchanged form is a 1x1 blocking of ``B`` shackled to the
``B[i-1,k]`` reference of both statements, traversing blocks in storage
(column-major) order.
"""

from __future__ import annotations

import numpy as np

from repro.core import DataBlocking, DataShackle
from repro.core.shackle import _parse_ref
from repro.ir import parse_program
from repro.ir.nodes import Program

ADI = """
program adi(n)
array X[n,n]
array A[n,n]
array B[n,n]
assume n >= 2
do i = 2, n
  do k1 = 1, n
    S1: X[i,k1] = X[i,k1] - X[i-1,k1]*A[i,k1]/B[i-1,k1]
  do k2 = 1, n
    S2: B[i,k2] = B[i,k2] - A[i,k2]*A[i,k2]/B[i-1,k2]
"""


def program() -> Program:
    return parse_program(ADI)


def reference(x: np.ndarray, a: np.ndarray, b: np.ndarray):
    x, b = x.copy(), b.copy()
    n = x.shape[0]
    for i in range(1, n):
        x[i, :] -= x[i - 1, :] * a[i, :] / b[i - 1, :]
        b[i, :] -= a[i, :] * a[i, :] / b[i - 1, :]
    return x, b


def init(arena, buf, rng) -> None:
    n = arena.env["n"]
    arena.set_array(buf, "X", rng.random((n, n)))
    arena.set_array(buf, "A", rng.random((n, n)))
    arena.set_array(buf, "B", rng.random((n, n)) + 1.0)  # keep divisors away from 0


def check(arena, initial, final) -> bool:
    want_x, want_b = reference(
        arena.view(initial, "X"), arena.view(initial, "A"), arena.view(initial, "B")
    )
    return np.allclose(arena.view(final, "X"), want_x) and np.allclose(
        arena.view(final, "B"), want_b
    )


def flops(n: int) -> int:
    return 6 * n * (n - 1)


def fusion_shackle(prog: Program) -> DataShackle:
    """1x1 blocks of B in storage order: fusion + interchange (Fig. 14)."""
    blocking = DataBlocking.grid("B", 2, 1, dims=[1, 0])
    return DataShackle(
        prog,
        blocking,
        {"S1": _parse_ref("B[i-1,k1]"), "S2": _parse_ref("B[i-1,k2]")},
        name="adi-fusion",
    )
