"""Triangular solves — the paper's example of block traversal order.

Forward substitution admits the natural ascending block walk; backward
substitution requires the reversed traversal ("traversing the blocks
bottom to top or right to left will be legal", Section 8).
"""

from __future__ import annotations

import numpy as np

from repro.core import DataBlocking, DataShackle
from repro.core.shackle import _parse_ref
from repro.ir import parse_program
from repro.ir.nodes import Program

FORWARD = """
program trisolve_forward(N)
array L[N,N]
array x[N]
array b[N]
assume N >= 1
do I = 1, N
  S1: x[I] = b[I] / L[I,I]
  do J = I+1, N
    S2: b[J] = b[J] - L[J,I]*x[I]
"""

BACKWARD = """
program trisolve_backward(N)
array U[N,N]
array x[N]
array b[N]
assume N >= 1
do I0 = 1, N
  S1: x[N+1-I0] = b[N+1-I0] / U[N+1-I0,N+1-I0]
  do J0 = 1, N-I0
    S2: b[N-J0+1-I0] = b[N-J0+1-I0] - U[N-J0+1-I0,N+1-I0]*x[N+1-I0]
"""


def program(variant: str = "forward") -> Program:
    if variant == "forward":
        return parse_program(FORWARD)
    if variant == "backward":
        return parse_program(BACKWARD)
    raise ValueError(f"unknown trisolve variant {variant!r}")


def reference_forward(l: np.ndarray, b: np.ndarray) -> np.ndarray:
    return np.linalg.solve(np.tril(l), b)


def reference_backward(u: np.ndarray, b: np.ndarray) -> np.ndarray:
    return np.linalg.solve(np.triu(u), b)


def init_forward(arena, buf, rng) -> None:
    n = arena.env["N"]
    arena.set_array(buf, "L", np.tril(rng.random((n, n))) + n * np.eye(n))
    arena.set_array(buf, "b", rng.random(n))
    arena.set_array(buf, "x", 0.0)


def init_backward(arena, buf, rng) -> None:
    n = arena.env["N"]
    arena.set_array(buf, "U", np.triu(rng.random((n, n))) + n * np.eye(n))
    arena.set_array(buf, "b", rng.random(n))
    arena.set_array(buf, "x", 0.0)


def check_forward(arena, initial, final) -> bool:
    want = reference_forward(arena.view(initial, "L"), arena.view(initial, "b"))
    return np.allclose(arena.view(final, "x"), want)


def check_backward(arena, initial, final) -> bool:
    want = reference_backward(arena.view(initial, "U"), arena.view(initial, "b"))
    return np.allclose(arena.view(final, "x"), want)


def x_shackle(prog: Program, size: int, descending: bool = False) -> DataShackle:
    """Block the solution vector; descending walks blocks last-to-first."""
    directions = [-1] if descending else [1]
    blocking = DataBlocking.grid("x", 1, size, directions=directions)
    update_index = prog.statement("S2").lhs.indices[0]
    return DataShackle(
        prog,
        blocking,
        {"S1": prog.statement("S1").lhs},
        dummies={"S2": [update_index]},
        name=f"trisolve-x-{'desc' if descending else 'asc'}",
    )
