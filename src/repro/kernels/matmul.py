"""Matrix multiplication (paper Figure 1(i)) and its shackles."""

from __future__ import annotations

import numpy as np

from repro.core import DataBlocking, ShackleProduct, multi_level, shackle_refs
from repro.ir import parse_program
from repro.ir.nodes import Program

_ORDERS = {
    "ijk": ("I", "J", "K"),
    "ikj": ("I", "K", "J"),
    "jik": ("J", "I", "K"),
    "jki": ("J", "K", "I"),
    "kij": ("K", "I", "J"),
    "kji": ("K", "J", "I"),
}


def program(order: str = "ijk") -> Program:
    """``C += A * B`` with the requested loop order (all six are legal)."""
    if order not in _ORDERS:
        raise ValueError(f"unknown loop order {order!r}")
    v1, v2, v3 = _ORDERS[order]
    return parse_program(
        f"""
program mm_{order}(N)
array A[N,N]
array B[N,N]
array C[N,N]
assume N >= 1
do {v1} = 1, N
  do {v2} = 1, N
    do {v3} = 1, N
      S1: C[I,J] = C[I,J] + A[I,K]*B[K,J]
"""
    )


def reference(a: np.ndarray, b: np.ndarray, c: np.ndarray) -> np.ndarray:
    return c + a @ b


def init(arena, buf, rng) -> None:
    n = arena.env["N"]
    arena.set_array(buf, "A", rng.random((n, n)))
    arena.set_array(buf, "B", rng.random((n, n)))
    arena.set_array(buf, "C", 0.0)


def check(arena, initial, final) -> bool:
    a = arena.view(initial, "A")
    b = arena.view(initial, "B")
    c0 = arena.view(initial, "C")
    return np.allclose(arena.view(final, "C"), reference(a, b, c0))


def flops(n: int) -> int:
    return 2 * n ** 3


def c_shackle(prog: Program, size: int):
    """Block C alone (paper Section 4.1 / Figure 6)."""
    return shackle_refs(prog, DataBlocking.grid("C", 2, size), "lhs")


def ca_product(prog: Program, size: int):
    """The fully-blocking C x A product (paper Figure 3 / Section 6.1)."""
    c = shackle_refs(prog, DataBlocking.grid("C", 2, size), "lhs")
    a = shackle_refs(prog, DataBlocking.grid("A", 2, size), {"S1": "A[I,K]"})
    return ShackleProduct(c, a)


def two_level(prog: Program, outer: int, inner: int):
    """Multi-level blocking (paper Figure 10): outer then inner blocks."""

    def level(size):
        return [
            shackle_refs(prog, DataBlocking.grid("C", 2, size), "lhs"),
            shackle_refs(prog, DataBlocking.grid("A", 2, size), {"S1": "A[I,K]"}),
        ]

    return multi_level(level(outer), level(inner))
