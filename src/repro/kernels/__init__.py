"""The paper's benchmark kernels as IR programs plus numpy oracles.

Each module provides the kernel's IR ``program(...)``, a numpy
``reference(...)`` implementation used as a correctness oracle, an
``init(arena, buf, rng)`` that fills the arrays with numerically safe
data, and convenience constructors for the shackles the paper applies.
"""

from repro.kernels import (
    adi,
    blocked_library,
    cholesky,
    gmtry,
    matmul,
    qr,
    relaxation,
    syrk,
    trisolve,
    trsm,
)

__all__ = [
    "adi",
    "blocked_library",
    "cholesky",
    "gmtry",
    "matmul",
    "qr",
    "relaxation",
    "syrk",
    "trisolve",
    "trsm",
]
