"""Affine dependence analysis for (imperfectly) nested loop programs.

Because shackling applies to imperfectly nested loops, dependences cannot
be summarized by distance/direction vectors alone (Section 5 of the
paper); instead each dependence is kept as a *polyhedron* over the source
and target iteration vectors, and legality questions become integer
feasibility queries on those polyhedra.
"""

from repro.dependence.analysis import Dependence, compute_dependences
from repro.dependence.direction import carried_component_sign, loops_fully_permutable
from repro.dependence.oracle import brute_force_dependences, enumerate_instances

__all__ = [
    "Dependence",
    "brute_force_dependences",
    "carried_component_sign",
    "compute_dependences",
    "enumerate_instances",
    "loops_fully_permutable",
]
