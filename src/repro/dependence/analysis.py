"""Dependence polyhedra between statement instances.

For every pair of references to the same array (at least one a write) and
every dependence level — carried by a common loop, or loop-independent —
we build the conjunction of:

* both statements' iteration domains (source variables renamed ``v__s``,
  target variables ``v__t``; parameters shared);
* subscript equality (same array element);
* the ordering constraints of that level (equal outer counters, strictly
  smaller source counter at the carrying loop; or all equal plus textual
  order for loop-independent dependences).

A :class:`Dependence` is recorded whenever the conjunction has an integer
solution.  This is exactly the formulation of Section 5.1 of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ir.analysis import (
    StatementContext,
    common_loop_depth,
    iteration_domain,
    statement_contexts,
    textually_before,
)
from repro.ir.expr import Affine, Ref
from repro.ir.nodes import Program
from repro.polyhedra.constraints import Constraint, System
from repro.polyhedra.omega import integer_feasible

SRC_SUFFIX = "__s"
TGT_SUFFIX = "__t"


def src_name(var: str) -> str:
    return var + SRC_SUFFIX


def tgt_name(var: str) -> str:
    return var + TGT_SUFFIX


@dataclass
class Dependence:
    """One dependence level between two references.

    ``level`` is the 1-based index of the carrying common loop, or ``None``
    for a loop-independent dependence.  ``system`` constrains the renamed
    source/target iteration variables plus the shared parameters.
    """

    kind: str  # "flow" | "anti" | "output"
    src: StatementContext
    tgt: StatementContext
    src_ref: Ref
    tgt_ref: Ref
    level: int | None
    system: System = field(repr=False)

    @property
    def array(self) -> str:
        return self.src_ref.array

    @property
    def src_vars(self) -> list[str]:
        return [src_name(v) for v in self.src.loop_vars]

    @property
    def tgt_vars(self) -> list[str]:
        return [tgt_name(v) for v in self.tgt.loop_vars]

    def describe(self) -> str:
        lvl = "independent" if self.level is None else f"level {self.level}"
        return (
            f"{self.kind} {self.src.label}:{self.src_ref} -> "
            f"{self.tgt.label}:{self.tgt_ref} ({lvl})"
        )


def _rename_affine(affine: Affine, loop_vars: list[str], suffix: str) -> Affine:
    return affine.rename({v: v + suffix for v in loop_vars})


def _renamed_domain(ctx: StatementContext, program: Program, suffix: str) -> System:
    dom = iteration_domain(ctx, program)
    return dom.rename({v: v + suffix for v in ctx.loop_vars})


def _subscript_equality(src_ref: Ref, tgt_ref: Ref, src_ctx, tgt_ctx) -> list[Constraint]:
    out: list[Constraint] = []
    for a, b in zip(src_ref.indices, tgt_ref.indices):
        lhs = _rename_affine(a, src_ctx.loop_vars, SRC_SUFFIX)
        rhs = _rename_affine(b, tgt_ctx.loop_vars, TGT_SUFFIX)
        diff = lhs - rhs
        out.append(Constraint.eq(diff.coeffs, diff.const))
    return out


def _order_levels(src: StatementContext, tgt: StatementContext) -> list[tuple[int | None, list[Constraint]]]:
    """All (level, constraints) alternatives for 'src executes before tgt'."""
    common = common_loop_depth(src, tgt)
    levels: list[tuple[int | None, list[Constraint]]] = []
    for carry in range(1, common + 1):
        constraints: list[Constraint] = []
        for i in range(carry - 1):
            v = src.loop_vars[i]
            constraints.append(Constraint.eq({src_name(v): 1, tgt_name(v): -1}, 0))
        v = src.loop_vars[carry - 1]
        # src counter < tgt counter at the carrying loop.
        constraints.append(Constraint.ge({tgt_name(v): 1, src_name(v): -1}, -1))
        levels.append((carry, constraints))
    if textually_before(src, tgt, common):
        constraints = []
        for i in range(common):
            v = src.loop_vars[i]
            constraints.append(Constraint.eq({src_name(v): 1, tgt_name(v): -1}, 0))
        levels.append((None, constraints))
    return levels


def _reference_pairs(src: StatementContext, tgt: StatementContext):
    """(kind, src_ref, tgt_ref) pairs with at least one write."""
    src_write = src.statement.lhs
    tgt_write = tgt.statement.lhs
    pairs: list[tuple[str, Ref, Ref]] = []
    for read in tgt.statement.reads():
        if read.array == src_write.array:
            pairs.append(("flow", src_write, read))
    for read in src.statement.reads():
        if read.array == tgt_write.array:
            pairs.append(("anti", read, tgt_write))
    if src_write.array == tgt_write.array:
        pairs.append(("output", src_write, tgt_write))
    return pairs


def compute_dependences(program: Program, arrays: set[str] | None = None) -> list[Dependence]:
    """All dependence levels in ``program`` (optionally restricted to arrays)."""
    contexts = statement_contexts(program)
    out: list[Dependence] = []
    for src in contexts:
        for tgt in contexts:
            for kind, src_ref, tgt_ref in _reference_pairs(src, tgt):
                if arrays is not None and src_ref.array not in arrays:
                    continue
                base = (
                    _renamed_domain(src, program, SRC_SUFFIX)
                    .conjoin(_renamed_domain(tgt, program, TGT_SUFFIX))
                    .conjoin(System(_subscript_equality(src_ref, tgt_ref, src, tgt)))
                )
                for level, order in _order_levels(src, tgt):
                    system = base.conjoin(System(order))
                    if integer_feasible(system):
                        out.append(
                            Dependence(kind, src, tgt, src_ref, tgt_ref, level, system)
                        )
    return out
