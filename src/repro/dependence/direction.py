"""Direction information for perfectly nested loops.

The control-centric baseline (iteration-space tiling, Section 3 of the
paper) needs classic legality conditions: a band of loops may be tiled iff
it is *fully permutable*, i.e. no dependence carried within the band has a
negative component in any band loop.  We answer those questions with
integer feasibility queries on the dependence polyhedra rather than with
direction-vector abstractions, which keeps the machinery exact.
"""

from __future__ import annotations

from repro.dependence.analysis import Dependence, src_name, tgt_name
from repro.polyhedra.constraints import Constraint
from repro.polyhedra.omega import integer_feasible


def carried_component_sign(dep: Dependence, loop_index: int) -> set[str]:
    """Possible signs of ``tgt - src`` at common loop ``loop_index`` (0-based).

    Returns a subset of {"<", "=", ">"} — e.g. {"<"} means the target
    counter is always strictly larger.
    """
    var = dep.src.loop_vars[loop_index]
    if dep.tgt.loop_vars[loop_index] != var:
        raise ValueError("loop_index beyond the common nest of this dependence")
    diff = {tgt_name(var): 1, src_name(var): -1}
    signs: set[str] = set()
    if integer_feasible(dep.system.conjoin(Constraint.ge(diff, -1))):
        signs.add("<")
    if integer_feasible(dep.system.conjoin(Constraint.eq(diff, 0))):
        signs.add("=")
    if integer_feasible(dep.system.conjoin(Constraint.ge({k: -v for k, v in diff.items()}, -1))):
        signs.add(">")
    return signs


def loops_fully_permutable(dependences: list[Dependence], band: range) -> bool:
    """True iff the loops in ``band`` (0-based indices) are fully permutable.

    Standard condition: every dependence carried at a level inside the band
    must have non-negative components at *all* band levels.
    """
    for dep in dependences:
        if dep.level is None:
            continue
        level0 = dep.level - 1
        if level0 not in band:
            continue
        for i in band:
            if i >= min(dep.src.depth, dep.tgt.depth):
                continue
            try:
                signs = carried_component_sign(dep, i)
            except ValueError:
                # Differently-named loops at this level: not a common band.
                return False
            if ">" in signs:
                return False
    return True
