"""Brute-force dependence oracle and instance enumeration.

These utilities interpret the *access pattern* of a program directly for
concrete parameter values.  They are deliberately naive: the test suite
uses them as ground truth against the polyhedral analyses.

Instance enumeration goes through the vectorized
:func:`~repro.polyhedra.scan.scan_points` (NumPy-backed lexicographic
scan of the Fourier-Motzkin bound systems) rather than the per-point
interpreter walk in :func:`~repro.polyhedra.omega.enumerate_points` —
identical points in identical order, proven by the property suite in
``tests/polyhedra/test_scan.py``, at a fraction of the cost for the
fuzz oracles that re-enumerate nests constantly.
"""

from __future__ import annotations

from repro.ir.analysis import StatementContext, iteration_domain, statement_contexts
from repro.ir.expr import Ref
from repro.ir.nodes import Program
from repro.polyhedra.constraints import Constraint, System
from repro.polyhedra.scan import scan_points


def enumerate_instances(
    program: Program, env: dict[str, int]
) -> list[tuple[StatementContext, tuple[int, ...]]]:
    """All statement instances in original program order, for fixed params."""
    contexts = statement_contexts(program)
    instances: list[tuple[tuple, StatementContext, tuple[int, ...]]] = []
    for ctx in contexts:
        dom = iteration_domain(ctx, program)
        fixed = dom.conjoin(
            System([Constraint.eq({p: 1}, -v) for p, v in env.items()])
        )
        order = list(env.keys()) + ctx.loop_vars
        for point in scan_points(fixed, order):
            ivec = point[len(env) :]
            instances.append((ctx.schedule_key(ivec), ctx, ivec))
    instances.sort(key=lambda t: t[0])
    return [(ctx, ivec) for _, ctx, ivec in instances]


def _accesses(ctx: StatementContext, ivec: tuple[int, ...], env: dict[str, int]):
    """(ref, element, is_write) triples for one instance.

    ``env`` supplies parameter values so subscripts like ``N - I + 1``
    evaluate (loop variables shadow parameters, which the IR forbids
    anyway).
    """
    point = dict(env)
    point.update(zip(ctx.loop_vars, ivec))
    out = []
    write = ctx.statement.lhs
    out.append((write, _element(write, point), True))
    for read in ctx.statement.reads():
        out.append((read, _element(read, point), False))
    return out


def _element(ref: Ref, point: dict[str, int]) -> tuple:
    return (ref.array,) + tuple(int(i.evaluate(point)) for i in ref.indices)


def brute_force_dependences(
    program: Program, env: dict[str, int]
) -> set[tuple[str, str, tuple[int, ...], str, tuple[int, ...]]]:
    """All (kind, src_label, src_ivec, tgt_label, tgt_ivec) pairs.

    Quadratic in the instance count — meant for tiny problem sizes only.
    """
    instances = enumerate_instances(program, env)
    accesses = [
        (index, ctx, ivec, _accesses(ctx, ivec, env))
        for index, (ctx, ivec) in enumerate(instances)
    ]
    out: set[tuple] = set()
    for i, src_ctx, src_ivec, src_acc in accesses:
        for j, tgt_ctx, tgt_ivec, tgt_acc in accesses:
            if j <= i:
                continue
            for _, src_elem, src_w in src_acc:
                for _, tgt_elem, tgt_w in tgt_acc:
                    if src_elem != tgt_elem:
                        continue
                    if src_w and tgt_w:
                        kind = "output"
                    elif src_w:
                        kind = "flow"
                    elif tgt_w:
                        kind = "anti"
                    else:
                        continue
                    out.add((kind, src_ctx.label, src_ivec, tgt_ctx.label, tgt_ivec))
    return out


def instantiate_dependences(dependences, env: dict[str, int]) -> set[tuple]:
    """Expand polyhedral dependences into concrete instance pairs."""
    out: set[tuple] = set()
    for dep in dependences:
        fixed = dep.system.conjoin(
            System([Constraint.eq({p: 1}, -v) for p, v in env.items()])
        )
        order = list(env.keys()) + dep.src_vars + dep.tgt_vars
        for point in scan_points(fixed, order):
            body = point[len(env) :]
            src_ivec = body[: len(dep.src_vars)]
            tgt_ivec = body[len(dep.src_vars) :]
            out.add((dep.kind, dep.src.label, src_ivec, dep.tgt.label, tgt_ivec))
    return out
