"""Machine specifications and the execution cost model.

``time = data-access cycles (from the cache simulation) + flops * CPI``.

The CPI knob models *scalar back-end quality*, which the paper's Section
7 shows to be the difference between compiler-generated inner loops
compiled by ``xlf`` and hand-tuned BLAS kernels (the "Matrix Multiply
replaced by DGEMM" lines): same block structure and data movement,
different cycles per flop.  ``scalar_cpi`` is the xlf-like value,
``kernel_cpi`` the DGEMM-like value.

``SP2_SCALED`` shrinks the caches (and therefore the matrix sizes needed
to exercise them) so pure-Python simulation stays fast; blocking behaviour
depends on the block-size:cache-size ratio, so shapes are preserved.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.memsim.cache import CacheLevel
from repro.memsim.hierarchy import MemoryHierarchy


@dataclass
class MachineSpec:
    """A simulated machine: cache levels plus latency/CPI parameters.

    ``levels`` entries are (name, size_elems, line_elems, assoc, latency).
    Latencies follow the paper's "roughly ten-fold per level".
    """

    name: str
    levels: list[tuple[str, int, int, int, int]]
    memory_latency: int
    clock_mhz: float = 66.7  # SP-2 thin node POWER2 clock
    scalar_cpi: float = 4.0
    kernel_cpi: float = 1.0

    def hierarchy(self) -> MemoryHierarchy:
        return MemoryHierarchy(
            [CacheLevel(*spec) for spec in self.levels], self.memory_latency
        )


# A two-level hierarchy scaled down ~16x from an SP-2 thin node (64 KB
# 4-way L1 with 32-byte lines; here sizes are in 8-byte elements).
SP2_SCALED = MachineSpec(
    name="sp2-scaled",
    levels=[
        ("L1", 512, 4, 4, 1),  # 4 KB equivalent
        ("L2", 4096, 8, 8, 10),  # 32 KB equivalent
    ],
    memory_latency=100,
    scalar_cpi=4.0,
    kernel_cpi=1.0,
)

# Full-size SP-2-like caches for C-backend runs and large simulations.
SP2_LIKE = MachineSpec(
    name="sp2-like",
    levels=[
        ("L1", 8192, 4, 4, 1),  # 64 KB of 8-byte elements
        ("L2", 65536, 8, 8, 10),  # 512 KB
    ],
    memory_latency=100,
    scalar_cpi=4.0,
    kernel_cpi=1.0,
)

# A deliberately tiny single-level machine for unit tests.
TINY = MachineSpec(
    name="tiny",
    levels=[("L1", 16, 2, 2, 1)],
    memory_latency=10,
    scalar_cpi=1.0,
    kernel_cpi=1.0,
)


@dataclass
class CostModel:
    """Turns simulation counters into cycles / time / MFlops."""

    machine: MachineSpec
    use_kernel_cpi: bool = False

    @property
    def cpi(self) -> float:
        return self.machine.kernel_cpi if self.use_kernel_cpi else self.machine.scalar_cpi

    def cycles(self, hierarchy: MemoryHierarchy, flops: int) -> float:
        return hierarchy.access_cycles() + flops * self.cpi

    def seconds(self, hierarchy: MemoryHierarchy, flops: int) -> float:
        return self.cycles(hierarchy, flops) / (self.machine.clock_mhz * 1e6)

    def mflops(self, hierarchy: MemoryHierarchy, flops: int) -> float:
        seconds = self.seconds(hierarchy, flops)
        return (flops / 1e6) / seconds if seconds > 0 else 0.0
