"""Vectorized replay of captured memory traces.

Replays an encoded trace (:class:`repro.memsim.trace.Trace`) through a
set-associative LRU write-back hierarchy and produces hit/miss/writeback
counters *bit-identical* to feeding the same accesses one by one through
:class:`repro.memsim.hierarchy.MemoryHierarchy` — which remains the
differential-testing oracle.

Per level, the pipeline is:

1. decompose addresses into lines and sets (NumPy, whole-trace);
2. stable-sort events by set id, which groups each set's accesses while
   preserving program order within the set;
3. *run-collapse*: consecutive accesses to the same line within a set are
   one event ``(line, count, first-is-write, any-is-write)`` — under LRU
   the first access decides hit/miss and the rest are guaranteed hits, so
   a collapsed run costs one loop iteration instead of ``count``
   (typically a 5-10x compression on real kernel traces);
4. a tight Python loop over the collapsed events maintains per-set
   MRU-first lists and the dirty set, emitting the miss stream and dirty
   victims for the next level.

Inter-level event ordering reproduces the oracle exactly: each original
access carries its position as a timestamp, misses keep event kind 0 and
victims evicted at level *i* get kind ``i + 1``, and the next level
orders its merged stream by ``(set, time, kind)`` — at equal time the
access walk precedes the victim drain, and victims drain fastest-level
first, exactly like ``MemoryHierarchy.access`` followed by
``_drain_victims``.  Write-back events never collapse (they only mark a
resident line dirty or forward), so they break runs.

When a C toolchain is present, :mod:`repro.memsim._native` compiles a
per-access replay kernel (a direct port of the oracle's walk) that is
used by default — it is another ~30x faster than the NumPy pipeline.
Both engines produce bit-identical counters; ``engine="numpy"`` or
``REPRO_MEMSIM_NATIVE=0`` force the portable path.
"""

from __future__ import annotations

import numpy as np

from repro.engine.metrics import METRICS
from repro.memsim import _native


class ReplayResult:
    """Counters from one trace replay.

    API-compatible with the reporting surface of
    :class:`~repro.memsim.hierarchy.MemoryHierarchy`: ``stats()``,
    ``access_cycles()``, ``writeback_traffic()`` and ``record_metrics()``
    produce identical values for identical inputs.
    """

    def __init__(
        self,
        level_stats: list[tuple[str, int, int, int]],
        memory_latency: int,
        total_accesses: int,
        memory_accesses: int,
        memory_writebacks: int,
    ) -> None:
        self.level_stats = list(level_stats)  # (name, latency, hits, misses)
        self.memory_latency = memory_latency
        self.total_accesses = total_accesses
        self.memory_accesses = memory_accesses
        self.memory_writebacks = memory_writebacks

    def record_metrics(self, metrics=None) -> None:
        """Flush access counters into the engine metrics registry."""
        registry = metrics if metrics is not None else METRICS
        registry.inc("memsim.accesses", self.total_accesses)
        registry.inc("memsim.memory_accesses", self.memory_accesses)
        registry.inc("memsim.memory_writebacks", self.memory_writebacks)

    def access_cycles(self) -> int:
        """Total data-access cycles, including write-back traffic."""
        cycles = 0
        remaining = self.total_accesses
        for _, latency, hits, _ in self.level_stats:
            cycles += remaining * latency
            remaining -= hits
        cycles += self.memory_accesses * self.memory_latency
        cycles += self.writeback_traffic() * self.memory_latency
        return cycles

    def writeback_traffic(self) -> int:
        return self.memory_writebacks

    def stats(self) -> dict:
        out = {"accesses": self.total_accesses, "memory_accesses": self.memory_accesses}
        for name, _, hits, misses in self.level_stats:
            out[f"{name}_hits"] = hits
            out[f"{name}_misses"] = misses
        out["writebacks"] = self.writeback_traffic()
        return out


def _sort_key(set_id: np.ndarray, num_sets: int) -> np.ndarray:
    """Narrowest integer view of the set ids (radix sort runs fastest)."""
    if num_sets <= 1 << 16:
        return set_id.astype(np.uint16)
    if num_sets <= 1 << 32:
        return set_id.astype(np.uint32)
    return set_id


def _collapse(line_s: np.ndarray, acc_s: np.ndarray | None) -> np.ndarray:
    """Start offsets of maximal same-line access runs (sorted order)."""
    same = line_s[1:] == line_s[:-1]
    if acc_s is not None:
        same &= acc_s[1:] & acc_s[:-1]
    return np.flatnonzero(np.concatenate(([True], ~same)))


def _replay_first_level(addrs: np.ndarray, writes: np.ndarray, level):
    """Replay the raw trace through the fastest level.

    The trace is all access events in time order, so timestamps are the
    array positions and no event-kind handling is needed — the hottest
    loop in the replay stays minimal.
    """
    n = len(addrs)
    line = addrs >> level.line_shift
    num_sets = level.num_sets
    if num_sets > 1:
        set_id = line % num_sets
        order = np.argsort(_sort_key(set_id, num_sets), kind="stable")
        line_s = line[order]
        w_s = writes[order]
    else:
        set_id = None
        order = None
        line_s = line
        w_s = writes

    starts = _collapse(line_s, None)
    count = np.diff(starts, append=n)
    w_any = np.bitwise_or.reduceat(w_s, starts)
    packed = (count << 2) | (w_s[starts] << 1) | w_any
    ostart = order[starts] if order is not None else starts

    sets = (set_id[ostart] if order is not None else np.zeros(len(starts), np.int64)).tolist()
    lines = line_s[starts].tolist()
    packs = packed.tolist()
    times = ostart.tolist()
    addresses = addrs[ostart].tolist()

    assoc = level.assoc
    shift = level.line_shift
    buckets: list[list[int]] = [[] for _ in range(num_sets)]
    dirty: set[int] = set()
    hits = 0
    misses = 0
    m_t: list[int] = []
    m_a: list[int] = []
    m_w: list[int] = []
    wb_t: list[int] = []
    wb_a: list[int] = []
    cur = -1
    bucket = buckets[0]
    for s, ln, p, t, a in zip(sets, lines, packs, times, addresses):
        if s != cur:
            bucket = buckets[s]
            cur = s
        if ln in bucket:
            hits += p >> 2
            if bucket[0] != ln:
                bucket.remove(ln)
                bucket.insert(0, ln)
            if p & 1:
                dirty.add(ln)
            continue
        misses += 1
        hits += (p >> 2) - 1
        m_t.append(t)
        m_a.append(a)
        m_w.append((p >> 1) & 1)
        bucket.insert(0, ln)
        if p & 1:
            dirty.add(ln)
        if len(bucket) > assoc:
            victim = bucket.pop()
            if victim in dirty:
                dirty.discard(victim)
                wb_t.append(t)
                wb_a.append(victim << shift)
    wb_k = [1] * len(wb_t)
    return hits, misses, (m_t, m_a, m_w), (wb_t, wb_a, wb_k)


def _replay_level(times, addrs, kinds, writes, level, victim_kind: int):
    """Replay a merged miss/write-back stream through one lower level."""
    n = len(addrs)
    if n == 0:
        return 0, 0, ([], [], []), ([], [], [])
    line = addrs >> level.line_shift
    num_sets = level.num_sets
    if num_sets > 1:
        set_id = line % num_sets
        order = np.lexsort((kinds, times, set_id))
    else:
        set_id = np.zeros(n, np.int64)
        order = np.lexsort((kinds, times))
    line_s = line[order]
    k_s = kinds[order]
    w_s = writes[order]

    starts = _collapse(line_s, k_s == 0)
    count = np.diff(starts, append=n)
    w_any = np.bitwise_or.reduceat(w_s, starts)
    packed = (count << 2) | (w_s[starts] << 1) | w_any
    ostart = order[starts]

    sets = set_id[ostart].tolist()
    ks = k_s[starts].tolist()
    lines = line_s[starts].tolist()
    packs = packed.tolist()
    ts = times[ostart].tolist()
    addresses = addrs[ostart].tolist()

    assoc = level.assoc
    shift = level.line_shift
    buckets: list[list[int]] = [[] for _ in range(num_sets)]
    dirty: set[int] = set()
    hits = 0
    misses = 0
    m_t: list[int] = []
    m_a: list[int] = []
    m_w: list[int] = []
    wb_t: list[int] = []
    wb_a: list[int] = []
    wb_k: list[int] = []
    cur = -1
    bucket = buckets[0]
    for s, k, ln, p, t, a in zip(sets, ks, lines, packs, ts, addresses):
        if s != cur:
            bucket = buckets[s]
            cur = s
        if k:  # a write-back from a faster level: absorb or forward
            if ln in bucket:
                dirty.add(ln)
            else:
                wb_t.append(t)
                wb_a.append(a)
                wb_k.append(k)
            continue
        if ln in bucket:
            hits += p >> 2
            if bucket[0] != ln:
                bucket.remove(ln)
                bucket.insert(0, ln)
            if p & 1:
                dirty.add(ln)
            continue
        misses += 1
        hits += (p >> 2) - 1
        m_t.append(t)
        m_a.append(a)
        m_w.append((p >> 1) & 1)
        bucket.insert(0, ln)
        if p & 1:
            dirty.add(ln)
        if len(bucket) > assoc:
            victim = bucket.pop()
            if victim in dirty:
                dirty.discard(victim)
                wb_t.append(t)
                wb_a.append(victim << shift)
                wb_k.append(victim_kind)
    return hits, misses, (m_t, m_a, m_w), (wb_t, wb_a, wb_k)


def _replay_numpy(encoded: np.ndarray, hierarchy) -> ReplayResult:
    """The portable vectorized replay pipeline (sort + collapse + loop)."""
    levels = hierarchy.levels
    total = len(encoded)
    level_stats: list[tuple[str, int, int, int]] = []
    addrs = encoded >> 1
    writes = encoded & 1
    hits, misses, miss, wb = _replay_first_level(addrs, writes, levels[0])
    level_stats.append((levels[0].name, levels[0].latency, hits, misses))
    for index, level in enumerate(levels[1:], start=1):
        m_t, m_a, m_w = miss
        wb_t, wb_a, wb_k = wb
        t = np.array(m_t + wb_t, dtype=np.int64)
        a = np.array(m_a + wb_a, dtype=np.int64)
        k = np.array([0] * len(m_t) + wb_k, dtype=np.int64)
        w = np.array(m_w + [0] * len(wb_t), dtype=np.int64)
        hits, misses, miss, wb = _replay_level(
            t, a, k, w, level, victim_kind=index + 1
        )
        level_stats.append((level.name, level.latency, hits, misses))
    return ReplayResult(
        level_stats,
        hierarchy.memory_latency,
        total,
        memory_accesses=len(miss[0]),
        memory_writebacks=len(wb[0]),
    )


def _replay_native(encoded: np.ndarray, hierarchy, lib) -> ReplayResult:
    """Drive the compiled per-access kernel (bit-identical to the oracle)."""
    import ctypes

    levels = hierarchy.levels
    nlevels = len(levels)
    geom = np.empty(3 * nlevels, dtype=np.int64)
    for i, level in enumerate(levels):
        geom[3 * i] = level.line_shift
        geom[3 * i + 1] = level.num_sets
        geom[3 * i + 2] = level.assoc
    encoded = np.ascontiguousarray(encoded, dtype=np.int64)
    hits = np.zeros(nlevels, dtype=np.int64)
    misses = np.zeros(nlevels, dtype=np.int64)
    out = np.zeros(2, dtype=np.int64)
    p64 = ctypes.POINTER(ctypes.c_int64)
    rc = lib.repro_replay(
        encoded.ctypes.data_as(p64),
        len(encoded),
        geom.ctypes.data_as(p64),
        nlevels,
        hits.ctypes.data_as(p64),
        misses.ctypes.data_as(p64),
        out.ctypes.data_as(p64),
    )
    if rc != 0:
        return _replay_numpy(encoded, hierarchy)
    level_stats = [
        (level.name, level.latency, int(hits[i]), int(misses[i]))
        for i, level in enumerate(levels)
    ]
    return ReplayResult(
        level_stats,
        hierarchy.memory_latency,
        len(encoded),
        memory_accesses=int(out[0]),
        memory_writebacks=int(out[1]),
    )


def replay_encoded(
    encoded: np.ndarray, hierarchy, engine: str | None = None
) -> ReplayResult:
    """Replay an encoded trace through (the geometry of) ``hierarchy``.

    ``hierarchy`` is a fresh :class:`MemoryHierarchy` used only for its
    level geometry and memory latency; it is not mutated.  ``engine``
    picks the implementation: ``None`` (default) uses the compiled
    kernel when available and the NumPy pipeline otherwise, ``"native"``
    requires the kernel, ``"numpy"`` forces the portable path.
    """
    if engine not in (None, "native", "numpy"):
        raise ValueError(f"unknown replay engine {engine!r}")
    METRICS.inc("memsim.trace_replay")
    with METRICS.timer("memsim.replay"):
        if len(encoded) == 0:
            level_stats = [
                (level.name, level.latency, 0, 0) for level in hierarchy.levels
            ]
            return ReplayResult(level_stats, hierarchy.memory_latency, 0, 0, 0)
        lib = _native.load() if engine != "numpy" else None
        if engine == "native" and lib is None:
            raise RuntimeError(
                "native replay kernel requested but no C toolchain is available"
            )
        if lib is not None:
            return _replay_native(encoded, hierarchy, lib)
        return _replay_numpy(encoded, hierarchy)


def replay_trace(trace, machine, engine: str | None = None) -> ReplayResult:
    """Replay a captured :class:`Trace` on a :class:`MachineSpec`."""
    encoded = getattr(trace, "encoded", trace)
    return replay_encoded(encoded, machine.hierarchy(), engine=engine)
