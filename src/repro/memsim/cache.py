"""One set-associative LRU cache level.

Addresses are in *elements* (one element = one array entry, nominally 8
bytes); line size, capacity and associativity are in elements and lines.
The implementation keeps each set as a most-recently-used-first list of
tags, which is both simple and fast enough for pure-Python simulation.
"""

from __future__ import annotations


class CacheLevel:
    """A set-associative cache with LRU replacement."""

    def __init__(self, name: str, size_elems: int, line_elems: int, assoc: int, latency: int) -> None:
        if size_elems % (line_elems * assoc) != 0:
            raise ValueError("cache size must be a multiple of line size * associativity")
        if line_elems & (line_elems - 1):
            raise ValueError("line size must be a power of two")
        self.name = name
        self.size_elems = size_elems
        self.line_elems = line_elems
        self.assoc = assoc
        self.latency = latency
        self.num_sets = size_elems // (line_elems * assoc)
        self.line_shift = line_elems.bit_length() - 1
        self.sets: list[list[int]] = [[] for _ in range(self.num_sets)]
        # Dirty-line tracking for write-back accounting; a write-allocate,
        # write-back policy (the common choice, and what the SP-2 used).
        self.dirty: set[int] = set()
        self.hits = 0
        self.misses = 0
        self.writebacks = 0
        # Element address of the dirty line evicted by the most recent
        # install, for the hierarchy to propagate to the next level.
        self.pending_victim: int | None = None

    def reset(self) -> None:
        self.sets = [[] for _ in range(self.num_sets)]
        self.dirty = set()
        self.hits = 0
        self.misses = 0
        self.writebacks = 0
        self.pending_victim = None

    def access(self, addr: int, write: bool = False) -> bool:
        """Touch an element address; returns True on hit (and updates LRU).

        Writes allocate on miss and mark the line dirty; evicting a dirty
        line counts a write-back (extra traffic to the next level).
        """
        line = addr >> self.line_shift
        bucket = self.sets[line % self.num_sets]
        if line in bucket:
            self.hits += 1
            if bucket[0] != line:
                bucket.remove(line)
                bucket.insert(0, line)
            if write:
                self.dirty.add(line)
            return True
        self.misses += 1
        bucket.insert(0, line)
        if write:
            self.dirty.add(line)
        if len(bucket) > self.assoc:
            victim = bucket.pop()
            if victim in self.dirty:
                self.dirty.discard(victim)
                self.writebacks += 1
                self.pending_victim = victim << self.line_shift
        return False

    def pop_victim(self) -> int | None:
        """The dirty line (element address) evicted by the last install."""
        victim = self.pending_victim
        self.pending_victim = None
        return victim

    def receive_writeback(self, addr: int) -> bool:
        """Absorb a write-back from a faster level.

        If this level holds the line, mark it dirty and report success;
        otherwise the hierarchy forwards the write-back further down.
        """
        line = addr >> self.line_shift
        bucket = self.sets[line % self.num_sets]
        if line in bucket:
            self.dirty.add(line)
            return True
        return False

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    def miss_ratio(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    def __repr__(self) -> str:
        return (
            f"CacheLevel({self.name}: {self.size_elems} elems, line {self.line_elems}, "
            f"{self.assoc}-way, {self.num_sets} sets)"
        )
