"""Optional compiled replay kernel.

The pure-NumPy replay pipeline in :mod:`repro.memsim.replay` is portable
but bounded by CPython loop speed on the collapsed event stream.  When a
C toolchain is available this module builds a tiny shared library — a
direct port of the :class:`~repro.memsim.hierarchy.MemoryHierarchy`
per-access walk — and drives it through :mod:`ctypes`, replaying traces
roughly two orders of magnitude faster than the reference simulator.

The build is content-addressed: the library lands in a per-user cache
directory keyed by a hash of the C source, so it compiles once per
source revision and is reused by every later process.  Everything
degrades gracefully — no compiler, a failed build, or
``REPRO_MEMSIM_NATIVE=0`` just means :func:`load` returns ``None`` and
callers stay on the NumPy path.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile
from pathlib import Path

SOURCE = r"""
#include <stdint.h>
#include <stdlib.h>
#include <string.h>

/* Replay an encoded trace (addr * 2 + is_write) through a multi-level
 * set-associative LRU write-back hierarchy.  The control flow mirrors
 * MemoryHierarchy.access + _drain_victims statement for statement so the
 * counters are bit-identical to the reference simulator:
 *
 *   - the access walks levels fastest-first and stops at the first hit;
 *   - every level touched marks the line dirty on a write;
 *   - a miss installs at the missing level, evicting the LRU way;
 *   - after the walk, dirty victims drain in level order into the next
 *     level that holds the line (dirty mark, no LRU reorder) or count a
 *     memory write-back.
 *
 * geom holds (line_shift, num_sets, assoc) per level.  Returns 0, or -1
 * if state allocation failed (caller falls back to the NumPy path).
 */
int64_t repro_replay(const int64_t *encoded, int64_t n,
                     const int64_t *geom, int64_t nlevels,
                     int64_t *hits, int64_t *misses, int64_t *out)
{
    int64_t total_ways = 0;
    for (int64_t l = 0; l < nlevels; l++)
        total_ways += geom[3 * l + 1] * geom[3 * l + 2];

    int64_t *tags = malloc((size_t)total_ways * sizeof(int64_t));
    unsigned char *dirty = calloc((size_t)total_ways, 1);
    int64_t *base = malloc((size_t)(nlevels + 1) * sizeof(int64_t));
    int64_t *victim = malloc((size_t)(nlevels + 1) * sizeof(int64_t));
    if (!tags || !dirty || !base || !victim) {
        free(tags); free(dirty); free(base); free(victim);
        return -1;
    }
    for (int64_t w = 0; w < total_ways; w++)
        tags[w] = -1;
    int64_t off = 0;
    for (int64_t l = 0; l < nlevels; l++) {
        base[l] = off;
        off += geom[3 * l + 1] * geom[3 * l + 2];
    }

    int64_t mem_accesses = 0, mem_writebacks = 0;

    for (int64_t i = 0; i < n; i++) {
        int64_t addr = encoded[i] >> 1;
        unsigned char write = (unsigned char)(encoded[i] & 1);
        int64_t hit_level = nlevels;

        for (int64_t l = 0; l < nlevels; l++) {
            int64_t shift = geom[3 * l];
            int64_t num_sets = geom[3 * l + 1];
            int64_t assoc = geom[3 * l + 2];
            int64_t line = addr >> shift;
            int64_t *ways = tags + base[l] + (line % num_sets) * assoc;
            unsigned char *dbits = dirty + base[l] + (line % num_sets) * assoc;
            victim[l] = -1;

            int64_t w = 0;
            while (w < assoc && ways[w] != line && ways[w] != -1)
                w++;
            if (w < assoc && ways[w] == line) {
                hits[l]++;
                unsigned char d = dbits[w];
                memmove(ways + 1, ways, (size_t)w * sizeof(int64_t));
                memmove(dbits + 1, dbits, (size_t)w);
                ways[0] = line;
                dbits[0] = (unsigned char)(d | write);
                hit_level = l;
                break;
            }
            misses[l]++;
            int64_t old_tag = ways[assoc - 1];
            unsigned char old_dirty = dbits[assoc - 1];
            memmove(ways + 1, ways, (size_t)(assoc - 1) * sizeof(int64_t));
            memmove(dbits + 1, dbits, (size_t)(assoc - 1));
            ways[0] = line;
            dbits[0] = write;
            if (old_tag != -1 && old_dirty)
                victim[l] = old_tag << shift;
        }
        if (hit_level == nlevels)
            mem_accesses++;

        int64_t walked = hit_level < nlevels ? hit_level + 1 : nlevels;
        for (int64_t l = 0; l < walked; l++) {
            if (victim[l] < 0)
                continue;
            int placed = 0;
            for (int64_t m = l + 1; m < nlevels; m++) {
                int64_t line = victim[l] >> geom[3 * m];
                int64_t assoc = geom[3 * m + 2];
                int64_t slot = base[m] + (line % geom[3 * m + 1]) * assoc;
                int64_t *ways = tags + slot;
                for (int64_t w = 0; w < assoc && ways[w] != -1; w++) {
                    if (ways[w] == line) {
                        dirty[slot + w] = 1;
                        placed = 1;
                        break;
                    }
                }
                if (placed)
                    break;
            }
            if (!placed)
                mem_writebacks++;
        }
    }

    out[0] = mem_accesses;
    out[1] = mem_writebacks;
    free(tags); free(dirty); free(base); free(victim);
    return 0;
}

/* LRU stack distances from a prev-occurrence array via a Fenwick tree
 * over positions: dist[t] counts the positions strictly inside
 * (prev[t], t) that are still "live" — i.e. the most recent occurrence
 * of their line so far — which is exactly the number of distinct lines
 * touched since the previous access.  Cold accesses get -1.  Returns 0,
 * or -1 if state allocation failed (caller falls back to NumPy).
 */
static inline void bit_add(int64_t *bit, int64_t n, int64_t i, int64_t v)
{
    for (i += 1; i <= n; i += i & (-i))
        bit[i] += v;
}

static inline int64_t bit_sum(const int64_t *bit, int64_t i)
{
    int64_t s = 0;
    for (; i > 0; i -= i & (-i))
        s += bit[i];
    return s;
}

int64_t repro_stack_distances(const int64_t *prev, int64_t n, int64_t *dist)
{
    int64_t *bit = calloc((size_t)(n + 1), sizeof(int64_t));
    if (!bit && n > 0)
        return -1;
    for (int64_t t = 0; t < n; t++) {
        int64_t p = prev[t];
        if (p < 0) {
            dist[t] = -1;
        } else {
            /* live marks in (p, t) exclusive: prefix(t) - prefix(p + 1) */
            dist[t] = bit_sum(bit, t) - bit_sum(bit, p + 1);
            bit_add(bit, n, p, -1);  /* p is no longer the latest occurrence */
        }
        bit_add(bit, n, t, 1);
    }
    free(bit);
    return 0;
}
"""

_lib = None
_loaded = False


def cache_dir() -> Path:
    """Per-user build cache directory for compiled kernels."""
    override = os.environ.get("REPRO_NATIVE_CACHE")
    if override:
        return Path(override)
    return Path(tempfile.gettempdir()) / f"repro-native-{os.getuid()}"


def _compile(so_path: Path) -> bool:
    compiler = shutil.which("cc") or shutil.which("gcc") or shutil.which("clang")
    if compiler is None:
        return False
    so_path.parent.mkdir(parents=True, exist_ok=True)
    try:
        so_path.parent.chmod(0o700)
    except OSError:
        pass
    src = so_path.with_suffix(f".{os.getpid()}.c")
    tmp = so_path.with_suffix(f".{os.getpid()}.so")
    try:
        src.write_text(SOURCE)
        proc = subprocess.run(
            [compiler, "-O3", "-shared", "-fPIC", "-o", str(tmp), str(src)],
            capture_output=True,
            timeout=120,
        )
        if proc.returncode != 0:
            return False
        os.replace(tmp, so_path)  # atomic under concurrent builders
        return True
    except (OSError, subprocess.SubprocessError):
        return False
    finally:
        for leftover in (src, tmp):
            try:
                leftover.unlink()
            except OSError:
                pass


def load():
    """The compiled kernel, building it on first use; None if unavailable."""
    global _lib, _loaded
    if _loaded:
        return _lib
    _loaded = True
    if os.environ.get("REPRO_MEMSIM_NATIVE", "1") == "0":
        return None
    digest = hashlib.sha256(SOURCE.encode()).hexdigest()[:16]
    so_path = cache_dir() / f"replay-{digest}.so"
    if not so_path.is_file() and not _compile(so_path):
        return None
    try:
        lib = ctypes.CDLL(str(so_path))
    except OSError:
        return None
    p64 = ctypes.POINTER(ctypes.c_int64)
    lib.repro_replay.argtypes = [p64, ctypes.c_int64, p64, ctypes.c_int64, p64, p64, p64]
    lib.repro_replay.restype = ctypes.c_int64
    lib.repro_stack_distances.argtypes = [p64, ctypes.c_int64, p64]
    lib.repro_stack_distances.restype = ctypes.c_int64
    _lib = lib
    return lib


def reset() -> None:
    """Forget the loaded kernel (tests use this to exercise fallback)."""
    global _lib, _loaded
    _lib = None
    _loaded = False
