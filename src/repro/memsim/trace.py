"""Memory-trace capture and the content-addressed trace store.

The measurement pipeline is split in two (the tentpole of the trace-replay
work): the compiled program *captures* its address trace once — appending
``addr*2 + is_write`` words into preallocated NumPy int64 chunks, with no
per-access Python callback — and the cache simulation then *replays* that
trace (:mod:`repro.memsim.replay`) as many times as there are machine
specs to evaluate.

Traces are pure functions of ``(program, env, arena layout)``: the
mini-language has affine-only control flow, so the address sequence never
depends on the floating-point data.  That makes a trace reusable across
machines, CPI maps, seeds and initializers, and gives it a stable content
fingerprint (:func:`trace_fingerprint`) under which :class:`TraceStore`
keeps it — an in-memory LRU over an optional on-disk store of compressed
``.npz`` artifacts, mirroring the engine's result cache layout:

    <root>/<fp[:2]>/<fp>.npz

The analytic tier (:mod:`repro.memsim.reuse`) stores its reuse-distance
histograms here too, content-addressed like traces: a profile's
fingerprint (:func:`histogram_fingerprint`) derives from the trace
fingerprint plus the line size, so any cache geometry question about a
known trace resolves to a stored histogram without touching the trace
itself.

The parametric tier (:mod:`repro.memsim.parametric`) stores its fitted
histogram *families* here as well — one ``.npz`` per (program family,
line sizes, anchor set), fingerprinted by
:func:`repro.memsim.parametric.family_fingerprint` — so a warm family
prices unseen problem sizes with zero captures.

Counters: ``memsim.trace_capture`` (fresh captures),
``memsim.trace_cache_hit`` (traces served from the store),
``memsim.histogram_cache_hit`` / ``memsim.histogram_cache_miss`` /
``memsim.histogram_quarantined`` for the histogram tier, and
``memsim.family_cache_hit`` / ``memsim.family_quarantined`` for stored
parametric families.  :meth:`TraceStore.histogram_stats` summarizes the
histogram tier (entries, bytes, hit ratio) and publishes it as
``memsim.histogram_store.*`` gauges for the service ``stats`` RPC.
"""

from __future__ import annotations

import os
import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path

import hashlib

import numpy as np

from repro.engine import chaos as _chaos
from repro.engine import store as _store
from repro.engine.cache import quarantine_file
from repro.engine.metrics import METRICS

CHUNK = 1 << 16
"""Default capture chunk size, in trace words."""

TRACE_SCHEMA_VERSION = 1
"""Stamped into every stored ``.npz``; mismatched entries quarantine."""

HISTOGRAM_SCHEMA_VERSION = 2
"""Schema stamp for stored reuse-distance histograms.  Version 2 adds
the conflict-aware set-distance ladder (``set_counts`` + per-set-count
histograms); version-1 entries read as misses and recompute."""

PARAMETRIC_SCHEMA_VERSION = 1
"""Schema stamp for stored parametric histogram families."""


def histogram_fingerprint(trace_fp: str, line_shift: int) -> str:
    """Content address of one trace's reuse histogram at one line size.

    Derived from the trace fingerprint — the histogram is a pure
    function of the trace — plus the line size and histogram schema, so
    a schema bump invalidates stored profiles without touching traces.
    """
    from repro.engine.jobs import fingerprint

    return fingerprint(
        "memsim.histogram",
        {
            "trace": trace_fp,
            "line_shift": int(line_shift),
            "schema": HISTOGRAM_SCHEMA_VERSION,
        },
    )


class TraceBuffer:
    """Preallocated int64 chunks that capture-mode generated code fills.

    The generated code keeps ``chunk`` and a local fill index; before each
    statement it checks the remaining headroom and calls :meth:`flush` to
    seal the current chunk and start a fresh one.  No per-access Python
    call is ever made.
    """

    def __init__(self, chunk_size: int = CHUNK) -> None:
        if chunk_size < 1:
            raise ValueError("chunk size must be at least 1")
        self.chunk_size = chunk_size
        self.chunk = np.empty(chunk_size, dtype=np.int64)
        self._parts: list[np.ndarray] = []

    def flush(self, fill: int) -> tuple[np.ndarray, int]:
        """Seal the current chunk at ``fill``; returns (new chunk, 0)."""
        self._parts.append(self.chunk[:fill])
        self.chunk = np.empty(self.chunk_size, dtype=np.int64)
        return self.chunk, 0

    def finish(self, fill: int) -> np.ndarray:
        """The full encoded trace, with the last chunk sealed at ``fill``."""
        return np.concatenate([*self._parts, self.chunk[:fill]])


@dataclass
class Trace:
    """A captured memory trace plus the run's statement accounting.

    ``encoded`` packs each access as ``addr * 2 + is_write`` (int64);
    ``counts`` and ``flops_per_statement`` carry everything the cost
    model needs, so a stored trace replaces program execution entirely.
    """

    encoded: np.ndarray = field(repr=False)
    counts: dict[str, int]
    flops_per_statement: dict[str, int]

    def __len__(self) -> int:
        return len(self.encoded)

    @property
    def addresses(self) -> np.ndarray:
        return self.encoded >> 1

    @property
    def writes(self) -> np.ndarray:
        return (self.encoded & 1).astype(bool)


def trace_fingerprint(program, env, arena) -> str:
    """Stable content fingerprint of the trace ``program`` produces.

    Keyed by the program source, the integer environment, and the arena's
    address map (each layout's canonical address expression plus the total
    arena size).  Machine, seed, initializer and CPI parameters do not
    participate: the trace is data-independent, so one capture serves
    them all.
    """
    from repro.engine.jobs import fingerprint, program_source

    signature = {
        name: layout.addr_source([f"_i{k + 1}" for k in range(len(layout.extents))])
        for name, layout in arena.layouts.items()
    }
    payload = {
        "program": program_source(program),
        "env": {k: int(v) for k, v in env.items()},
        "arena": signature,
        "total_size": arena.total_size,
    }
    return fingerprint("memsim.trace", payload)


def _trace_checksum(encoded: np.ndarray, labels, counts, flops) -> str:
    """Integrity checksum over everything a stored trace round-trips."""
    digest = hashlib.sha256()
    digest.update(np.ascontiguousarray(encoded, dtype=np.int64).tobytes())
    digest.update("\x00".join(str(l) for l in labels).encode())
    digest.update(np.asarray(counts, dtype=np.int64).tobytes())
    digest.update(np.asarray(flops, dtype=np.int64).tobytes())
    return digest.hexdigest()[:16]


class TraceStore:
    """In-memory LRU of traces over an optional on-disk ``.npz`` store.

    Disk writes are atomic (write-temp-then-rename), matching
    :class:`repro.engine.cache.ResultCache`, and every entry carries a
    schema-version + checksum stamp: a file that fails to decode or
    verify is moved to ``<root>/quarantine/`` (counted under
    ``memsim.trace_quarantined``) instead of being re-read and re-failed
    on every later ``get``.  ``replay_memo`` additionally memoizes
    finished replay counters by ``(trace fingerprint, machine
    description)``, so re-simulating the same trace on the same machine
    costs a dictionary lookup.
    """

    def __init__(
        self,
        root: str | os.PathLike | None = None,
        capacity: int = 16,
        metrics=METRICS,
    ) -> None:
        if capacity < 1:
            raise ValueError("trace store capacity must be at least 1")
        self.root = Path(root) if root is not None else None
        self.capacity = capacity
        self.metrics = metrics
        self._lock = threading.RLock()
        self._memory: OrderedDict[str, Trace] = OrderedDict()
        self._profiles: OrderedDict[str, object] = OrderedDict()
        self._families: OrderedDict[str, object] = OrderedDict()
        self._profile_hits = 0
        self._profile_misses = 0
        self.replay_memo: dict[tuple, object] = {}

    def _path(self, fingerprint: str) -> Path:
        assert self.root is not None
        return self.root / fingerprint[:2] / f"{fingerprint}.npz"

    def _remember(self, fingerprint: str, trace: Trace) -> None:
        with self._lock:
            self._memory[fingerprint] = trace
            self._memory.move_to_end(fingerprint)
            while len(self._memory) > self.capacity:
                self._memory.popitem(last=False)

    def get(self, fingerprint: str) -> Trace | None:
        """The stored trace for ``fingerprint``, or None on miss.

        Disk hits are promoted into the memory tier.
        """
        with self._lock:
            if fingerprint in self._memory:
                self._memory.move_to_end(fingerprint)
                self.metrics.inc("memsim.trace_cache_hit")
                return self._memory[fingerprint]
        if self.root is not None:
            path = self._path(fingerprint)
            if not path.exists():
                return None  # genuinely absent: a plain cold miss
            try:
                with np.load(path, allow_pickle=False) as data:
                    schema = int(data["schema"])
                    check = str(data["check"])
                    labels = data["labels"].tolist()
                    counts = data["counts"]
                    flops = data["flops"]
                    encoded = data["encoded"]
                    if schema != TRACE_SCHEMA_VERSION:
                        raise ValueError(f"trace schema {schema}")
                    if check != _trace_checksum(encoded, labels, counts, flops):
                        raise ValueError("trace checksum mismatch")
                    trace = Trace(
                        encoded=encoded,
                        counts=dict(zip(labels, counts.tolist())),
                        flops_per_statement=dict(zip(labels, flops.tolist())),
                    )
            except (OSError, ValueError, KeyError):
                # Torn, corrupted, or pre-stamp legacy entry: move it out
                # of the store so the next get is a clean miss.
                quarantine_file(
                    path, self.root, metrics=self.metrics,
                    counter="memsim.trace_quarantined",
                )
            else:
                self.metrics.inc("memsim.trace_cache_hit")
                self._remember(fingerprint, trace)
                return trace
        return None

    def put(self, fingerprint: str, trace: Trace) -> None:
        """Store a trace; with a disk tier, write a compressed ``.npz``."""
        self._remember(fingerprint, trace)
        if self.root is not None:
            path = self._path(fingerprint)
            path.parent.mkdir(parents=True, exist_ok=True)
            # Keep emission order: the cost model sums per-label float
            # cycles in this order, and bit-identical results require the
            # same summation order after a disk round-trip.
            labels = list(trace.counts)
            counts = np.array([trace.counts[l] for l in labels], dtype=np.int64)
            flops = np.array(
                [trace.flops_per_statement[l] for l in labels], dtype=np.int64
            )
            _store.elected_publish(
                path,
                writer=lambda fh: np.savez_compressed(
                    fh,
                    encoded=trace.encoded,
                    labels=np.array(labels),
                    counts=counts,
                    flops=flops,
                    schema=np.int64(TRACE_SCHEMA_VERSION),
                    check=np.str_(
                        _trace_checksum(trace.encoded, labels, counts, flops)
                    ),
                ),
                metrics=self.metrics,
                counter_prefix="memsim.store",
            )
            _chaos.maybe_corrupt_file(path, fingerprint)

    def get_profile(self, hist_fp: str):
        """The stored reuse histogram for ``hist_fp``, or None on miss.

        Same discipline as :meth:`get`: memory LRU over an optional disk
        tier, with schema/checksum validation and quarantine (counted
        under ``memsim.histogram_quarantined``) on any decode failure.
        """
        from repro.memsim.reuse import profile_checksum, profile_from_arrays

        with self._lock:
            if hist_fp in self._profiles:
                self._profiles.move_to_end(hist_fp)
                self._profile_hits += 1
                self.metrics.inc("memsim.histogram_cache_hit")
                return self._profiles[hist_fp]
        if self.root is not None:
            path = self._path(hist_fp)
            if not path.exists():
                self._note_profile_miss()
                return None
            try:
                with np.load(path, allow_pickle=False) as data:
                    schema = int(data["schema"])
                    if schema != HISTOGRAM_SCHEMA_VERSION:
                        raise ValueError(f"histogram schema {schema}")
                    profile = profile_from_arrays(data)
                    if str(data["check"]) != profile_checksum(profile):
                        raise ValueError("histogram checksum mismatch")
            except (OSError, ValueError, KeyError):
                quarantine_file(
                    path, self.root, metrics=self.metrics,
                    counter="memsim.histogram_quarantined",
                )
            else:
                with self._lock:
                    self._profile_hits += 1
                self.metrics.inc("memsim.histogram_cache_hit")
                self._remember_profile(hist_fp, profile)
                return profile
        self._note_profile_miss()
        return None

    def _note_profile_miss(self) -> None:
        with self._lock:
            self._profile_misses += 1
        self.metrics.inc("memsim.histogram_cache_miss")

    def _remember_profile(self, hist_fp: str, profile) -> None:
        with self._lock:
            self._profiles[hist_fp] = profile
            self._profiles.move_to_end(hist_fp)
            while len(self._profiles) > 4 * self.capacity:
                self._profiles.popitem(last=False)

    def put_profile(self, hist_fp: str, profile) -> None:
        """Store a reuse histogram; with a disk tier, a compressed ``.npz``."""
        from repro.memsim.reuse import profile_checksum, profile_to_arrays

        self._remember_profile(hist_fp, profile)
        if self.root is not None:
            path = self._path(hist_fp)
            # overwrite: a stored profile can legitimately be *extended*
            # (new set counts) under the same fingerprint, so the exists
            # fast path would lose the extension.
            _store.elected_publish(
                path,
                writer=lambda fh: np.savez_compressed(
                    fh,
                    **profile_to_arrays(profile),
                    schema=np.int64(HISTOGRAM_SCHEMA_VERSION),
                    check=np.str_(profile_checksum(profile)),
                ),
                overwrite=True,
                metrics=self.metrics,
                counter_prefix="memsim.store",
            )
            _chaos.maybe_corrupt_file(path, hist_fp)

    def profile_for(
        self,
        trace_fp: str,
        encoded,
        line_shift: int,
        array_ranges=None,
        set_counts=(),
    ):
        """The reuse histogram of a known trace at one line size.

        Served from the store when possible; computed (one vectorized
        histogram pass) and stored on miss.  ``encoded`` may be a
        callable returning the encoded trace, so cache hits never load
        the trace at all.  ``set_counts`` requests conflict-aware
        ladder entries; a stored profile missing some of them is
        extended in place (one distance pass per missing set count) and
        re-persisted, so the next hit is fully stocked.
        """
        from repro.memsim.reuse import compute_profile

        hist_fp = histogram_fingerprint(trace_fp, line_shift)
        profile = self.get_profile(hist_fp)
        if profile is None:
            data = encoded() if callable(encoded) else encoded
            profile = compute_profile(
                data, line_shift, array_ranges=array_ranges, set_counts=set_counts
            )
            self.put_profile(hist_fp, profile)
        elif profile.ensure_set_counts(encoded, set_counts):
            self.put_profile(hist_fp, profile)
        return profile

    def histogram_stats(self) -> dict:
        """Gauge block for the histogram tier of this store.

        ``entries``/``bytes`` describe the in-memory LRU (the disk tier
        is unbounded and content-addressed); ``hits``/``misses`` count
        this store's lookups and ``hit_ratio`` is their ratio.  The
        numbers are also published as ``memsim.histogram_store.*``
        gauges so ``METRICS.report()`` and the service ``stats`` RPC can
        surface them.
        """
        with self._lock:
            profiles = list(self._profiles.values())
            hits, misses = self._profile_hits, self._profile_misses
        entries = len(profiles)
        total_bytes = 0
        for profile in profiles:
            total_bytes += sum(
                np.asarray(value).nbytes
                for value in (
                    profile.dist_vals, profile.dist_counts, profile.wb_pos,
                    profile.wb_delta, profile.interval_log2,
                    profile.array_total, profile.array_cold, profile.array_dist,
                )
            )
            total_bytes += sum(
                vals.nbytes + counts.nbytes
                for vals, counts in profile.set_dist.values()
            )
        lookups = hits + misses
        stats = {
            "entries": entries,
            "bytes": total_bytes,
            "hits": hits,
            "misses": misses,
            "hit_ratio": (hits / lookups) if lookups else 0.0,
        }
        for key in ("entries", "bytes", "hits", "misses"):
            self.metrics.set_gauge(f"memsim.histogram_store.{key}", stats[key])
        return stats

    def get_family(self, family_fp: str):
        """The stored parametric family for ``family_fp``, or None.

        Same discipline as histograms: memory LRU over the optional disk
        tier, schema/checksum validation, quarantine on decode failure
        (counted under ``memsim.family_quarantined``).
        """
        from repro.memsim.parametric import family_checksum, family_from_arrays

        with self._lock:
            if family_fp in self._families:
                self._families.move_to_end(family_fp)
                self.metrics.inc("memsim.family_cache_hit")
                return self._families[family_fp]
        if self.root is not None:
            path = self._path(family_fp)
            if not path.exists():
                return None
            try:
                with np.load(path, allow_pickle=False) as data:
                    schema = int(data["schema"])
                    if schema != PARAMETRIC_SCHEMA_VERSION:
                        raise ValueError(f"parametric schema {schema}")
                    family = family_from_arrays(data)
                    if str(data["check"]) != family_checksum(family):
                        raise ValueError("parametric checksum mismatch")
            except (OSError, ValueError, KeyError):
                quarantine_file(
                    path, self.root, metrics=self.metrics,
                    counter="memsim.family_quarantined",
                )
            else:
                self.metrics.inc("memsim.family_cache_hit")
                self._remember_family(family_fp, family)
                return family
        return None

    def _remember_family(self, family_fp: str, family) -> None:
        with self._lock:
            self._families[family_fp] = family
            self._families.move_to_end(family_fp)
            while len(self._families) > 4 * self.capacity:
                self._families.popitem(last=False)

    def put_family(self, family_fp: str, family) -> None:
        """Store a parametric family; with a disk tier, a compressed ``.npz``."""
        from repro.memsim.parametric import family_checksum, family_to_arrays

        self._remember_family(family_fp, family)
        if self.root is not None:
            path = self._path(family_fp)
            _store.elected_publish(
                path,
                writer=lambda fh: np.savez_compressed(
                    fh,
                    **family_to_arrays(family),
                    schema=np.int64(PARAMETRIC_SCHEMA_VERSION),
                    check=np.str_(family_checksum(family)),
                ),
                metrics=self.metrics,
                counter_prefix="memsim.store",
            )
            _chaos.maybe_corrupt_file(path, family_fp)

    def __len__(self) -> int:
        with self._lock:
            return len(self._memory)


DEFAULT_TRACE_STORE = TraceStore()
"""Process-global memory-only store: repeated measurements of the same
(program, env, layout) within one process share a single capture even
when the caller never wires a store explicitly."""


def resolve_trace_store(store) -> TraceStore:
    """Normalize a ``trace_store`` argument.

    ``None`` means the process-global default; a string or path opens (or
    creates) an on-disk store rooted there; a :class:`TraceStore` passes
    through.
    """
    if store is None:
        return DEFAULT_TRACE_STORE
    if isinstance(store, TraceStore):
        return store
    return TraceStore(root=store)
