"""Trace-free analytic cache model: reuse-distance histograms.

One vectorized pass over a captured trace produces a
:class:`LineProfile` — the LRU *stack-distance* histogram of the line
stream at one line size, plus everything needed to price write-back
traffic and attribute misses to arrays.  From that single histogram,
:func:`predict` answers *any* LRU geometry question without replaying
the trace: a 24-point capacity ablation costs one histogram pass and 24
histogram lookups instead of 24 replays, and the cost becomes
independent of how many geometries are swept.

The classical stack property does the heavy lifting: under
fully-associative LRU, an access whose stack distance (number of
*distinct* lines touched since the previous access to the same line,
exclusive) is ``d`` hits a cache of capacity ``C`` lines iff ``d < C``.
So ``misses(C) = cold + sum(hist[d] for d >= C)`` — exact, for every
``C`` at once.

Distances are computed without a per-access Python loop:

1. *run-collapse* — consecutive same-line accesses are distance-0 hits
   and fold into ``hist[0]`` (typically 5-10x compression);
2. ``prev[t]`` (previous occurrence of line ``t``) via one stable sort;
3. the identity ``d_t = (t - prev[t] - 1) - #{s < t : prev[s] >
   prev[t]}`` turns the distance pass into 2-D dominance counting,
   solved either by a compiled Fenwick-tree kernel
   (:mod:`repro.memsim._native`, the default when a C toolchain exists)
   or by a bottom-up mergesort counting pass (``O(n log^2 n)`` in NumPy
   primitives, no Python loop).

Write-backs are priced exactly for fully-associative LRU, again for all
capacities at once: a dirty generation writes back at the eviction that
ends it, so each potential eviction event (a reuse gap of distance
``V``, or the ``E`` distinct lines after a line's last access)
contributes one write-back exactly for capacities ``M < C <= V``, where
``M`` is the largest gap since the generation's last write.  These
``(M, V]`` intervals accumulate into a difference array over ``C``.

Set-associative geometries use the *conflict-aware set-distance
ladder*: an LRU cache of ``S`` sets decomposes exactly into ``S``
independent fully-associative caches of ``A`` lines, one per residue
class of the set-index function, so the *set-local* stack distance
(distinct same-set lines since the previous access to the line) decides
each access — ``misses(S, A) = cold + sum(set_hist[S][d] for d >= A)``,
exact for any ``S``, from one extra distance pass per requested set
count (see :func:`set_distance_histogram`).  When a profile lacks the
ladder entry for a geometry's set count the Smith/Hill binomial
correction — ``P(hit | d) = P[Binomial(d, 1/S) <= A-1]`` — remains as
the fallback, and deeper levels of a multi-level hierarchy use the
standalone stack-inclusion approximation (level ``i`` misses ≈ misses
of a standalone cache of level ``i``'s geometry over the full trace).
The fallback and multi-level paths are approximations with a declared
tolerance (:data:`ASSOC_TOLERANCE`); fully-associative L1 hit/miss
counts are bit-exact in any hierarchy, single-level set-associative
miss counts are bit-exact whenever the ladder entry is present, and
*all* counters (including write-backs) are bit-exact for single-level
fully-associative geometries — the differential suite
(``tests/memsim/test_reuse_differential.py``) enforces exactly that
contract against the replay engine.

Counters: ``memsim.histogram_pass`` (fresh profile computations),
``memsim.ladder_pass`` (fresh set-distance ladder levels),
``memsim.conflict_exact`` / ``memsim.conflict_fallback``
(set-associative predictions answered from the ladder vs the binomial
fallback), ``memsim.analytic_predict`` / ``memsim.analytic_exact``
(predictions served, and how many carried the bit-exactness
guarantee), and ``memsim.analytic_hits`` / ``memsim.analytic_misses``
(predicted L1 traffic, mirroring ``memsim.accesses`` for the replay
tier).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.engine.metrics import METRICS
from repro.memsim import _native
from repro.memsim.replay import ReplayResult

ASSOC_TOLERANCE = 0.10
"""Declared tolerance of the non-exact predictions (set-associative
binomial correction, multi-level standalone approximation): predicted
per-level miss counts stay within ``max(floor, frac * accesses)`` of
replay for geometries with associativity >= 4.  Enforced by the
differential suite and the fuzz oracle."""

ASSOC_TOLERANCE_LOW = 0.25
"""Tolerance for direct-mapped and 2-way geometries, where the
Smith/Hill uniform-mapping assumption is weakest against the strided
affine access patterns these kernels generate."""

ASSOC_TOLERANCE_FLOOR = 16
"""Absolute slack under the fractional tolerances for tiny traces."""


def prediction_tolerance(accesses: int, min_assoc: int = 4) -> int:
    """Allowed |predicted - exact| miss-count gap for non-exact modes.

    ``min_assoc`` is the smallest associativity among the geometry's
    set-associative (``num_sets > 1``) levels; fully-associative levels
    are exact and don't participate.
    """
    frac = ASSOC_TOLERANCE if min_assoc >= 4 else ASSOC_TOLERANCE_LOW
    return max(ASSOC_TOLERANCE_FLOOR, int(frac * accesses))


# -- stack distances ---------------------------------------------------------------


def _prev_and_order(lines: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """``prev`` plus the stable line-grouping sort it was derived from.

    The same stable argsort serves double duty in the histogram pass
    (write-back accounting groups accesses by line in time order), so it
    is computed once and returned alongside.
    """
    n = len(lines)
    prev = np.full(n, -1, dtype=np.int64)
    order = np.argsort(lines, kind="stable")
    if n == 0:
        return prev, order
    sorted_lines = lines[order]
    same = sorted_lines[1:] == sorted_lines[:-1]
    prev[order[1:][same]] = order[:-1][same]
    return prev, order


def _prev_indices(lines: np.ndarray) -> np.ndarray:
    """``prev[t]`` = index of the previous access to ``lines[t]`` (-1 if none)."""
    return _prev_and_order(lines)[0]


def _distances_numpy(prev: np.ndarray) -> np.ndarray:
    """Stack distances from ``prev`` by mergesort dominance counting.

    ``d_t = (t - prev[t] - 1) - #{s < t : prev[s] > prev[t]}``: the
    subtrahend is counted level by level as in a bottom-up mergesort —
    every ``(s, t)`` pair is split by exactly one merge level, and one
    composite-key sort plus two ``searchsorted`` calls per level count
    all of that level's cross-block pairs at once.
    """
    n = len(prev)
    dist = np.where(prev < 0, np.int64(-1), np.arange(n, dtype=np.int64) - prev - 1)
    if n < 2:
        return dist
    crossing = np.zeros(n, dtype=np.int64)
    stride = np.int64(n + 2)  # > any prev value; keys never collide across pairs
    pv = prev + 1  # shift to [0, n] so cold entries sort first
    idx = np.arange(n, dtype=np.int64)
    level = 0
    while (1 << level) < n:
        half = np.int64(1 << level)
        in_left = (idx >> level) & 1 == 0
        lefts = idx[in_left]
        rights = idx[~in_left]
        if len(lefts) and len(rights):
            keys = np.sort((lefts >> (level + 1)) * stride + pv[lefts])
            queries = (rights >> (level + 1)) * stride + pv[rights]
            below = np.searchsorted(keys, queries, side="right")
            ends = np.searchsorted(keys, ((rights >> (level + 1)) + 1) * stride)
            crossing[rights] += ends - below
        level += 1
    covered = prev >= 0
    dist[covered] -= crossing[covered]
    return dist


def _distances_native(prev: np.ndarray, lib) -> np.ndarray | None:
    import ctypes

    n = len(prev)
    prev = np.ascontiguousarray(prev, dtype=np.int64)
    dist = np.empty(n, dtype=np.int64)
    p64 = ctypes.POINTER(ctypes.c_int64)
    rc = lib.repro_stack_distances(
        prev.ctypes.data_as(p64), n, dist.ctypes.data_as(p64)
    )
    return None if rc != 0 else dist


def distances_from_prev(prev: np.ndarray, engine: str | None = None) -> np.ndarray:
    """Per-access stack distance (-1 for cold) from a ``prev`` array."""
    if engine not in (None, "native", "numpy"):
        raise ValueError(f"unknown distance engine {engine!r}")
    lib = _native.load() if engine != "numpy" else None
    if engine == "native" and (lib is None or not hasattr(lib, "repro_stack_distances")):
        raise RuntimeError(
            "native stack-distance kernel requested but no C toolchain is available"
        )
    if lib is not None and hasattr(lib, "repro_stack_distances"):
        dist = _distances_native(prev, lib)
        if dist is not None:
            return dist
    return _distances_numpy(prev)


def stack_distances(lines: np.ndarray, engine: str | None = None) -> np.ndarray:
    """LRU stack distance of every access in a line stream.

    ``dist[t]`` is the number of *distinct* lines accessed strictly
    between ``lines[t]`` and its previous occurrence (exclusive), or -1
    for the first (cold) access: a fully-associative LRU cache of ``C``
    lines hits access ``t`` iff ``0 <= dist[t] < C``.
    """
    lines = np.ascontiguousarray(lines, dtype=np.int64)
    return distances_from_prev(_prev_indices(lines), engine=engine)


def default_set_index(lines: np.ndarray, num_sets: int) -> np.ndarray:
    """The replay engine's set-index function: ``line mod num_sets``."""
    return lines % np.int64(num_sets)


def set_distance_histogram(
    collapsed: np.ndarray,
    prev: np.ndarray,
    run_hits: int,
    num_sets: int,
    *,
    engine: str | None = None,
    set_index_fn=None,
) -> tuple[np.ndarray, np.ndarray]:
    """Histogram of *set-local* stack distances at one set count.

    A set-associative LRU cache of ``S`` sets is exactly ``S``
    independent fully-associative caches over the residue classes of the
    set-index function, so access ``t`` hits an ``A``-way cache iff
    fewer than ``A`` distinct *same-set* lines were touched since the
    previous access to its line.  Grouping the collapsed line stream
    stably by set residue makes every residue class a contiguous block
    whose ``prev`` pointers stay inside the block; the standard
    dominance-counting distance kernel then computes all set-local
    distances in one pass, because cross-block pairs can never satisfy
    ``prev[s] > prev[t]``.

    Returns the sparse ``(vals, counts)`` histogram of finite set-local
    distances (cold accesses are cold at every set count and are not
    duplicated here).  ``set_index_fn`` substitutes the set-index
    computation — only the planted-bug mutations use it.
    """
    METRICS.inc("memsim.ladder_pass")
    index_fn = set_index_fn or default_set_index
    residues = np.asarray(index_fn(collapsed, num_sets), dtype=np.int64)
    order = np.argsort(residues, kind="stable")
    inverse = np.empty(len(collapsed), dtype=np.int64)
    inverse[order] = np.arange(len(collapsed), dtype=np.int64)
    prev_sorted = prev[order]
    prev_local = np.where(
        prev_sorted >= 0, inverse[np.clip(prev_sorted, 0, None)], np.int64(-1)
    )
    dist = distances_from_prev(prev_local, engine=engine)
    finite = dist >= 0
    vals, counts = np.unique(dist[finite], return_counts=True)
    vals = vals.astype(np.int64)
    counts = counts.astype(np.int64)
    if run_hits:
        if len(vals) and vals[0] == 0:
            counts[0] += run_hits
        else:
            vals = np.concatenate(([np.int64(0)], vals))
            counts = np.concatenate(([np.int64(run_hits)], counts))
    return vals, counts


def _collapse_lines(encoded: np.ndarray, line_shift: int):
    """Run-collapsed line stream of an encoded trace plus its ``prev``.

    Shared by the main histogram pass and by on-demand ladder extension
    (:meth:`LineProfile.ensure_set_counts`).
    """
    lines = (encoded >> 1) >> line_shift
    keep = np.concatenate(([True], lines[1:] != lines[:-1]))
    starts = np.flatnonzero(keep)
    collapsed = lines[starts]
    run_hits = int(len(lines) - len(starts))
    prev, grouped = _prev_and_order(collapsed)
    return starts, collapsed, run_hits, prev, grouped


# -- the per-line-size profile -----------------------------------------------------


@dataclass
class LineProfile:
    """Reuse histogram of one trace at one line size.

    Everything the analytic predictor needs, in sparse arrays small
    enough to cache on disk next to the trace: the finite stack-distance
    histogram (``dist_vals``/``dist_counts``), cold-miss and total
    counts, the write-back difference array over capacity
    (``wb_pos``/``wb_delta``), a log2-bucketed reuse-*interval*
    histogram, the per-array (per-reference) attribution, and the
    conflict-aware *set-distance ladder* (``set_dist``): set-local
    stack-distance histograms keyed by set count, each making
    set-associative predictions at that set count exact.
    """

    line_shift: int
    total: int
    cold: int
    dist_vals: np.ndarray = field(repr=False)
    dist_counts: np.ndarray = field(repr=False)
    wb_pos: np.ndarray = field(repr=False)
    wb_delta: np.ndarray = field(repr=False)
    interval_log2: np.ndarray = field(repr=False)
    array_names: tuple[str, ...] = ()
    array_total: np.ndarray = field(default=None, repr=False)
    array_cold: np.ndarray = field(default=None, repr=False)
    array_dist: np.ndarray = field(default=None, repr=False)  # (aid, dist, count) rows
    set_dist: dict = field(default_factory=dict, repr=False)  # num_sets -> (vals, counts)

    def misses_at(self, capacity_lines: int) -> int:
        """Exact fully-associative LRU misses at ``capacity_lines``."""
        cut = np.searchsorted(self.dist_vals, capacity_lines)
        return int(self.cold + self.dist_counts[cut:].sum())

    def set_misses_at(self, num_sets: int, assoc: int) -> int:
        """Exact set-associative LRU misses from the ladder entry.

        Raises ``KeyError`` when ``num_sets`` has no ladder entry — use
        :func:`standalone_misses` for the fallback-capable path.
        """
        vals, counts = self.set_dist[num_sets]
        cut = np.searchsorted(vals, assoc)
        return int(self.cold + counts[cut:].sum())

    def ensure_set_counts(
        self, encoded, set_counts, *, engine: str | None = None, set_index_fn=None
    ) -> tuple[int, ...]:
        """Extend the ladder with any missing set counts, in place.

        ``encoded`` may be a callable returning the encoded trace so a
        fully-stocked profile never loads it.  Returns the set counts
        actually computed (empty when the ladder already covered them).
        """
        missing = sorted(
            int(s) for s in set_counts if int(s) > 1 and int(s) not in self.set_dist
        )
        if not missing:
            return ()
        data = encoded() if callable(encoded) else encoded
        with METRICS.timer("memsim.histogram"):
            _, collapsed, run_hits, prev, _ = _collapse_lines(data, self.line_shift)
            for num_sets in missing:
                self.set_dist[num_sets] = set_distance_histogram(
                    collapsed, prev, run_hits, num_sets,
                    engine=engine, set_index_fn=set_index_fn,
                )
        return tuple(missing)

    def writebacks_at(self, capacity_lines: int) -> int:
        """Exact fully-associative LRU write-backs at ``capacity_lines``."""
        cut = np.searchsorted(self.wb_pos, capacity_lines, side="right")
        return int(self.wb_delta[:cut].sum())

    def per_array_misses(self, capacity_lines: int) -> dict[str, int]:
        """Exact per-array fully-associative miss attribution."""
        out: dict[str, int] = {}
        if not self.array_names:
            return out
        rows = self.array_dist
        hot = rows[rows[:, 1] >= capacity_lines] if len(rows) else rows
        extra = np.bincount(
            hot[:, 0], weights=hot[:, 2], minlength=len(self.array_names)
        ) if len(hot) else np.zeros(len(self.array_names))
        for aid, name in enumerate(self.array_names):
            out[name] = int(self.array_cold[aid]) + int(extra[aid])
        return out

    def histogram(self) -> dict[int, int]:
        """The finite stack-distance histogram as a plain dict."""
        return dict(zip(self.dist_vals.tolist(), self.dist_counts.tolist()))


def _segmented_cummax(values: np.ndarray, seg: np.ndarray) -> np.ndarray:
    """Running max of non-negative ``values`` restarting wherever the
    nondecreasing ``seg`` changes.

    One ``np.maximum.accumulate`` pass: lifting each segment by ``seg *
    K`` (for ``K`` above the value range) makes later segments dominate
    earlier ones, so the global running max never carries a value across
    a segment boundary.
    """
    if len(values) == 0:
        return values.copy()
    lift = np.int64(int(values.max()) + 1)
    lifted = values + seg * lift
    return np.maximum.accumulate(lifted) - seg * lift


def _writeback_diff(
    grouped_dist, grouped_writes, line_start, line_end, suffix_distinct, distinct
):
    """Sparse difference array of FA write-backs over capacity.

    For every eviction opportunity — a reuse gap of distance ``V``, or
    trace end with ``E`` distinct lines after the last access — the
    evicted generation is dirty iff the largest gap since its last write
    ``M`` is below capacity, contributing one write-back for ``M < C <=
    V``.
    """
    sentinel = np.int64(distinct + 2)  # "no write yet": larger than any V
    base = np.where(
        grouped_writes, np.int64(0), np.where(line_start, sentinel, grouped_dist)
    )
    seg = np.cumsum(grouped_writes | line_start)
    since_write = _segmented_cummax(base, seg)

    gap = ~line_start
    gap_floor = np.concatenate(([np.int64(0)], since_write[:-1]))[gap]
    gap_value = grouped_dist[gap]
    end_floor = since_write[line_end]
    end_value = suffix_distinct[line_end]
    floors = np.concatenate([gap_floor, end_floor])
    values = np.concatenate([gap_value, end_value])
    live = values > floors

    diff = np.zeros(distinct + 3, dtype=np.int64)
    np.add.at(diff, floors[live] + 1, 1)
    np.add.at(diff, values[live] + 1, -1)
    pos = np.flatnonzero(diff)
    return pos.astype(np.int64), diff[pos]


def _empty_profile(line_shift: int, names: tuple[str, ...]) -> LineProfile:
    zero = np.zeros(0, dtype=np.int64)
    return LineProfile(
        line_shift=line_shift,
        total=0,
        cold=0,
        dist_vals=zero,
        dist_counts=zero.copy(),
        wb_pos=zero.copy(),
        wb_delta=zero.copy(),
        interval_log2=np.zeros(64, dtype=np.int64),
        array_names=names,
        array_total=np.zeros(len(names), dtype=np.int64),
        array_cold=np.zeros(len(names), dtype=np.int64),
        array_dist=np.zeros((0, 3), dtype=np.int64),
    )


def compute_profile(
    encoded: np.ndarray,
    line_shift: int,
    array_ranges=None,
    distance_fn=None,
    engine: str | None = None,
    set_counts=(),
    set_index_fn=None,
) -> LineProfile:
    """One histogram pass over an encoded trace at one line size.

    ``array_ranges`` is an optional list of ``(name, base, end)`` arena
    address ranges for per-array attribution (a line straddling a
    boundary attributes to the array holding its first address).
    ``set_counts`` requests conflict-aware set-distance ladder entries
    (one extra distance pass each).  ``distance_fn`` and
    ``set_index_fn`` substitute the stack-distance / set-index
    computations — only the planted-bug mutations use them.
    """
    METRICS.inc("memsim.histogram_pass")
    with METRICS.timer("memsim.histogram"):
        names = tuple(name for name, _, _ in (array_ranges or ()))
        n = len(encoded)
        if n == 0:
            return _empty_profile(line_shift, names)
        addrs = encoded >> 1
        writes = (encoded & 1).astype(bool)
        lines = addrs >> line_shift

        # Run-collapse: consecutive same-line accesses are distance-0 hits.
        keep = np.concatenate(([True], lines[1:] != lines[:-1]))
        starts = np.flatnonzero(keep)
        run_len = np.diff(starts, append=n)
        collapsed = lines[starts]
        collapsed_writes = np.logical_or.reduceat(writes, starts)
        run_hits = int(n - len(starts))

        prev, grouped = _prev_and_order(collapsed)
        set_dist = {
            int(s): set_distance_histogram(
                collapsed, prev, run_hits, int(s),
                engine=engine, set_index_fn=set_index_fn,
            )
            for s in sorted({int(s) for s in set_counts if int(s) > 1})
        }
        if distance_fn is not None:
            dist = np.asarray(distance_fn(collapsed), dtype=np.int64)
        else:
            dist = distances_from_prev(prev, engine=engine)
        finite = dist >= 0
        distinct = int(len(collapsed) - np.count_nonzero(finite))

        dist_vals, dist_counts = np.unique(dist[finite], return_counts=True)
        dist_vals = dist_vals.astype(np.int64)
        dist_counts = dist_counts.astype(np.int64)
        if run_hits:
            if len(dist_vals) and dist_vals[0] == 0:
                dist_counts[0] += run_hits
            else:
                dist_vals = np.concatenate(([np.int64(0)], dist_vals))
                dist_counts = np.concatenate(([np.int64(run_hits)], dist_counts))

        # Reuse intervals (original-time gaps), log2-bucketed.
        interval_log2 = np.zeros(64, dtype=np.int64)
        if np.any(finite):
            gaps = starts[finite] - starts[prev[finite]]
            buckets = np.floor(np.log2(gaps)).astype(np.int64)
            np.add.at(interval_log2, np.clip(buckets, 0, 63), 1)

        # Write-back difference array (grouped by line, time order kept;
        # `grouped` is the stable sort already computed for `prev`).
        grouped_lines = collapsed[grouped]
        boundary = grouped_lines[1:] != grouped_lines[:-1]
        line_start = np.concatenate(([True], boundary))
        line_end = np.concatenate((boundary, [True]))
        is_last = np.ones(len(collapsed), dtype=bool)
        is_last[prev[finite]] = False
        suffix_distinct_all = distinct - np.cumsum(is_last)
        wb_pos, wb_delta = _writeback_diff(
            dist[grouped],
            collapsed_writes[grouped],
            line_start,
            line_end,
            suffix_distinct_all[grouped],
            distinct,
        )

        array_total = np.zeros(len(names), dtype=np.int64)
        array_cold = np.zeros(len(names), dtype=np.int64)
        array_dist = np.zeros((0, 3), dtype=np.int64)
        if names:
            bases = np.array([base for _, base, _ in array_ranges], dtype=np.int64)
            aid_all = np.clip(
                np.searchsorted(bases, addrs, side="right") - 1, 0, len(names) - 1
            )
            array_total = np.bincount(aid_all, minlength=len(names)).astype(np.int64)
            aid = aid_all[starts]
            array_cold = np.bincount(
                aid[~finite], minlength=len(names)
            ).astype(np.int64)
            stride = np.int64(len(collapsed) + 1)
            keys = aid[finite] * stride + dist[finite]
            weights = np.ones(np.count_nonzero(finite), dtype=np.int64)
            zero_extra = np.bincount(
                aid, weights=run_len - 1, minlength=len(names)
            ).astype(np.int64)
            hot = np.flatnonzero(zero_extra)
            keys = np.concatenate([keys, hot * stride])
            weights = np.concatenate([weights, zero_extra[hot]])
            uniq, inverse = np.unique(keys, return_inverse=True)
            counts = np.bincount(inverse, weights=weights).astype(np.int64)
            array_dist = np.column_stack([uniq // stride, uniq % stride, counts])

        return LineProfile(
            line_shift=line_shift,
            total=n,
            cold=distinct,
            dist_vals=dist_vals,
            dist_counts=dist_counts,
            wb_pos=wb_pos,
            wb_delta=wb_delta,
            interval_log2=interval_log2,
            array_names=names,
            array_total=array_total,
            array_cold=array_cold,
            array_dist=array_dist,
            set_dist=set_dist,
        )


# -- geometry prediction -----------------------------------------------------------


def _assoc_hit_probability(dists: np.ndarray, num_sets: int, assoc: int) -> np.ndarray:
    """Smith/Hill set-associativity correction.

    A line at fully-associative stack depth ``d`` maps to one of ``S``
    sets uniformly; it survives in an ``A``-way set iff fewer than ``A``
    of the ``d`` intervening lines landed in its set: ``P(hit | d) =
    P[Binomial(d, 1/S) <= A-1]``.
    """
    d = dists.astype(np.float64)
    p = 1.0 / num_sets
    q = 1.0 - p
    term = np.power(q, d)
    prob = term.copy()
    for j in range(1, assoc):
        term = term * (d - (j - 1)) / j * (p / q)
        term = np.maximum(term, 0.0)
        prob += term
    return np.clip(prob, 0.0, 1.0)


def standalone_misses(profile: LineProfile, num_sets: int, assoc: int) -> int:
    """Predicted misses of one standalone cache level over the full trace.

    Exact for ``num_sets == 1`` (fully associative) and for any set
    count with a ladder entry in the profile; the Smith/Hill binomial
    correction otherwise.
    """
    if num_sets == 1:
        return profile.misses_at(assoc)
    if num_sets in profile.set_dist:
        METRICS.inc("memsim.conflict_exact")
        return profile.set_misses_at(num_sets, assoc)
    METRICS.inc("memsim.conflict_fallback")
    hit_p = _assoc_hit_probability(profile.dist_vals, num_sets, assoc)
    expected_hits = float(np.dot(hit_p, profile.dist_counts.astype(np.float64)))
    return int(round(profile.total - expected_hits))


class AnalyticResult(ReplayResult):
    """Predicted counters, API-compatible with :class:`ReplayResult`.

    ``exact`` marks predictions carrying the bit-exactness guarantee
    (single-level fully-associative geometry); ``per_reference`` maps
    array names to predicted L1 miss counts.
    """

    def __init__(
        self,
        level_stats,
        memory_latency,
        total_accesses,
        memory_accesses,
        memory_writebacks,
        exact: bool,
        per_reference: dict | None = None,
    ) -> None:
        super().__init__(
            level_stats, memory_latency, total_accesses,
            memory_accesses, memory_writebacks,
        )
        self.exact = exact
        self.per_reference = dict(per_reference or {})

    def record_metrics(self, metrics=None) -> None:
        registry = metrics if metrics is not None else METRICS
        super().record_metrics(registry)
        if self.level_stats:
            registry.inc("memsim.analytic_hits", self.level_stats[0][2])
            registry.inc("memsim.analytic_misses", self.level_stats[0][3])
        if self.exact:
            registry.inc("memsim.analytic_exact")


def predict(profiles: dict[int, LineProfile], hierarchy) -> AnalyticResult:
    """Predict hierarchy counters from per-line-size profiles.

    ``profiles`` maps ``line_shift`` to the :class:`LineProfile` of the
    full trace at that line size — one per distinct line size in the
    hierarchy.  Level 1 sees the full trace, so its fully-associative
    prediction is exact; deeper levels use the standalone approximation
    (their filtered stream is approximated by the full-trace histogram
    at their own geometry), clamped so hit counts stay non-negative.
    """
    METRICS.inc("memsim.analytic_predict")
    levels = hierarchy.levels
    first = profiles[levels[0].line_shift]
    total = first.total
    exact = len(levels) == 1 and levels[0].num_sets == 1

    level_stats: list[tuple[str, int, int, int]] = []
    upstream = total
    for level in levels:
        profile = profiles[level.line_shift]
        misses = min(standalone_misses(profile, level.num_sets, level.assoc), upstream)
        level_stats.append((level.name, level.latency, upstream - misses, misses))
        upstream = misses

    last = levels[-1]
    writebacks = profiles[last.line_shift].writebacks_at(last.num_sets * last.assoc)
    per_reference = first.per_array_misses(levels[0].num_sets * levels[0].assoc)
    return AnalyticResult(
        level_stats,
        hierarchy.memory_latency,
        total,
        memory_accesses=upstream,
        memory_writebacks=writebacks,
        exact=exact,
        per_reference=per_reference,
    )


def predict_machine(
    profiles: dict[int, LineProfile], machine
) -> AnalyticResult:
    """Predict counters for a :class:`~repro.memsim.cost.MachineSpec`."""
    return predict(profiles, machine.hierarchy())


def ladder_requirements(hierarchies) -> dict[int, set[int]]:
    """``line_shift -> set counts`` the conflict-aware model needs.

    Collects every set-associative (``num_sets > 1``) level across the
    given hierarchies, so callers can request exactly the ladder entries
    their geometry sweep will query.
    """
    needs: dict[int, set[int]] = {}
    for hierarchy in hierarchies:
        for level in hierarchy.levels:
            needs.setdefault(level.line_shift, set())
            if level.num_sets > 1:
                needs[level.line_shift].add(level.num_sets)
    return needs


def predict_many(
    profiles: dict[int, LineProfile], machines
) -> list[AnalyticResult]:
    """Price a whole batch of machine geometries in one NumPy pass.

    Equivalent to ``[predict_machine(profiles, m) for m in machines]``
    (numerically identical results) but batched: all fully-associative
    and ladder lookups of a line size resolve through a handful of
    vectorized ``searchsorted`` calls, and each distinct Smith/Hill
    fallback geometry is evaluated once no matter how many machines
    share it.  This is what makes autotuner sweeps over thousands of
    geometries cheap.  ``machines`` may mix :class:`MachineSpec`-like
    objects and bare :class:`~repro.memsim.hierarchy.MemoryHierarchy`
    instances.
    """
    hierarchies = [
        machine.hierarchy() if hasattr(machine, "hierarchy") else machine
        for machine in machines
    ]

    # Batch the level-miss queries by kind.
    fa_queries: dict[int, list[int]] = {}        # shift -> capacities
    ladder_queries: dict[tuple[int, int], list[int]] = {}  # (shift, S) -> assocs
    fallback: dict[tuple[int, int, int], int] = {}  # (shift, S, A) -> misses
    wb_queries: dict[int, list[int]] = {}        # shift -> last-level capacities
    for hierarchy in hierarchies:
        for level in hierarchy.levels:
            profile = profiles[level.line_shift]
            if level.num_sets == 1:
                fa_queries.setdefault(level.line_shift, []).append(level.assoc)
            elif level.num_sets in profile.set_dist:
                ladder_queries.setdefault(
                    (level.line_shift, level.num_sets), []
                ).append(level.assoc)
            else:
                fallback[(level.line_shift, level.num_sets, level.assoc)] = 0
        last = hierarchy.levels[-1]
        wb_queries.setdefault(last.line_shift, []).append(last.num_sets * last.assoc)

    fa_answers: dict[tuple[int, int], int] = {}
    for shift, caps in fa_queries.items():
        profile = profiles[shift]
        suffix = np.concatenate(
            (np.cumsum(profile.dist_counts[::-1])[::-1], [np.int64(0)])
        )
        cuts = np.searchsorted(profile.dist_vals, np.asarray(caps, dtype=np.int64))
        for cap, cut in zip(caps, cuts):
            fa_answers[(shift, cap)] = int(profile.cold + suffix[cut])

    ladder_answers: dict[tuple[int, int, int], int] = {}
    for (shift, num_sets), assocs in ladder_queries.items():
        profile = profiles[shift]
        vals, counts = profile.set_dist[num_sets]
        suffix = np.concatenate((np.cumsum(counts[::-1])[::-1], [np.int64(0)]))
        cuts = np.searchsorted(vals, np.asarray(assocs, dtype=np.int64))
        for assoc, cut in zip(assocs, cuts):
            ladder_answers[(shift, num_sets, assoc)] = int(profile.cold + suffix[cut])
            METRICS.inc("memsim.conflict_exact")

    for (shift, num_sets, assoc) in fallback:
        profile = profiles[shift]
        hit_p = _assoc_hit_probability(profile.dist_vals, num_sets, assoc)
        expected = float(np.dot(hit_p, profile.dist_counts.astype(np.float64)))
        fallback[(shift, num_sets, assoc)] = int(round(profile.total - expected))
        METRICS.inc("memsim.conflict_fallback")

    wb_answers: dict[tuple[int, int], int] = {}
    for shift, caps in wb_queries.items():
        profile = profiles[shift]
        prefix = np.concatenate(([np.int64(0)], np.cumsum(profile.wb_delta)))
        cuts = np.searchsorted(
            profile.wb_pos, np.asarray(caps, dtype=np.int64), side="right"
        )
        for cap, cut in zip(caps, cuts):
            wb_answers[(shift, cap)] = int(prefix[cut])

    results = []
    for hierarchy in hierarchies:
        METRICS.inc("memsim.analytic_predict")
        levels = hierarchy.levels
        first = profiles[levels[0].line_shift]
        total = first.total
        exact = len(levels) == 1 and levels[0].num_sets == 1
        level_stats: list[tuple[str, int, int, int]] = []
        upstream = total
        for level in levels:
            key = (level.line_shift, level.num_sets, level.assoc)
            if level.num_sets == 1:
                misses = fa_answers[(level.line_shift, level.assoc)]
            elif key in ladder_answers:
                misses = ladder_answers[key]
            else:
                misses = fallback[key]
            misses = min(misses, upstream)
            level_stats.append((level.name, level.latency, upstream - misses, misses))
            upstream = misses
        last = levels[-1]
        writebacks = wb_answers[(last.line_shift, last.num_sets * last.assoc)]
        per_reference = first.per_array_misses(
            levels[0].num_sets * levels[0].assoc
        )
        results.append(
            AnalyticResult(
                level_stats,
                hierarchy.memory_latency,
                total,
                memory_accesses=upstream,
                memory_writebacks=writebacks,
                exact=exact,
                per_reference=per_reference,
            )
        )
    return results


# -- profile (de)serialization -----------------------------------------------------


def profile_to_arrays(profile: LineProfile) -> dict:
    """Flat ``np.savez``-ready form of a profile."""
    out = {
        "line_shift": np.int64(profile.line_shift),
        "total": np.int64(profile.total),
        "cold": np.int64(profile.cold),
        "dist_vals": profile.dist_vals,
        "dist_counts": profile.dist_counts,
        "wb_pos": profile.wb_pos,
        "wb_delta": profile.wb_delta,
        "interval_log2": profile.interval_log2,
        "array_names": np.array(list(profile.array_names)),
        "array_total": profile.array_total,
        "array_cold": profile.array_cold,
        "array_dist": profile.array_dist,
        "set_counts": np.array(sorted(profile.set_dist), dtype=np.int64),
    }
    for num_sets in sorted(profile.set_dist):
        vals, counts = profile.set_dist[num_sets]
        out[f"sd{num_sets}_vals"] = vals
        out[f"sd{num_sets}_counts"] = counts
    return out


def profile_from_arrays(data) -> LineProfile:
    """Inverse of :func:`profile_to_arrays` (raises ``KeyError`` on gaps)."""
    names = tuple(str(s) for s in data["array_names"].tolist())
    set_dist = {
        int(num_sets): (
            np.asarray(data[f"sd{int(num_sets)}_vals"], dtype=np.int64),
            np.asarray(data[f"sd{int(num_sets)}_counts"], dtype=np.int64),
        )
        for num_sets in np.asarray(data["set_counts"], dtype=np.int64).tolist()
    }
    return LineProfile(
        line_shift=int(data["line_shift"]),
        total=int(data["total"]),
        cold=int(data["cold"]),
        dist_vals=np.asarray(data["dist_vals"], dtype=np.int64),
        dist_counts=np.asarray(data["dist_counts"], dtype=np.int64),
        wb_pos=np.asarray(data["wb_pos"], dtype=np.int64),
        wb_delta=np.asarray(data["wb_delta"], dtype=np.int64),
        interval_log2=np.asarray(data["interval_log2"], dtype=np.int64),
        array_names=names,
        array_total=np.asarray(data["array_total"], dtype=np.int64),
        array_cold=np.asarray(data["array_cold"], dtype=np.int64),
        array_dist=np.asarray(data["array_dist"], dtype=np.int64).reshape(-1, 3),
        set_dist=set_dist,
    )


def profile_checksum(profile: LineProfile) -> str:
    """Integrity checksum over everything a stored profile round-trips."""
    import hashlib

    digest = hashlib.sha256()
    digest.update(
        np.array(
            [profile.line_shift, profile.total, profile.cold], dtype=np.int64
        ).tobytes()
    )
    for arr in (
        profile.dist_vals, profile.dist_counts, profile.wb_pos,
        profile.wb_delta, profile.interval_log2, profile.array_total,
        profile.array_cold, profile.array_dist,
    ):
        digest.update(np.ascontiguousarray(arr, dtype=np.int64).tobytes())
    digest.update("\x00".join(profile.array_names).encode())
    for num_sets in sorted(profile.set_dist):
        vals, counts = profile.set_dist[num_sets]
        digest.update(np.int64(num_sets).tobytes())
        digest.update(np.ascontiguousarray(vals, dtype=np.int64).tobytes())
        digest.update(np.ascontiguousarray(counts, dtype=np.int64).tobytes())
    return digest.hexdigest()[:16]
