"""Array storage layouts and the flat arena.

Every declared array of a program is assigned a region of one flat
``numpy`` buffer; a layout maps (1-based) subscripts to element addresses
within the arena.  Layouts provide both a Python callable (used by tests
and oracles) and a *source expression* (used by the Python and C backends
to inline address arithmetic into generated code).

The paper's convention is FORTRAN column-major storage; the banded layout
implements LAPACK-style band storage for the Figure 15 experiment.
"""

from __future__ import annotations

import numpy as np

from repro.ir.nodes import Array, Program


class ColumnMajorLayout:
    """FORTRAN order: address = base + (i1-1) + (i2-1)*n1 + (i3-1)*n1*n2..."""

    def __init__(self, array: Array, base: int, extents: list[int]) -> None:
        self.array = array
        self.base = base
        self.extents = extents
        self.strides = []
        stride = 1
        for extent in extents:
            self.strides.append(stride)
            stride *= extent
        self.size = stride if extents else 1

    def addr(self, indices: tuple[int, ...]) -> int:
        return self.base + sum((i - 1) * s for i, s in zip(indices, self.strides))

    def addr_source(self, index_sources: list[str]) -> str:
        terms = [str(self.base)]
        for src, stride in zip(index_sources, self.strides):
            if stride == 1:
                terms.append(f"(({src})-1)")
            else:
                terms.append(f"(({src})-1)*{stride}")
        return "+".join(terms)

    def in_bounds(self, indices: tuple[int, ...]) -> bool:
        return all(1 <= i <= n for i, n in zip(indices, self.extents))


class RowMajorLayout(ColumnMajorLayout):
    """C order: last subscript contiguous."""

    def __init__(self, array: Array, base: int, extents: list[int]) -> None:
        super().__init__(array, base, extents)
        self.strides = []
        stride = 1
        for extent in reversed(extents):
            self.strides.insert(0, stride)
            stride *= extent
        self.size = stride if extents else 1


class BandedColumnLayout:
    """LAPACK-style lower-band storage for a 2-D array.

    Only elements with ``0 <= i - j <= bandwidth`` are stored:
    ``addr = base + (i - j) + (j - 1) * (bandwidth + 1)``.  Out-of-band
    accesses are a caller error (the banded kernels guard against them).
    """

    def __init__(self, array: Array, base: int, extents: list[int], bandwidth: int) -> None:
        if len(extents) != 2:
            raise ValueError("banded layout requires a 2-D array")
        self.array = array
        self.base = base
        self.extents = extents
        self.bandwidth = bandwidth
        self.size = extents[1] * (bandwidth + 1)

    def addr(self, indices: tuple[int, ...]) -> int:
        i, j = indices
        return self.base + (i - j) + (j - 1) * (self.bandwidth + 1)

    def addr_source(self, index_sources: list[str]) -> str:
        i, j = index_sources
        return f"{self.base}+(({i})-({j}))+(({j})-1)*{self.bandwidth + 1}"

    def in_bounds(self, indices: tuple[int, ...]) -> bool:
        i, j = indices
        return 1 <= j <= self.extents[1] and 0 <= i - j <= self.bandwidth


class BlockMajorLayout:
    """Block-contiguous storage (the paper's Section 5.3 data reshaping).

    The array is partitioned into ``block_sizes`` tiles; tiles are laid
    out in row-major tile order and each tile's elements are
    column-major within it.  Shackling "takes no position on how the
    remapped data is stored", but storing blocks contiguously removes
    the conflict misses that strided columns of a block otherwise cause.
    """

    def __init__(self, array: Array, base: int, extents: list[int], block_sizes) -> None:
        if isinstance(block_sizes, int):
            block_sizes = [block_sizes] * len(extents)
        if len(block_sizes) != len(extents):
            raise ValueError("one block size per dimension required")
        self.array = array
        self.base = base
        self.extents = extents
        self.block_sizes = list(block_sizes)
        self.blocks_per_dim = [
            (extent + size - 1) // size for extent, size in zip(extents, block_sizes)
        ]
        self.block_elems = 1
        for size in block_sizes:
            self.block_elems *= size
        total_blocks = 1
        for count in self.blocks_per_dim:
            total_blocks *= count
        self.size = total_blocks * self.block_elems

    def addr(self, indices: tuple[int, ...]) -> int:
        block_id = 0
        offset = 0
        offset_stride = 1
        for k, (i, size, count) in enumerate(
            zip(indices, self.block_sizes, self.blocks_per_dim)
        ):
            block_id = block_id * count + (i - 1) // size
            offset += ((i - 1) % size) * offset_stride
            offset_stride *= size
        return self.base + block_id * self.block_elems + offset

    def addr_source(self, index_sources: list[str]) -> str:
        block_parts: list[str] = []
        offset_parts: list[str] = []
        offset_stride = 1
        block_expr = "0"
        for i_src, size, count in zip(index_sources, self.block_sizes, self.blocks_per_dim):
            block_expr = f"(({block_expr})*{count}+(({i_src})-1)//{size})"
            offset_parts.append(f"((({i_src})-1)%{size})*{offset_stride}")
            offset_stride *= size
        offset = "+".join(offset_parts)
        return f"{self.base}+({block_expr})*{self.block_elems}+{offset}"

    def in_bounds(self, indices: tuple[int, ...]) -> bool:
        return all(1 <= i <= n for i, n in zip(indices, self.extents))


class Arena:
    """All of a program's arrays packed into one element-addressed space.

    ``layout_overrides`` maps array names either to a layout *class*
    (constructed with the default arguments) or to a ready factory
    ``lambda array, base, extents: layout``.
    """

    def __init__(
        self,
        program: Program,
        env: dict[str, int],
        layout_overrides: dict | None = None,
        gap: int = 0,
    ) -> None:
        self.program = program
        self.env = dict(env)
        self.layouts: dict[str, object] = {}
        base = 0
        overrides = layout_overrides or {}
        for array in program.arrays.values():
            extents = [e.evaluate_int(env) for e in array.extents]
            factory = overrides.get(array.name, ColumnMajorLayout)
            if isinstance(factory, type):
                layout = factory(array, base, extents)
            else:
                layout = factory(array, base, extents)
            self.layouts[array.name] = layout
            base += layout.size + gap
        self.total_size = base

    def layout(self, name: str):
        return self.layouts[name]

    def addr(self, name: str, indices: tuple[int, ...]) -> int:
        return self.layouts[name].addr(indices)

    def allocate(self) -> np.ndarray:
        return np.zeros(self.total_size, dtype=np.float64)

    def set_array(self, buf: np.ndarray, name: str, values) -> None:
        """Write values into an array regardless of its layout.

        Uses the fast column-major view when available, otherwise the
        element-by-element dense store.  Scalars broadcast.
        """
        layout = self.layouts[name]
        dense = np.broadcast_to(np.asarray(values, dtype=np.float64), tuple(layout.extents))
        try:
            self.view(buf, name)[:] = dense
        except TypeError:
            self.store_dense(buf, name, dense)

    def get_array(self, buf: np.ndarray, name: str) -> np.ndarray:
        """Read an array back densely regardless of its layout."""
        try:
            return np.array(self.view(buf, name))
        except TypeError:
            return self.load_dense(buf, name)

    def store_dense(self, buf: np.ndarray, name: str, values: np.ndarray) -> None:
        """Write a dense ndarray into the arena through any layout.

        Elements outside the layout's stored region (e.g. out-of-band for
        banded storage) are skipped.
        """
        layout = self.layouts[name]
        it = np.ndindex(*layout.extents)
        for zero_based in it:
            indices = tuple(i + 1 for i in zero_based)
            if layout.in_bounds(indices):
                buf[layout.addr(indices)] = values[zero_based]

    def load_dense(self, buf: np.ndarray, name: str) -> np.ndarray:
        """Read an array back into dense form (zeros where not stored)."""
        layout = self.layouts[name]
        out = np.zeros(tuple(layout.extents))
        for zero_based in np.ndindex(*layout.extents):
            indices = tuple(i + 1 for i in zero_based)
            if layout.in_bounds(indices):
                out[zero_based] = buf[layout.addr(indices)]
        return out

    def view(self, buf: np.ndarray, name: str) -> np.ndarray:
        """A (column-major) ndarray view of one array, for numpy oracles.

        Only valid for ColumnMajor layouts.
        """
        layout = self.layouts[name]
        if not isinstance(layout, ColumnMajorLayout) or isinstance(layout, RowMajorLayout):
            raise TypeError(f"no ndarray view for layout of {name}")
        flat = buf[layout.base : layout.base + layout.size]
        return flat.reshape(tuple(layout.extents), order="F")
