"""Multi-level memory-hierarchy simulation.

The paper's evaluation machine (an IBM SP-2 thin node) is replaced by an
explicit model: set-associative LRU caches in a hierarchy whose per-level
latencies follow the paper's "roughly ten-fold from one level to the
next", fed with the exact memory trace of the (transformed) program.

Array layouts map subscripts to addresses in a single flat arena —
column-major by default (the paper assumes FORTRAN order), with banded
storage available for the banded Cholesky experiment (Figure 15).

Simulation runs in one of two modes: the per-access oracle
(:class:`MemoryHierarchy`) or the capture/replay split — record the
program's address trace once (:mod:`repro.memsim.trace`) and replay it,
vectorized, against any number of machine geometries
(:mod:`repro.memsim.replay`) with bit-identical counters.
"""

from repro.memsim.cache import CacheLevel
from repro.memsim.cost import CostModel, MachineSpec, SP2_LIKE, SP2_SCALED, TINY
from repro.memsim.hierarchy import MemoryHierarchy
from repro.memsim.layout import (
    Arena,
    BandedColumnLayout,
    BlockMajorLayout,
    ColumnMajorLayout,
    RowMajorLayout,
)
from repro.memsim.replay import ReplayResult, replay_encoded, replay_trace
from repro.memsim.trace import Trace, TraceBuffer, TraceStore, trace_fingerprint

__all__ = [
    "Arena",
    "BandedColumnLayout",
    "BlockMajorLayout",
    "CacheLevel",
    "ColumnMajorLayout",
    "CostModel",
    "MachineSpec",
    "MemoryHierarchy",
    "ReplayResult",
    "RowMajorLayout",
    "SP2_LIKE",
    "SP2_SCALED",
    "TINY",
    "Trace",
    "TraceBuffer",
    "TraceStore",
    "replay_encoded",
    "replay_trace",
    "trace_fingerprint",
]
