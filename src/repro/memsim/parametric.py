"""Parametric histogram families: the size axis made analytic.

The per-trace analytic tier (:mod:`repro.memsim.reuse`) prices any LRU
geometry from one histogram pass, but every new *problem size* still
costs a trace capture.  This module removes that axis too: profile a
small set of **anchor sizes** per (program, blocking, line-size)
family, fit the histograms as low-degree polynomials in the
problem-size parameters, and answer geometry questions at *unseen*
sizes with zero captures.

The representation matters.  Fitting ``misses(C)`` at fixed capacities
``C`` fails exactly where block-size selection lives: miss counts at a
fixed capacity have a *knee* where the footprint crosses ``C``, and no
low-degree polynomial in the size parameters tracks a moving knee.
What IS polynomial in the size parameters of an affine nest is the
histogram itself: each reuse family's *distance* (a row is ``~N``
lines away, the previous matrix sweep ``~N^2``) and each family's
*mass*.  So a family stores, per line size, the reuse-distance
histogram collapsed to ``Q`` equal-mass **quantiles**, and fits every
quantile's distance as a polynomial of the size parameters — plus the
exactly-polynomial scalars (access total, cold misses, histogram mass,
write-back mass, per-statement counts).  A prediction re-assembles the
histogram at the queried size and reads any capacity off it:

    ``misses(C) = cold + mass * #{q : d_q >= C} / Q``

The knee falls out for free — it is where the fitted distance
polynomials cross ``C``.  Quantization error is bounded by a few
``mass / Q`` (Q defaults to 512, i.e. ~0.2% of accesses per crossed
boundary).  The same treatment covers write-back positions and, per
fitted set count ``S``, the conflict-aware **set-distance ladder**
(:func:`repro.memsim.reuse.set_distance_histogram`), so parametric
predictions stay conflict-aware at unseen sizes, not just
fully-associative.

A fitted :class:`ParametricFamily` is content-addressed in the
:class:`~repro.memsim.trace.TraceStore` (kind ``memsim.family``)
beside the per-trace histograms, and :func:`predict_parametric` prices
any machine at any size from it — no trace, no histogram pass, a few
polynomial evaluations and one ``searchsorted`` per cache level.

The **tolerance contract**: predictions at held-out sizes *inside the
anchor hull* are validated against exact replay by
``tests/memsim/test_parametric.py`` for every kernel module;
per-level predicted miss counts must stay within
``family.tolerance(accesses) = max(floor, frac * accesses)`` of
replay.  Polynomial extrapolation beyond the anchor range is
explicitly out of contract.  Anchors come from :func:`anchor_envs`
(log-spaced per parameter, crossed); fit quality is recorded per curve
in ``family.residuals`` (max absolute residual at the anchors), so a
family that failed to fit is visible before it is ever trusted.

Counters: ``memsim.family_fit`` (fresh fits), ``memsim.family_cache_hit``
(families served from the store), ``memsim.parametric_predict``
(predictions served) and ``memsim.parametric_fallback`` (set-associative
queries answered from the fully-associative histogram because no ladder
entry was fitted for that set count).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

import numpy as np

from repro.engine.metrics import METRICS
from repro.memsim.reuse import AnalyticResult
from repro.memsim.trace import (
    Trace,
    resolve_trace_store,
    trace_fingerprint,
)

DEFAULT_DEGREE = 3
"""Maximum total degree of the size-parameter fit (triangular nests of
depth three give cubic counts; deeper growth is rare at paper scales)."""

DEFAULT_QUANTILES = 512
"""Equal-mass quantiles per histogram curve: quantization error of a
prediction is a few ``mass / Q`` per capacity crossing (~0.2%)."""

PARAMETRIC_TOLERANCE = 0.08
"""Declared fractional tolerance of parametric predictions at held-out
sizes inside the anchor hull: per-level predicted miss counts within
``max(floor, frac * accesses)`` of exact replay.  Enforced by the
parametric differential suite for every kernel module."""

PARAMETRIC_TOLERANCE_FLOOR = 64
"""Absolute slack under the fractional tolerance for tiny traces."""


def _monomial_exponents(num_params: int, degree: int) -> np.ndarray:
    """All exponent tuples of total degree <= ``degree``, sorted."""
    combos = [
        exps
        for exps in itertools.product(range(degree + 1), repeat=num_params)
        if sum(exps) <= degree
    ]
    return np.array(sorted(combos), dtype=np.int64).reshape(-1, max(num_params, 1))


def _design_matrix(points: np.ndarray, exponents: np.ndarray, scales: np.ndarray):
    """Vandermonde-style design matrix of scaled monomials."""
    scaled = points.astype(np.float64) / scales
    return np.prod(scaled[:, None, :] ** exponents[None, :, :], axis=2)


def _quantile_values(vals: np.ndarray, counts: np.ndarray, quantiles: int) -> np.ndarray:
    """``quantiles`` equal-mass representative values of a histogram.

    Quantile ``i`` is the histogram value at cumulative mass
    ``(i + 0.5) / Q`` — the midpoint rule, so a value owning a fraction
    ``f`` of the mass owns ``~f * Q`` quantiles.  Empty histograms
    yield zeros (the fitted mass polynomial is ~0 there too).
    """
    total = int(np.sum(counts))
    if total == 0 or len(vals) == 0:
        return np.zeros(quantiles, dtype=np.float64)
    cum = np.cumsum(counts)
    targets = (np.arange(quantiles, dtype=np.float64) + 0.5) / quantiles * total
    idx = np.searchsorted(cum, targets, side="left")
    return np.asarray(vals, dtype=np.float64)[np.minimum(idx, len(vals) - 1)]


def _count_at_least(sorted_values: np.ndarray, mass: float, threshold: int) -> float:
    """``mass * #{q : value_q >= threshold} / Q`` of a quantile curve."""
    if mass <= 0:
        return 0.0
    below = int(np.searchsorted(sorted_values, threshold, side="left"))
    return mass * (len(sorted_values) - below) / len(sorted_values)


@dataclass
class ParametricFamily:
    """Fitted per-family curves: any geometry at any size, zero captures.

    One instance covers one (program, layout) family at a fixed set of
    line sizes.  Scalars (access total, per-statement counts, and per
    line shift the cold-miss, histogram-mass and write-back-mass
    counts) are plain polynomial coefficient vectors over the scaled
    size-parameter monomials; histogram shapes (reuse distances,
    write-back positions, and one set-distance ladder per fitted set
    count) are ``Q``-quantile curves with one coefficient vector per
    quantile.
    """

    params: tuple[str, ...]
    degree: int
    quantiles: int
    exponents: np.ndarray = field(repr=False)   # (M, P)
    scales: np.ndarray = field(repr=False)      # (P,)
    anchors: np.ndarray = field(repr=False)     # (A, P) int64
    line_shifts: tuple[int, ...] = ()
    total_coef: np.ndarray = field(default=None, repr=False)       # (M,)
    cold_coef: dict = field(default_factory=dict, repr=False)      # shift -> (M,)
    mass_coef: dict = field(default_factory=dict, repr=False)      # shift -> (M,)
    dist_coef: dict = field(default_factory=dict, repr=False)      # shift -> (Q, M)
    wbup_mass_coef: dict = field(default_factory=dict, repr=False)  # shift -> (M,)
    wbup_coef: dict = field(default_factory=dict, repr=False)       # shift -> (Q, M)
    wbdn_mass_coef: dict = field(default_factory=dict, repr=False)  # shift -> (M,)
    wbdn_coef: dict = field(default_factory=dict, repr=False)       # shift -> (Q, M)
    set_coef: dict = field(default_factory=dict, repr=False)       # shift -> {S: (Q, M)}
    labels: tuple[str, ...] = ()
    counts_coef: np.ndarray = field(default=None, repr=False)      # (L, M)
    flops: np.ndarray = field(default=None, repr=False)            # (L,)
    residuals: dict = field(default_factory=dict)
    tolerance_frac: float = PARAMETRIC_TOLERANCE
    tolerance_floor: int = PARAMETRIC_TOLERANCE_FLOOR

    # -- evaluation --------------------------------------------------------------

    def _phi(self, env: dict) -> np.ndarray:
        """Scaled monomial vector of one size environment."""
        point = np.array([[int(env[p]) for p in self.params]], dtype=np.int64)
        return _design_matrix(point, self.exponents, self.scales)[0]

    def tolerance(self, accesses: int) -> int:
        """Declared |predicted - exact| miss slack at ``accesses``."""
        return max(self.tolerance_floor, int(self.tolerance_frac * accesses))

    def accesses_at(self, env: dict) -> int:
        """Predicted total trace length at ``env``."""
        return max(0, int(round(float(self.total_coef @ self._phi(env)))))

    def counts_at(self, env: dict) -> dict[str, int]:
        """Predicted per-statement execution counts at ``env``."""
        values = self.counts_coef @ self._phi(env)
        return {
            label: max(0, int(round(float(value))))
            for label, value in zip(self.labels, values)
        }

    def flops_per_statement(self) -> dict[str, int]:
        return {label: int(f) for label, f in zip(self.labels, self.flops)}

    def set_counts(self) -> tuple[int, ...]:
        """Set counts with fitted conflict-aware ladder curves."""
        return tuple(sorted({s for by in self.set_coef.values() for s in by}))

    def curves_at(self, env: dict) -> tuple[int, dict]:
        """Re-assemble every histogram once at ``env``.

        Returns ``(total, {shift: curve dict})`` — the warm form
        :meth:`predict_from_curves` prices whole geometry batches from,
        so an autotuner evaluating thousands of machines at one size
        pays for the polynomial evaluations exactly once.  Quantile
        curves are rounded to integer distances and sorted (fits are
        near-monotone already; sorting restores the histogram
        invariant).
        """
        phi = self._phi(env)
        total = max(0, int(round(float(self.total_coef @ phi))))

        def shape(coef: np.ndarray) -> np.ndarray:
            return np.sort(np.maximum(np.round(coef @ phi), 0.0))

        curves = {}
        for shift in self.line_shifts:
            curves[shift] = {
                "cold": max(0.0, float(self.cold_coef[shift] @ phi)),
                "mass": max(0.0, float(self.mass_coef[shift] @ phi)),
                "dist": shape(self.dist_coef[shift]),
                "wbup_mass": max(0.0, float(self.wbup_mass_coef[shift] @ phi)),
                "wbup": shape(self.wbup_coef[shift]),
                "wbdn_mass": max(0.0, float(self.wbdn_mass_coef[shift] @ phi)),
                "wbdn": shape(self.wbdn_coef[shift]),
                "sets": {
                    num_sets: shape(coef)
                    for num_sets, coef in self.set_coef.get(shift, {}).items()
                },
            }
        return total, curves

    def predict_from_curves(self, total: int, curves: dict, machine) -> AnalyticResult:
        """Price one machine from pre-evaluated curves (see :meth:`curves_at`)."""
        METRICS.inc("memsim.parametric_predict")
        hierarchy = machine.hierarchy() if hasattr(machine, "hierarchy") else machine
        level_stats: list[tuple[str, int, int, int]] = []
        upstream = total
        for level in hierarchy.levels:
            c = curves[level.line_shift]
            if level.num_sets == 1:
                beyond = _count_at_least(c["dist"], c["mass"], level.assoc)
            elif level.num_sets in c["sets"]:
                beyond = _count_at_least(
                    c["sets"][level.num_sets], c["mass"], level.assoc
                )
            else:
                # No ladder curve for this set count: price as a
                # fully-associative cache of equal capacity (counted, so
                # sweeps can see how often they leave the fitted grid).
                METRICS.inc("memsim.parametric_fallback")
                beyond = _count_at_least(
                    c["dist"], c["mass"], level.num_sets * level.assoc
                )
            misses = min(max(int(round(c["cold"] + beyond)), 0), upstream)
            level_stats.append((level.name, level.latency, upstream - misses, misses))
            upstream = misses
        last = hierarchy.levels[-1]
        c = curves[last.line_shift]
        capacity = last.num_sets * last.assoc
        # The write-back profile is a *signed* difference array over
        # capacity (+1 where an evicted generation becomes dirty, -1 where
        # its reuse gap closes); writebacks(C) is its prefix sum, so the
        # family fits the positive and negative event positions as two
        # separate quantile curves and subtracts their cumulative counts.
        up = c["wbup_mass"] - _count_at_least(c["wbup"], c["wbup_mass"], capacity + 1)
        down = c["wbdn_mass"] - _count_at_least(c["wbdn"], c["wbdn_mass"], capacity + 1)
        writebacks = min(max(int(round(up - down)), 0), total)
        return AnalyticResult(
            level_stats,
            hierarchy.memory_latency,
            total,
            memory_accesses=upstream,
            memory_writebacks=writebacks,
            exact=False,
            per_reference={},
        )

    def predict(self, env: dict, machine) -> AnalyticResult:
        """Predicted counters for ``machine`` at (possibly unseen) ``env``."""
        total, curves = self.curves_at(env)
        return self.predict_from_curves(total, curves, machine)

    def predict_many(self, env: dict, machines) -> list[AnalyticResult]:
        """Price a whole batch of machines at one size: one set of
        polynomial evaluations, then one ``searchsorted`` per level."""
        total, curves = self.curves_at(env)
        return [self.predict_from_curves(total, curves, m) for m in machines]

    def describe(self) -> str:
        worst = max(self.residuals.values()) if self.residuals else 0.0
        return (
            f"family({'x'.join(self.params)}, degree={self.degree}, "
            f"anchors={len(self.anchors)}, shifts={list(self.line_shifts)}, "
            f"set_counts={list(self.set_counts())}, quantiles={self.quantiles}, "
            f"max_fit_residual={worst:.3g})"
        )


def predict_parametric(family: ParametricFamily, env: dict, machine) -> AnalyticResult:
    """Module-level alias of :meth:`ParametricFamily.predict`."""
    return family.predict(env, machine)


# -- anchor selection --------------------------------------------------------------


def anchor_envs(
    ranges: dict[str, tuple[int, int]],
    *,
    per_param: int | None = None,
    degree: int = DEFAULT_DEGREE,
    dodge: int = 8,
) -> list[dict]:
    """Log-spaced anchor sizes over per-parameter ranges, crossed.

    Each parameter gets ``per_param`` (default ``degree + 2``: one more
    anchor than a degree-``degree`` fit strictly needs, so the extra
    point exposes a bad fit as a residual instead of vanishing into
    interpolation) distinct integer values log-spaced across its
    ``(lo, hi)`` range; anchors are the cross product.

    ``dodge`` nudges anchors off multiples of that stride (default 8,
    i.e. one cache line of doubles): at stride-aligned sizes, array
    columns alias into a few cache sets and the set-distance histogram
    *resonates* — conflict misses jump by an arithmetic (``N mod S``)
    effect that no smooth fit over sizes can represent.  One resonant
    anchor poisons the least-squares fit everywhere, so anchors stay off
    the resonance lattice; predictions AT resonant sizes are likewise
    outside the smooth model class (use the exact per-trace ladder
    there).  ``dodge=0`` disables the adjustment.
    """
    per = per_param if per_param is not None else degree + 2
    axes: dict[str, list[int]] = {}
    for name in sorted(ranges):
        lo, hi = ranges[name]
        if lo < 1 or hi < lo:
            raise ValueError(f"bad anchor range for {name}: ({lo}, {hi})")
        raw = np.exp(np.linspace(np.log(lo), np.log(hi), per))
        vals = set()
        for v in (int(round(x)) for x in raw):
            if dodge > 1 and v % dodge == 0 and v > dodge:
                v = v + 1 if v + 1 <= hi else v - 1
            vals.add(v)
        axes[name] = sorted(vals)
    names = list(axes)
    return [dict(zip(names, combo)) for combo in itertools.product(*axes.values())]


# -- fitting -----------------------------------------------------------------------


def family_fingerprint(
    program, params, anchors, line_shifts, set_counts, degree,
    quantiles: int = DEFAULT_QUANTILES,
) -> str:
    """Content address of one fitted family in the trace store."""
    from repro.engine.jobs import fingerprint, program_source
    from repro.memsim.trace import PARAMETRIC_SCHEMA_VERSION

    payload = {
        "program": program_source(program),
        "params": list(params),
        "anchors": sorted(tuple(int(env[p]) for p in params) for env in anchors),
        "line_shifts": sorted(int(s) for s in line_shifts),
        "set_counts": sorted(int(s) for s in set_counts),
        "degree": int(degree),
        "quantiles": int(quantiles),
        "schema": PARAMETRIC_SCHEMA_VERSION,
    }
    return fingerprint("memsim.family", payload)


def _capture_anchor(program, env, init_fn, seed, store, fp, arena):
    """Capture one anchor trace into the store (the only capture path
    the parametric tier has — everything after fitting is capture-free)."""
    from repro.backends import compile_program

    buf = arena.allocate()
    rng = np.random.default_rng(seed)
    if init_fn is not None:
        init_fn(arena, buf, rng)
    else:
        buf[:] = rng.random(arena.total_size)
    with METRICS.timer("memsim.run"):
        result = compile_program(program, arena, trace="capture").run(buf)
    trace = Trace(result.trace, dict(result.counts), dict(result.flops_per_statement))
    store.put(fp, trace)
    METRICS.inc("memsim.trace_capture")
    return trace


def _effective_degree(anchors: np.ndarray, requested: int) -> int:
    """Largest usable total degree for the given anchor grid.

    Bounded by the requested degree, by the number of distinct values
    each parameter takes (a parameter seen at ``k`` values supports
    degree ``k - 1``), and by the anchor count (at least as many
    anchors as monomials, so the fit is determined).
    """
    degree = max(0, int(requested))
    distinct = min(len(set(col.tolist())) for col in anchors.T)
    degree = min(degree, distinct - 1)
    while degree > 0 and len(_monomial_exponents(anchors.shape[1], degree)) > len(anchors):
        degree -= 1
    return degree


def fit_family(
    program,
    anchors: list[dict],
    *,
    init=None,
    line_shifts=(2, 3),
    set_counts=(),
    trace_store=None,
    degree: int = DEFAULT_DEGREE,
    quantiles: int = DEFAULT_QUANTILES,
    seed: int = 0,
    tolerance_frac: float = PARAMETRIC_TOLERANCE,
    tolerance_floor: int = PARAMETRIC_TOLERANCE_FLOOR,
    capture: bool = True,
) -> ParametricFamily:
    """Fit (or load) the parametric family of ``program`` over ``anchors``.

    Anchor traces are served from ``trace_store`` when warm (e.g. after
    an engine-tier anchor sweep) and captured otherwise; ``capture=False``
    turns a cold anchor into an error instead, for callers that must
    prove zero captures.  The fitted family is content-addressed in the
    same store, so re-fitting the same family is a cache hit.
    """
    from repro.memsim.layout import Arena

    if not anchors:
        raise ValueError("fit_family needs at least one anchor environment")
    store = resolve_trace_store(trace_store)
    params = tuple(sorted(anchors[0]))
    anchor_mat = np.array(
        sorted(tuple(int(env[p]) for p in params) for env in anchors),
        dtype=np.int64,
    )
    if len({tuple(row) for row in anchor_mat.tolist()}) != len(anchor_mat):
        raise ValueError("duplicate anchor environments")
    line_shifts = tuple(sorted({int(s) for s in line_shifts}))
    set_counts = tuple(sorted({int(s) for s in set_counts if int(s) > 1}))

    family_fp = family_fingerprint(
        program, params, anchors, line_shifts, set_counts, degree, quantiles
    )
    cached = store.get_family(family_fp)
    if cached is not None:
        return cached

    degree = _effective_degree(anchor_mat, degree)
    exponents = _monomial_exponents(len(params), degree)
    scales = np.maximum(anchor_mat.max(axis=0).astype(np.float64), 1.0)
    design = _design_matrix(anchor_mat, exponents, scales)

    with METRICS.timer("memsim.family_fit"):
        # Gather every curve's value at every anchor.
        num_anchors = len(anchor_mat)
        totals = np.zeros(num_anchors)
        colds = {s: np.zeros(num_anchors) for s in line_shifts}
        masses = {s: np.zeros(num_anchors) for s in line_shifts}
        dists = {s: np.zeros((num_anchors, quantiles)) for s in line_shifts}
        wbup_masses = {s: np.zeros(num_anchors) for s in line_shifts}
        wbups = {s: np.zeros((num_anchors, quantiles)) for s in line_shifts}
        wbdn_masses = {s: np.zeros(num_anchors) for s in line_shifts}
        wbdns = {s: np.zeros((num_anchors, quantiles)) for s in line_shifts}
        setdists = {
            s: {S: np.zeros((num_anchors, quantiles)) for S in set_counts}
            for s in line_shifts
        }
        labels: tuple[str, ...] | None = None
        flops: np.ndarray | None = None
        counts_rows = []
        for a, row in enumerate(anchor_mat):
            env = dict(zip(params, (int(v) for v in row)))
            arena = Arena(program, env)
            fp = trace_fingerprint(program, env, arena)
            trace = store.get(fp)
            if trace is None:
                if not capture:
                    raise RuntimeError(
                        f"anchor {env} has no stored trace and capture is disabled"
                    )
                trace = _capture_anchor(program, env, init, seed, store, fp, arena)
            if labels is None:
                labels = tuple(trace.counts)
                flops = np.array(
                    [trace.flops_per_statement[l] for l in labels], dtype=np.int64
                )
            counts_rows.append([trace.counts.get(l, 0) for l in labels])
            ranges = [
                (name, layout.base, layout.base + layout.size)
                for name, layout in arena.layouts.items()
            ]
            totals[a] = len(trace.encoded)
            for shift in line_shifts:
                profile = store.profile_for(
                    fp, lambda t=trace: t.encoded, shift,
                    array_ranges=ranges, set_counts=set_counts,
                )
                colds[shift][a] = profile.cold
                masses[shift][a] = int(np.sum(profile.dist_counts))
                dists[shift][a] = _quantile_values(
                    profile.dist_vals, profile.dist_counts, quantiles
                )
                rising = profile.wb_delta > 0
                wbup_masses[shift][a] = int(np.sum(profile.wb_delta[rising]))
                wbups[shift][a] = _quantile_values(
                    profile.wb_pos[rising], profile.wb_delta[rising], quantiles
                )
                wbdn_masses[shift][a] = int(-np.sum(profile.wb_delta[~rising]))
                wbdns[shift][a] = _quantile_values(
                    profile.wb_pos[~rising], -profile.wb_delta[~rising], quantiles
                )
                for S in set_counts:
                    vals, counts = profile.set_dist[S]
                    setdists[shift][S][a] = _quantile_values(vals, counts, quantiles)

        residuals: dict[str, float] = {}

        def fit(name: str, values: np.ndarray) -> np.ndarray:
            """Least-squares coefficients (curve-major) + residual record."""
            target = values.reshape(num_anchors, -1)
            coef, *_ = np.linalg.lstsq(design, target, rcond=None)
            residuals[name] = float(np.abs(design @ coef - target).max())
            return np.ascontiguousarray(coef.T)  # (n_curves, M)

        total_coef = fit("total", totals)[0]
        counts_coef = fit("counts", np.array(counts_rows, dtype=np.float64))
        cold_coef = {s: fit(f"cold@{s}", colds[s])[0] for s in line_shifts}
        mass_coef = {s: fit(f"mass@{s}", masses[s])[0] for s in line_shifts}
        dist_coef = {s: fit(f"dist@{s}", dists[s]) for s in line_shifts}
        wbup_mass_coef = {s: fit(f"wbup_mass@{s}", wbup_masses[s])[0] for s in line_shifts}
        wbup_coef = {s: fit(f"wbup@{s}", wbups[s]) for s in line_shifts}
        wbdn_mass_coef = {s: fit(f"wbdn_mass@{s}", wbdn_masses[s])[0] for s in line_shifts}
        wbdn_coef = {s: fit(f"wbdn@{s}", wbdns[s]) for s in line_shifts}
        set_coef = {
            s: {S: fit(f"set{S}@{s}", setdists[s][S]) for S in set_counts}
            for s in line_shifts
        }

    family = ParametricFamily(
        params=params,
        degree=degree,
        quantiles=quantiles,
        exponents=exponents,
        scales=scales,
        anchors=anchor_mat,
        line_shifts=line_shifts,
        total_coef=total_coef,
        cold_coef=cold_coef,
        mass_coef=mass_coef,
        dist_coef=dist_coef,
        wbup_mass_coef=wbup_mass_coef,
        wbup_coef=wbup_coef,
        wbdn_mass_coef=wbdn_mass_coef,
        wbdn_coef=wbdn_coef,
        set_coef=set_coef,
        labels=labels or (),
        counts_coef=counts_coef,
        flops=flops if flops is not None else np.zeros(0, dtype=np.int64),
        residuals=residuals,
        tolerance_frac=tolerance_frac,
        tolerance_floor=tolerance_floor,
    )
    METRICS.inc("memsim.family_fit")
    store.put_family(family_fp, family)
    return family


# -- (de)serialization -------------------------------------------------------------


def family_to_arrays(family: ParametricFamily) -> dict:
    """Flat ``np.savez``-ready form of a fitted family."""
    out = {
        "params": np.array(list(family.params)),
        "degree": np.int64(family.degree),
        "quantiles": np.int64(family.quantiles),
        "exponents": family.exponents,
        "scales": family.scales,
        "anchors": family.anchors,
        "line_shifts": np.array(list(family.line_shifts), dtype=np.int64),
        "total_coef": family.total_coef,
        "labels": np.array(list(family.labels)),
        "counts_coef": family.counts_coef,
        "flops": family.flops,
        "resid_names": np.array(sorted(family.residuals)),
        "resid_vals": np.array(
            [family.residuals[k] for k in sorted(family.residuals)], dtype=np.float64
        ),
        "tol_frac": np.float64(family.tolerance_frac),
        "tol_floor": np.int64(family.tolerance_floor),
    }
    for shift in family.line_shifts:
        out[f"s{shift}_cold"] = family.cold_coef[shift]
        out[f"s{shift}_mass"] = family.mass_coef[shift]
        out[f"s{shift}_dist"] = family.dist_coef[shift]
        out[f"s{shift}_wbup_mass"] = family.wbup_mass_coef[shift]
        out[f"s{shift}_wbup"] = family.wbup_coef[shift]
        out[f"s{shift}_wbdn_mass"] = family.wbdn_mass_coef[shift]
        out[f"s{shift}_wbdn"] = family.wbdn_coef[shift]
        sets = sorted(family.set_coef.get(shift, {}))
        out[f"s{shift}_sets"] = np.array(sets, dtype=np.int64)
        for num_sets in sets:
            out[f"s{shift}_set{num_sets}"] = family.set_coef[shift][num_sets]
    return out


def family_from_arrays(data) -> ParametricFamily:
    """Inverse of :func:`family_to_arrays` (raises ``KeyError`` on gaps)."""
    line_shifts = tuple(
        int(s) for s in np.asarray(data["line_shifts"], dtype=np.int64).tolist()
    )
    cold_coef, mass_coef, dist_coef, set_coef = {}, {}, {}, {}
    wbup_mass_coef, wbup_coef, wbdn_mass_coef, wbdn_coef = {}, {}, {}, {}
    for shift in line_shifts:
        cold_coef[shift] = np.asarray(data[f"s{shift}_cold"], dtype=np.float64)
        mass_coef[shift] = np.asarray(data[f"s{shift}_mass"], dtype=np.float64)
        dist_coef[shift] = np.asarray(data[f"s{shift}_dist"], dtype=np.float64)
        wbup_mass_coef[shift] = np.asarray(data[f"s{shift}_wbup_mass"], dtype=np.float64)
        wbup_coef[shift] = np.asarray(data[f"s{shift}_wbup"], dtype=np.float64)
        wbdn_mass_coef[shift] = np.asarray(data[f"s{shift}_wbdn_mass"], dtype=np.float64)
        wbdn_coef[shift] = np.asarray(data[f"s{shift}_wbdn"], dtype=np.float64)
        set_coef[shift] = {
            int(S): np.asarray(data[f"s{shift}_set{int(S)}"], dtype=np.float64)
            for S in np.asarray(data[f"s{shift}_sets"], dtype=np.int64).tolist()
        }
    residuals = dict(
        zip(
            [str(s) for s in data["resid_names"].tolist()],
            np.asarray(data["resid_vals"], dtype=np.float64).tolist(),
        )
    )
    return ParametricFamily(
        params=tuple(str(s) for s in data["params"].tolist()),
        degree=int(data["degree"]),
        quantiles=int(data["quantiles"]),
        exponents=np.asarray(data["exponents"], dtype=np.int64),
        scales=np.asarray(data["scales"], dtype=np.float64),
        anchors=np.asarray(data["anchors"], dtype=np.int64),
        line_shifts=line_shifts,
        total_coef=np.asarray(data["total_coef"], dtype=np.float64),
        cold_coef=cold_coef,
        mass_coef=mass_coef,
        dist_coef=dist_coef,
        wbup_mass_coef=wbup_mass_coef,
        wbup_coef=wbup_coef,
        wbdn_mass_coef=wbdn_mass_coef,
        wbdn_coef=wbdn_coef,
        set_coef=set_coef,
        labels=tuple(str(s) for s in data["labels"].tolist()),
        counts_coef=np.asarray(data["counts_coef"], dtype=np.float64),
        flops=np.asarray(data["flops"], dtype=np.int64),
        residuals=residuals,
        tolerance_frac=float(data["tol_frac"]),
        tolerance_floor=int(data["tol_floor"]),
    )


def family_checksum(family: ParametricFamily) -> str:
    """Integrity checksum over everything a stored family round-trips."""
    import hashlib

    digest = hashlib.sha256()
    arrays = family_to_arrays(family)
    for key in sorted(arrays):
        value = np.asarray(arrays[key])
        digest.update(key.encode())
        if value.dtype.kind in ("U", "S"):
            digest.update("\x00".join(str(v) for v in value.reshape(-1).tolist()).encode())
        else:
            digest.update(np.ascontiguousarray(value, dtype=np.float64).tobytes())
    return digest.hexdigest()[:16]
