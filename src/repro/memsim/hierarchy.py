"""A multi-level hierarchy of caches in front of main memory."""

from __future__ import annotations

from repro.engine.metrics import METRICS
from repro.memsim.cache import CacheLevel


class MemoryHierarchy:
    """Caches ordered fastest-first; a miss in every level goes to memory.

    On a miss the line is installed at every level (a simple non-exclusive
    fill policy).  ``access`` returns the latency of the satisfying level,
    and per-level hit/miss counters accumulate for reporting.
    """

    def __init__(self, levels: list[CacheLevel], memory_latency: int) -> None:
        self.levels = list(levels)
        self.memory_latency = memory_latency
        self.memory_accesses = 0
        self.memory_writebacks = 0
        self.total_accesses = 0

    def reset(self) -> None:
        for level in self.levels:
            level.reset()
        self.memory_accesses = 0
        self.memory_writebacks = 0
        self.total_accesses = 0

    def record_metrics(self, metrics=None) -> None:
        """Flush access counters into the engine metrics registry.

        Called once per simulated run (not per access) so the simulator
        hot path stays uninstrumented.
        """
        registry = metrics if metrics is not None else METRICS
        registry.inc("memsim.accesses", self.total_accesses)
        registry.inc("memsim.memory_accesses", self.memory_accesses)
        registry.inc("memsim.memory_writebacks", self.memory_writebacks)

    def access(self, addr: int, write: bool = False) -> int:
        """Touch an element address; returns the cycles this access cost.

        Dirty victims evicted by the installs are written back to the
        next level that holds the line (or to memory), so outbound
        traffic is accounted exactly.
        """
        self.total_accesses += 1
        cost = 0
        hit_index = len(self.levels)
        for index, level in enumerate(self.levels):
            cost += level.latency
            if level.access(addr, write):
                hit_index = index
                break
        if hit_index == len(self.levels):
            self.memory_accesses += 1
            cost += self.memory_latency
        self._drain_victims()
        return cost

    def _drain_victims(self) -> None:
        for index, level in enumerate(self.levels):
            victim = level.pop_victim()
            if victim is None:
                continue
            placed = False
            for lower in self.levels[index + 1 :]:
                if lower.receive_writeback(victim):
                    placed = True
                    break
            if not placed:
                self.memory_writebacks += 1

    def access_cycles(self) -> int:
        """Total data-access cycles across all recorded accesses.

        Includes write-back traffic: every dirty line evicted from the
        last cache level pays one memory access on its way out.
        """
        cycles = 0
        remaining = self.total_accesses
        for level in self.levels:
            cycles += remaining * level.latency
            remaining -= level.hits
        cycles += self.memory_accesses * self.memory_latency
        cycles += self.writeback_traffic() * self.memory_latency
        return cycles

    def writeback_traffic(self) -> int:
        """Dirty lines written all the way out to memory (the outbound
        traffic of the write-back policy)."""
        return self.memory_writebacks

    def stats(self) -> dict:
        out = {"accesses": self.total_accesses, "memory_accesses": self.memory_accesses}
        for level in self.levels:
            out[f"{level.name}_hits"] = level.hits
            out[f"{level.name}_misses"] = level.misses
        out["writebacks"] = self.writeback_traffic()
        return out

    def describe(self) -> str:
        parts = [
            f"{lvl.name}:{lvl.size_elems}e/{lvl.line_elems}l/{lvl.assoc}w@{lvl.latency}cy"
            for lvl in self.levels
        ]
        return " -> ".join(parts) + f" -> mem@{self.memory_latency}cy"
