"""Command-line interface: ``python -m repro <command>``.

Commands operate on programs written in the textual mini-language (see
``repro.ir.parser``), so the shackling compiler is usable without
writing any Python:

    python -m repro show kernel.loop
    python -m repro deps kernel.loop
    python -m repro shackle kernel.loop --array A --block 25 [--refs lhs]
        [--dims 1,0] [--product A:25:lhs ...] [--naive|--split]
    python -m repro legality kernel.loop --array A --block 25
    python -m repro search kernel.loop --array A --block 25 [--jobs 4 --cache --metrics]
    python -m repro simulate kernel.loop [--array A --block 25 ...] --size N=48
    python -m repro tune kernel.loop --array A --sizes N=9:40 [--block 4 --block 8]
        [--anchors N=8,11,17,25,34] [--lines 4,8 --sets 1,16,32 --assocs 1,2,4]
        [--top 10 --json BENCH_autotune.json --check-captures]
    python -m repro fuzz --seed 0 --budget 200 [--check legality ...] [--jobs 4]
    python -m repro serve --socket /tmp/repro.sock [--cache DIR --jobs 4]
    python -m repro bench-serve [--socket /tmp/repro.sock] --users 32 --requests 1000

``search`` and ``simulate`` run on the execution engine
(:mod:`repro.engine`): ``--jobs N`` fans independent work out across N
worker processes, ``--cache [DIR]`` serves repeated work from the
content-addressed result cache (default store: ``.repro_cache/``), and
``--metrics`` prints the engine's counter/timer report afterwards.
``simulate`` additionally takes ``--fidelity replay|analytic|oracle``
(``replay``: capture the trace once, replay it per geometry; ``analytic``:
predict every geometry from reuse-distance histograms, zero replays;
``oracle``: per-access simulation), ``--replay/--no-replay`` (legacy
spelling of replay-vs-oracle) and ``--trace-cache [DIR]`` to persist
captured traces and histograms on disk.  ``search --score N=48`` prices
the ranked candidates by simulated cycles on the scaled machines
(``--score-top`` bounds how many, ``--fidelity`` picks the tier).

``tune`` autotunes over grids of (blocking, size, geometry): shackle
candidates per ``--block`` spacing, scored sizes from ``--sizes N=lo:hi[:step]``
ranges (crossed over parameters), and single-level machine geometries
from the ``--lines`` x ``--sets`` x ``--assocs`` x ``--latencies`` x
``--mem-latencies`` cross product.  Traces are captured only at the
``--anchors`` sizes (default: log-spaced over the size range, nudged
off cache-line multiples); every scored point is then priced from
fitted parametric histogram families (:mod:`repro.memsim.parametric`)
with zero captures — ``--check-captures`` turns that claim into a hard
failure for CI.  ``--top`` bounds the printed ranking, ``--json FILE``
writes the full report (the ``BENCH_autotune.json`` artifact).

``fuzz`` takes no program file: it generates random loop nests and
shackles itself and checks the pipeline against brute-force oracles
(see :mod:`repro.fuzz` and docs/FUZZ.md); exit status 1 means a real
disagreement, with a minimized repro saved under ``--corpus``.

``serve`` runs the compilation daemon (:mod:`repro.service`, see
docs/SERVICE.md): one warm engine behind a JSON-over-socket protocol,
drained cleanly on SIGTERM/SIGINT.  ``bench-serve`` drives a daemon with
the Locust-style load generator — against ``--socket`` / ``--tcp`` when
given, else against a fresh in-process server — verifying every answer
against direct execution and printing latency percentiles; exit status
1 means dropped, failed or mismatched responses.

``--chaos SPEC`` (or ``REPRO_CHAOS=SPEC``) activates deterministic
fault injection (docs/ROBUSTNESS.md): for ``search``/``simulate`` the
whole run executes under injected worker kills, delays, cache
corruption and forced solver budgets — and must still produce correct
results; for ``fuzz`` the spec drives the ``chaos`` differential check,
which asserts results under faults are bit-identical to a fault-free
run.
"""

from __future__ import annotations

import argparse
import os
import sys
from pathlib import Path

from repro import __version__
from repro.core import (
    DataBlocking,
    ShackleProduct,
    check_legality,
    naive_code,
    search_shackles,
    shackle_refs,
    simplified_code,
    split_code,
)
from repro.dependence import compute_dependences
from repro.ir import parse_program, to_source


def _load(path: str):
    text = Path(path).read_text() if path != "-" else sys.stdin.read()
    return parse_program(text)


def _parse_dims(text: str | None):
    if not text:
        return None
    return [int(x) for x in text.split(",")]


def _split_outside_brackets(text: str, sep: str) -> list[str]:
    """Split on ``sep`` occurrences that are not inside [...] brackets."""
    parts: list[str] = []
    depth = 0
    current: list[str] = []
    for ch in text:
        if ch == "[":
            depth += 1
        elif ch == "]":
            depth -= 1
        if ch == sep and depth == 0:
            parts.append("".join(current))
            current = []
        else:
            current.append(ch)
    parts.append("".join(current))
    return [p for p in parts if p]


def _build_shackle(program, args):
    blocking = DataBlocking.grid(
        args.array,
        program.arrays[args.array].ndim if args.dims is None else len(_parse_dims(args.dims)),
        args.block,
        dims=_parse_dims(args.dims),
        directions=_parse_dims(args.directions),
    )
    if args.refs == "lhs":
        shackle = shackle_refs(program, blocking, "lhs")
    else:
        choice = dict(pair.split("=", 1) for pair in _split_outside_brackets(args.refs, ","))
        shackle = shackle_refs(program, blocking, choice)
    factors = [shackle]
    for spec in args.product or []:
        array, block, refs = (_split_outside_brackets(spec, ":") + ["lhs"])[:3]
        extra_blocking = DataBlocking.grid(
            array, program.arrays[array].ndim, int(block)
        )
        if refs == "lhs":
            factors.append(shackle_refs(program, extra_blocking, "lhs"))
        else:
            choice = dict(pair.split("=", 1) for pair in _split_outside_brackets(refs, "+"))
            factors.append(shackle_refs(program, extra_blocking, choice))
    if len(factors) == 1:
        return factors[0]
    return ShackleProduct(*factors)


def _add_shackle_args(sub):
    sub.add_argument("--array", required=True, help="array to block")
    sub.add_argument("--block", type=int, default=25, help="cutting plane spacing")
    sub.add_argument("--dims", default=None, help="blocked dims, e.g. 1,0 (default: all)")
    sub.add_argument("--directions", default=None, help="traversal directions, e.g. 1,-1")
    sub.add_argument(
        "--refs",
        default="lhs",
        help='"lhs" or comma list label=Ref, e.g. "S1=A[J,J],S2=A[I,J]"',
    )
    sub.add_argument(
        "--product",
        action="append",
        help="extra factor array:block[:refs] (refs uses label=Ref joined by +)",
    )


def _add_engine_args(sub):
    sub.add_argument(
        "--jobs", type=int, default=1, help="worker processes (1 = serial)"
    )
    sub.add_argument(
        "--cache",
        nargs="?",
        const=".repro_cache",
        default=None,
        metavar="DIR",
        help="serve repeated work from a content-addressed cache (default dir: .repro_cache)",
    )
    sub.add_argument(
        "--metrics", action="store_true", help="print the engine metrics report"
    )
    sub.add_argument(
        "--chaos",
        default=None,
        metavar="SPEC",
        help="inject deterministic faults, e.g. kill=0.1,delay=0.2:0.05,"
        "corrupt=0.3,budget=0.1,seed=7 (fuzz: run the chaos differential)",
    )
    _add_solver_arg(sub)


def _add_solver_arg(sub):
    sub.add_argument(
        "--solver",
        choices=("vector", "scalar"),
        default=None,
        help="feasibility engine (default: vector, or $REPRO_SOLVER)",
    )


def _engine_cache(args):
    if getattr(args, "cache", None) is None:
        return None
    from repro.engine.cache import ResultCache

    return ResultCache(root=args.cache)


def _add_serve_args(sub):
    sub.add_argument(
        "--socket",
        action="append",
        default=None,
        metavar="PATH",
        help="Unix domain socket path (serve: bind here; "
        "bench-serve: target an already-running daemon — repeat for a "
        "replica list driven through the failover client)",
    )
    sub.add_argument(
        "--tcp",
        default=None,
        metavar="HOST:PORT",
        help="TCP endpoint instead of a Unix socket",
    )
    sub.add_argument(
        "--jobs", type=int, default=1, help="worker processes per batch (1 = serial)"
    )
    sub.add_argument(
        "--cache",
        nargs="?",
        const=".repro_cache",
        default=None,
        metavar="DIR",
        help="back the daemon's warm cache with an on-disk store "
        "(default dir: .repro_cache)",
    )
    sub.add_argument(
        "--metrics", action="store_true", help="print the engine metrics report"
    )


def _parse_tcp(text: str) -> tuple[str, int]:
    host, _, port = text.rpartition(":")
    return host or "127.0.0.1", int(port)


def _write_pidfile(path: str | None) -> None:
    if path:
        Path(path).write_text(f"{os.getpid()}\n")


def _remove_pidfile(path: str | None) -> None:
    if path:
        try:
            Path(path).unlink()
        except OSError:
            pass


def _cmd_serve_fabric(args, socket_path: str) -> int:
    """``serve --replicas K``: supervise K daemons over one store."""
    import signal
    import threading
    import time as _time

    from repro.service.fabric import EXIT_ABNORMAL, FabricConfig, FabricSupervisor

    prefix = Path(socket_path)
    config = FabricConfig(
        replicas=args.replicas,
        cache=args.cache,
        socket_dir=str(prefix.parent) if str(prefix.parent) else ".",
        socket_prefix=prefix.name.removesuffix(".sock"),
        jobs=args.jobs,
        queue_limit=args.queue_limit,
        dispatchers=args.dispatchers,
        timeout=args.timeout,
        log_path=args.fabric_log,
    )
    supervisor = FabricSupervisor(config)
    stop = threading.Event()
    for signum in (signal.SIGTERM, signal.SIGINT):
        signal.signal(signum, lambda *_: stop.set())
    _write_pidfile(args.pidfile)
    try:
        supervisor.start()
    except Exception as exc:
        print(f"repro.service: fabric failed to start: {exc}", file=sys.stderr)
        _remove_pidfile(args.pidfile)
        return EXIT_ABNORMAL
    try:
        for address in supervisor.addresses:
            print(f"repro.service: replica serving on {address}", flush=True)
        while not stop.is_set():
            if not any(row["alive"] for row in supervisor.status()):
                break
            _time.sleep(config.poll_interval)
    finally:
        supervisor.stop()
        _remove_pidfile(args.pidfile)
    return 0


def _cmd_serve(args) -> int:
    from repro.service.fabric import EXIT_ABNORMAL
    from repro.service.server import ServerConfig, serve_forever

    sockets = args.socket or []
    if bool(sockets) == (args.tcp is not None):
        print("serve: give exactly one of --socket PATH or --tcp HOST:PORT",
              file=sys.stderr)
        return 2
    if len(sockets) > 1:
        print("serve: --socket may be given once (it is the fabric prefix "
              "under --replicas)", file=sys.stderr)
        return 2
    if args.replicas > 1:
        if not sockets:
            print("serve: --replicas needs --socket PATH as the socket prefix",
                  file=sys.stderr)
            return 2
        return _cmd_serve_fabric(args, sockets[0])
    config = ServerConfig(
        jobs=args.jobs,
        cache=args.cache,
        queue_limit=args.queue_limit,
        batch_max=args.batch_max,
        batch_window=args.batch_window,
        dispatchers=args.dispatchers,
        default_timeout=args.timeout,
    )
    host, port = _parse_tcp(args.tcp) if args.tcp else (None, 0)

    def ready(server):
        _write_pidfile(args.pidfile)
        print(f"repro.service: serving on {server.address}", flush=True)

    try:
        serve_forever(
            config, path=sockets[0] if sockets else None,
            host=host, port=port, ready=ready,
        )
    except Exception as exc:
        # A crash, not a drain: the fabric supervisor (and CI) key off
        # this exit code to tell "fell over" from "asked to stop".
        print(f"repro.service: abnormal termination: {exc!r}", file=sys.stderr)
        return EXIT_ABNORMAL
    finally:
        _remove_pidfile(args.pidfile)
    if args.metrics:
        from repro.engine.metrics import METRICS

        print(METRICS.report())
    return 0


def _cmd_bench_serve(args) -> int:
    from repro.service.loadgen import LoadConfig, paper_tasks, run_load

    kinds = tuple(k for k in args.kinds.split(",") if k)
    tasks = paper_tasks(kinds=kinds, verify=not args.no_verify)
    config = LoadConfig(
        users=args.users,
        requests=args.requests,
        seed=args.seed,
        timeout=args.timeout,
        retries=args.retries,
        hedge_after=args.hedge_after,
    )
    if args.socket or args.tcp:
        if args.socket:
            # One --socket targets a daemon directly; several form the
            # replica ring driven through the failover client.
            address = args.socket[0] if len(args.socket) == 1 else list(args.socket)
        else:
            address = _parse_tcp(args.tcp)
        report = run_load(address, tasks, config)
    else:
        # No target: stand a daemon up in-process and drain it after.
        import tempfile
        from pathlib import Path as _Path

        from repro.service.server import ServerConfig, ServerThread

        server_config = ServerConfig(jobs=args.jobs, cache=args.cache)
        with tempfile.TemporaryDirectory(prefix="repro-serve-") as tmp:
            with ServerThread(server_config, path=str(_Path(tmp) / "repro.sock")) as handle:
                report = run_load(handle.address, tasks, config)
    print(report.describe())
    if args.json:
        import json as _json

        Path(args.json).write_text(_json.dumps(report.to_payload(), indent=2))
    if args.metrics:
        from repro.engine.metrics import METRICS

        print(METRICS.report())
    return 0 if report.ok else 1


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="python -m repro", description=__doc__)
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {__version__}"
    )
    commands = parser.add_subparsers(dest="command", required=True)

    show = commands.add_parser("show", help="parse and pretty-print a program")
    show.add_argument("file")

    deps = commands.add_parser("deps", help="list dependence levels")
    deps.add_argument("file")

    shackle_cmd = commands.add_parser("shackle", help="generate shackled code")
    shackle_cmd.add_argument("file")
    _add_shackle_args(shackle_cmd)
    shackle_cmd.add_argument("--naive", action="store_true", help="Figure-5 form")
    shackle_cmd.add_argument("--split", action="store_true", help="index-set splitting")
    shackle_cmd.add_argument("--emit-c", action="store_true", help="emit C instead")

    legality = commands.add_parser("legality", help="check Theorem-1 legality")
    legality.add_argument("file")
    _add_shackle_args(legality)
    _add_solver_arg(legality)
    legality.add_argument(
        "--metrics", action="store_true", help="print the engine metrics report"
    )

    search = commands.add_parser("search", help="enumerate and rank legal shackles")
    search.add_argument("file")
    search.add_argument("--array", required=True)
    search.add_argument("--block", type=int, default=25)
    search.add_argument("--max-product", type=int, default=2)
    search.add_argument(
        "--score",
        action="append",
        metavar="N=48",
        help="param binding; when given, price ranked candidates by "
        "simulated cycles on the scaled machines (repeatable)",
    )
    search.add_argument(
        "--score-top", type=int, default=4,
        help="how many ranked candidates to score (default: 4)",
    )
    search.add_argument(
        "--fidelity",
        choices=("analytic", "replay", "oracle"),
        default="analytic",
        help="memsim tier used for scoring (default: analytic)",
    )
    search.add_argument(
        "--trace-cache",
        nargs="?",
        const=".repro_cache/traces",
        default=None,
        metavar="DIR",
        help="persist captured traces/histograms used for scoring",
    )
    search.add_argument(
        "--journal",
        nargs="?",
        const=".repro_cache",
        default=None,
        metavar="DIR",
        help="checkpoint legality verdicts so a killed search resumes "
        "without re-checking (default dir: .repro_cache)",
    )
    _add_engine_args(search)

    simulate_cmd = commands.add_parser("simulate", help="simulate on the scaled machine")
    simulate_cmd.add_argument("file")
    _add_shackle_args(simulate_cmd)
    simulate_cmd.add_argument("--size", action="append", required=True, help="param binding N=48")
    simulate_cmd.add_argument("--original", action="store_true", help="also run unshackled")
    simulate_cmd.add_argument(
        "--replay",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="capture the trace once and replay it vectorized "
        "(--no-replay: per-access oracle simulation)",
    )
    simulate_cmd.add_argument(
        "--fidelity",
        choices=("replay", "analytic", "oracle"),
        default=None,
        help="memsim tier: replay (capture once, replay vectorized), "
        "analytic (predict from reuse histograms, zero replays), or "
        "oracle (per-access simulation); overrides --replay",
    )
    simulate_cmd.add_argument(
        "--trace-cache",
        nargs="?",
        const=".repro_cache/traces",
        default=None,
        metavar="DIR",
        help="persist captured traces in an on-disk content-addressed store "
        "(default dir: .repro_cache/traces)",
    )
    _add_engine_args(simulate_cmd)

    tune_cmd = commands.add_parser(
        "tune", help="autotune blockings over size and cache-geometry grids"
    )
    tune_cmd.add_argument("file")
    tune_cmd.add_argument("--array", required=True, help="array to block")
    tune_cmd.add_argument(
        "--block", action="append", type=int, metavar="B",
        help="blocking spacing to search (repeatable; default: 8)",
    )
    tune_cmd.add_argument(
        "--sizes", action="append", required=True, metavar="N=lo:hi[:step]",
        help="scored size range per parameter (repeatable; ranges are crossed)",
    )
    tune_cmd.add_argument(
        "--anchors", action="append", metavar="N=v1,v2,...",
        help="anchor sizes whose traces are captured (default: log-spaced "
        "over --sizes, nudged off cache-line multiples)",
    )
    tune_cmd.add_argument("--lines", default="4,8", help="line sizes in elements (comma list)")
    tune_cmd.add_argument("--sets", default="1,16,32", help="set counts (comma list)")
    tune_cmd.add_argument("--assocs", default="1,2,4", help="associativities (comma list)")
    tune_cmd.add_argument("--latencies", default="1", help="L1 latencies (comma list)")
    tune_cmd.add_argument(
        "--mem-latencies", default="100", help="memory latencies (comma list)"
    )
    tune_cmd.add_argument("--max-product", type=int, default=1)
    tune_cmd.add_argument(
        "--candidates", type=int, default=2,
        help="ranked shackle candidates scored per block size (default: 2)",
    )
    tune_cmd.add_argument("--top", type=int, default=10, help="rows in the printed ranking")
    tune_cmd.add_argument(
        "--json", default=None, metavar="FILE", help="write the full report as JSON"
    )
    tune_cmd.add_argument(
        "--check-captures", action="store_true",
        help="fail if the scoring phase captured any trace (CI zero-capture proof)",
    )
    tune_cmd.add_argument(
        "--trace-cache",
        nargs="?",
        const=".repro_cache/traces",
        default=None,
        metavar="DIR",
        help="persist anchor traces and fitted families on disk",
    )
    tune_cmd.add_argument(
        "--journal",
        nargs="?",
        const=".repro_cache",
        default=None,
        metavar="DIR",
        help="checkpoint each scored (candidate, size) block so a killed "
        "tune resumes without re-scoring (default dir: .repro_cache)",
    )
    _add_engine_args(tune_cmd)

    fuzz_cmd = commands.add_parser(
        "fuzz", help="differential-fuzz the pipeline against brute-force oracles"
    )
    fuzz_cmd.add_argument("--seed", type=int, default=0, help="generator seed")
    fuzz_cmd.add_argument("--budget", type=int, default=100, help="fresh cases to run")
    fuzz_cmd.add_argument(
        "--check",
        action="append",
        choices=("deps", "solver", "legality", "codegen", "semantics", "backend", "memsim", "chaos", "fabric"),
        help="oracle to run (repeatable; default: all)",
    )
    fuzz_cmd.add_argument(
        "--fabric",
        default=None,
        metavar="SPEC",
        help="transport-fault spec for the fabric differential, e.g. "
        "reset=0.25,truncate=0.15,dup=0.2,lag=0.15:0.002,seed=7 "
        "(implied default when `--check fabric` is given)",
    )
    fuzz_cmd.add_argument(
        "--corpus",
        default=".fuzz_corpus",
        metavar="DIR",
        help="minimized-failure corpus, replayed first (default: .fuzz_corpus)",
    )
    fuzz_cmd.add_argument(
        "--no-shrink", action="store_true", help="persist failures unminimized"
    )
    _add_engine_args(fuzz_cmd)

    serve_cmd = commands.add_parser(
        "serve", help="run the compilation daemon (shackle-as-a-service)"
    )
    _add_serve_args(serve_cmd)
    serve_cmd.add_argument(
        "--queue-limit", type=int, default=1024,
        help="pending-job bound before `overloaded` responses (default: 1024)",
    )
    serve_cmd.add_argument(
        "--batch-max", type=int, default=64,
        help="max jobs per engine dispatch (default: 64)",
    )
    serve_cmd.add_argument(
        "--batch-window", type=float, default=0.002,
        help="seconds a drain tick lingers to batch requests (default: 0.002)",
    )
    serve_cmd.add_argument(
        "--dispatchers", type=int, default=1,
        help="concurrent engine dispatches (default: 1)",
    )
    serve_cmd.add_argument(
        "--timeout", type=float, default=None,
        help="default per-request deadline in seconds (default: none)",
    )
    serve_cmd.add_argument(
        "--replicas", type=int, default=1,
        help="run K supervised daemon replicas over one store; --socket "
        "becomes the per-replica socket prefix (default: 1, no fabric)",
    )
    serve_cmd.add_argument(
        "--pidfile", default=None, metavar="PATH",
        help="write the daemon (or fabric supervisor) pid here after bind; "
        "removed on exit",
    )
    serve_cmd.add_argument(
        "--fabric-log", default=None, metavar="PATH",
        help="append fabric lifecycle events (spawn/ready/crash/respawn) "
        "to this file (default: stderr)",
    )

    bench_serve = commands.add_parser(
        "bench-serve", help="drive a daemon with the mixed-workload load generator"
    )
    _add_serve_args(bench_serve)
    bench_serve.add_argument("--users", type=int, default=32, help="concurrent clients")
    bench_serve.add_argument("--requests", type=int, default=1000, help="total requests")
    bench_serve.add_argument("--seed", type=int, default=0, help="workload seed")
    bench_serve.add_argument(
        "--kinds", default="legality,codegen,search,simulate",
        help="comma list of request kinds in the mix",
    )
    bench_serve.add_argument(
        "--timeout", type=float, default=None, help="per-request deadline (seconds)"
    )
    bench_serve.add_argument(
        "--retries", type=int, default=0,
        help="transparent client retries after transport failures "
        "(failover cycles when multiple --socket replicas are given)",
    )
    bench_serve.add_argument(
        "--hedge-after", type=float, default=None, metavar="SECONDS",
        help="arm tail hedging: duplicate a job to the next replica if the "
        "sharded one has not answered within this delay",
    )
    bench_serve.add_argument(
        "--no-verify", action="store_true",
        help="skip comparing served answers against direct execution",
    )
    bench_serve.add_argument(
        "--json", default=None, metavar="FILE", help="write the report as JSON"
    )

    args = parser.parse_args(argv)

    if getattr(args, "solver", None):
        from repro.polyhedra import solver as _solver

        _solver.set_engine(args.solver)

    if getattr(args, "chaos", None) and args.command != "fuzz":
        # Whole-run fault injection: configure this process and export the
        # spec so worker processes configure themselves identically.  For
        # ``fuzz`` the spec instead drives the chaos differential below.
        import os as _os

        from repro.engine import chaos as _chaos_mod

        spec = _chaos_mod.parse_spec(args.chaos)
        _chaos_mod.configure(spec)
        _os.environ[_chaos_mod.ENV_VAR] = spec.describe()

    if args.command == "fuzz":
        from repro.fuzz import run_fuzz

        report = run_fuzz(
            seed=args.seed,
            budget=args.budget,
            checks=tuple(args.check) if args.check else None,
            corpus=args.corpus,
            jobs=args.jobs,
            cache=_engine_cache(args),
            shrink=not args.no_shrink,
            chaos_spec=args.chaos,
            fabric_spec=args.fabric,
        )
        print(report.describe())
        if args.metrics:
            from repro.engine.metrics import METRICS

            print(METRICS.report())
        return 0 if report.ok else 1

    if args.command == "serve":
        return _cmd_serve(args)

    if args.command == "bench-serve":
        return _cmd_bench_serve(args)

    program = _load(args.file)

    if args.command == "show":
        print(to_source(program), end="")
        return 0

    if args.command == "deps":
        for dep in compute_dependences(program):
            print(dep.describe())
        return 0

    if args.command == "legality":
        shackle = _build_shackle(program, args)
        print(check_legality(shackle).explain())
        if args.metrics:
            from repro.engine.metrics import METRICS

            print(METRICS.report())
        return 0

    if args.command == "search":
        blocking = DataBlocking.grid(
            args.array, program.arrays[args.array].ndim, args.block
        )
        results = search_shackles(
            program,
            blocking,
            max_product=args.max_product,
            jobs=args.jobs,
            cache=_engine_cache(args),
            journal=args.journal,
        )
        if args.score:
            from repro.core.search import score_candidates
            from repro.memsim.cost import SP2_SCALED, TINY

            env = {}
            for binding in args.score:
                name, value = binding.split("=", 1)
                env[name] = int(value)
            scored = score_candidates(
                program,
                results,
                env,
                [SP2_SCALED, TINY],
                fidelity=args.fidelity,
                top=args.score_top,
                trace_store=args.trace_cache,
                jobs=args.jobs,
                cache=_engine_cache(args),
            )
            for entry in scored:
                print(entry.describe())
        else:
            for result in results:
                print(result.describe())
        if args.metrics:
            from repro.engine.metrics import METRICS

            print(METRICS.report())
        return 0

    if args.command == "tune":
        import itertools as _itertools

        from repro.core.autotune import geometry_grid, tune

        def _axis_values(binding: str, parse) -> tuple[str, list[int]]:
            name, _, spec = binding.partition("=")
            if not spec:
                raise SystemExit(f"tune: bad binding {binding!r} (expected NAME=SPEC)")
            return name, parse(spec)

        def _range_values(spec: str) -> list[int]:
            parts = [int(x) for x in spec.split(":")]
            lo = parts[0]
            hi = parts[1] if len(parts) > 1 else lo
            step = parts[2] if len(parts) > 2 else 1
            return list(range(lo, hi + 1, step))

        size_axes = dict(_axis_values(b, _range_values) for b in args.sizes)
        names = sorted(size_axes)
        sizes = [
            dict(zip(names, combo))
            for combo in _itertools.product(*(size_axes[n] for n in names))
        ]
        anchors = None
        if args.anchors:
            anchor_axes = dict(
                _axis_values(b, lambda s: [int(x) for x in s.split(",")])
                for b in args.anchors
            )
            if sorted(anchor_axes) != names:
                raise SystemExit(
                    f"tune: --anchors parameters {sorted(anchor_axes)} "
                    f"do not match --sizes parameters {names}"
                )
            anchors = [
                dict(zip(names, combo))
                for combo in _itertools.product(*(anchor_axes[n] for n in names))
            ]

        def _ints(text: str) -> list[int]:
            return [int(x) for x in text.split(",") if x]

        machines = geometry_grid(
            lines=_ints(args.lines),
            set_counts=_ints(args.sets),
            assocs=_ints(args.assocs),
            l1_latencies=_ints(args.latencies),
            memory_latencies=_ints(args.mem_latencies),
        )
        report = tune(
            program,
            args.array,
            sizes=sizes,
            machines=machines,
            anchors=anchors,
            blocks=tuple(args.block or [8]),
            max_product=args.max_product,
            candidates_per_block=args.candidates,
            top=args.top,
            trace_store=args.trace_cache,
            jobs=args.jobs,
            cache=_engine_cache(args),
            check_captures=args.check_captures,
            journal=args.journal,
        )
        captures = report["captures"]
        print(
            f"tune: {len(report['candidates'])} candidates x {report['sizes']} sizes "
            f"x {report['machines']} machines = {report['points']} points "
            f"({report['points_per_sec']}/s, {report['geometry_classes']} geometry classes)"
        )
        print(
            f"captures: {captures['anchor']} at anchors, {captures['scoring']} "
            f"during scoring, {captures['avoided']} avoided"
        )
        if report["journal"]:
            print(
                f"journal: {report['journal']['resumed_blocks']} blocks resumed, "
                f"{report['journal']['scored_blocks']} scored fresh"
            )
        for row in report["top"]:
            env = ",".join(f"{k}={v}" for k, v in sorted(row["env"].items()))
            print(
                f"#{row['rank']} {row['candidate']} {env} {row['machine']} "
                f"cycles={round(row['cycles'])} mflops={row['mflops']}"
            )
        if args.json:
            import json as _json

            Path(args.json).write_text(_json.dumps(report, indent=2))
        if args.metrics:
            from repro.engine.metrics import METRICS

            print(METRICS.report())
        return 0

    if args.command == "shackle":
        shackle = _build_shackle(program, args)
        verdict = check_legality(shackle, first_violation_only=True)
        if not verdict.legal:
            print(verdict.explain(), file=sys.stderr)
            return 1
        if args.naive:
            generated = naive_code(shackle)
        elif args.split:
            generated = split_code(shackle)
        else:
            generated = simplified_code(shackle)
        if args.emit_c:
            from repro.backends import emit_c

            print(emit_c(generated), end="")
        else:
            print(to_source(generated), end="")
        return 0

    if args.command == "simulate":
        from repro.experiments.harness import SweepPoint, random_init, simulate_sweep
        from repro.experiments.report import print_table
        from repro.memsim.cost import SP2_SCALED

        env = {}
        for binding in args.size:
            name, value = binding.split("=", 1)
            env[name] = int(value)
        shackle = _build_shackle(program, args)
        variants = {"shackled": simplified_code(shackle)}
        if args.original:
            variants["original"] = program
        points = [
            SweepPoint(
                prog,
                env,
                SP2_SCALED,
                random_init,
                name,
                options={"seed": 0, "replay": args.replay, **(
                    {"fidelity": args.fidelity} if args.fidelity else {}
                )},
            )
            for name, prog in variants.items()
        ]
        measurements = simulate_sweep(
            points,
            jobs=args.jobs,
            cache=_engine_cache(args),
            trace_store=args.trace_cache,
        )
        print_table([m.row() for m in measurements])
        if args.metrics:
            from repro.engine.metrics import METRICS

            print(METRICS.report())
        return 0

    raise AssertionError("unreachable")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
