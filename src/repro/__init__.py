"""repro — Data-centric Multi-level Blocking (PLDI 1997), reproduced.

Public API re-exports the pieces a downstream user needs: the IR front
end, blockings and shackles, legality checking, code generation, and the
measurement substrate.  See README.md for a walkthrough.
"""

from repro.core import (
    CuttingPlanes,
    DataBlocking,
    DataShackle,
    ShackleProduct,
    check_legality,
    enumerate_block_instances,
    instance_schedule,
    multi_level,
    multipass_schedule,
    naive_code,
    search_shackles,
    shackle_refs,
    simplified_code,
    split_code,
)
from repro.ir import Program, ProgramBuilder, parse_program, to_source

__version__ = "1.0.0"

__all__ = [
    "CuttingPlanes",
    "DataBlocking",
    "DataShackle",
    "Program",
    "ProgramBuilder",
    "ShackleProduct",
    "check_legality",
    "enumerate_block_instances",
    "instance_schedule",
    "multi_level",
    "multipass_schedule",
    "naive_code",
    "parse_program",
    "search_shackles",
    "shackle_refs",
    "simplified_code",
    "split_code",
    "to_source",
]
