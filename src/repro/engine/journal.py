"""Resumable progress journals: crash-safe checkpoints for long work.

A :class:`Journal` is an append-only JSONL file recording the completed
units of one long-running invocation (a ``tune`` scoring sweep, a
``search`` legality census).  Each record is one line::

    {"k": <record key>, "check": <sha256 prefix>, "payload": {...}}

where ``check`` covers the canonical JSON of ``(k, payload)`` — a
record either round-trips bit-exact or is ignored.  The journal lives
at ``<root>/journal/<key[:2]>/<key>.jsonl``: ``key`` is the content
fingerprint of the *whole invocation* (program, grids, seed, ...), so
a resumed run finds exactly its own progress and a changed invocation
starts a fresh file — stale checkpoints can never leak across runs.

Crash model: the writer may die at ANY byte.  Appends go through one
``write + flush + fsync`` per record, so the only possible damage is a
torn final line; :meth:`Journal.replay` tolerates that (and any
corrupted line) by skipping records that fail to parse or checksum —
a bad checkpoint merely re-runs its unit of work, never poisons it.
Records are idempotent by construction (content-addressed work), so a
record appended twice — the duplicate-on-retry case — is harmless:
the last valid occurrence of a key wins and all occurrences agree.

Kill injection (tests): ``REPRO_JOURNAL_KILL_AFTER=N`` hard-exits the
process (``os._exit(1)``) immediately after the ``N``-th append in this
process; ``N:torn`` instead writes half of record ``N`` and dies
mid-line, exercising the torn-tail path.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path

from repro.engine.metrics import METRICS

KILL_ENV = "REPRO_JOURNAL_KILL_AFTER"

_appends = 0  # process-wide append count, for kill injection


def _canonical(key: str, payload) -> bytes:
    return json.dumps(
        {"k": key, "payload": payload}, sort_keys=True, separators=(",", ":")
    ).encode()


def _checksum(key: str, payload) -> str:
    return hashlib.sha256(_canonical(key, payload)).hexdigest()[:16]


def _kill_plan() -> tuple[int, bool] | None:
    """``(after_n, torn)`` from :data:`KILL_ENV`, or None."""
    raw = os.environ.get(KILL_ENV)
    if not raw:
        return None
    count, _, mode = raw.partition(":")
    try:
        return int(count), mode == "torn"
    except ValueError:
        return None


class Journal:
    """One invocation's append-only checkpoint log."""

    def __init__(self, root, key: str, *, metrics=METRICS) -> None:
        self.root = Path(root)
        self.key = key
        self.metrics = metrics
        self.path = self.root / "journal" / key[:2] / f"{key}.jsonl"
        self._fh = None

    # -- replay ------------------------------------------------------------------

    def replay(self) -> dict:
        """All intact records, keyed by record key (last valid wins).

        Torn tails, corrupt lines, and checksum mismatches are skipped
        (counted under ``engine.journal.skipped``) — a damaged record
        costs a re-run of one unit, nothing else.
        """
        records: dict[str, object] = {}
        if not self.path.exists():
            return records
        with open(self.path, "rb") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line.decode())
                    key, payload = record["k"], record["payload"]
                    intact = record.get("check") == _checksum(key, payload)
                except (ValueError, KeyError, TypeError, UnicodeDecodeError):
                    intact = False
                if not intact:
                    self.metrics.inc("engine.journal.skipped")
                    continue
                records[key] = payload
        if records:
            self.metrics.inc("engine.journal.resumed", len(records))
        return records

    # -- append ------------------------------------------------------------------

    def _handle(self):
        if self._fh is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fh = open(self.path, "ab")
        return self._fh

    def append(self, key: str, payload) -> None:
        """Durably record one completed unit of work."""
        global _appends
        record = {"k": key, "check": _checksum(key, payload), "payload": payload}
        line = json.dumps(record, sort_keys=True, separators=(",", ":")).encode()
        fh = self._handle()
        _appends += 1
        plan = _kill_plan()
        dying = plan is not None and _appends >= plan[0]
        if dying and plan[1]:
            # Torn mode: die mid-line — record N must NOT survive replay.
            fh.write(line[: max(1, len(line) // 2)])
            fh.flush()
            os.fsync(fh.fileno())
            os._exit(1)
        fh.write(line + b"\n")
        fh.flush()
        os.fsync(fh.fileno())
        self.metrics.inc("engine.journal.appends")
        if dying:
            # Clean mode: die right after record N became durable.
            os._exit(1)

    def close(self) -> None:
        if self._fh is not None:
            try:
                self._fh.close()
            finally:
                self._fh = None

    def __enter__(self) -> "Journal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def resolve_journal(journal, key: str):
    """``None`` | path-like | :class:`Journal` -> a Journal or None.

    The convenience spelling for entry points: callers pass a root
    directory (``--journal DIR``) and the invocation fingerprint; an
    existing Journal instance passes through (its key must match).
    """
    if journal is None:
        return None
    if isinstance(journal, Journal):
        if journal.key != key:
            raise ValueError(
                f"journal keyed for {journal.key[:12]}... reused for {key[:12]}..."
            )
        return journal
    return Journal(journal, key)
