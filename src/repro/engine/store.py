"""Crash-safe publish primitives shared by the on-disk stores.

Several daemon processes (see :mod:`repro.service.fabric`) publish into
one content-addressed store concurrently, and any of them can be killed
at any instruction.  The stores (:class:`~repro.engine.cache.ResultCache`,
:class:`~repro.memsim.trace.TraceStore`) get their crash safety from
three primitives here:

* :func:`atomic_publish` — write to a *unique* temp file (pid + thread +
  sequence number, so two threads of one daemon can never collide on the
  same temp path), then ``os.replace`` into place.  A reader therefore
  only ever observes a complete entry or no entry; a writer killed
  mid-write leaves a temp file, never a torn entry.
* :class:`PublishLease` — single-writer election per fingerprint, built
  on ``O_CREAT|O_EXCL`` lock files.  When N daemons finish computing the
  same job, one wins the lease and publishes; the losers wait briefly
  for the winner's entry to appear and only publish themselves if it
  does not (the winner was killed mid-publish) — so the common case is
  exactly one disk write per fingerprint, and the crash case still
  *never loses the value*.  Entries are content-addressed, so a rare
  double publish replaces an entry with identical bytes and is harmless.
* :func:`sweep_orphans` — remove temp files and stale lock files, but
  only past an **age threshold** (:data:`ORPHAN_AGE_SECONDS` /
  :data:`LOCK_STALE_SECONDS`): a young temp file may be a live writer
  mid-publish in another process, and deleting it would tear that
  publish.  A lock whose owner pid is provably dead is reclaimed
  regardless of age.

Rename is the backbone (it is atomic on POSIX); the lease only exists
where rename is insufficient — electing *which* process renames, and
letting a crashed winner's lock be detected (dead pid or stale age) and
broken by a successor.
"""

from __future__ import annotations

import errno
import itertools
import os
import threading
import time
from pathlib import Path

from repro.engine.metrics import METRICS

ORPHAN_AGE_SECONDS = 60.0
"""Temp files younger than this are presumed to belong to a live writer
mid-publish and are never swept — sweeping them would race the writer's
``os.replace`` and tear its publish."""

LOCK_STALE_SECONDS = 30.0
"""A publish lease older than this is presumed abandoned (publishes take
milliseconds); it may be broken by the next contender.  A lease whose
recorded pid is dead is broken immediately, whatever its age."""

LEASE_WAIT_SECONDS = 0.25
"""How long an election loser waits for the winner's entry to appear
before concluding the winner died mid-publish and publishing itself."""

_TMP_MARKER = ".tmp."
_LOCK_SUFFIX = ".lock"

_seq = itertools.count()
_seq_lock = threading.Lock()


def _next_seq() -> int:
    with _seq_lock:
        return next(_seq)


def unique_tmp(path: Path) -> Path:
    """A temp path unique across processes *and* threads.

    ``<name>.tmp.<pid>.<tid>.<seq>`` — matched by the ``*.tmp.*`` orphan
    glob, never reused within a process, and never colliding between
    processes (pid) or threads (tid + sequence).
    """
    return path.with_name(
        f"{path.name}{_TMP_MARKER}{os.getpid()}.{threading.get_native_id()}.{_next_seq()}"
    )


def is_tmp(path: Path) -> bool:
    return _TMP_MARKER in path.name


def atomic_publish(path: Path, data: bytes | None = None, writer=None) -> None:
    """Publish a complete file at ``path`` atomically.

    Either ``data`` (bytes written directly) or ``writer`` (a callable
    receiving an open binary file handle) supplies the content.  The
    content lands in a unique temp file first and is renamed into place,
    so concurrent publishers and killed writers can never expose a torn
    entry; at worst they leave a temp file for :func:`sweep_orphans`.
    """
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = unique_tmp(path)
    try:
        with open(tmp, "wb") as fh:
            if writer is not None:
                writer(fh)
            else:
                fh.write(data or b"")
        os.replace(tmp, path)
    except BaseException:
        # Never leave the temp behind on an orderly failure; a killed
        # process obviously skips this and relies on the sweep.
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def pid_alive(pid: int) -> bool:
    """Best-effort liveness probe for a lock owner's pid."""
    if pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True  # alive, owned by someone else
    except OSError:
        return True  # unknown: presume alive, fall back to age staleness
    return True


class PublishLease:
    """Single-writer election for one store entry.

    ``acquire()`` attempts to create ``<path>.lock`` with
    ``O_CREAT|O_EXCL`` (atomic on POSIX).  The file body records
    ``pid:monotonic-free timestamp`` for diagnostics; staleness is judged
    by the lock file's mtime and the recorded pid's liveness, so a
    contender can break the lock of a writer that died between election
    and publish.
    """

    def __init__(self, path: Path, stale_after: float = LOCK_STALE_SECONDS) -> None:
        self.path = Path(path)
        self.lock_path = self.path.with_name(self.path.name + _LOCK_SUFFIX)
        self.stale_after = stale_after
        self._held = False

    def _owner_pid(self) -> int:
        try:
            text = self.lock_path.read_text()
            return int(text.split(":", 1)[0])
        except (OSError, ValueError):
            return -1

    def _is_stale(self) -> bool:
        try:
            age = time.time() - self.lock_path.stat().st_mtime
        except OSError:
            return False  # vanished: the owner released it; not stale
        if age > self.stale_after:
            return True
        owner = self._owner_pid()
        return owner > 0 and not pid_alive(owner)

    def break_stale(self) -> bool:
        """Remove the lock if its owner is dead or it has aged out."""
        if not self._is_stale():
            return False
        try:
            os.unlink(self.lock_path)
        except OSError:
            return False  # someone else broke or released it first
        METRICS.inc("engine.store.locks_broken")
        return True

    def acquire(self) -> bool:
        """Try to win the election; True iff this caller may publish."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        for _ in range(2):  # second try only after breaking a stale lock
            try:
                fd = os.open(
                    self.lock_path, os.O_CREAT | os.O_EXCL | os.O_WRONLY, 0o644
                )
            except FileExistsError:
                if not self.break_stale():
                    return False
                continue
            except OSError as exc:
                if exc.errno == errno.ENOENT:  # parent raced a clear()
                    return False
                raise
            try:
                os.write(fd, f"{os.getpid()}:{time.time():.3f}".encode())
            finally:
                os.close(fd)
            self._held = True
            return True
        return False

    def release(self) -> None:
        if not self._held:
            return
        self._held = False
        try:
            os.unlink(self.lock_path)
        except OSError:
            pass  # broken by a contender that judged us stale

    def wait_for_entry(self, timeout: float = LEASE_WAIT_SECONDS) -> bool:
        """Wait for the election winner's entry to appear at ``path``.

        Returns True once the entry exists; False after ``timeout`` —
        the winner presumably died mid-publish and the caller should
        publish the value itself (losing it would be worse than a
        harmless duplicate publish of identical content).
        """
        deadline = time.monotonic() + timeout
        while True:
            if self.path.exists():
                return True
            if time.monotonic() >= deadline:
                return False
            time.sleep(0.005)

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, *exc_info) -> None:
        self.release()


def elected_publish(
    path: Path,
    data: bytes | None = None,
    writer=None,
    *,
    overwrite: bool = False,
    metrics=METRICS,
    counter_prefix: str = "engine.store",
) -> str:
    """Publish ``path`` at most once across concurrent writers.

    The single-writer election for content-addressed stores: if the
    entry already exists, nothing is written (``"dedup"``); if another
    *live* writer holds the lease, this caller waits briefly for that
    writer's entry (``"yield"``) and only publishes itself when the
    entry never appears (``"rescue"`` — the winner was killed between
    election and rename).  ``overwrite=True`` skips the exists fast
    path for entries whose content can legitimately grow under one
    fingerprint (extended histogram profiles); last complete write wins.
    Returns the outcome: ``"published"``, ``"dedup"``, ``"yield"``, or
    ``"rescue"`` — the caller wrote the entry in all but the middle two.
    """
    if not overwrite and path.exists():
        metrics.inc(f"{counter_prefix}.publish_dedup")
        return "dedup"
    lease = PublishLease(path)
    if lease.acquire():
        try:
            atomic_publish(path, data, writer)
        finally:
            lease.release()
        metrics.inc(f"{counter_prefix}.publishes")
        return "published"
    if not overwrite and lease.wait_for_entry():
        metrics.inc(f"{counter_prefix}.publish_yield")
        return "yield"
    # The elected writer vanished without publishing (or this is an
    # overwrite, where yielding could lose the extension): write it
    # ourselves.  Entries are complete-on-rename, so even if the winner
    # was merely slow and both renames land, nothing tears.
    atomic_publish(path, data, writer)
    metrics.inc(f"{counter_prefix}.publish_rescue")
    return "rescue"


def sweep_orphans(
    root: Path,
    *,
    max_age: float = ORPHAN_AGE_SECONDS,
    lock_stale: float = LOCK_STALE_SECONDS,
    skip_dirs: tuple[str, ...] = ("quarantine",),
    metrics=METRICS,
) -> dict:
    """Remove aged-out temp files and stale locks under ``root``.

    Only files older than the thresholds go — a young ``*.tmp.*`` is a
    live publish in flight in some other process, and removing it would
    tear that publish (the bug the satellite fix closes).  Locks held by
    dead pids are reclaimed regardless of age.  Returns counts:
    ``{"tmp": removed temps, "locks": removed locks, "kept": skipped
    young files}``.
    """
    root = Path(root)
    removed_tmp = removed_locks = kept = 0
    if not root.exists():
        return {"tmp": 0, "locks": 0, "kept": 0}
    now = time.time()
    for bucket in root.iterdir():
        if not bucket.is_dir() or bucket.name in skip_dirs:
            continue
        for entry in bucket.iterdir():
            name = entry.name
            if _TMP_MARKER in name:
                try:
                    age = now - entry.stat().st_mtime
                except OSError:
                    continue  # finished (renamed away) under us
                if age < max_age:
                    kept += 1
                    continue
                try:
                    entry.unlink()
                    removed_tmp += 1
                except OSError:
                    pass
            elif name.endswith(_LOCK_SUFFIX):
                lease = PublishLease(
                    entry.with_name(name[: -len(_LOCK_SUFFIX)]),
                    stale_after=lock_stale,
                )
                if lease.break_stale():
                    removed_locks += 1
    if removed_tmp:
        metrics.inc("engine.store.orphans_swept", removed_tmp)
    return {"tmp": removed_tmp, "locks": removed_locks, "kept": kept}
