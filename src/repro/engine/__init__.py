"""repro.engine — the execution substrate for compile/search/simulate work.

Four pieces (see docs/ENGINE.md for the architecture):

* :mod:`repro.engine.jobs` — canonical job specs with stable content
  fingerprints (program source + blocking + options);
* :mod:`repro.engine.cache` — two-tier content-addressed result cache
  (in-memory LRU over an on-disk store);
* :mod:`repro.engine.pool` — an order-preserving process pool with a
  deterministic serial fallback;
* :mod:`repro.engine.metrics` — process-global counters and timers
  instrumenting the polyhedral core and the cache simulator.

Plus the fault-tolerance layer (see docs/ROBUSTNESS.md):

* :mod:`repro.engine.supervise` — per-job retries, timeouts, deadlines,
  dead-worker pool rebuilds, structured :class:`JobFailure` results;
* :mod:`repro.engine.chaos` — deterministic, seeded fault injection
  (``REPRO_CHAOS`` / ``--chaos``).

Only the dependency-free modules (metrics, cache) are imported eagerly:
``repro.polyhedra`` and ``repro.memsim`` import them from *below* the
rest of the package, so ``jobs`` and ``pool`` (which depend on
``repro.core``) load lazily on first attribute access.
"""

from __future__ import annotations

from repro.engine.cache import DEFAULT_CACHE_DIR, ResultCache, default_cache_root
from repro.engine.metrics import METRICS, MetricsRegistry

_LAZY = {
    "JobSpec": "jobs",
    "canonical_json": "jobs",
    "fingerprint": "jobs",
    "legality_job": "jobs",
    "codegen_job": "jobs",
    "search_job": "jobs",
    "simulate_job": "jobs",
    "execute": "jobs",
    "WorkerPool": "pool",
    "run_jobs": "pool",
    "default_jobs": "pool",
    "RetryPolicy": "supervise",
    "JobFailure": "supervise",
    "supervised_map": "supervise",
    "ChaosSpec": "chaos",
    "parse_chaos_spec": "chaos",
}

__all__ = [
    "DEFAULT_CACHE_DIR",
    "METRICS",
    "MetricsRegistry",
    "ResultCache",
    "default_cache_root",
    *sorted(_LAZY),
]


def __getattr__(name: str):
    if name in _LAZY:
        import importlib

        module = importlib.import_module(f"repro.engine.{_LAZY[name]}")
        value = getattr(module, name)
        globals()[name] = value
        return value
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
