"""Deterministic, seeded fault injection for the execution engine.

A fault-tolerant substrate is only trustworthy if its fault paths are
exercised; this module injects the faults on demand, *deterministically*:
every injection decision is a pure function of ``(chaos seed, fault
name, job key, attempt number)`` through SHA-256, so a chaos run is
exactly reproducible, across processes and machines, from its spec
string alone.

Faults (all rates are probabilities in ``[0, 1]``):

* ``kill``    — the worker process exits hard (``os._exit(1)``) before
  running the job, breaking the whole pool mid-batch; serial runs raise
  :class:`WorkerKilled` instead so the parent process survives.
* ``delay``   — an injected ``sleep`` before the job runs (the optional
  second parameter is the delay in seconds, default ``0.05``), long
  enough to trip tight per-job timeouts.
* ``budget``  — the job raises a forced
  :class:`~repro.polyhedra.budget.SolverBudget` before doing any work,
  simulating a feasibility query that exhausted its budget.
* ``corrupt`` — the result cache scrambles the on-disk entry it just
  wrote, so a later read must detect and quarantine it.

``kill``/``delay``/``budget`` fire on a job's *first* attempt only, so
bounded retries always converge and results under chaos are bit-identical
to a fault-free run — the property the fuzzer's ``chaos`` check and the
CI chaos smoke step assert.  ``corrupt`` targets cache files, which are
healed by quarantine-and-recompute, preserving the same property.

The service daemon injects a second family of *transport* faults on its
responses — ``reset``/``truncate``/``dup``/``lag``, see
:data:`TRANSPORT_FAULTS` and :func:`transport_plan` — keyed by job
fingerprint and per-daemon serve count with the same first-attempt-only
discipline, so the resilient client's retries and failover mask every
one of them (the fuzzer's ``fabric`` differential asserts this).

Activation: the ``REPRO_CHAOS`` environment variable (inherited by
worker processes) or the ``--chaos`` CLI flag, both taking a spec like::

    kill=0.1,delay=0.2:0.05,corrupt=0.3,budget=0.1,seed=7

Production code never injects anything unless a spec is active.
"""

from __future__ import annotations

import hashlib
import os
import time
from dataclasses import dataclass, replace

from repro.engine.metrics import METRICS

ENV_VAR = "REPRO_CHAOS"

JOB_FAULTS = ("kill", "delay", "corrupt", "budget")

TRANSPORT_FAULTS = ("reset", "truncate", "dup", "lag")
"""Service-transport faults, injected by the daemon on *responses*:

* ``reset``    — close the connection without answering (a connection
  reset from the client's point of view).
* ``truncate`` — write a partial frame, then close (torn response).
* ``dup``      — write the complete response frame twice (a duplicate
  delivery; the client's request-id matching must tolerate it).
* ``lag``      — sleep before writing (tail-latency injection; the
  optional second parameter is the delay in seconds, default ``0.01``).

Decisions are keyed by ``(job fingerprint, per-daemon serve count)`` and
fire only on a daemon's *first* serve of a fingerprint — so a client
retry (or a failover to a replica that has already served the job) always
converges, keeping chaos runs bit-identical to clean ones."""

FAULTS = JOB_FAULTS + TRANSPORT_FAULTS

DEFAULT_DELAY_SECONDS = 0.05

DEFAULT_LAG_SECONDS = 0.01


class WorkerKilled(Exception):
    """Stands in for ``os._exit`` when the job runs in the parent process."""


@dataclass(frozen=True)
class ChaosSpec:
    """Parsed fault rates plus the decision seed."""

    seed: int = 0
    kill: float = 0.0
    delay: float = 0.0
    delay_seconds: float = DEFAULT_DELAY_SECONDS
    corrupt: float = 0.0
    budget: float = 0.0
    reset: float = 0.0
    truncate: float = 0.0
    dup: float = 0.0
    lag: float = 0.0
    lag_seconds: float = DEFAULT_LAG_SECONDS

    @property
    def enabled(self) -> bool:
        return any(getattr(self, fault) > 0 for fault in FAULTS)

    def describe(self) -> str:
        """The spec back as its grammar text (round-trips through parse)."""
        parts = [f"seed={self.seed}"]
        for fault in FAULTS:
            rate = getattr(self, fault)
            if rate > 0:
                token = f"{fault}={rate:g}"
                if fault == "delay" and self.delay_seconds != DEFAULT_DELAY_SECONDS:
                    token += f":{self.delay_seconds:g}"
                if fault == "lag" and self.lag_seconds != DEFAULT_LAG_SECONDS:
                    token += f":{self.lag_seconds:g}"
                parts.append(token)
        return ",".join(parts)


def parse_spec(text: str) -> ChaosSpec:
    """Parse the chaos grammar: ``fault=rate[:param]`` tokens plus ``seed=N``.

    Raises ``ValueError`` on unknown faults, malformed rates, or rates
    outside ``[0, 1]``.
    """
    spec = ChaosSpec()
    for token in filter(None, (t.strip() for t in text.split(","))):
        name, eq, value = token.partition("=")
        if not eq:
            raise ValueError(
                f"bad chaos token {token!r}: expected fault=rate[:param] or seed=N"
            )
        if name == "seed":
            spec = replace(spec, seed=int(value))
            continue
        if name not in FAULTS:
            raise ValueError(f"unknown chaos fault {name!r} (known: {FAULTS})")
        value, _, param = value.partition(":")
        rate = float(value)
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"chaos rate for {name!r} must be in [0, 1], got {rate}")
        spec = replace(spec, **{name: rate})
        if param:
            if name == "delay":
                spec = replace(spec, delay_seconds=float(param))
            elif name == "lag":
                spec = replace(spec, lag_seconds=float(param))
            else:
                raise ValueError(f"chaos fault {name!r} takes no parameter")
    return spec


parse_chaos_spec = parse_spec
"""Package-level alias (``repro.engine.parse_chaos_spec``)."""


def _spec_from_env() -> ChaosSpec | None:
    text = os.environ.get(ENV_VAR)
    return parse_spec(text) if text else None


_ACTIVE: ChaosSpec | None = _spec_from_env()


def configure(spec: ChaosSpec | str | None) -> ChaosSpec | None:
    """Install a chaos spec (or None to disable); returns the previous one.

    Affects this process only: worker processes configure themselves from
    ``REPRO_CHAOS``, which the CLI sets alongside calling this.
    """
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = parse_spec(spec) if isinstance(spec, str) else spec
    return previous


def active() -> ChaosSpec | None:
    return _ACTIVE


def decide(spec: ChaosSpec, fault: str, key: str, attempt: int = 0) -> bool:
    """The deterministic injection decision for one (fault, job, attempt).

    A SHA-256 draw over ``seed:fault:key:attempt`` compared against the
    fault's rate — stable across processes, platforms and Python hash
    randomization.
    """
    rate = getattr(spec, fault)
    if rate <= 0:
        return False
    digest = hashlib.sha256(f"{spec.seed}:{fault}:{key}:{attempt}".encode()).digest()
    return int.from_bytes(digest[:8], "big") < rate * (1 << 64)


def should(fault: str, key: str, attempt: int = 0) -> bool:
    """True iff the active spec injects ``fault`` for this job attempt.

    Job-level faults (kill/delay/budget) fire on attempt 0 only, so a
    retried job always completes; ``corrupt`` ignores the attempt.
    """
    spec = _ACTIVE
    if spec is None:
        return False
    if fault != "corrupt" and attempt > 0:
        return False
    return decide(spec, fault, key, 0 if fault == "corrupt" else attempt)


def apply_job_faults(key: str, attempt: int, in_worker: bool) -> None:
    """Inject the job-level faults for one execution attempt.

    Called by the supervised executor immediately before running a job —
    inside the worker process on the parallel path (``in_worker=True``),
    where ``kill`` is a real ``os._exit(1)``; in the parent on the serial
    path, where it degrades to a raised :class:`WorkerKilled`.  Counters
    incremented inside workers die with them; the supervisor's own
    retry/rebuild counters are the parent-side record.
    """
    if _ACTIVE is None:
        return
    if should("delay", key, attempt):
        METRICS.inc("chaos.injected.delay")
        time.sleep(_ACTIVE.delay_seconds)
    if should("budget", key, attempt):
        METRICS.inc("chaos.injected.budget")
        from repro.polyhedra.budget import SolverBudget

        raise SolverBudget("chaos", 0)
    if should("kill", key, attempt):
        METRICS.inc("chaos.injected.kill")
        if in_worker:
            os._exit(1)
        raise WorkerKilled(f"chaos kill for job {key}")


def corrupt_bytes(original: bytes) -> bytes:
    """What an injected corruption writes: a torn, undecodable prefix."""
    return b'{"torn": ' + original[: max(1, len(original) // 2)]


def maybe_corrupt_file(path, key: str) -> bool:
    """Scramble a just-written cache entry when the spec says so.

    Called by the disk caches after their atomic rename; returns True if
    the file was corrupted (counted under ``chaos.injected.corrupt``).
    """
    if not should("corrupt", key):
        return False
    METRICS.inc("chaos.injected.corrupt")
    data = path.read_bytes()
    path.write_bytes(corrupt_bytes(data))
    return True


def transport_plan(key: str, attempt: int = 0) -> tuple[str, ...]:
    """The transport faults to inject for one response.

    ``key`` is the job fingerprint; ``attempt`` is the serving daemon's
    serve count for that fingerprint.  Faults fire only on a daemon's
    first serve (``attempt == 0``), so bounded client retries and
    failover always converge — the same discipline as the job faults.
    Returns the subset of :data:`TRANSPORT_FAULTS` to apply, in a fixed
    order (``lag`` first, then ``dup``; ``reset`` and ``truncate`` are
    terminal — the server applies at most one of those, ``reset``
    winning).
    """
    spec = _ACTIVE
    if spec is None or attempt > 0:
        return ()
    return tuple(f for f in TRANSPORT_FAULTS if decide(spec, f, key, 0))


STORE_MUTATION_ENV = "REPRO_STORE_MUTATION"
"""Activates a planted *store-layer* bug by name (see
:mod:`repro.fuzz.mutations`): unlike job-payload mutations, these live
below the executors — in the publish path itself — so they are switched
through the environment, which daemons inherit from the fuzz harness."""

_republish_seq = 0


def store_mutation() -> str | None:
    """The active planted store mutation name, or None."""
    return os.environ.get(STORE_MUTATION_ENV) or None


def mutate_store_value(value):
    """Apply the active store mutation to a value about to be cached.

    ``fabric-republish`` models a retry that double-publishes a
    *non-idempotent* entry: every publish stamps a per-process sequence
    number into the stored value, so what a daemon later reads back from
    the shared cache differs from what was computed — exactly the bug
    class only the fabric differential (cache-tier reads compared
    against a clean baseline) can see.
    """
    global _republish_seq
    if store_mutation() != "fabric-republish":
        return value
    _republish_seq += 1
    METRICS.inc("chaos.mutated.store_publish")
    if isinstance(value, dict):
        return {**value, "__republish__": _republish_seq}
    return {"__republish__": _republish_seq, "value": value}
