"""Engine metrics: counters and timers for the compilation pipeline.

One process-global :data:`METRICS` registry accumulates named counters
(legality checks run, Omega feasibility calls, Fourier-Motzkin
eliminations, cache-simulator accesses, trace capture/replay events —
``memsim.trace_capture``, ``memsim.trace_replay``,
``memsim.trace_cache_hit`` — and result-cache hits/misses) plus
wall-clock timers.  Instrumented modules pay one dict update per event,
so the hooks are cheap enough to leave on permanently.

This module must stay free of ``repro`` imports: it is imported from
``repro.polyhedra`` and ``repro.memsim``, which sit below the engine in
the dependency order.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager


class MetricsRegistry:
    """Named counters plus named (count, total-seconds) timers."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.counters: dict[str, float] = {}
        self.timers: dict[str, list[float]] = {}  # name -> [count, seconds]

    # -- counters ----------------------------------------------------------------

    def inc(self, name: str, amount: float = 1) -> None:
        """Add ``amount`` to counter ``name`` (creating it at zero)."""
        with self._lock:
            self.counters[name] = self.counters.get(name, 0) + amount

    def get(self, name: str, default: float = 0) -> float:
        """Current value of counter ``name``."""
        return self.counters.get(name, default)

    # -- timers ------------------------------------------------------------------

    def observe(self, name: str, seconds: float) -> None:
        """Record one timed event of ``seconds`` under timer ``name``."""
        with self._lock:
            entry = self.timers.setdefault(name, [0, 0.0])
            entry[0] += 1
            entry[1] += seconds

    @contextmanager
    def timer(self, name: str):
        """Context manager: time the enclosed block under ``name``."""
        start = time.perf_counter()
        try:
            yield self
        finally:
            self.observe(name, time.perf_counter() - start)

    # -- lifecycle / reporting ---------------------------------------------------

    def reset(self) -> None:
        with self._lock:
            self.counters.clear()
            self.timers.clear()

    def snapshot(self) -> dict:
        """A plain-dict copy (counters, timers) safe to serialize."""
        with self._lock:
            return {
                "counters": dict(self.counters),
                "timers": {
                    name: {"count": entry[0], "seconds": entry[1]}
                    for name, entry in self.timers.items()
                },
            }

    def merge(self, snapshot: dict) -> None:
        """Fold another registry's :meth:`snapshot` into this one.

        Used to surface metrics gathered inside worker processes, which
        do not share the parent's registry.
        """
        for name, value in snapshot.get("counters", {}).items():
            self.inc(name, value)
        for name, entry in snapshot.get("timers", {}).items():
            with self._lock:
                slot = self.timers.setdefault(name, [0, 0.0])
                slot[0] += entry["count"]
                slot[1] += entry["seconds"]

    def report(self) -> str:
        """Aligned text report of all counters and timers."""
        snap = self.snapshot()
        lines = ["engine metrics", "--------------"]
        counters = snap["counters"]
        if counters:
            width = max(len(n) for n in counters)
            for name in sorted(counters):
                value = counters[name]
                shown = int(value) if float(value).is_integer() else round(value, 4)
                lines.append(f"{name:<{width}}  {shown}")
            hits = counters.get("engine.cache.hits", 0)
            misses = counters.get("engine.cache.misses", 0)
            if hits + misses:
                rate = hits / (hits + misses)
                lines.append(f"{'engine.cache.hit_rate':<{width}}  {rate:.1%}")
            faults = {
                label: counters[name]
                for name, label in (
                    ("engine.supervise.retries", "retries"),
                    ("engine.supervise.timeouts", "timeouts"),
                    ("engine.supervise.pool_rebuilds", "pool_rebuilds"),
                    ("engine.supervise.failures", "failures"),
                    ("engine.supervise.deadline_abandoned", "abandoned"),
                    ("engine.cache.quarantined", "quarantined"),
                    ("memsim.trace_quarantined", "traces_quarantined"),
                    ("solver.budget_exceeded", "solver_budget"),
                    ("legality.budget_exceeded", "legality_budget"),
                )
                if counters.get(name)
            }
            if faults:
                # One-line triage summary of everything the robustness
                # layer absorbed (see docs/ROBUSTNESS.md).
                lines.append(
                    "fault events: "
                    + ", ".join(f"{k}={int(v)}" for k, v in faults.items())
                )
        timers = snap["timers"]
        if timers:
            lines.append("")
            width = max(len(n) for n in timers)
            for name in sorted(timers):
                entry = timers[name]
                lines.append(
                    f"{name:<{width}}  {entry['count']} calls  {entry['seconds']:.4f}s"
                )
        if not counters and not timers:
            lines.append("(no events recorded)")
        return "\n".join(lines)


METRICS = MetricsRegistry()
"""The process-global registry every instrumented module reports into."""
