"""Engine metrics: counters, timers, gauges and latency series.

One process-global :data:`METRICS` registry accumulates named counters
(legality checks run, Omega feasibility calls, Fourier-Motzkin
eliminations, cache-simulator accesses, trace capture/replay events —
``memsim.trace_capture``, ``memsim.trace_replay``,
``memsim.trace_cache_hit`` — and result-cache hits/misses) plus
wall-clock timers, last-value **gauges** (queue depth, in-flight
requests) and bounded-reservoir **series** from which percentiles
(p50/p90/p99) are computed at snapshot time — the compilation daemon
(:mod:`repro.service`) records per-request-kind latencies here.
Instrumented modules pay one dict update per event, so the hooks are
cheap enough to leave on permanently.

Every mutator and reader takes the registry lock, so the registry is
safe to share between the daemon's handler threads, the supervisor, and
the event loop.

This module must stay free of ``repro`` imports: it is imported from
``repro.polyhedra`` and ``repro.memsim``, which sit below the engine in
the dependency order.
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from contextlib import contextmanager

SERIES_RESERVOIR = 8192
"""Samples kept per series: enough for stable tail percentiles while
bounding memory for week-long daemons (older samples age out FIFO)."""

_PERCENTILES = (50.0, 90.0, 99.0)


def percentile(samples: list[float], q: float) -> float:
    """Nearest-rank percentile of pre-sorted ``samples`` (q in [0, 100])."""
    if not samples:
        return 0.0
    rank = max(1, -(-len(samples) * q // 100))  # ceil without float error
    return samples[int(rank) - 1]


class _Series:
    """One bounded sample reservoir with lifetime count/total."""

    __slots__ = ("count", "total", "samples")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.samples: deque[float] = deque(maxlen=SERIES_RESERVOIR)

    def add(self, value: float) -> None:
        self.count += 1
        self.total += value
        self.samples.append(value)

    def summary(self) -> dict:
        ordered = sorted(self.samples)
        out = {
            "count": self.count,
            "total": round(self.total, 6),
            "max": ordered[-1] if ordered else 0.0,
        }
        for q in _PERCENTILES:
            out[f"p{q:g}"] = percentile(ordered, q)
        return out


class MetricsRegistry:
    """Named counters, (count, total-seconds) timers, gauges and series."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.counters: dict[str, float] = {}
        self.timers: dict[str, list[float]] = {}  # name -> [count, seconds]
        self.gauges: dict[str, float] = {}
        self.series: dict[str, _Series] = {}

    # -- counters ----------------------------------------------------------------

    def inc(self, name: str, amount: float = 1) -> None:
        """Add ``amount`` to counter ``name`` (creating it at zero)."""
        with self._lock:
            self.counters[name] = self.counters.get(name, 0) + amount

    def get(self, name: str, default: float = 0) -> float:
        """Current value of counter ``name``."""
        with self._lock:
            return self.counters.get(name, default)

    # -- gauges ------------------------------------------------------------------

    def set_gauge(self, name: str, value: float) -> None:
        """Set last-value gauge ``name`` (queue depth, in-flight, ...)."""
        with self._lock:
            self.gauges[name] = value

    def get_gauge(self, name: str, default: float = 0) -> float:
        with self._lock:
            return self.gauges.get(name, default)

    # -- series ------------------------------------------------------------------

    def record(self, name: str, value: float) -> None:
        """Add one sample to series ``name`` (latencies, batch sizes)."""
        with self._lock:
            series = self.series.get(name)
            if series is None:
                series = self.series[name] = _Series()
            series.add(value)

    # -- timers ------------------------------------------------------------------

    def observe(self, name: str, seconds: float) -> None:
        """Record one timed event of ``seconds`` under timer ``name``."""
        with self._lock:
            entry = self.timers.setdefault(name, [0, 0.0])
            entry[0] += 1
            entry[1] += seconds

    @contextmanager
    def timer(self, name: str):
        """Context manager: time the enclosed block under ``name``."""
        start = time.perf_counter()
        try:
            yield self
        finally:
            self.observe(name, time.perf_counter() - start)

    # -- lifecycle / reporting ---------------------------------------------------

    def reset(self) -> None:
        with self._lock:
            self.counters.clear()
            self.timers.clear()
            self.gauges.clear()
            self.series.clear()

    def snapshot(self) -> dict:
        """A plain-dict copy (counters, timers, gauges, series summaries)
        safe to serialize; series percentiles are computed here."""
        with self._lock:
            snap = {
                "counters": dict(self.counters),
                "timers": {
                    name: {"count": entry[0], "seconds": entry[1]}
                    for name, entry in self.timers.items()
                },
            }
            if self.gauges:
                snap["gauges"] = dict(self.gauges)
            if self.series:
                snap["series"] = {
                    name: series.summary() for name, series in self.series.items()
                }
            return snap

    def merge(self, snapshot: dict) -> None:
        """Fold another registry's :meth:`snapshot` into this one.

        Used to surface metrics gathered inside worker processes, which
        do not share the parent's registry.  Gauges take the incoming
        value (last write wins); series summaries cannot be merged
        sample-by-sample, so only their counts fold in, as counters.
        """
        for name, value in snapshot.get("counters", {}).items():
            self.inc(name, value)
        for name, entry in snapshot.get("timers", {}).items():
            with self._lock:
                slot = self.timers.setdefault(name, [0, 0.0])
                slot[0] += entry["count"]
                slot[1] += entry["seconds"]
        for name, value in snapshot.get("gauges", {}).items():
            self.set_gauge(name, value)
        for name, entry in snapshot.get("series", {}).items():
            self.inc(f"{name}.merged", entry.get("count", 0))

    def report(self, fmt: str = "text") -> str:
        """Report of all counters/timers/gauges/series.

        ``fmt="text"`` (default) is the aligned human-readable report;
        ``fmt="json"`` is the canonical machine-readable snapshot — one
        serialization shared by ``--metrics``, the daemon's ``stats``
        RPC and the load generator (parse it back with ``json.loads``).
        """
        if fmt == "json":
            return json.dumps(self.snapshot(), sort_keys=True)
        if fmt != "text":
            raise ValueError(f"unknown metrics report format {fmt!r}")
        snap = self.snapshot()
        lines = ["engine metrics", "--------------"]
        counters = snap["counters"]
        if counters:
            width = max(len(n) for n in counters)
            for name in sorted(counters):
                value = counters[name]
                shown = int(value) if float(value).is_integer() else round(value, 4)
                lines.append(f"{name:<{width}}  {shown}")
            hits = counters.get("engine.cache.hits", 0)
            misses = counters.get("engine.cache.misses", 0)
            if hits + misses:
                rate = hits / (hits + misses)
                lines.append(f"{'engine.cache.hit_rate':<{width}}  {rate:.1%}")
            faults = {
                label: counters[name]
                for name, label in (
                    ("engine.supervise.retries", "retries"),
                    ("engine.supervise.timeouts", "timeouts"),
                    ("engine.supervise.pool_rebuilds", "pool_rebuilds"),
                    ("engine.supervise.failures", "failures"),
                    ("engine.supervise.deadline_abandoned", "abandoned"),
                    ("engine.cache.quarantined", "quarantined"),
                    ("memsim.trace_quarantined", "traces_quarantined"),
                    ("memsim.histogram_quarantined", "histograms_quarantined"),
                    ("solver.budget_exceeded", "solver_budget"),
                    ("legality.budget_exceeded", "legality_budget"),
                )
                if counters.get(name)
            }
            if faults:
                # One-line triage summary of everything the robustness
                # layer absorbed (see docs/ROBUSTNESS.md).
                lines.append(
                    "fault events: "
                    + ", ".join(f"{k}={int(v)}" for k, v in faults.items())
                )
            batched = {
                label: counters[name]
                for name, label in (
                    ("solver.batch_families", "families"),
                    ("solver.batch_members", "members"),
                    ("solver.batch_prefix_reuse", "prefix_reuse"),
                    ("solver.int128_combines", "int128"),
                    ("legality.witness_transfer", "witness_transfers"),
                )
                if counters.get(name)
            }
            if batched:
                # One-line summary of the family-solve path: how much
                # work the batched solver amortized (docs/SOLVER.md).
                lines.append(
                    "batched solves: "
                    + ", ".join(f"{k}={int(v)}" for k, v in batched.items())
                )
            analytic = {
                label: counters[name]
                for name, label in (
                    ("memsim.histogram_pass", "histograms"),
                    ("memsim.histogram_cache_hit", "hist_cache_hits"),
                    ("memsim.histogram_cache_miss", "hist_cache_misses"),
                    ("memsim.ladder_pass", "ladders"),
                    ("memsim.analytic_predict", "predictions"),
                    ("memsim.analytic_exact", "exact"),
                    ("memsim.conflict_exact", "conflict_exact"),
                    ("memsim.conflict_fallback", "conflict_fallback"),
                    ("memsim.trace_replay", "replays"),
                )
                if counters.get(name)
            }
            if analytic.get("histograms") or analytic.get("predictions"):
                # One-line summary of the trace-free tier: geometry
                # questions answered from reuse histograms instead of
                # replays (docs/MEMSIM.md).
                lines.append(
                    "analytic memsim: "
                    + ", ".join(f"{k}={int(v)}" for k, v in analytic.items())
                )
            parametric = {
                label: counters[name]
                for name, label in (
                    ("memsim.family_fit", "fits"),
                    ("memsim.family_cache_hit", "family_cache_hits"),
                    ("memsim.parametric_predict", "predictions"),
                    ("memsim.parametric_fallback", "fallbacks"),
                )
                if counters.get(name)
            }
            if parametric.get("fits") or parametric.get("predictions"):
                # One-line summary of the size-free tier: geometry
                # questions at unseen sizes answered from fitted
                # histogram families (docs/MEMSIM.md).
                lines.append(
                    "parametric memsim: "
                    + ", ".join(f"{k}={int(v)}" for k, v in parametric.items())
                )
            autotune = {
                label: counters[name]
                for name, label in (
                    ("autotune.candidates", "candidates"),
                    ("autotune.points", "points"),
                    ("autotune.pruned_latency", "pruned_latency"),
                    ("autotune.pruned_dominated", "pruned_dominated"),
                    ("autotune.scoring_captures", "scoring_captures"),
                )
                if name in counters
            }
            if autotune.get("points"):
                # One-line summary of the autotuner: grid points priced
                # and how much work the prunes collapsed.
                lines.append(
                    "autotune: "
                    + ", ".join(f"{k}={int(v)}" for k, v in autotune.items())
                )
        timers = snap["timers"]
        if timers:
            lines.append("")
            width = max(len(n) for n in timers)
            for name in sorted(timers):
                entry = timers[name]
                lines.append(
                    f"{name:<{width}}  {entry['count']} calls  {entry['seconds']:.4f}s"
                )
        gauges = snap.get("gauges", {})
        if gauges:
            lines.append("")
            width = max(len(n) for n in gauges)
            for name in sorted(gauges):
                lines.append(f"{name:<{width}}  {gauges[name]:g}")
        series = snap.get("series", {})
        if series:
            lines.append("")
            width = max(len(n) for n in series)
            for name in sorted(series):
                s = series[name]
                lines.append(
                    f"{name:<{width}}  n={s['count']}  p50={s['p50']:.6g}  "
                    f"p90={s['p90']:.6g}  p99={s['p99']:.6g}  max={s['max']:.6g}"
                )
        if not counters and not timers and not gauges and not series:
            lines.append("(no events recorded)")
        return "\n".join(lines)


METRICS = MetricsRegistry()
"""The process-global registry every instrumented module reports into."""
