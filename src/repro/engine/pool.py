"""Worker pool: order-preserving parallel execution with a serial fallback.

:class:`WorkerPool` maps a function over items with a
``ProcessPoolExecutor`` when more than one job slot is requested,
falling back to a deterministic in-process loop when parallelism is
unavailable (restricted sandboxes, unpicklable work items) — results are
returned in submission order either way, so parallel and serial runs
are observationally identical.  The fallback is reserved for pool
*infrastructure* failures: an exception raised by the job function
itself propagates to the caller instead of triggering a silent serial
rerun that would double the work and hide the bug.

:func:`run_jobs` layers the content-addressed cache on top and executes
misses under supervision (:mod:`repro.engine.supervise`): per-item
futures with retries, timeouts and dead-worker pool rebuilds, so one
poisoned job cannot sink a whole batch.  Duplicate fingerprints within a
batch collapse to one execution, cached fingerprints are served without
any execution, and only genuine misses reach the pool.  All cache
accounting happens in the parent process, so metrics are exact even
when the work itself runs in children.
"""

from __future__ import annotations

import os
import pickle
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Iterable, Sequence

from repro.engine import jobs as _jobs
from repro.engine.cache import ResultCache
from repro.engine.metrics import METRICS
from repro.engine.supervise import (
    DEFAULT_POLICY,
    JobFailure,
    RetryPolicy,
    supervised_map,
)


def default_jobs() -> int:
    """A sensible worker count for this host (leave one core free)."""
    return max(1, (os.cpu_count() or 2) - 1)


class WorkerPool:
    """Map work over processes, preserving order; serial when jobs<=1.

    ``initializer``/``initargs`` run once per worker process (e.g. to
    attach the solver's cross-process verdict cache); the serial fallback
    does not run them — the parent's own state is already attached.
    """

    def __init__(
        self,
        jobs: int = 1,
        metrics=METRICS,
        initializer: Callable | None = None,
        initargs: tuple = (),
    ) -> None:
        self.jobs = default_jobs() if jobs in (0, None) else max(1, int(jobs))
        self.metrics = metrics
        self.initializer = initializer
        self.initargs = initargs

    def _fallback(self, fn: Callable, items: list, exc: BaseException) -> list:
        self.metrics.inc("engine.pool.fallbacks")
        self.metrics.inc(f"engine.pool.fallback.{type(exc).__name__}", 1)
        return [fn(item) for item in items]

    def map(self, fn: Callable, items: Iterable) -> list:
        """``[fn(x) for x in items]``, possibly computed in parallel.

        Falls back to the serial loop only when the pool infrastructure
        is at fault — worker processes cannot be created, or the function
        / items cannot be pickled (checked up front, so a job-raised
        ``TypeError`` is never mistaken for a pickling one).  Exceptions
        raised by ``fn`` itself propagate unchanged: a genuine bug must
        surface, not vanish into a doubled serial recompute.
        """
        items = list(items)
        if self.jobs == 1 or len(items) <= 1:
            return [fn(item) for item in items]
        try:
            pickle.dumps(fn)
            pickle.dumps(items)
        except Exception as exc:  # unpicklable closures, lambdas, live handles
            return self._fallback(fn, items, exc)
        workers = min(self.jobs, len(items))
        chunksize = max(1, len(items) // (workers * 4))
        try:
            with self.metrics.timer("engine.pool.map"):
                with ProcessPoolExecutor(
                    max_workers=workers,
                    initializer=self.initializer,
                    initargs=self.initargs,
                ) as executor:
                    return list(executor.map(fn, items, chunksize=chunksize))
        except (OSError, BrokenProcessPool) as exc:
            # Pool infrastructure only: unavailable process pools
            # (sandboxes) or workers dying before/while running.  The
            # serial rerun surfaces any genuine job error as itself.
            return self._fallback(fn, items, exc)


def _execute_item(item: tuple[str, dict]):
    """Top-level (hence picklable) dispatcher run inside workers."""
    kind, payload = item
    return _jobs.EXECUTORS[kind](payload)


def _init_worker_solver_cache(root: str) -> None:
    """Worker initializer: point the solver memo's second tier at the
    shared on-disk store, so feasibility verdicts solved in one worker
    are visible to every other worker (and to later runs)."""
    from repro.engine.cache import ResultCache
    from repro.polyhedra import solver

    solver.set_solver_cache(ResultCache(root=root))


def run_jobs(
    specs: Sequence[_jobs.JobSpec],
    jobs: int = 1,
    cache: ResultCache | None = None,
    metrics=METRICS,
    policy: RetryPolicy = DEFAULT_POLICY,
) -> list:
    """Execute job specs under supervision, in submission order.

    Identical fingerprints — whether already cached or merely duplicated
    within a batch — are computed at most once.  Fresh executions are
    counted per kind under ``engine.executed.<kind>``; a fully warm
    batch therefore executes nothing.

    ``policy`` governs retries/timeouts/deadlines (see
    :class:`~repro.engine.supervise.RetryPolicy`).  Under the default
    ``failure_mode="raise"`` a job that still fails after its retries
    re-raises its original exception; with ``failure_mode="return"`` the
    slots of failed jobs hold :class:`~repro.engine.supervise.JobFailure`
    values (never cached) while every other slot holds its real result.
    """
    results: list = [None] * len(specs)
    pending: dict[str, list[int]] = {}  # fingerprint -> result slots
    unique: list[tuple[str, _jobs.JobSpec]] = []
    for index, spec in enumerate(specs):
        metrics.inc("engine.jobs.submitted")
        fp = spec.fingerprint
        if fp in pending:
            pending[fp].append(index)
            continue
        cached = cache.get(fp) if cache is not None else None
        if cached is not None:
            results[index] = cached
            continue
        pending[fp] = [index]
        unique.append((fp, spec))

    if unique:
        initializer, initargs = None, ()
        previous_solver_cache = None
        if cache is not None:
            # Thread the batch's cache through the solver memo: the parent
            # attaches it directly (covers the serial fallback too), and
            # workers attach their own handle to the same on-disk store.
            from repro.polyhedra import solver as _solver

            previous_solver_cache = _solver.set_solver_cache(cache)
            if cache.root is not None:
                initializer, initargs = _init_worker_solver_cache, (str(cache.root),)
        try:
            outputs = supervised_map(
                _execute_item,
                [(s.kind, s.payload) for _, s in unique],
                keys=[fp for fp, _ in unique],
                jobs=jobs,
                policy=policy,
                metrics=metrics,
                initializer=initializer,
                initargs=initargs,
            )
        finally:
            if cache is not None:
                _solver.set_solver_cache(previous_solver_cache)
        for (fp, spec), output in zip(unique, outputs):
            if isinstance(output, JobFailure):
                # Structured failure: surfaced to the caller, never cached
                # — the next run must re-attempt the work.
                output.kind = spec.kind
                for index in pending[fp]:
                    results[index] = output
                continue
            metrics.inc(f"engine.executed.{spec.kind}")
            if cache is not None:
                cache.put(fp, output)
            for index in pending[fp]:
                results[index] = output
    return results
