"""Supervised execution: per-job futures, retries, timeouts, pool rebuilds.

:func:`supervised_map` replaces the all-or-nothing semantics of
``WorkerPool.map`` for batch execution: every item is its own future,
so one poisoned job — a hung Fourier-Motzkin query, an OOM-killed
worker, a transient crash — no longer forces a serial rerun of the
whole batch.  The supervisor provides:

* **per-job timeouts** — enforced inside the worker with ``SIGALRM``
  (accurate, catches a sleeping job), plus a parent-side backstop that
  force-rebuilds the pool when a worker ignores the alarm; in-flight
  submissions are capped at the worker count so elapsed time measures
  the job, not its queue wait;
* **bounded retries** with exponential backoff and deterministic jitter
  (``engine.supervise.retries``);
* **dead-worker detection** — a worker that exits hard breaks the whole
  ``ProcessPoolExecutor``; the supervisor rebuilds the pool
  (``engine.supervise.pool_rebuilds``) and re-runs only the items that
  had not finished;
* **batch deadlines** — past the deadline, unfinished items resolve to
  failures instead of hanging the caller;
* **structured failures** — an item whose retries are exhausted yields a
  :class:`JobFailure` carrying the error type, message and attempt
  count.  With ``failure_mode="raise"`` (the default) the original
  exception is re-raised after the rest of the batch completes, so a
  genuine bug in the job function still surfaces as itself; with
  ``failure_mode="return"`` the :class:`JobFailure` is returned in the
  item's result slot and the caller triages.

Fault injection (:mod:`repro.engine.chaos`) hooks in at exactly one
point — immediately before each execution attempt — so chaos runs
exercise the identical control flow as production faults.

Serial execution (``jobs=1``) flows through the same retry/timeout/
failure logic in-process, so supervised behavior is observationally
identical at any worker count.
"""

from __future__ import annotations

import os
import pickle
import random
import signal
import threading
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.engine import chaos as _chaos
from repro.engine.metrics import METRICS

_POLL_SECONDS = 0.02
"""Future-wait granularity of the supervision loop."""

_MAX_REBUILDS = 8
"""Pool rebuilds allowed per batch before degrading to serial execution
(a backstop against an initializer or environment that kills every
worker on arrival — rebuilding forever would spin)."""


class JobTimeout(Exception):
    """A job exceeded its per-attempt timeout."""


class DeadlineExceeded(Exception):
    """The batch deadline passed before this job finished."""


@dataclass(frozen=True)
class RetryPolicy:
    """How the supervisor treats one batch.

    ``timeout`` bounds a single execution attempt; ``deadline`` bounds
    the whole batch; both are seconds and ``None`` disables them.
    Backoff before attempt ``n`` is ``min(max_backoff, backoff *
    2**(n-1))`` scaled by up to ``jitter`` of deterministic noise.
    """

    max_attempts: int = 3
    timeout: float | None = None
    deadline: float | None = None
    backoff: float = 0.05
    max_backoff: float = 2.0
    jitter: float = 0.5
    failure_mode: str = "raise"  # "raise" | "return"

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if self.failure_mode not in ("raise", "return"):
            raise ValueError(f"unknown failure_mode {self.failure_mode!r}")


DEFAULT_POLICY = RetryPolicy()


@dataclass
class JobFailure:
    """The structured result of a job whose retries were exhausted."""

    key: str
    error_type: str
    message: str
    attempts: int
    timed_out: bool = False
    kind: str | None = None  # filled in by run_jobs for engine jobs
    exception: BaseException | None = field(default=None, repr=False, compare=False)

    def to_payload(self) -> dict:
        """JSON-able form (sans the live exception) for reports/logs."""
        return {
            "key": self.key,
            "kind": self.kind,
            "error_type": self.error_type,
            "message": self.message,
            "attempts": self.attempts,
            "timed_out": self.timed_out,
        }

    def describe(self) -> str:
        what = f"{self.kind or 'job'} {self.key[:12]}"
        return (
            f"{what} failed after {self.attempts} attempt(s): "
            f"{self.error_type}: {self.message}"
        )


# -- worker-side execution ---------------------------------------------------------


def _call_with_timeout(fn: Callable, item, timeout: float | None):
    """Run ``fn(item)``, raising :class:`JobTimeout` past ``timeout``.

    Uses ``SIGALRM`` (worker processes run jobs on their main thread);
    silently skips enforcement where alarms are unavailable — the
    parent-side backstop still bounds the attempt.
    """
    use_alarm = (
        timeout is not None
        and hasattr(signal, "SIGALRM")
        and threading.current_thread() is threading.main_thread()
    )
    if not use_alarm:
        return fn(item)

    def _on_alarm(signum, frame):
        raise JobTimeout(f"job exceeded {timeout}s timeout")

    previous = signal.signal(signal.SIGALRM, _on_alarm)
    signal.setitimer(signal.ITIMER_REAL, timeout)
    try:
        return fn(item)
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0)
        signal.signal(signal.SIGALRM, previous)


def _guarded_call(packed):
    """Top-level (picklable) wrapper run inside worker processes."""
    fn, item, key, attempt, timeout = packed
    _chaos.apply_job_faults(key, attempt, in_worker=True)
    return _call_with_timeout(fn, item, timeout)


# -- the supervisor ----------------------------------------------------------------


@dataclass
class _Slot:
    """One item's supervision state."""

    index: int
    item: object
    key: str
    attempt: int = 0  # attempts already consumed
    not_before: float = 0.0  # monotonic time the next attempt may start
    started: float = 0.0  # monotonic submission time of the live attempt
    done: bool = False
    result: object = None
    failure: JobFailure | None = None


class _Supervisor:
    def __init__(self, fn, slots, jobs, policy, metrics, initializer, initargs):
        self.fn = fn
        self.slots: list[_Slot] = slots
        self.jobs = jobs
        self.policy = policy
        self.metrics = metrics
        self.initializer = initializer
        self.initargs = initargs
        self.ready: deque[_Slot] = deque(slots)
        self.unfinished = len(slots)
        self.executor: ProcessPoolExecutor | None = None
        self.inflight: dict = {}  # Future -> _Slot
        self.rebuilds = 0
        # Deterministic jitter: the retry schedule of a batch is a pure
        # function of its size, so test runs are reproducible.
        self.rng = random.Random(len(slots))
        self.deadline = (
            time.monotonic() + policy.deadline
            if policy.deadline is not None
            else None
        )

    # -- shared retry bookkeeping --------------------------------------------------

    def settle_ok(self, slot: _Slot, result) -> None:
        slot.result = result
        slot.done = True
        self.unfinished -= 1

    def settle_failed(self, slot: _Slot, exc: BaseException) -> None:
        slot.failure = JobFailure(
            key=slot.key,
            error_type=type(exc).__name__,
            message=str(exc),
            attempts=slot.attempt,
            timed_out=isinstance(exc, (JobTimeout, DeadlineExceeded)),
            exception=exc,
        )
        slot.done = True
        self.unfinished -= 1
        self.metrics.inc("engine.supervise.failures")

    def retry_or_fail(self, slot: _Slot, exc: BaseException) -> None:
        slot.attempt += 1
        if isinstance(exc, JobTimeout):
            self.metrics.inc("engine.supervise.timeouts")
        if slot.attempt >= self.policy.max_attempts:
            self.settle_failed(slot, exc)
            return
        self.metrics.inc("engine.supervise.retries")
        delay = min(
            self.policy.max_backoff,
            self.policy.backoff * (2 ** (slot.attempt - 1)),
        )
        delay *= 1 + self.policy.jitter * self.rng.random()
        slot.not_before = time.monotonic() + delay
        self.ready.append(slot)

    def past_deadline(self) -> bool:
        return self.deadline is not None and time.monotonic() > self.deadline

    def abandon_unfinished(self) -> None:
        """Deadline hit: everything unfinished becomes a structured failure."""
        self.metrics.inc("engine.supervise.deadline_abandoned", self.unfinished)
        for slot in self.slots:
            if not slot.done:
                slot.attempt += 1
                self.settle_failed(
                    slot,
                    DeadlineExceeded(
                        f"batch deadline of {self.policy.deadline}s exceeded"
                    ),
                )

    # -- serial path ---------------------------------------------------------------

    def run_serial(self) -> None:
        while self.ready:
            slot = self.ready.popleft()
            if slot.done:
                continue
            if self.past_deadline():
                self.ready.appendleft(slot)
                self.abandon_unfinished()
                return
            now = time.monotonic()
            if slot.not_before > now:
                time.sleep(slot.not_before - now)
            try:
                _chaos.apply_job_faults(slot.key, slot.attempt, in_worker=False)
                self.settle_ok(
                    slot, _call_with_timeout(self.fn, slot.item, self.policy.timeout)
                )
            except Exception as exc:  # noqa: BLE001 — every job error is triaged
                self.retry_or_fail(slot, exc)

    # -- parallel path -------------------------------------------------------------

    def _new_executor(self) -> ProcessPoolExecutor:
        return ProcessPoolExecutor(
            max_workers=min(self.jobs, max(1, len(self.slots))),
            initializer=self.initializer,
            initargs=self.initargs,
        )

    def _teardown_executor(self) -> None:
        executor = self.executor
        self.executor = None
        if executor is None:
            return
        # Kill lingering workers outright: a hung job would otherwise keep
        # shutdown (and the interpreter) waiting on it forever.
        processes = getattr(executor, "_processes", None) or {}
        for process in list(processes.values()):
            try:
                process.terminate()
            except Exception:  # pragma: no cover - best effort
                pass
        executor.shutdown(wait=False, cancel_futures=True)

    def _requeue_inflight(self, exc: BaseException) -> None:
        """Drain in-flight futures after a pool break or hang.

        Futures that finished before the break keep their results; the
        rest are charged one attempt (their execution died with the pool).
        """
        for future, slot in list(self.inflight.items()):
            if future.done() and not future.cancelled():
                error = future.exception()
                if error is None:
                    self.settle_ok(slot, future.result())
                    continue
                if not isinstance(error, BrokenProcessPool):
                    self.retry_or_fail(slot, error)
                    continue
            self.retry_or_fail(slot, exc)
        self.inflight.clear()

    def _rebuild_pool(self, exc: BaseException) -> None:
        self.rebuilds += 1
        self.metrics.inc("engine.supervise.pool_rebuilds")
        self._teardown_executor()
        self._requeue_inflight(exc)

    def _hung_futures(self) -> list:
        """In-flight attempts past the parent-side timeout backstop.

        The in-worker alarm normally fires first; this catches workers
        the alarm cannot interrupt.  Submissions are capped at the worker
        count, so elapsed time approximates execution time.
        """
        timeout = self.policy.timeout
        if timeout is None:
            return []
        limit = 2 * timeout + 1.0
        now = time.monotonic()
        return [
            future
            for future, slot in self.inflight.items()
            if not future.done() and now - slot.started > limit
        ]

    def run_parallel(self) -> None:
        try:
            while self.unfinished:
                if self.past_deadline():
                    self.abandon_unfinished()
                    return
                if self.rebuilds > _MAX_REBUILDS:
                    # The environment is eating workers faster than we can
                    # rebuild; finish the batch serially rather than spin.
                    self.metrics.inc("engine.pool.fallbacks")
                    self._teardown_executor()
                    self._requeue_inflight(BrokenProcessPool("pool kept breaking"))
                    self.run_serial()
                    return
                self._submit_ready()
                if not self.inflight:
                    # Everything unfinished is backing off; nap until the
                    # earliest retry becomes submittable.
                    wake = min(
                        (s.not_before for s in self.ready if not s.done),
                        default=time.monotonic(),
                    )
                    time.sleep(max(0.0, min(wake - time.monotonic(), _POLL_SECONDS)))
                    continue
                done, _ = wait(
                    self.inflight, timeout=_POLL_SECONDS, return_when=FIRST_COMPLETED
                )
                broken: BaseException | None = None
                for future in done:
                    slot = self.inflight.pop(future)
                    try:
                        self.settle_ok(slot, future.result())
                    except BrokenProcessPool as exc:
                        self.retry_or_fail(slot, exc)
                        broken = exc
                    except Exception as exc:  # noqa: BLE001
                        self.retry_or_fail(slot, exc)
                if broken is not None:
                    self._rebuild_pool(broken)
                    continue
                hung = self._hung_futures()
                if hung:
                    self.metrics.inc("engine.supervise.timeouts", len(hung))
                    self._rebuild_pool(JobTimeout("parent-side timeout backstop"))
        finally:
            self._teardown_executor()

    def _submit_ready(self) -> None:
        now = time.monotonic()
        workers = min(self.jobs, max(1, len(self.slots)))
        rotated = 0
        while self.ready and len(self.inflight) < workers:
            slot = self.ready.popleft()
            if slot.done:
                continue
            if slot.not_before > now:
                # Not yet due: rotate to the back at most once per slot
                # per pass so the loop terminates.
                self.ready.append(slot)
                rotated += 1
                if rotated > len(self.ready):
                    break
                continue
            if self.executor is None:
                self.executor = self._new_executor()
            packed = (self.fn, slot.item, slot.key, slot.attempt, self.policy.timeout)
            try:
                future = self.executor.submit(_guarded_call, packed)
            except BrokenProcessPool as exc:
                self.ready.appendleft(slot)
                self._rebuild_pool(exc)
                return
            slot.started = time.monotonic()
            self.inflight[future] = slot


def _picklable(*objects) -> bool:
    try:
        for obj in objects:
            pickle.dumps(obj)
    except Exception:  # pickle raises a menagerie: PicklingError, TypeError, ...
        return False
    return True


def default_jobs() -> int:
    """A sensible worker count for this host (leave one core free)."""
    return max(1, (os.cpu_count() or 2) - 1)


def supervised_map(
    fn: Callable,
    items: Sequence,
    *,
    keys: Sequence[str] | None = None,
    jobs: int = 1,
    policy: RetryPolicy = DEFAULT_POLICY,
    metrics=METRICS,
    initializer: Callable | None = None,
    initargs: tuple = (),
) -> list:
    """``[fn(x) for x in items]`` under supervision.

    ``keys`` are stable per-item labels (the engine passes job
    fingerprints) used for chaos decisions and failure reports; they
    default to the item's position.  Returns results in submission
    order.  Items whose retries are exhausted either contribute a
    :class:`JobFailure` in their slot (``failure_mode="return"``) or
    cause the first underlying exception to be re-raised once the rest
    of the batch has settled (``failure_mode="raise"``, the default —
    a genuine bug in ``fn`` surfaces as itself, exactly once, instead
    of as a per-item wrapper).
    """
    items = list(items)
    if keys is None:
        keys = [f"item-{i}" for i in range(len(items))]
    if len(keys) != len(items):
        raise ValueError("keys must match items one-to-one")
    jobs = default_jobs() if jobs in (0, None) else max(1, int(jobs))
    slots = [_Slot(index=i, item=item, key=key) for i, (item, key) in enumerate(zip(items, keys))]
    supervisor = _Supervisor(fn, slots, jobs, policy, metrics, initializer, initargs)

    if jobs == 1 or len(items) <= 1:
        supervisor.run_serial()
    elif not _picklable(fn, items):
        # Process pools cannot carry this work; same serial fallback (and
        # counter) the unsupervised pool uses for unpicklable items.
        metrics.inc("engine.pool.fallbacks")
        supervisor.run_serial()
    else:
        try:
            with metrics.timer("engine.pool.map"):
                supervisor.run_parallel()
        except OSError:
            # Process pools unavailable (restricted sandboxes): the serial
            # path reruns only what has not already settled.
            metrics.inc("engine.pool.fallbacks")
            supervisor.ready = deque(s for s in slots if not s.done)
            supervisor.run_serial()

    if policy.failure_mode == "raise":
        for slot in slots:
            if slot.failure is not None:
                if slot.failure.exception is not None:
                    raise slot.failure.exception
                raise RuntimeError(slot.failure.describe())
    return [slot.failure if slot.failure is not None else slot.result for slot in slots]
