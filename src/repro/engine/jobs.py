"""Canonical job specs with stable content fingerprints.

Every unit of work the engine schedules — a Theorem-1 legality check, a
code generation, a shackle search, a simulator point — is described by a
:class:`JobSpec`: a kind tag plus a JSON-serializable payload in which
programs appear as their printed source, blockings as plane/direction
tuples, and reference choices as reference source text.  The fingerprint
is the SHA-256 of the kind and the canonical (sorted-key) JSON of the
payload, so two requests for the same work hash identically regardless
of how their Python objects were constructed, and the fingerprint is
stable across processes and sessions — the key property the
content-addressed cache relies on.

The ``run_*_job`` executors at the bottom are pure functions from
payload to JSON-serializable result; they are what worker processes
import and run, reconstructing programs from source (memoized per
worker, so a worker re-parses each distinct program once).
"""

from __future__ import annotations

import hashlib
import importlib
import json
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Mapping

from repro.core.blocking import CuttingPlanes, DataBlocking
from repro.core.legality import check_legality
from repro.core.shackle import DataShackle, _parse_ref
from repro.ir import parse_program, to_source
from repro.ir.nodes import Program

ENGINE_SCHEMA_VERSION = 1
"""Bump to invalidate every existing cache entry on a format change."""

NONSEMANTIC_SIMULATE_OPTIONS = frozenset({"replay", "trace_store"})
"""Simulate options that cannot change the measurement (the trace-replay
path is bit-identical to the per-access oracle), excluded from simulate
fingerprints so results cached either way are shared.

``fidelity`` is deliberately NOT here: analytic predictions differ from
replay on set-associative geometries (within a declared tolerance, but
differ), so analytic and replay measurements must never share a cache
entry.  Reuse histograms themselves are content-addressed separately,
keyed by trace fingerprint + line size
(:func:`repro.memsim.trace.histogram_fingerprint`), exactly like
traces."""


def canonical_json(payload) -> str:
    """Deterministic JSON text: sorted keys, no whitespace."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def fingerprint(kind: str, payload) -> str:
    """SHA-256 content fingerprint of a job."""
    text = f"{ENGINE_SCHEMA_VERSION}\n{kind}\n{canonical_json(payload)}"
    return hashlib.sha256(text.encode()).hexdigest()


@dataclass(frozen=True)
class JobSpec:
    """One schedulable unit of work: a kind plus a canonical payload."""

    kind: str
    payload: dict = field(hash=False)

    @property
    def fingerprint(self) -> str:
        return fingerprint(self.kind, self.payload)

    def describe(self) -> str:
        return f"{self.kind}:{self.fingerprint[:12]}"


# -- canonical forms of the domain objects ----------------------------------------


def program_source(program: Program | str) -> str:
    """Canonical textual form of a program (already-text passes through)."""
    return program if isinstance(program, str) else to_source(program)


def blocking_spec(blocking: DataBlocking) -> dict:
    """JSON-able canonical form of a :class:`DataBlocking`."""
    return {
        "array": blocking.array,
        "planes": [
            [list(p.normal), p.spacing, p.offset] for p in blocking.planes
        ],
        "directions": list(blocking.directions),
    }


def blocking_from_spec(spec: Mapping) -> DataBlocking:
    """Rebuild a :class:`DataBlocking` from :func:`blocking_spec` output."""
    planes = [
        CuttingPlanes(normal, spacing, offset)
        for normal, spacing, offset in spec["planes"]
    ]
    return DataBlocking(spec["array"], planes, spec["directions"])


def choice_spec(choice: Mapping) -> dict:
    """Reference choice as label -> reference source text."""
    return {label: str(ref) for label, ref in choice.items()}


# -- job constructors --------------------------------------------------------------


def legality_job(program, blocking: DataBlocking, choice: Mapping) -> JobSpec:
    """Theorem-1 legality of one shackle candidate."""
    return JobSpec(
        "legality",
        {
            "program": program_source(program),
            "blocking": blocking_spec(blocking),
            "choice": choice_spec(choice),
        },
    )


def codegen_job(
    program, blocking: DataBlocking, choice: Mapping | str = "lhs", mode: str = "simplified"
) -> JobSpec:
    """Shackled code generation (``naive``, ``split`` or ``simplified``)."""
    if mode not in ("naive", "split", "simplified"):
        raise ValueError(f"unknown codegen mode {mode!r}")
    return JobSpec(
        "codegen",
        {
            "program": program_source(program),
            "blocking": blocking_spec(blocking),
            "choice": choice if isinstance(choice, str) else choice_spec(choice),
            "mode": mode,
        },
    )


def search_job(program, blocking: DataBlocking, max_product: int = 2) -> JobSpec:
    """A full ranked shackle search as one cacheable unit."""
    return JobSpec(
        "search",
        {
            "program": program_source(program),
            "blocking": blocking_spec(blocking),
            "max_product": max_product,
        },
    )


def simulate_job(
    program,
    env: Mapping[str, int],
    machine,
    variant: str = "variant",
    init: str = "repro.experiments.harness.random_init",
    options: Mapping | None = None,
) -> JobSpec:
    """One simulator point: program at ``env`` on ``machine``.

    ``machine`` is a :class:`~repro.memsim.cost.MachineSpec` or its name;
    ``init`` is the dotted path of a module-level ``(arena, buf, rng)``
    initializer so the payload stays pure data.  Options that cannot
    affect the result (``replay``, ``trace_store``) are dropped from the
    payload so they never split the cache key.
    """
    return JobSpec(
        "simulate",
        {
            "program": program_source(program),
            "env": {k: int(v) for k, v in env.items()},
            "machine": machine if isinstance(machine, str) else machine.name,
            "variant": variant,
            "init": init,
            "options": {
                k: v
                for k, v in dict(options or {}).items()
                if k not in NONSEMANTIC_SIMULATE_OPTIONS
            },
        },
    )


# -- executors (pure payload -> JSON result; run in worker processes) --------------


@lru_cache(maxsize=64)
def _parsed(source: str) -> Program:
    return parse_program(source)


@lru_cache(maxsize=64)
def _dependences(source: str):
    from repro.dependence.analysis import compute_dependences

    return compute_dependences(_parsed(source))


def _shackle_from_payload(payload: Mapping) -> DataShackle:
    program = _parsed(payload["program"])
    blocking = blocking_from_spec(payload["blocking"])
    choice = payload["choice"]
    if choice == "lhs":
        from repro.core.shackle import shackle_refs

        return shackle_refs(program, blocking, "lhs")
    return DataShackle(
        program, blocking, {label: _parse_ref(text) for label, text in choice.items()}
    )


def run_legality_job(payload: Mapping) -> dict:
    shackle = _shackle_from_payload(payload)
    verdict = check_legality(
        shackle, _dependences(payload["program"]), first_violation_only=True
    )
    return {"legal": verdict.legal}


def run_codegen_job(payload: Mapping) -> dict:
    from repro.core.codegen import naive_code, simplified_code
    from repro.core.splitting import split_code

    generate = {
        "naive": naive_code,
        "split": split_code,
        "simplified": simplified_code,
    }[payload["mode"]]
    return {"source": to_source(generate(_shackle_from_payload(payload)))}


def run_search_job(payload: Mapping) -> dict:
    from repro.core.search import search_shackles

    results = search_shackles(
        _parsed(payload["program"]),
        blocking_from_spec(payload["blocking"]),
        max_product=payload["max_product"],
    )
    return {
        "results": [
            {
                "choices": dict(r.choices),
                "unconstrained": r.unconstrained,
                "factors": len(r.shackle.factors()),
            }
            for r in results
        ]
    }


def resolve_dotted(path: str):
    """Import ``pkg.mod.attr`` and return the attribute."""
    module_name, _, attr = path.rpartition(".")
    if not module_name:
        raise ValueError(f"not a dotted path: {path!r}")
    return getattr(importlib.import_module(module_name), attr)


def _machine_by_name(name: str):
    from repro.memsim import cost

    for value in vars(cost).values():
        if isinstance(value, cost.MachineSpec) and value.name == name:
            return value
    raise ValueError(f"unknown machine {name!r}")


def run_fuzz_job(payload: Mapping) -> dict:
    # Lazy import: repro.fuzz imports this module for fingerprints.
    from repro.fuzz.oracles import run_case_payload

    return run_case_payload(payload)


def run_simulate_job(payload: Mapping) -> dict:
    from repro.experiments.harness import measurement_payload, simulate

    measurement = simulate(
        _parsed(payload["program"]),
        payload["env"],
        _machine_by_name(payload["machine"]),
        resolve_dotted(payload["init"]),
        variant=payload["variant"],
        **payload["options"],
    )
    return measurement_payload(measurement)


EXECUTORS = {
    "legality": run_legality_job,
    "codegen": run_codegen_job,
    "search": run_search_job,
    "simulate": run_simulate_job,
    "fuzz": run_fuzz_job,
}


def execute(spec: JobSpec):
    """Run a job in-process and return its JSON-serializable result."""
    return EXECUTORS[spec.kind](spec.payload)
