"""Two-tier content-addressed result cache.

Results are keyed by job fingerprints (see :mod:`repro.engine.jobs`): a
bounded in-memory LRU tier sits in front of an optional on-disk store,
so repeated searches and sweeps within one process are served from
memory while separate invocations share results through the filesystem.

Disk layout (human-inspectable, one JSON file per result):

    <root>/<fp[:2]>/<fp>.json

Values must be JSON-serializable.  Writes to disk are atomic
(write-temp-then-rename), so a crashed or concurrent writer never leaves
a torn entry; readers treat undecodable files as misses.
"""

from __future__ import annotations

import json
import os
from collections import OrderedDict
from pathlib import Path

from repro.engine.metrics import METRICS

DEFAULT_CACHE_DIR = ".repro_cache"


def default_cache_root() -> Path:
    """The conventional on-disk store location (under the CWD)."""
    return Path(DEFAULT_CACHE_DIR)


class ResultCache:
    """In-memory LRU over an optional on-disk content-addressed store."""

    def __init__(
        self,
        capacity: int = 4096,
        root: str | os.PathLike | None = None,
        metrics=METRICS,
    ) -> None:
        if capacity < 1:
            raise ValueError("cache capacity must be at least 1")
        self.capacity = capacity
        self.root = Path(root) if root is not None else None
        self.metrics = metrics
        self._memory: OrderedDict[str, object] = OrderedDict()
        self.memory_hits = 0
        self.disk_hits = 0
        self.misses = 0
        self.evictions = 0
        self.puts = 0

    # -- key layout --------------------------------------------------------------

    def _path(self, fingerprint: str) -> Path:
        assert self.root is not None
        return self.root / fingerprint[:2] / f"{fingerprint}.json"

    # -- tier plumbing -----------------------------------------------------------

    def _remember(self, fingerprint: str, value: object) -> None:
        self._memory[fingerprint] = value
        self._memory.move_to_end(fingerprint)
        while len(self._memory) > self.capacity:
            self._memory.popitem(last=False)
            self.evictions += 1
            self.metrics.inc("engine.cache.evictions")

    def get(self, fingerprint: str):
        """The cached value for ``fingerprint``, or None on miss.

        Disk hits are promoted into the memory tier.
        """
        if fingerprint in self._memory:
            self._memory.move_to_end(fingerprint)
            self.memory_hits += 1
            self.metrics.inc("engine.cache.hits")
            return self._memory[fingerprint]
        if self.root is not None:
            path = self._path(fingerprint)
            try:
                value = json.loads(path.read_text())
            except (OSError, ValueError):
                pass
            else:
                self.disk_hits += 1
                self.metrics.inc("engine.cache.hits")
                self._remember(fingerprint, value)
                return value
        self.misses += 1
        self.metrics.inc("engine.cache.misses")
        return None

    def put(self, fingerprint: str, value: object) -> None:
        """Store ``value`` (JSON-serializable) under ``fingerprint``.

        With a disk tier configured the write goes through to disk, so a
        later memory eviction loses nothing.
        """
        text = json.dumps(value)  # validate serializability up front
        self.puts += 1
        self._remember(fingerprint, value)
        if self.root is not None:
            path = self._path(fingerprint)
            path.parent.mkdir(parents=True, exist_ok=True)
            tmp = path.with_suffix(f".tmp.{os.getpid()}")
            tmp.write_text(text)
            os.replace(tmp, path)

    # -- maintenance / reporting -------------------------------------------------

    def clear(self, disk: bool = False) -> None:
        """Drop the memory tier (and the disk store too when ``disk``)."""
        self._memory.clear()
        if disk and self.root is not None and self.root.exists():
            for bucket in self.root.iterdir():
                if bucket.is_dir():
                    for entry in bucket.glob("*.json"):
                        entry.unlink()

    def __len__(self) -> int:
        return len(self._memory)

    @property
    def hits(self) -> int:
        return self.memory_hits + self.disk_hits

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> dict:
        return {
            "memory_entries": len(self._memory),
            "memory_hits": self.memory_hits,
            "disk_hits": self.disk_hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "puts": self.puts,
            "hit_rate": round(self.hit_rate, 4),
        }
