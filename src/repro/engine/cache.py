"""Two-tier content-addressed result cache with integrity stamps.

Results are keyed by job fingerprints (see :mod:`repro.engine.jobs`): a
bounded in-memory LRU tier sits in front of an optional on-disk store,
so repeated searches and sweeps within one process are served from
memory while separate invocations share results through the filesystem.

Disk layout (human-inspectable, one JSON file per result):

    <root>/<fp[:2]>/<fp>.json

Each file is an *envelope* — ``{"schema": N, "check": sha256-prefix,
"value": ...}`` — stamped with the cache schema version and a checksum
of the canonical value JSON.  A file that fails to decode, carries the
wrong schema, or fails its checksum is **quarantined**: moved to
``<root>/quarantine/`` (counted under ``engine.cache.quarantined``) so
it is inspectable after the fact and, crucially, never re-read and
re-failed on every subsequent ``get``.  Values must be
JSON-serializable.

Disk publishes go through :mod:`repro.engine.store`: write to a unique
temp file (pid + thread + sequence), atomic rename, and a per-fingerprint
single-writer election — when several daemon processes finish the same
job against one shared store, exactly one publishes in the common case,
and a writer killed mid-publish never leaves a torn entry, only a temp
file for the orphan sweep.  :meth:`ResultCache.sweep_orphans` (and the
sweep inside ``clear(disk=True)``) removes those temps and stale lease
locks, but only past an age threshold, so a live writer mid-publish in
another process can never be raced.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
from collections import OrderedDict
from pathlib import Path

from repro.engine import chaos as _chaos
from repro.engine import store as _store
from repro.engine.metrics import METRICS

DEFAULT_CACHE_DIR = ".repro_cache"

CACHE_SCHEMA_VERSION = 1
"""Bump when the envelope format changes; mismatched entries quarantine."""

QUARANTINE_DIR = "quarantine"
"""Subdirectory (under the store root) where corrupt entries are moved."""

_CHECK_BYTES = 16
"""Hex chars of the sha256 payload checksum stored in the envelope."""


def default_cache_root() -> Path:
    """The conventional on-disk store location (under the CWD)."""
    return Path(DEFAULT_CACHE_DIR)


def payload_checksum(text: str) -> str:
    """The envelope checksum of a canonical value-JSON string."""
    return hashlib.sha256(text.encode()).hexdigest()[:_CHECK_BYTES]


def quarantine_file(
    path: Path, root: Path, metrics=METRICS, counter: str = "engine.cache.quarantined"
) -> Path | None:
    """Move a corrupt store file into ``<root>/quarantine/``.

    Returns the quarantined path (suffixed on collision), or None when
    the move itself failed (e.g. the file vanished under us) — in which
    case nothing is counted.
    """
    qdir = root / QUARANTINE_DIR
    target = qdir / path.name
    try:
        qdir.mkdir(parents=True, exist_ok=True)
        n = 0
        while target.exists():
            n += 1
            target = qdir / f"{path.name}.{n}"
        os.replace(path, target)
    except OSError:
        return None
    metrics.inc(counter)
    return target


class ResultCache:
    """In-memory LRU over an optional on-disk content-addressed store.

    Safe to share between threads: the memory tier's ``OrderedDict``
    (whose ``move_to_end``/``popitem`` pairs would corrupt under
    interleaving) and the hit/miss counters sit behind one reentrant
    lock — the compilation daemon's handlers and dispatchers all touch
    one shared cache concurrently.  Disk I/O stays outside the lock;
    atomic rename already makes concurrent writers safe.
    """

    def __init__(
        self,
        capacity: int = 4096,
        root: str | os.PathLike | None = None,
        metrics=METRICS,
    ) -> None:
        if capacity < 1:
            raise ValueError("cache capacity must be at least 1")
        self.capacity = capacity
        self.root = Path(root) if root is not None else None
        self.metrics = metrics
        self._lock = threading.RLock()
        self._memory: OrderedDict[str, object] = OrderedDict()
        self.memory_hits = 0
        self.disk_hits = 0
        self.misses = 0
        self.evictions = 0
        self.puts = 0
        self.quarantined = 0
        self.publishes = 0
        self.publish_dedups = 0
        self.publish_rescues = 0

    # -- key layout --------------------------------------------------------------

    def _path(self, fingerprint: str) -> Path:
        assert self.root is not None
        return self.root / fingerprint[:2] / f"{fingerprint}.json"

    # -- tier plumbing -----------------------------------------------------------

    def _remember(self, fingerprint: str, value: object) -> None:
        with self._lock:
            self._memory[fingerprint] = value
            self._memory.move_to_end(fingerprint)
            while len(self._memory) > self.capacity:
                self._memory.popitem(last=False)
                self.evictions += 1
                self.metrics.inc("engine.cache.evictions")

    def _quarantine(self, path: Path) -> None:
        with self._lock:
            self.quarantined += 1
        quarantine_file(path, self.root, metrics=self.metrics)

    def _read_disk(self, fingerprint: str, path: Path):
        """Decode + verify one disk entry; quarantines damaged files.

        Returns ``(value,)`` on an intact entry, None on a miss — so an
        intact entry holding a ``None``/falsy value still counts as a hit.
        """
        try:
            text = path.read_text()
        except OSError:
            return None  # genuinely absent: the common cold-cache miss
        try:
            envelope = json.loads(text)
            if (
                not isinstance(envelope, dict)
                or envelope.get("schema") != CACHE_SCHEMA_VERSION
                or "value" not in envelope
            ):
                raise ValueError("bad envelope")
            value = envelope["value"]
            canonical = json.dumps(value, sort_keys=True, separators=(",", ":"))
            if envelope.get("check") != payload_checksum(canonical):
                raise ValueError("checksum mismatch")
        except (ValueError, TypeError):
            # Torn write, bit rot, injected corruption, or a pre-envelope
            # legacy entry: quarantine it so it never fails twice.
            self._quarantine(path)
            return None
        return (value,)

    def get(self, fingerprint: str):
        """The cached value for ``fingerprint``, or None on miss.

        Disk hits are promoted into the memory tier; disk entries that
        fail decoding or integrity checks are quarantined and count as
        misses (once — the file is gone afterwards).
        """
        with self._lock:
            if fingerprint in self._memory:
                self._memory.move_to_end(fingerprint)
                self.memory_hits += 1
                self.metrics.inc("engine.cache.hits")
                return self._memory[fingerprint]
        if self.root is not None:
            loaded = self._read_disk(fingerprint, self._path(fingerprint))
            if loaded is not None:
                (value,) = loaded
                with self._lock:
                    self.disk_hits += 1
                self.metrics.inc("engine.cache.hits")
                self._remember(fingerprint, value)
                return value
        with self._lock:
            self.misses += 1
        self.metrics.inc("engine.cache.misses")
        return None

    def put(self, fingerprint: str, value: object) -> None:
        """Store ``value`` (JSON-serializable) under ``fingerprint``.

        With a disk tier configured the write goes through to disk —
        via the single-writer election in :mod:`repro.engine.store`, so
        N processes finishing the same job publish once in the common
        case, and a publisher killed at any point never tears the entry.
        """
        value = _chaos.mutate_store_value(value)
        canonical = json.dumps(
            value, sort_keys=True, separators=(",", ":")
        )  # validates serializability up front
        with self._lock:
            self.puts += 1
        self._remember(fingerprint, value)
        if self.root is not None:
            envelope = {
                "schema": CACHE_SCHEMA_VERSION,
                "check": payload_checksum(canonical),
                "value": value,
            }
            path = self._path(fingerprint)
            if _chaos.store_mutation() == "fabric-republish":
                # Planted bug: skip the election and republish blindly.
                _store.atomic_publish(path, json.dumps(envelope).encode())
                outcome = "published"
            else:
                outcome = _store.elected_publish(
                    path,
                    json.dumps(envelope).encode(),
                    metrics=self.metrics,
                    counter_prefix="engine.cache",
                )
            with self._lock:
                if outcome == "published":
                    self.publishes += 1
                elif outcome == "rescue":
                    self.publish_rescues += 1
                else:
                    self.publish_dedups += 1
            _chaos.maybe_corrupt_file(path, fingerprint)

    # -- maintenance / reporting -------------------------------------------------

    def clear(self, disk: bool = False) -> None:
        """Drop the memory tier (and the disk store too when ``disk``).

        The disk sweep removes entries, then runs the orphan sweep for
        temp and lock files left by crashed writers — but only files
        past the age threshold go: a *young* ``*.tmp.*`` belongs to a
        live writer mid-publish in another process, and unlinking it
        would tear that publish out from under its rename.  Quarantined
        files are kept — they are the fault evidence.
        """
        with self._lock:
            self._memory.clear()
        if disk and self.root is not None and self.root.exists():
            for bucket in self.root.iterdir():
                if bucket.is_dir() and bucket.name != QUARANTINE_DIR:
                    for entry in bucket.glob("*.json"):
                        entry.unlink()
            self.sweep_orphans()

    def sweep_orphans(
        self,
        max_age: float = _store.ORPHAN_AGE_SECONDS,
        lock_stale: float = _store.LOCK_STALE_SECONDS,
    ) -> dict:
        """Remove aged-out temp files and stale publish locks.

        Returns ``{"tmp": ..., "locks": ..., "kept": ...}`` counts; see
        :func:`repro.engine.store.sweep_orphans` for the age-threshold
        safety argument.
        """
        if self.root is None:
            return {"tmp": 0, "locks": 0, "kept": 0}
        return _store.sweep_orphans(
            self.root,
            max_age=max_age,
            lock_stale=lock_stale,
            skip_dirs=(QUARANTINE_DIR,),
            metrics=self.metrics,
        )

    def __len__(self) -> int:
        with self._lock:
            return len(self._memory)

    @property
    def hits(self) -> int:
        return self.memory_hits + self.disk_hits

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> dict:
        with self._lock:
            return {
                "memory_entries": len(self._memory),
                "memory_hits": self.memory_hits,
                "disk_hits": self.disk_hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "puts": self.puts,
                "quarantined": self.quarantined,
                "publishes": self.publishes,
                "publish_dedups": self.publish_dedups,
                "publish_rescues": self.publish_rescues,
                "hit_rate": round(self.hit_rate, 4),
            }
