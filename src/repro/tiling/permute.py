"""Loop permutation (interchange) with exact legality checking.

Applies to nests where a prefix of loops encloses all statements (the
statements may be several, all at the innermost level).  Legality: no
dependence may become lexicographically backward under the permuted
order — checked by integer feasibility per dependence.
"""

from __future__ import annotations

from repro.dependence import compute_dependences
from repro.dependence.analysis import Dependence, src_name, tgt_name
from repro.ir.nodes import Loop, Node, Program, Statement
from repro.polyhedra.constraints import Constraint, System
from repro.polyhedra.omega import integer_feasible


def _loop_chain(program: Program) -> tuple[list[Loop], list[Node]]:
    loops: list[Loop] = []
    body = program.body
    while len(body) == 1 and isinstance(body[0], Loop):
        loops.append(body[0])
        body = body[0].body
    if not loops or not all(isinstance(n, Statement) for n in body):
        raise ValueError("permute_loops requires all statements at the innermost level")
    return loops, body


def _violates_order(dep: Dependence, order: list[str]) -> bool:
    """Does any instance pair run target-before-source under ``order``?"""
    # Statements share all loops here, so positions beyond loops are the
    # textual order; after permutation textual order within an iteration
    # is unchanged, so reversal requires a strictly-backward loop vector.
    for k in range(len(order)):
        constraints: list[Constraint] = []
        for v in order[:k]:
            constraints.append(Constraint.eq({src_name(v): 1, tgt_name(v): -1}, 0))
        v = order[k]
        constraints.append(Constraint.ge({src_name(v): 1, tgt_name(v): -1}, -1))
        if integer_feasible(dep.system.conjoin(System(constraints))):
            return True
    return False


def can_permute(program: Program, order: list[str]) -> bool:
    """True iff permuting the nest's loops into ``order`` is legal."""
    loops, _ = _loop_chain(program)
    if sorted(order) != sorted(l.var for l in loops):
        raise ValueError("order must be a permutation of the nest's loop variables")
    deps = compute_dependences(program)
    return not any(_violates_order(dep, order) for dep in deps)


def permute_loops(program: Program, order: list[str], check: bool = True) -> Program:
    """Interchange the nest's loops into ``order`` (outermost first).

    Loop bounds must not reference loop variables moved inward past them;
    this is validated structurally after permutation.
    """
    if check and not can_permute(program, order):
        raise ValueError(f"loop permutation to {order} is illegal")
    loops, innermost = _loop_chain(program)
    by_var = {l.var: l for l in loops}
    body: list[Node] = [Statement(s.label, s.lhs, s.rhs) for s in innermost]
    for var in reversed(order):
        old = by_var[var]
        body = [Loop(old.var, list(old.lowers), list(old.uppers), body)]
    out = Program(
        f"{program.name}_permuted",
        params=list(program.params),
        arrays=list(program.arrays.values()),
        body=body,
        assumptions=list(program.assumptions),
    )
    out.validate()  # catches bound references to now-inner variables
    return out
