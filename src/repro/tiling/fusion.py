"""Loop fusion (jamming) with exact legality checking.

Two adjacent sibling loops with identical bounds fuse into one loop
running both bodies per iteration.  Fusion is illegal iff some
dependence between the two bodies would be reversed: a dependence from
an instance of the first loop at iteration ``i`` to an instance of the
second at iteration ``j`` must keep ``i <= j`` (it runs at the fused
iteration boundary), and a dependence from the second loop to the first
(textually backward, necessarily loop-carried through an outer loop)
must keep ``i < j``.
"""

from __future__ import annotations

from repro.dependence import compute_dependences
from repro.dependence.analysis import src_name, tgt_name
from repro.ir.nodes import Guard, Loop, Node, Program, Statement
from repro.polyhedra.constraints import Constraint, System
from repro.polyhedra.omega import integer_feasible


def _statement_labels(node: Node) -> set[str]:
    out: set[str] = set()

    def walk(n: Node) -> None:
        if isinstance(n, Statement):
            out.add(n.label)
        elif isinstance(n, (Loop, Guard)):
            for child in n.body:
                walk(child)

    walk(node)
    return out


def can_fuse_adjacent(program: Program, first: Loop, second: Loop) -> bool:
    """Exact fusion legality for two sibling loops of ``program``."""
    first_labels = _statement_labels(first)
    second_labels = _statement_labels(second)
    deps = compute_dependences(program)
    for dep in deps:
        if dep.level is not None:
            # Carried by a common outer loop: that loop still orders the
            # dependent instances after fusion, so fusion cannot break it.
            continue
        src_in_first = dep.src.label in first_labels
        tgt_in_second = dep.tgt.label in second_labels
        src_in_second = dep.src.label in second_labels
        tgt_in_first = dep.tgt.label in first_labels
        if src_in_first and tgt_in_second:
            sv, tv = src_name(first.var), tgt_name(second.var)
            # Violated if the source iteration exceeds the target's:
            # after fusion the (fused) iteration tv runs the second body
            # after the first body of the same iteration.
            bad = Constraint.ge({sv: 1, tv: -1}, -1)  # sv >= tv + 1
            if integer_feasible(dep.system.conjoin(System([bad]))):
                return False
        elif src_in_second and tgt_in_first:
            sv, tv = src_name(second.var), tgt_name(first.var)
            bad = Constraint.ge({sv: 1, tv: -1}, 0)  # sv >= tv
            if integer_feasible(dep.system.conjoin(System([bad]))):
                return False
    return True


def _same_bounds(a: Loop, b: Loop) -> bool:
    return (
        [x._key() for x in a.lowers] == [x._key() for x in b.lowers]
        and [x._key() for x in a.uppers] == [x._key() for x in b.uppers]
    )


def fuse_adjacent_loops(program: Program, parent_var: str | None = None, check: bool = True) -> Program:
    """Fuse every pair of adjacent same-bound sibling loops (one pass).

    ``parent_var`` restricts fusion to the body of that loop (None means
    everywhere, including top level).  The fused loop takes the first
    loop's variable; the second body is renamed accordingly.
    """

    def fuse_in(body: list[Node], here: bool) -> list[Node]:
        out: list[Node] = []
        for node in body:
            if isinstance(node, Loop):
                inner_here = parent_var is None or node.var == parent_var
                node = Loop(node.var, list(node.lowers), list(node.uppers),
                            fuse_in(node.body, inner_here))
            elif isinstance(node, Guard):
                node = Guard(list(node.conditions), fuse_in(node.body, here))
            if (
                here
                and out
                and isinstance(node, Loop)
                and isinstance(out[-1], Loop)
                and _same_bounds(out[-1], node)
            ):
                first = out[-1]
                if not check or can_fuse_adjacent(program, first, node):
                    renamed = _rename_body(node.body, {node.var: first.var})
                    out[-1] = Loop(
                        first.var, list(first.lowers), list(first.uppers),
                        first.body + renamed,
                    )
                    continue
            out.append(node)
        return out

    top = parent_var is None
    return Program(
        f"{program.name}_fused",
        params=list(program.params),
        arrays=list(program.arrays.values()),
        body=fuse_in(program.body, top),
        assumptions=list(program.assumptions),
    )


def _rename_body(nodes: list[Node], mapping: dict[str, str]) -> list[Node]:
    out: list[Node] = []
    for node in nodes:
        if isinstance(node, Statement):
            out.append(
                Statement(node.label, node.lhs.rename(mapping), node.rhs.rename(mapping))
            )
        elif isinstance(node, Loop):
            out.append(
                Loop(
                    node.var,
                    [b.rename(mapping) for b in node.lowers],
                    [b.rename(mapping) for b in node.uppers],
                    _rename_body(node.body, mapping),
                )
            )
        elif isinstance(node, Guard):
            out.append(
                Guard([c.rename(mapping) for c in node.conditions], _rename_body(node.body, mapping))
            )
    return out
