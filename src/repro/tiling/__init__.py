"""Control-centric transformations: the paper's Section 3 baseline.

Iteration-space tiling (strip-mine and interchange) for perfectly nested
loops, loop permutation, loop fusion (jamming) and code sinking — the
classic toolkit the paper contrasts data shackling with.  All legality
checks are exact, via the dependence polyhedra.
"""

from repro.tiling.fusion import can_fuse_adjacent, fuse_adjacent_loops
from repro.tiling.permute import can_permute, permute_loops
from repro.tiling.sinking import sink_to_perfect_nest
from repro.tiling.tile import tile_perfect_nest

__all__ = [
    "can_fuse_adjacent",
    "can_permute",
    "fuse_adjacent_loops",
    "permute_loops",
    "sink_to_perfect_nest",
    "tile_perfect_nest",
]
