"""Iteration-space tiling for perfectly nested loops (Wolfe).

``tile_perfect_nest`` strip-mines each loop of a fully permutable band
and interchanges the tile loops outward, producing the classic blocked
code of the paper's Figure 3.  Legality — full permutability of the
band — is checked exactly with the dependence polyhedra.
"""

from __future__ import annotations

from repro.dependence import compute_dependences, loops_fully_permutable
from repro.ir.expr import DivBound
from repro.ir.nodes import Loop, Node, Program, Statement


def _perfect_nest(program: Program) -> tuple[list[Loop], list[Node]]:
    loops: list[Loop] = []
    body = program.body
    while len(body) == 1 and isinstance(body[0], Loop):
        loops.append(body[0])
        body = body[0].body
    if not loops or not all(isinstance(n, Statement) for n in body):
        raise ValueError("tile_perfect_nest requires a perfectly nested loop")
    return loops, body


def tile_perfect_nest(
    program: Program,
    tile_sizes: list[int],
    band: range | None = None,
    check: bool = True,
    name: str | None = None,
) -> Program:
    """Tile the loops of a perfect nest with the given tile sizes.

    ``band`` selects which loops to tile (defaults to all); the band must
    be fully permutable, which is verified against the dependences unless
    ``check=False``.  Loop bounds must not reference band loop variables
    (rectangular tiling), which holds for the paper's examples.
    """
    loops, innermost = _perfect_nest(program)
    band = band if band is not None else range(len(loops))
    if len(tile_sizes) != len(band):
        raise ValueError("one tile size per tiled loop required")
    if check:
        deps = compute_dependences(program)
        if not loops_fully_permutable(deps, band):
            raise ValueError("the requested band is not fully permutable; tiling is illegal")
    band_vars = {loops[i].var for i in band}
    for i in band:
        loop = loops[i]
        for bound in loop.lowers + loop.uppers:
            if bound.affine.variables() & band_vars:
                raise ValueError(
                    f"loop {loop.var} has band-dependent bounds; rectangular tiling "
                    f"does not apply"
                )

    # Tile loops (outermost) then point loops, preserving relative order.
    tile_loops: list[Loop] = []
    point_loops: list[Loop] = []
    sizes = dict(zip(band, tile_sizes))
    for i, loop in enumerate(loops):
        if i not in band:
            point_loops.append(Loop(loop.var, list(loop.lowers), list(loop.uppers), []))
            continue
        size = sizes[i]
        tvar = f"t{loop.var}"
        # Tile index t satisfies size*(t-1) < i <= size*t over [lo, hi]:
        # t in [ceil(lo/size), ceil(hi/size)].
        tile_lowers = [DivBound(b.affine, b.den * size) for b in loop.lowers]
        tile_uppers = [
            # ceil(floor(aff/den)/size) == floor((aff + den*(size-1)) / (den*size))
            DivBound(b.affine + b.den * (size - 1), b.den * size)
            for b in loop.uppers
        ]
        tile_loops.append(Loop(tvar, tile_lowers, tile_uppers, []))
        point_lowers = list(loop.lowers) + [DivBound(f"{size}*{tvar}-{size - 1}")]
        point_uppers = list(loop.uppers) + [DivBound(f"{size}*{tvar}")]
        point_loops.append(Loop(loop.var, point_lowers, point_uppers, []))

    body: list[Node] = [Statement(s.label, s.lhs, s.rhs) for s in innermost]
    for loop in reversed(tile_loops + point_loops):
        loop.body[:] = body
        body = [loop]
    return Program(
        name or f"{program.name}_tiled",
        params=list(program.params),
        arrays=list(program.arrays.values()),
        body=body,
        assumptions=list(program.assumptions),
    )
