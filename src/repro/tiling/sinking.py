"""Code sinking: converting imperfect nests to perfect ones with guards.

The paper (Section 3) uses code sinking as the classic route from
imperfectly nested loops to tilable perfect nests: every statement is
moved into an adjacent loop at its level, guarded so it executes exactly
once at the right iteration.  There is no unique way to sink — the
paper's point is precisely that the choices matter and no systematic
procedure is known; this implementation sinks each statement into the
lexically-next loop at its first iteration (or the previous loop at its
last iteration, for trailing statements).

Sinking a statement into a loop is only correct if that loop provably
executes at least once for every enclosing iteration (otherwise the sunk
instance would be lost — right-looking Cholesky's ``S1`` at ``J = N`` is
exactly such a case).  This implementation verifies non-emptiness with
the exact integer implication test and raises when it cannot.
"""

from __future__ import annotations

from repro.ir.expr import DivBound
from repro.ir.nodes import Guard, Loop, Node, Program, Statement
from repro.polyhedra.constraints import Constraint, System
from repro.polyhedra.simplify import implies


def _pin_guard(var: str, bound: DivBound) -> Constraint:
    """``var == bound`` for a den-1 bound (guards a sunk statement)."""
    if bound.den != 1:
        raise ValueError("cannot pin a statement to a divided bound")
    coeffs = {var: 1}
    for v, c in bound.affine.coeffs.items():
        coeffs[v] = coeffs.get(v, 0) - c
    return Constraint.eq(coeffs, -bound.affine.const)


def _provably_nonempty(loop: Loop, context: System) -> bool:
    """True iff every context point gives the loop at least one iteration.

    Sufficient check: every (lower, upper) bound pair with unit
    denominators satisfies ``lower <= upper`` in context.  Divided bounds
    are rejected conservatively.
    """
    for lo in loop.lowers:
        for hi in loop.uppers:
            if lo.den != 1 or hi.den != 1:
                return False
            diff = hi.affine - lo.affine
            if not implies(context, Constraint.ge(diff.coeffs, diff.const)):
                return False
    return True


def sink_to_perfect_nest(program: Program, name: str | None = None) -> Program:
    """Sink every statement to the innermost loop level.

    The result is semantically identical to the input (same instances,
    same order), with statements wrapped in guards pinning the loops they
    did not originally belong to.  Raises ValueError when a statement
    would be sunk into a loop that may execute zero times (the instance
    would be lost) or when no adjacent loop exists.
    """

    def sink_level(nodes: list[Node], context: System) -> list[Node]:
        loops = [n for n in nodes if isinstance(n, Loop)]
        if not loops:
            return nodes
        perfected: dict[int, Loop] = {}
        for loop in loops:
            inner_context = context.conjoin(System(loop.bounds_constraints()))
            perfected[id(loop)] = Loop(
                loop.var,
                list(loop.lowers),
                list(loop.uppers),
                sink_level(loop.body, inner_context),
            )
        if len(loops) == len(nodes) and len(loops) == 1:
            return [perfected[id(loops[0])]]

        out: list[Node] = []
        pending: list[Node] = []
        for node in nodes:
            if isinstance(node, Loop):
                target = perfected[id(node)]
                if pending:
                    if not _provably_nonempty(target, context):
                        raise ValueError(
                            f"cannot sink into loop {target.var!r}: it may run "
                            f"zero iterations, losing the sunk instances"
                        )
                    guards = [
                        Guard([_pin_guard(target.var, target.lowers[0])], [p])
                        for p in pending
                    ]
                    target = Loop(
                        target.var,
                        list(target.lowers),
                        list(target.uppers),
                        _push_into(guards, target.body),
                    )
                    pending = []
                out.append(target)
            else:
                pending.append(node)
        if pending:
            if not out or not isinstance(out[-1], Loop):
                raise ValueError("no loop to sink trailing statements into")
            last = out[-1]
            if not _provably_nonempty(last, context):
                raise ValueError(
                    f"cannot sink into loop {last.var!r}: it may run zero "
                    f"iterations, losing the sunk instances"
                )
            guards = [
                Guard([_pin_guard(last.var, last.uppers[0])], [p]) for p in pending
            ]
            out[-1] = Loop(
                last.var,
                list(last.lowers),
                list(last.uppers),
                _append_into(last.body, guards),
            )
        return out

    def _push_into(guards: list[Node], body: list[Node]) -> list[Node]:
        """Prepend guards, sinking them further if the body is one loop."""
        if len(body) == 1 and isinstance(body[0], Loop):
            inner = body[0]
            sunk = [
                Guard(g.conditions + [_pin_guard(inner.var, inner.lowers[0])], g.body)
                if isinstance(g, Guard)
                else g
                for g in guards
            ]
            return [
                Loop(inner.var, list(inner.lowers), list(inner.uppers), _push_into(sunk, inner.body))
            ]
        return guards + body

    def _append_into(body: list[Node], guards: list[Node]) -> list[Node]:
        if len(body) == 1 and isinstance(body[0], Loop):
            inner = body[0]
            sunk = [
                Guard(g.conditions + [_pin_guard(inner.var, inner.uppers[0])], g.body)
                if isinstance(g, Guard)
                else g
                for g in guards
            ]
            return [
                Loop(inner.var, list(inner.lowers), list(inner.uppers), _append_into(inner.body, sunk))
            ]
        return body + guards

    return Program(
        name or f"{program.name}_sunk",
        params=list(program.params),
        arrays=list(program.arrays.values()),
        body=sink_level(program.body, System(program.assumptions)),
        assumptions=list(program.assumptions),
    )
