"""Code generation for shackled programs.

Two generators are provided, mirroring the paper:

* :func:`naive_code` — the directly-derived form (paper Figure 5): loops
  over all blocks, the original loop nest inside, and a membership guard
  around every statement.  Always correct, never efficient.
* :func:`simplified_code` — the polyhedrally simplified form (paper
  Figures 6, 7, 10): for a single perfectly nested statement the guards
  are converted into tight loop bounds by scanning the combined
  polyhedron; for general imperfect nests the guards are reduced to their
  gist in context and hoisted into loop bounds where every statement
  under the loop shares them.

Both forms execute statement instances in exactly the same order — block
lexicographic, then original program order — which is the order
:mod:`repro.core.instances` enumerates; simplification only removes
control overhead.
"""

from __future__ import annotations

from fractions import Fraction

from repro.core.product import block_var_names
from repro.ir.analysis import iteration_domain, statement_contexts
from repro.ir.expr import Affine, DivBound
from repro.ir.nodes import Guard, Loop, Node, Program, Statement
from repro.polyhedra.constraints import Constraint, System
from repro.polyhedra.scan import Bound, scan_bounds
from repro.polyhedra.simplify import gist


def _fresh_block_names(shackle) -> list[str]:
    """t1, t2, ... avoiding any name already used by the program."""
    program = shackle.factors()[0].program
    used = set(program.params) | set(program.arrays)
    for ctx in statement_contexts(program):
        used.update(ctx.loop_vars)
    names: list[str] = []
    counter = 1
    total = shackle.num_block_dims
    while len(names) < total:
        candidate = f"t{counter}"
        counter += 1
        if candidate not in used:
            names.append(candidate)
    return names


def _plane_value_range(plane, array) -> tuple[Affine, Affine]:
    lo = Affine({}, -plane.offset)
    hi = Affine({}, -plane.offset)
    for n, extent in zip(plane.normal, array.extents):
        if n > 0:
            lo = lo + Affine({}, n)  # n * 1
            hi = hi + extent * n
        elif n < 0:
            lo = lo + extent * n
            hi = hi + Affine({}, n)
    return lo, hi


def _block_loop_specs(shackle, names: list[str]) -> list[tuple[str, DivBound, DivBound]]:
    """(var, lower, upper) for each traversal coordinate, outermost first."""
    program = shackle.factors()[0].program
    specs: list[tuple[str, DivBound, DivBound]] = []
    flat = 0
    for factor in shackle.factors():
        array = program.arrays[factor.blocking.array]
        for plane, direction in zip(factor.blocking.planes, factor.blocking.directions):
            x_lo, x_hi = _plane_value_range(plane, array)
            s = plane.spacing
            if direction == 1:
                lower = DivBound(x_lo, s)  # ceil(x_lo / s)
                upper = DivBound(x_hi + (s - 1), s)  # ceil(x_hi/s) as a floor
            else:
                lower = DivBound(-x_hi - (s - 1), s)  # -ceil(x_hi/s)
                upper = DivBound(-x_lo, s)  # -ceil(x_lo/s) = floor(-x_lo/s)
            specs.append((names[flat], _fold_const(lower, "lower"), _fold_const(upper, "upper")))
            flat += 1
    return specs


def _memberships_flat(shackle, label: str, names: list[str]) -> list[Constraint]:
    out: list[Constraint] = []
    offset = 0
    for factor in shackle.factors():
        group = names[offset : offset + factor.num_block_dims]
        out.extend(factor.membership(label, group))
        offset += factor.num_block_dims
    return out


def _copy_nodes(nodes: list[Node], wrap_statement) -> list[Node]:
    out: list[Node] = []
    for node in nodes:
        if isinstance(node, Statement):
            out.append(wrap_statement(node))
        elif isinstance(node, Loop):
            out.append(
                Loop(node.var, list(node.lowers), list(node.uppers), _copy_nodes(node.body, wrap_statement))
            )
        elif isinstance(node, Guard):
            out.append(Guard(list(node.conditions), _copy_nodes(node.body, wrap_statement)))
        else:  # pragma: no cover - defensive
            raise TypeError(f"unknown node {node!r}")
    return out


def naive_code(shackle, name: str | None = None) -> Program:
    """Paper Figure 5: block loops around the guarded original nest."""
    program = shackle.factors()[0].program
    names = _fresh_block_names(shackle)

    def wrap(stmt: Statement) -> Node:
        conditions = _memberships_flat(shackle, stmt.label, names)
        return Guard(conditions, [Statement(stmt.label, stmt.lhs, stmt.rhs)])

    body: list[Node] = _copy_nodes(program.body, wrap)
    for var, lower, upper in reversed(_block_loop_specs(shackle, names)):
        body = [Loop(var, lower, upper, body)]
    return Program(
        name or f"{program.name}_shackled_naive",
        params=list(program.params),
        arrays=list(program.arrays.values()),
        body=body,
        assumptions=list(program.assumptions),
    )


def _bound_to_divbound(bound: Bound) -> DivBound:
    const = bound.const
    if isinstance(const, Fraction) and const.denominator != 1:
        raise ValueError("fractional bound constant in codegen")
    return DivBound(Affine(bound.coeffs, const), bound.den)


def _perfect_single_statement(program: Program):
    """Return (loops, statement) if the program is one perfect nest."""
    loops = []
    body = program.body
    while len(body) == 1 and isinstance(body[0], Loop):
        loops.append(body[0])
        body = body[0].body
    if len(body) == 1 and isinstance(body[0], Statement):
        return loops, body[0]
    return None


def simplified_code(shackle, name: str | None = None) -> Program:
    """Simplified shackled code (paper Figures 6, 7, 10).

    The instance execution order is identical to :func:`naive_code`; only
    redundant control flow is removed.
    """
    program = shackle.factors()[0].program
    names = _fresh_block_names(shackle)
    perfect = _perfect_single_statement(program)
    if perfect is not None:
        return _simplified_perfect(shackle, program, names, perfect, name)
    return _simplified_general(shackle, program, names, name)


def _simplified_perfect(shackle, program, names, perfect, name) -> Program:
    loops, stmt = perfect
    ctx = statement_contexts(program)[0]
    system = iteration_domain(ctx, program).conjoin(
        System(_memberships_flat(shackle, stmt.label, names))
    )
    order = names + ctx.loop_vars
    bounds, residual = scan_bounds(system, order, prune=True)
    inner: list[Node] = [Statement(stmt.label, stmt.lhs, stmt.rhs)]
    for level in reversed(bounds):
        lowers = [_bound_to_divbound(b) for b in level.lowers]
        uppers = [_bound_to_divbound(b) for b in level.uppers]
        inner = [Loop(level.var, lowers, uppers, inner)]
    # Residual constraints not already guaranteed by the assumptions wrap
    # the whole nest.
    leftover = gist(System(residual), System(program.assumptions))
    if len(leftover):
        inner = [Guard(list(leftover), inner)]
    return Program(
        name or f"{program.name}_shackled",
        params=list(program.params),
        arrays=list(program.arrays.values()),
        body=collapse_degenerate_loops(inner),
        assumptions=list(program.assumptions),
    )


def _simplified_general(shackle, program, names, name) -> Program:
    contexts = {c.label: c for c in statement_contexts(program)}
    specs = _block_loop_specs(shackle, names)
    block_context = System(
        [c for var, lower, upper in specs for c in Loop(var, lower, upper).bounds_constraints()]
        + list(program.assumptions)
    )

    def rebuild(nodes: list[Node], context: System) -> list[Node]:
        out: list[Node] = []
        for node in nodes:
            if isinstance(node, Statement):
                ctx = contexts[node.label]
                membership = System(_memberships_flat(shackle, node.label, names))
                reduced = gist(membership, context.conjoin(System(ctx.guards)))
                stmt = Statement(node.label, node.lhs, node.rhs)
                if len(reduced):
                    out.append(Guard(list(reduced), [stmt]))
                else:
                    out.append(stmt)
            elif isinstance(node, Loop):
                inner_ctx = context.conjoin(System(node.bounds_constraints()))
                rebuilt = Loop(
                    node.var, list(node.lowers), list(node.uppers), rebuild(node.body, inner_ctx)
                )
                tightened = _merge_guards(_tighten_loop(_fold_shared_guards(rebuilt)))
                if isinstance(tightened, Loop):
                    tightened = _prune_loop_bounds(tightened, context)
                elif isinstance(tightened, Guard) and len(tightened.body) == 1 and isinstance(
                    tightened.body[0], Loop
                ):
                    inner = _prune_loop_bounds(
                        tightened.body[0], context.conjoin(System(tightened.conditions))
                    )
                    tightened = Guard(tightened.conditions, [inner])
                out.append(tightened)
            elif isinstance(node, Guard):
                inner_ctx = context.conjoin(System(node.conditions))
                out.append(
                    _merge_guards(Guard(list(node.conditions), rebuild(node.body, inner_ctx)))
                )
            else:  # pragma: no cover - defensive
                raise TypeError(f"unknown node {node!r}")
        return out

    body = rebuild(program.body, block_context)
    for var, lower, upper in reversed(specs):
        body = [Loop(var, lower, upper, body)]
    return Program(
        name or f"{program.name}_shackled",
        params=list(program.params),
        arrays=list(program.arrays.values()),
        body=collapse_degenerate_loops(body),
        assumptions=list(program.assumptions),
    )


def _fold_const(bound: DivBound, kind: str) -> DivBound:
    """Evaluate constant div bounds: ``(1)/3`` as a lower bound is ``1``."""
    if bound.den != 1 and bound.affine.is_constant():
        if kind == "lower":
            return DivBound(bound.evaluate_lower({}))
        return DivBound(bound.evaluate_upper({}))
    return bound


def _fold_shared_guards(loop: Loop) -> Loop:
    """If every child of the loop is guarded by a common condition set,
    factor those conditions into a single guard around the whole body so
    that :func:`_tighten_loop` can fold them into the loop bounds.

    This is what merges the two guarded ADI statements under one pinned
    ``i`` (paper Figure 14): both children carry ``i == t2 + 1``.
    """
    if len(loop.body) < 2 or not all(isinstance(c, Guard) for c in loop.body):
        return loop
    guards = [c for c in loop.body if isinstance(c, Guard)]
    common = set(guards[0].conditions)
    for g in guards[1:]:
        common &= set(g.conditions)
    if not common:
        return loop
    children: list[Node] = []
    for g in guards:
        residual = [c for c in g.conditions if c not in common]
        if residual:
            children.append(Guard(residual, g.body))
        else:
            children.extend(g.body)
    ordered_common = [c for c in guards[0].conditions if c in common]
    return Loop(loop.var, list(loop.lowers), list(loop.uppers), [Guard(ordered_common, children)])


def _prune_loop_bounds(loop: Loop, context: System) -> Loop:
    """Drop loop bounds implied by the context plus the remaining bounds."""
    from repro.polyhedra.simplify import implies

    def bound_constraint(b: DivBound, kind: str) -> Constraint:
        if kind == "lower":  # var >= ceil(aff/den)  <=>  den*var - aff >= 0
            coeffs = {loop.var: b.den}
            for v, c in b.affine.coeffs.items():
                coeffs[v] = coeffs.get(v, 0) - c
            return Constraint.ge(coeffs, -b.affine.const)
        coeffs = {loop.var: -b.den}
        for v, c in b.affine.coeffs.items():
            coeffs[v] = coeffs.get(v, 0) + c
        return Constraint.ge(coeffs, b.affine.const)

    def prune(bounds: list[DivBound], kind: str) -> list[DivBound]:
        kept = list(dict.fromkeys(bounds))
        changed = True
        while changed and len(kept) > 1:
            changed = False
            for i, candidate in enumerate(kept):
                others = [bound_constraint(b, kind) for j, b in enumerate(kept) if j != i]
                if implies(context.conjoin(System(others)), bound_constraint(candidate, kind)):
                    kept.pop(i)
                    changed = True
                    break
        return kept

    return Loop(loop.var, prune(loop.lowers, "lower"), prune(loop.uppers, "upper"), loop.body)


def _tighten_loop(loop: Loop) -> Node:
    """Fold guards into loop bounds and hoist loop-independent guards out.

    Applied bottom-up by ``rebuild``.  When the loop body is a single
    Guard:

    * inequality conditions on this loop's variable become extra bounds;
    * equality conditions ``a*var + e == 0`` become a matching lower and
      upper bound pair (an empty range when not divisible — exactly the
      integer semantics of the guard);
    * conditions not mentioning the variable are hoisted above the loop,
      which lets enclosing levels fold them in turn (this is what turns
      the naive Cholesky guards into Figure-7-style bounds).
    """
    if len(loop.body) != 1 or not isinstance(loop.body[0], Guard):
        return loop
    guard = loop.body[0]
    remaining: list[Constraint] = []
    hoisted: list[Constraint] = []
    lowers = list(loop.lowers)
    uppers = list(loop.uppers)
    for c in guard.conditions:
        a = c.coeff(loop.var)
        if a == 0:
            hoisted.append(c)
            continue
        rest = Affine({v: x for v, x in c.coeffs.items() if v != loop.var}, c.const)
        if c.is_eq:
            # a*var + rest == 0: var in [ceil(-rest/a), floor(-rest/a)].
            sign = 1 if a > 0 else -1
            lowers.append(DivBound(-rest * sign, abs(a)))
            uppers.append(DivBound(-rest * sign, abs(a)))
        elif a > 0:
            # a*var + rest >= 0  ->  var >= ceil(-rest / a)
            lowers.append(DivBound(-rest, a))
        else:
            # -|a|*var + rest >= 0  ->  var <= floor(rest / |a|)
            uppers.append(DivBound(rest, -a))
    body: list[Node] = [Guard(remaining, guard.body)] if remaining else list(guard.body)
    tightened = Loop(loop.var, lowers, uppers, body)
    if hoisted:
        return Guard(hoisted, [tightened])
    return tightened


def _substitute_var(nodes: list[Node], var: str, value: Affine) -> list[Node]:
    """Replace ``var`` by an affine value throughout a subtree."""
    mapping = {var: value}

    def sub_bound(b: DivBound) -> DivBound:
        return DivBound(b.affine.substitute(mapping), b.den)

    def sub_constraint(c: Constraint) -> Constraint:
        return c.substitute(var, value.coeffs, value.const)

    out: list[Node] = []
    for node in nodes:
        if isinstance(node, Loop):
            out.append(
                Loop(
                    node.var,
                    [sub_bound(b) for b in node.lowers],
                    [sub_bound(b) for b in node.uppers],
                    _substitute_var(node.body, var, value),
                )
            )
        elif isinstance(node, Guard):
            out.append(
                Guard(
                    [sub_constraint(c) for c in node.conditions],
                    _substitute_var(node.body, var, value),
                )
            )
        elif isinstance(node, Statement):
            sub_ref = node.lhs.__class__(
                node.lhs.array, *(i.substitute(mapping) for i in node.lhs.indices)
            )
            out.append(Statement(node.label, sub_ref, _substitute_expr(node.rhs, mapping)))
        else:  # pragma: no cover - defensive
            raise TypeError(f"unknown node {node!r}")
    return out


def _substitute_expr(expr, mapping):
    from repro.ir.expr import AffExpr, BinOp, Call, Const, Ref, UnOp

    if isinstance(expr, Const):
        return expr
    if isinstance(expr, AffExpr):
        return AffExpr(expr.affine.substitute(mapping))
    if isinstance(expr, Ref):
        return Ref(expr.array, *(i.substitute(mapping) for i in expr.indices))
    if isinstance(expr, BinOp):
        return BinOp(expr.op, _substitute_expr(expr.left, mapping), _substitute_expr(expr.right, mapping))
    if isinstance(expr, UnOp):
        return UnOp(expr.op, _substitute_expr(expr.operand, mapping))
    if isinstance(expr, Call):
        return Call(expr.func, *(_substitute_expr(a, mapping) for a in expr.args))
    raise TypeError(f"unknown expression {expr!r}")  # pragma: no cover


def collapse_degenerate_loops(nodes: list[Node]) -> list[Node]:
    """Remove single-iteration loops like ``do t3 = t1, t1``.

    Products of shackles whose chosen references share subscript rows
    produce such loops (the paper's C x A matmul product constrains the
    same row coordinate twice); substituting the pinned value recovers the
    clean Figure-10 shape.  Only exact (den == 1) pinned bounds collapse.
    """
    out: list[Node] = []
    for node in nodes:
        if isinstance(node, Loop):
            body = collapse_degenerate_loops(node.body)
            if (
                len(node.lowers) == 1
                and len(node.uppers) == 1
                and node.lowers[0].den == 1
                and node.lowers[0] == node.uppers[0]
            ):
                out.extend(_substitute_var(body, node.var, node.lowers[0].affine))
            else:
                out.append(Loop(node.var, list(node.lowers), list(node.uppers), body))
        elif isinstance(node, Guard):
            out.append(Guard(list(node.conditions), collapse_degenerate_loops(node.body)))
        else:
            out.append(node)
    return out


def _merge_guards(node: Node) -> Node:
    """Collapse ``Guard(a, [Guard(b, body)])`` into ``Guard(a+b, body)``."""
    if isinstance(node, Guard) and len(node.body) == 1 and isinstance(node.body[0], Guard):
        inner = node.body[0]
        return _merge_guards(Guard(node.conditions + inner.conditions, inner.body))
    return node
