"""Legality of data shackles — Theorem 1 of the paper, decided exactly.

A shackle (or product of shackles) maps statement instances to a totally
ordered set of traversal coordinates.  It is legal iff for every
dependence ``(S1, u) -> (S2, v)``, the conjunction of

* the dependence polyhedron (both domains, subscript equality, original
  execution order), and
* "the block of the target is touched strictly before the block of the
  source" (a lexicographic disjunction over the concatenated traversal
  coordinates of all factors)

has no integer solution.  Instances mapped to the *same* block run in
original program order, so equality of coordinates is never a violation —
exactly as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.product import block_var_names
from repro.dependence.analysis import Dependence, compute_dependences
from repro.engine.metrics import METRICS
from repro.polyhedra.constraints import Constraint, System
from repro.polyhedra.omega import integer_feasible, integer_sample


@dataclass
class Violation:
    """A dependence broken by the shackle, with the violating system."""

    dependence: Dependence
    lex_position: int  # which traversal coordinate strictly decreases
    system: System = field(repr=False)

    def witness(self) -> dict[str, int] | None:
        """A concrete violating pair of instances (solves the system)."""
        return integer_sample(self.system)

    def describe(self) -> str:
        return (
            f"violates {self.dependence.describe()} at traversal coordinate "
            f"{self.lex_position}"
        )


@dataclass
class LegalityResult:
    """Outcome of a legality check; truthy iff the shackle is legal."""

    shackle: object
    violations: list[Violation]
    checked_dependences: int

    @property
    def legal(self) -> bool:
        return not self.violations

    def __bool__(self) -> bool:
        return self.legal

    def explain(self) -> str:
        if self.legal:
            return f"legal ({self.checked_dependences} dependences respected)"
        lines = [f"ILLEGAL ({len(self.violations)} violated dependence levels):"]
        lines.extend("  " + v.describe() for v in self.violations)
        return "\n".join(lines)


def _memberships(shackle, ctx_label, loop_vars, suffix, names) -> System:
    rename = {v: v + suffix for v in loop_vars}
    constraints: list[Constraint] = []
    for factor, factor_names in zip(shackle.factors(), names):
        constraints.extend(factor.membership(ctx_label, factor_names, rename))
    return System(constraints)


def check_legality(
    shackle,
    dependences: list[Dependence] | None = None,
    first_violation_only: bool = False,
) -> LegalityResult:
    """Decide Theorem-1 legality of a shackle or product.

    ``dependences`` may be precomputed (e.g. when checking many candidate
    shackles of the same program, as the search driver does).
    """
    METRICS.inc("legality.checks")
    with METRICS.timer("legality.check"):
        program = shackle.factors()[0].program
        if dependences is None:
            dependences = compute_dependences(program)

        src_names = block_var_names(shackle, "s")
        tgt_names = block_var_names(shackle, "t")
        flat_src = [n for group in src_names for n in group]
        flat_tgt = [n for group in tgt_names for n in group]

        violations: list[Violation] = []
        for dep in dependences:
            base = dep.system.conjoin(
                _memberships(shackle, dep.src.label, dep.src.loop_vars, "__s", src_names),
                _memberships(shackle, dep.tgt.label, dep.tgt.loop_vars, "__t", tgt_names),
            )
            # M(S2, v) < M(S1, u) lexicographically: disjunction over the
            # position k of the first strictly smaller coordinate.
            for k in range(len(flat_src)):
                constraints: list[Constraint] = []
                for i in range(k):
                    constraints.append(Constraint.eq({flat_tgt[i]: 1, flat_src[i]: -1}, 0))
                constraints.append(Constraint.ge({flat_src[k]: 1, flat_tgt[k]: -1}, -1))
                candidate = base.conjoin(System(constraints))
                if integer_feasible(candidate):
                    violations.append(Violation(dep, k, candidate))
                    if first_violation_only:
                        return LegalityResult(shackle, violations, len(dependences))
                    break  # one violating level per dependence is enough to report
        return LegalityResult(shackle, violations, len(dependences))
