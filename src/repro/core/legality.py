"""Legality of data shackles — Theorem 1 of the paper, decided exactly.

A shackle (or product of shackles) maps statement instances to a totally
ordered set of traversal coordinates.  It is legal iff for every
dependence ``(S1, u) -> (S2, v)``, the conjunction of

* the dependence polyhedron (both domains, subscript equality, original
  execution order), and
* "the block of the target is touched strictly before the block of the
  source" (a lexicographic disjunction over the concatenated traversal
  coordinates of all factors)

has no integer solution.  Instances mapped to the *same* block run in
original program order, so equality of coordinates is never a violation —
exactly as in the paper.

The check exploits the lexicographic structure of products instead of
solving one ILP per concatenated coordinate position:

* a violation inside factor ``f``'s coordinates requires *all* earlier
  factors' coordinates to be equal, and adding constraints never makes an
  infeasible system feasible — so if factor ``f`` *alone* admits no
  violation, the restricted query needs no ILP at all;
* if factor ``f`` alone admits neither a violation nor a tie (no pair of
  dependent instances lands in the same block), every dependent pair is
  strictly ordered by ``f`` and **no later factor needs any ILP** — the
  dependence is safe regardless of what follows;
* factor-alone verdicts are position-independent (they are computed over
  position-0 coordinate names), so they are shared across the greedy
  product search through ``verdict_cache`` and, structurally, through
  the solver's canonical-form memo.

Dependences that caused rejections before are tried first
(``first_violation_only`` callers exit on the first violation, so a
failure-first order makes illegal candidates cheap to reject).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import MutableMapping

from repro.core.product import block_var_names
from repro.dependence.analysis import Dependence, compute_dependences
from repro.engine.metrics import METRICS
from repro.polyhedra import solver as _solver
from repro.polyhedra.budget import SolverBudget
from repro.polyhedra.constraints import Constraint, System
from repro.polyhedra.omega import integer_feasible, integer_sample


def _feasible_conservative(system: System) -> bool:
    """:func:`integer_feasible`, degrading gracefully under solver budgets.

    A :class:`SolverBudget` trip means the verdict is *unknown*; legality
    must never accept a candidate on an unknown, so every budgeted query
    maps "unknown" to "a violation (or tie) may exist" — feasible.  The
    candidate is then conservatively rejected, counted under
    ``legality.budget_exceeded``, and the census keeps moving instead of
    hanging on one exponential splintering.
    """
    try:
        return integer_feasible(system)
    except SolverBudget:
        METRICS.inc("legality.budget_exceeded")
        return True


def _feasible_many_conservative(base: System, deltas: list[System]) -> list[bool]:
    """Batched :func:`_feasible_conservative` over one candidate family.

    The whole family shares one budget scope (charged once per family);
    a trip maps *every* undecided member to "feasible" — the same
    conservative rejection as the single-query path.
    """
    try:
        return _solver.feasible_many(base, deltas)
    except SolverBudget:
        METRICS.inc("legality.budget_exceeded")
        return [True] * len(deltas)


@dataclass
class Violation:
    """A dependence broken by the shackle, with the violating system."""

    dependence: Dependence
    lex_position: int  # which traversal coordinate strictly decreases
    system: System = field(repr=False)

    def witness(self) -> dict[str, int] | None:
        """A concrete violating pair of instances (solves the system)."""
        return integer_sample(self.system)

    def describe(self) -> str:
        return (
            f"violates {self.dependence.describe()} at traversal coordinate "
            f"{self.lex_position}"
        )


@dataclass
class LegalityResult:
    """Outcome of a legality check; truthy iff the shackle is legal."""

    shackle: object
    violations: list[Violation]
    checked_dependences: int

    @property
    def legal(self) -> bool:
        return not self.violations

    def __bool__(self) -> bool:
        return self.legal

    def explain(self) -> str:
        if self.legal:
            return f"legal ({self.checked_dependences} dependences respected)"
        lines = [f"ILLEGAL ({len(self.violations)} violated dependence levels):"]
        lines.extend("  " + v.describe() for v in self.violations)
        return "\n".join(lines)


# -- failure-first dependence ordering ---------------------------------------------

_failure_counts: dict[tuple, int] = {}
"""Rejection counts per dependence identity, across all checks this process."""


def _dep_key(dep: Dependence) -> tuple:
    key = getattr(dep, "_legality_key", None)
    if key is None:
        key = (
            dep.kind,
            dep.src.label,
            str(dep.src_ref),
            dep.tgt.label,
            str(dep.tgt_ref),
            dep.level,
        )
        dep._legality_key = key  # str(ref) is hot; deps live across candidates
    return key


def reset_failure_counts() -> None:
    """Forget which dependences caused rejections (tests and benchmarks)."""
    _failure_counts.clear()


# -- witness transfer --------------------------------------------------------------

_WITNESS_CAP = 4
"""Stored witnesses per dependence; sampling stops once a dependence has
this many (diverse geometries rarely need more to cover the family)."""

_WITNESS_MAX_VARS = 20
_WITNESS_RADIUS = 16
_WITNESS_ATTEMPTS = 3
_WITNESS_QUERY_CAP = 250

_witness_attempts: dict[tuple, int] = {}
"""Failed extraction attempts per dependence — a dependence whose
violations resist sampling is abandoned after ``_WITNESS_ATTEMPTS`` so it
stops costing anything (successful extractions refund the attempt)."""

_witness_store: dict[tuple, list[dict[str, int]]] = {}
"""Concrete violating instance pairs per dependence identity.

A violation witness found for one candidate usually transfers to sibling
candidates sharing the dependence: evaluating the sibling's system at
the cached point is O(constraints), so a transferred witness rejects a
relative with zero solver calls (``legality.witness_transfer``).
Transfers are sound by construction — a witness is only accepted for a
member whose *entire* system it satisfies; a stale or foreign witness
simply fails the point check and the member falls through to the solver.
"""


def reset_witnesses() -> None:
    """Forget cached violation witnesses (tests and benchmarks)."""
    _witness_store.clear()
    _witness_attempts.clear()


def _satisfies(system: System, env: dict[str, int]) -> bool:
    try:
        return system.evaluate(env)
    except KeyError:
        return False  # witness does not cover this system's variables


def _complete(system: System, env: dict[str, int]) -> dict[str, int] | None:
    """Extend a loop-variable witness with the system's block coordinates.

    Stored witnesses hold only loop and parameter values — block
    coordinates are candidate-specific (the same name means a different
    factor's coordinate in a different product), so they are re-derived
    here per candidate.  Missing variables are fixed one at a time from
    constraints whose other variables are already valued: membership rows
    pin a block coordinate to the floor of its referenced expression, so
    the interval collapses to a point.  Pure affine propagation — no
    solver calls — and the final full-system evaluation validates the
    result; a failed propagation just means "no transfer".
    """
    remaining = system.variables() - env.keys()
    if not remaining:
        return env if system.evaluate(env) else None
    env = dict(env)
    progress = True
    while remaining and progress:
        progress = False
        for var in sorted(remaining):
            lo = hi = None
            for c in system.constraints:
                a = c.coeffs.get(var)
                if a is None:
                    continue
                if any(v != var and v not in env for v in c.coeffs):
                    continue
                value = c.const + sum(
                    co * env[v] for v, co in c.coeffs.items() if v != var
                )
                # a*var + value  (>= or ==)  0
                if c.is_eq:
                    if value.denominator != 1:
                        return None
                    q, r = divmod(-int(value), a)
                    if r:
                        return None
                    lo = q if lo is None else max(lo, q)
                    hi = q if hi is None else min(hi, q)
                elif a > 0:
                    q = -(int(value) // a)  # ceil(-value / a)
                    lo = q if lo is None else max(lo, q)
                else:
                    q = int(value) // (-a)  # floor(value / -a)
                    hi = q if hi is None else min(hi, q)
            if lo is None and hi is None:
                continue
            if lo is not None and hi is not None and lo > hi:
                return None
            env[var] = lo if lo is not None else hi
            remaining.discard(var)
            progress = True
            break
    if remaining:
        return None
    return env if system.evaluate(env) else None


def _witness_hits(dep_key: tuple, base: System, deltas: list[System]) -> list[bool]:
    """Which members a cached witness proves feasible (True = violation).

    Each stored witness is completed against the base once (deriving this
    candidate's block coordinates); only members whose delta rows the
    completed point also satisfies are marked.  ``False`` means
    "unknown", never "infeasible" — callers still solve those members.
    """
    hits = [False] * len(deltas)
    envs = _witness_store.get(dep_key)
    if not envs:
        return hits
    for env in envs:
        full = _complete(base, env)
        if full is None:
            continue
        for i, delta in enumerate(deltas):
            if not hits[i] and _satisfies(delta, full):
                hits[i] = True
                METRICS.inc("legality.witness_transfer")
        if all(hits):
            break
    return hits


def _single_var_bounds(system: System, var: str):
    """``(lo, hi)`` integer bounds from constraints mentioning only ``var``.

    Either side may be ``None`` (unbounded); an infeasible single-variable
    subsystem comes back as an empty interval (``lo > hi``).
    """
    lo = hi = None
    for c in system.constraints:
        if set(c.coeffs) != {var}:
            continue
        a = c.coeffs[var]
        k = c.const  # a*var + k  (>= or ==)  0
        if c.is_eq:
            if k.denominator != 1:
                return 1, 0
            q, r = divmod(-int(k), a)
            if r:
                return 1, 0
            lo = q if lo is None else max(lo, q)
            hi = q if hi is None else min(hi, q)
        elif a > 0:
            q = -(int(k) // a)  # ceil(-k / a)
            lo = q if lo is None else max(lo, q)
        else:
            q = int(k) // (-a)  # floor(k / -a)
            hi = q if hi is None else min(hi, q)
    return lo, hi


def _scan_window(lo, hi):
    """The candidate values tried for one variable, tightest-first."""
    if lo is not None and hi is not None:
        return range(lo, min(hi, lo + 2 * _WITNESS_RADIUS) + 1)
    if lo is not None:
        return range(lo, lo + _WITNESS_RADIUS + 1)
    if hi is not None:
        return range(hi, hi - _WITNESS_RADIUS - 1, -1)
    return [
        v for k in range(_WITNESS_RADIUS + 1) for v in ((0,) if k == 0 else (k, -k))
    ]


def _extract_witness(system: System) -> dict[str, int] | None:
    """A violating point, found with *memoized* solver probes only.

    Variables are fixed greedily.  Block coordinates (``_w*``) go first —
    any violation keeps them small, and fixing them turns the membership
    rows into constant windows for the loop variables.  The rest are
    picked dynamically, tightest window first, so equality chains
    propagate: a variable forced to a single value (``lo == hi``) is
    substituted without a probe, since every solution of a feasible
    system takes that value.  Every probe goes through
    :func:`repro.polyhedra.solver.feasible`, so a warm process answers
    the whole extraction from the memo (unlike ``omega.integer_sample``,
    whose rational bound computations re-run scalar FM on every call); a
    hard probe cap bounds the cold cost.  Greedy fixing needs no
    backtracking — each accepted value keeps the remaining system
    feasible — so the only incompleteness is the finite scan window.
    """
    env: dict[str, int] = {}
    current = system
    queries = 0

    def fix(var: str, values) -> bool:
        nonlocal current, queries
        for value in values:
            candidate = System(
                c.substitute(var, {}, value) for c in current.constraints
            )
            if candidate.has_obvious_contradiction():
                continue
            queries += 1
            if queries > _WITNESS_QUERY_CAP:
                return False
            try:
                ok = _solver.feasible(candidate)
            except SolverBudget:
                return False
            if ok:
                env[var] = value
                current = candidate
                return True
        return False

    for var in sorted(v for v in system.variables() if v.startswith("_w")):
        if var not in current.variables():
            env[var] = 0  # unconstrained: any value works
            continue
        lo, hi = _single_var_bounds(current, var)
        if lo is not None and hi is not None and lo > hi:
            return None
        if not fix(var, _scan_window(lo, hi)):
            return None

    remaining = sorted(v for v in system.variables() if not v.startswith("_w"))
    while remaining:
        choice = None  # (rank, var, lo, hi); lower rank = tighter window
        for var in remaining:
            if var not in current.variables():
                choice = ((-1, 0), var, None, None)
                break
            lo, hi = _single_var_bounds(current, var)
            if lo is not None and hi is not None:
                if lo > hi:
                    return None
                rank = (0, hi - lo)
            elif lo is not None or hi is not None:
                rank = (1, 0)
            else:
                rank = (2, 0)
            if choice is None or rank < choice[0]:
                choice = (rank, var, lo, hi)
        rank, var, lo, hi = choice
        remaining.remove(var)
        if rank[0] == -1:
            env[var] = 0
            continue
        if lo is not None and lo == hi:
            # Forced value: substitution preserves feasibility, no probe.
            env[var] = lo
            current = System(c.substitute(var, {}, lo) for c in current.constraints)
            continue
        if not fix(var, _scan_window(lo, hi)):
            return None
    return env


def _record_witness(dep_key: tuple, system: System) -> None:
    """Extract and cache a violating point from a freshly found violation.

    Extraction is best-effort and strictly bounded: a capped number of
    memoized feasibility probes per attempt, and a per-dependence attempt
    budget so repeated failures go quiet.  A failed extraction changes no
    verdict — witnesses only ever *add* point-check short-cuts.
    """
    envs = _witness_store.setdefault(dep_key, [])
    if len(envs) >= _WITNESS_CAP or len(system.variables()) > _WITNESS_MAX_VARS:
        return
    attempts = _witness_attempts.get(dep_key, 0)
    if attempts >= _WITNESS_ATTEMPTS:
        return
    _witness_attempts[dep_key] = attempts + 1
    env = _extract_witness(system)
    if env is not None and system.evaluate(env):
        # Store only loop and parameter values: block coordinates are
        # candidate-specific and re-derived at transfer time (_complete).
        envs.append({v: x for v, x in env.items() if not v.startswith("_w")})
        METRICS.inc("legality.witness_recorded")
        _witness_attempts[dep_key] = attempts  # success refunds the attempt


def _factor_key(factor) -> tuple:
    """Structural identity of a factor — the scope of verdict reuse.

    Two factors with equal keys build identical membership constraints,
    so their factor-alone verdicts agree for any dependence *of the same
    program* (``verdict_cache`` must not be shared across programs).
    """
    key = getattr(factor, "_legality_key", None)
    if key is None:
        blocking = factor.blocking
        key = (
            blocking.array,
            tuple((p.normal, p.spacing, p.offset) for p in blocking.planes),
            blocking.directions,
            tuple(
                sorted((label, str(ref)) for label, ref in factor.ref_choice.items())
            ),
            tuple(
                sorted(
                    (label, tuple(str(a) for a in affines))
                    for label, affines in factor.dummies.items()
                )
            ),
        )
        factor._legality_key = key  # str(ref) is hot; factors recur in products
    return key


def _factor_ctx_key(factor, label: str) -> tuple:
    """Identity of a factor's membership *for one statement*.

    The membership constraints for statement ``label`` depend only on the
    blocking and the factor's chosen (or dummy) subscripts for that
    statement, so membership systems and factor-alone verdicts are shared
    across factors that differ only in how they shackle *other*
    statements — a much wider reuse scope than :func:`_factor_key`.
    """
    cache = getattr(factor, "_legality_ctx_keys", None)
    if cache is None:
        cache = factor._legality_ctx_keys = {}
    key = cache.get(label)
    if key is None:
        blocking = factor.blocking
        key = cache[label] = (
            blocking.array,
            tuple((p.normal, p.spacing, p.offset) for p in blocking.planes),
            blocking.directions,
            tuple(str(a) for a in factor.subscripts(label)),
        )
    return key


# -- query construction ------------------------------------------------------------


def _shared_membership(factor, ctx, role, names, verdicts) -> System:
    """One factor's membership system, cached across candidates.

    Membership systems depend only on the blocking, the factor's
    subscripts for this statement, and the coordinate names
    (:func:`_factor_ctx_key`), so they are shared across the candidates
    of one search through ``verdicts`` (the per-program verdict cache) —
    including factors that differ only in other statements' refs.
    """
    ctx_key = _factor_ctx_key(factor, ctx.label)
    shared_key = ("membership", ctx_key, ctx.label, role, tuple(names))
    system = verdicts.get(shared_key)
    if system is None:
        base_names = [f"_w{role}0_{j}" for j in range(len(names))]
        if list(names) == base_names:
            rename = {v: v + "__" + role for v in ctx.loop_vars}
            system = System(factor.membership(ctx.label, base_names, rename))
        else:
            # Same factor at a later product position: only the block
            # coordinate names differ, so rename the position-0 template
            # instead of rebuilding the membership constraints.
            template = _shared_membership(factor, ctx, role, base_names, verdicts)
            system = template.rename(dict(zip(base_names, names)))
        verdicts[shared_key] = system
    return system


def _memberships(shackle, ctx_label, loop_vars, suffix, names) -> System:
    rename = {v: v + suffix for v in loop_vars}
    constraints: list[Constraint] = []
    for factor, factor_names in zip(shackle.factors(), names):
        constraints.extend(factor.membership(ctx_label, factor_names, rename))
    return System(constraints)


_lex_cache: dict[tuple, System] = {}


def _lex_decrease(src_names, tgt_names, j) -> System:
    """Tie on coordinates before ``j``, target strictly smaller at ``j``.

    Cached by name tuples: the census rebuilds the same few systems for
    every candidate (block coordinate names only vary with product
    position), and System construction is on the per-candidate hot path.
    """
    key = (tuple(src_names[: j + 1]), tuple(tgt_names[: j + 1]), j)
    system = _lex_cache.get(key)
    if system is None:
        constraints = [
            Constraint.eq({tgt_names[i]: 1, src_names[i]: -1}, 0) for i in range(j)
        ]
        constraints.append(
            Constraint.ge({src_names[j]: 1, tgt_names[j]: -1}, -1)
        )
        system = _lex_cache[key] = System(constraints)
    return system


def candidate_violation_families(
    shackle, dependences=None
) -> list[tuple[System, list[System]]]:
    """Theorem-1 queries as family descriptors: ``(base, deltas)`` pairs.

    One family per dependence — the base is the full dependence
    polyhedron plus the memberships of *all* factors (shared by every
    member), and each delta holds the per-position rows (prefix
    equalities and the strict decrease).  Member ``k`` of a family is
    ``base ∧ deltas[k]``; the batched solver decides the family with a
    shared elimination prefix (:func:`repro.polyhedra.solver.feasible_many`).
    """
    program = shackle.factors()[0].program
    if dependences is None:
        dependences = compute_dependences(program)
    src_names = block_var_names(shackle, "s")
    tgt_names = block_var_names(shackle, "t")
    flat_src = [n for group in src_names for n in group]
    flat_tgt = [n for group in tgt_names for n in group]
    out: list[tuple[System, list[System]]] = []
    for dep in dependences:
        base = dep.system.conjoin(
            _memberships(shackle, dep.src.label, dep.src.loop_vars, "__s", src_names),
            _memberships(shackle, dep.tgt.label, dep.tgt.loop_vars, "__t", tgt_names),
        )
        deltas = [
            _lex_decrease(flat_src, flat_tgt, k) for k in range(len(flat_src))
        ]
        out.append((base, deltas))
    return out


def candidate_violation_systems(shackle, dependences=None) -> list[System]:
    """Every Theorem-1 query in the direct (non-incremental) formulation.

    The flattened view of :func:`candidate_violation_families` — one
    system per (dependence, concatenated coordinate position).  This is
    the seed formulation the incremental check replaced; the fuzz solver
    oracle and the property tests feed these systems to both solver
    engines and compare verdicts.
    """
    return [
        base.conjoin(delta)
        for base, deltas in candidate_violation_families(shackle, dependences)
        for delta in deltas
    ]


# -- the incremental check ---------------------------------------------------------


def _factor_alone_verdicts(factor, dep: Dependence, verdicts: MutableMapping):
    """``(first_violating_position | None, tie_possible)`` for one factor.

    Computed with position-0 coordinate names regardless of where the
    factor sits in a product, so the underlying solver queries (and this
    cache) are shared across product positions and candidates.
    """
    dep_key = _dep_key(dep)
    key = (
        dep_key,
        _factor_ctx_key(factor, dep.src.label),
        _factor_ctx_key(factor, dep.tgt.label),
    )
    hit = verdicts.get(key)
    if hit is not None:
        METRICS.inc("legality.factor_reuse")
        return hit
    dims = factor.num_block_dims
    src_names = [f"_ws0_{j}" for j in range(dims)]
    tgt_names = [f"_wt0_{j}" for j in range(dims)]
    base = dep.system.conjoin(
        _shared_membership(factor, dep.src, "s", src_names, verdicts),
        _shared_membership(factor, dep.tgt, "t", tgt_names, verdicts),
    )
    lex_deltas = [_lex_decrease(src_names, tgt_names, j) for j in range(dims)]
    tie_delta = System(
        Constraint.eq({t: 1, s: -1}, 0) for s, t in zip(src_names, tgt_names)
    )
    # Cached witnesses decide members for free, but only *later* positions
    # than every exactly-decided one: viol_j must stay the first violating
    # position, so everything before the first witness hit is still solved.
    hits = _witness_hits(dep_key, base, lex_deltas)
    first_hit = next((j for j, h in enumerate(hits) if h), None)
    upto = dims if first_hit is None else first_hit
    # Position 0 decides most factors, so it is solved together with the
    # tie; later positions only matter when position 0 is infeasible and
    # are deferred to a second (usually skipped) family.
    head = min(upto, 1)
    solved = _feasible_many_conservative(base, lex_deltas[:head] + [tie_delta])
    tie = solved[-1]
    viol_j = 0 if head and solved[0] else None
    if viol_j is None and upto > 1:
        tail = _feasible_many_conservative(base, lex_deltas[1:upto])
        viol_j = next((j for j in range(1, upto) if tail[j - 1]), None)
    if viol_j is not None:
        _record_witness(dep_key, base.conjoin(lex_deltas[viol_j]))
    elif first_hit is not None:
        viol_j = first_hit
    result = (viol_j, tie)
    verdicts[key] = result
    return result


def _first_dep_violation(
    factors, dep: Dependence, src_names, tgt_names, verdicts, memberships
) -> Violation | None:
    """The first violating coordinate position for one dependence, or None."""

    def membership(fi, role, ctx, names) -> System:
        key = (fi, role, ctx.label)
        system = memberships.get(key)
        if system is None:
            # Second tier: the cross-candidate cache in ``verdicts``.
            system = _shared_membership(factors[fi], ctx, role, names, verdicts)
            memberships[key] = system
        return system

    single = len(factors) == 1
    base = dep.system
    dep_key = _dep_key(dep)
    ties: list[Constraint] = []
    tied_keys: set[tuple] = set()
    offset = 0
    for fi, factor in enumerate(factors):
        dims = factor.num_block_dims
        sn, tn = src_names[fi], tgt_names[fi]
        base = base.conjoin(
            membership(fi, "s", dep.src, sn), membership(fi, "t", dep.tgt, tn)
        )
        pair_key = (
            _factor_ctx_key(factor, dep.src.label),
            _factor_ctx_key(factor, dep.tgt.label),
        )
        if pair_key in tied_keys:
            # An earlier tied factor has the same membership functions on
            # both of this dependence's statements, so this factor's
            # coordinates (the same function of the instances) are forced
            # equal: no strict decrease is possible here, and the tie
            # holds trivially.  No solver call needed.
            METRICS.inc("legality.factor_duplicate")
            offset += dims
            continue
        if single:
            viol_j, tie = 0, True  # the family below is the whole check
        else:
            viol_j, tie = _factor_alone_verdicts(factor, dep, verdicts)
        if viol_j is not None:
            # A violation is possible in this factor's coordinates alone;
            # decide it under the earlier-factors-tied restriction.
            # Positions below viol_j are infeasible even unrestricted.
            restricted = base.conjoin(System(ties)) if ties else base
            positions = list(range(viol_j, dims))
            deltas = [_lex_decrease(sn, tn, j) for j in positions]
            # A cached witness settles its member for free, but the first
            # violating position must stay exact: positions before the
            # first witness hit are still solved (as one family).
            hits = _witness_hits(dep_key, restricted, deltas)
            first_hit = next((k for k, h in enumerate(hits) if h), None)
            upto = len(positions) if first_hit is None else first_hit
            solved = _feasible_many_conservative(restricted, deltas[:upto])
            found = next((k for k in range(upto) if solved[k]), None)
            if found is not None:
                candidate = restricted.conjoin(deltas[found])
                _record_witness(dep_key, candidate)
                return Violation(dep, offset + positions[found], candidate)
            if first_hit is not None:
                candidate = restricted.conjoin(deltas[first_hit])
                return Violation(dep, offset + positions[first_hit], candidate)
        if not tie:
            # Every dependent pair is strictly ordered by this factor:
            # later factors can never see tied prefixes.  No more ILPs.
            METRICS.inc("legality.factor_ordered")
            return None
        if fi + 1 < len(factors):
            ties.extend(
                Constraint.eq({t: 1, s: -1}, 0) for s, t in zip(sn, tn)
            )
            tied_keys.add(pair_key)
        offset += dims
    return None


def check_legality(
    shackle,
    dependences: list[Dependence] | None = None,
    first_violation_only: bool = False,
    verdict_cache: MutableMapping | None = None,
) -> LegalityResult:
    """Decide Theorem-1 legality of a shackle or product.

    ``dependences`` may be precomputed (e.g. when checking many candidate
    shackles of the same program, as the search driver does).
    ``verdict_cache`` shares factor-alone verdicts across calls; pass one
    mutable mapping per program (never share it across programs).
    """
    METRICS.inc("legality.checks")
    with METRICS.timer("legality.check"):
        program = shackle.factors()[0].program
        if dependences is None:
            dependences = compute_dependences(program)
        factors = shackle.factors()
        src_names = block_var_names(shackle, "s")
        tgt_names = block_var_names(shackle, "t")
        if verdict_cache is None:
            verdict_cache = {}
        memberships: dict = {}

        ordered = list(dependences)
        if first_violation_only and len(ordered) > 1 and _failure_counts:
            # Failure-first: dependences that rejected earlier candidates
            # are most likely to reject this one too — check them first.
            ordered.sort(key=lambda d: -_failure_counts.get(_dep_key(d), 0))

        violations: list[Violation] = []
        for dep in ordered:
            violation = _first_dep_violation(
                factors, dep, src_names, tgt_names, verdict_cache, memberships
            )
            if violation is not None:
                _failure_counts[_dep_key(dep)] = (
                    _failure_counts.get(_dep_key(dep), 0) + 1
                )
                violations.append(violation)
                if first_violation_only:
                    break
        return LegalityResult(shackle, violations, len(dependences))
