"""Legality of data shackles — Theorem 1 of the paper, decided exactly.

A shackle (or product of shackles) maps statement instances to a totally
ordered set of traversal coordinates.  It is legal iff for every
dependence ``(S1, u) -> (S2, v)``, the conjunction of

* the dependence polyhedron (both domains, subscript equality, original
  execution order), and
* "the block of the target is touched strictly before the block of the
  source" (a lexicographic disjunction over the concatenated traversal
  coordinates of all factors)

has no integer solution.  Instances mapped to the *same* block run in
original program order, so equality of coordinates is never a violation —
exactly as in the paper.

The check exploits the lexicographic structure of products instead of
solving one ILP per concatenated coordinate position:

* a violation inside factor ``f``'s coordinates requires *all* earlier
  factors' coordinates to be equal, and adding constraints never makes an
  infeasible system feasible — so if factor ``f`` *alone* admits no
  violation, the restricted query needs no ILP at all;
* if factor ``f`` alone admits neither a violation nor a tie (no pair of
  dependent instances lands in the same block), every dependent pair is
  strictly ordered by ``f`` and **no later factor needs any ILP** — the
  dependence is safe regardless of what follows;
* factor-alone verdicts are position-independent (they are computed over
  position-0 coordinate names), so they are shared across the greedy
  product search through ``verdict_cache`` and, structurally, through
  the solver's canonical-form memo.

Dependences that caused rejections before are tried first
(``first_violation_only`` callers exit on the first violation, so a
failure-first order makes illegal candidates cheap to reject).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import MutableMapping

from repro.core.product import block_var_names
from repro.dependence.analysis import Dependence, compute_dependences
from repro.engine.metrics import METRICS
from repro.polyhedra.budget import SolverBudget
from repro.polyhedra.constraints import Constraint, System
from repro.polyhedra.omega import integer_feasible, integer_sample


def _feasible_conservative(system: System) -> bool:
    """:func:`integer_feasible`, degrading gracefully under solver budgets.

    A :class:`SolverBudget` trip means the verdict is *unknown*; legality
    must never accept a candidate on an unknown, so every budgeted query
    maps "unknown" to "a violation (or tie) may exist" — feasible.  The
    candidate is then conservatively rejected, counted under
    ``legality.budget_exceeded``, and the census keeps moving instead of
    hanging on one exponential splintering.
    """
    try:
        return integer_feasible(system)
    except SolverBudget:
        METRICS.inc("legality.budget_exceeded")
        return True


@dataclass
class Violation:
    """A dependence broken by the shackle, with the violating system."""

    dependence: Dependence
    lex_position: int  # which traversal coordinate strictly decreases
    system: System = field(repr=False)

    def witness(self) -> dict[str, int] | None:
        """A concrete violating pair of instances (solves the system)."""
        return integer_sample(self.system)

    def describe(self) -> str:
        return (
            f"violates {self.dependence.describe()} at traversal coordinate "
            f"{self.lex_position}"
        )


@dataclass
class LegalityResult:
    """Outcome of a legality check; truthy iff the shackle is legal."""

    shackle: object
    violations: list[Violation]
    checked_dependences: int

    @property
    def legal(self) -> bool:
        return not self.violations

    def __bool__(self) -> bool:
        return self.legal

    def explain(self) -> str:
        if self.legal:
            return f"legal ({self.checked_dependences} dependences respected)"
        lines = [f"ILLEGAL ({len(self.violations)} violated dependence levels):"]
        lines.extend("  " + v.describe() for v in self.violations)
        return "\n".join(lines)


# -- failure-first dependence ordering ---------------------------------------------

_failure_counts: dict[tuple, int] = {}
"""Rejection counts per dependence identity, across all checks this process."""


def _dep_key(dep: Dependence) -> tuple:
    return (
        dep.kind,
        dep.src.label,
        str(dep.src_ref),
        dep.tgt.label,
        str(dep.tgt_ref),
        dep.level,
    )


def reset_failure_counts() -> None:
    """Forget which dependences caused rejections (tests and benchmarks)."""
    _failure_counts.clear()


def _factor_key(factor) -> tuple:
    """Structural identity of a factor — the scope of verdict reuse.

    Two factors with equal keys build identical membership constraints,
    so their factor-alone verdicts agree for any dependence *of the same
    program* (``verdict_cache`` must not be shared across programs).
    """
    blocking = factor.blocking
    return (
        blocking.array,
        tuple((p.normal, p.spacing, p.offset) for p in blocking.planes),
        blocking.directions,
        tuple(sorted((label, str(ref)) for label, ref in factor.ref_choice.items())),
        tuple(
            sorted(
                (label, tuple(str(a) for a in affines))
                for label, affines in factor.dummies.items()
            )
        ),
    )


# -- query construction ------------------------------------------------------------


def _memberships(shackle, ctx_label, loop_vars, suffix, names) -> System:
    rename = {v: v + suffix for v in loop_vars}
    constraints: list[Constraint] = []
    for factor, factor_names in zip(shackle.factors(), names):
        constraints.extend(factor.membership(ctx_label, factor_names, rename))
    return System(constraints)


def _lex_decrease(src_names, tgt_names, j) -> System:
    """Tie on coordinates before ``j``, target strictly smaller at ``j``."""
    constraints = [
        Constraint.eq({tgt_names[i]: 1, src_names[i]: -1}, 0) for i in range(j)
    ]
    constraints.append(Constraint.ge({src_names[j]: 1, tgt_names[j]: -1}, -1))
    return System(constraints)


def candidate_violation_systems(shackle, dependences=None) -> list[System]:
    """Every Theorem-1 query in the direct (non-incremental) formulation.

    One system per (dependence, concatenated coordinate position): the
    full dependence polyhedron, the memberships of *all* factors, the
    prefix-equality constraints and the strict decrease.  This is the
    seed formulation the incremental check replaced; the fuzz solver
    oracle and the property tests feed these systems to both solver
    engines and compare verdicts.
    """
    program = shackle.factors()[0].program
    if dependences is None:
        dependences = compute_dependences(program)
    src_names = block_var_names(shackle, "s")
    tgt_names = block_var_names(shackle, "t")
    flat_src = [n for group in src_names for n in group]
    flat_tgt = [n for group in tgt_names for n in group]
    out: list[System] = []
    for dep in dependences:
        base = dep.system.conjoin(
            _memberships(shackle, dep.src.label, dep.src.loop_vars, "__s", src_names),
            _memberships(shackle, dep.tgt.label, dep.tgt.loop_vars, "__t", tgt_names),
        )
        for k in range(len(flat_src)):
            out.append(base.conjoin(_lex_decrease(flat_src, flat_tgt, k)))
    return out


# -- the incremental check ---------------------------------------------------------


def _factor_alone_verdicts(factor, dep: Dependence, verdicts: MutableMapping):
    """``(first_violating_position | None, tie_possible)`` for one factor.

    Computed with position-0 coordinate names regardless of where the
    factor sits in a product, so the underlying solver queries (and this
    cache) are shared across product positions and candidates.
    """
    key = (_dep_key(dep), _factor_key(factor))
    hit = verdicts.get(key)
    if hit is not None:
        METRICS.inc("legality.factor_reuse")
        return hit
    dims = factor.num_block_dims
    src_names = [f"_ws0_{j}" for j in range(dims)]
    tgt_names = [f"_wt0_{j}" for j in range(dims)]
    src_rename = {v: v + "__s" for v in dep.src.loop_vars}
    tgt_rename = {v: v + "__t" for v in dep.tgt.loop_vars}
    base = dep.system.conjoin(
        System(
            factor.membership(dep.src.label, src_names, src_rename)
            + factor.membership(dep.tgt.label, tgt_names, tgt_rename)
        )
    )
    viol_j = None
    for j in range(dims):
        if _feasible_conservative(base.conjoin(_lex_decrease(src_names, tgt_names, j))):
            viol_j = j
            break
    tie = _feasible_conservative(
        base.conjoin(
            System(
                Constraint.eq({t: 1, s: -1}, 0)
                for s, t in zip(src_names, tgt_names)
            )
        )
    )
    result = (viol_j, tie)
    verdicts[key] = result
    return result


def _first_dep_violation(
    factors, dep: Dependence, src_names, tgt_names, verdicts, memberships
) -> Violation | None:
    """The first violating coordinate position for one dependence, or None."""

    def membership(fi, role, ctx, names) -> System:
        key = (fi, role)
        cached = memberships.get(key)
        if cached is None:
            cached = {}
            memberships[key] = cached
        system = cached.get(ctx.label)
        if system is None:
            rename = {v: v + "__" + role for v in ctx.loop_vars}
            system = System(factors[fi].membership(ctx.label, names, rename))
            cached[ctx.label] = system
        return system

    single = len(factors) == 1
    base = dep.system
    ties: list[Constraint] = []
    offset = 0
    for fi, factor in enumerate(factors):
        dims = factor.num_block_dims
        sn, tn = src_names[fi], tgt_names[fi]
        base = base.conjoin(
            membership(fi, "s", dep.src, sn), membership(fi, "t", dep.tgt, tn)
        )
        if single:
            viol_j, tie = 0, True  # the direct loop below is the whole check
        else:
            viol_j, tie = _factor_alone_verdicts(factor, dep, verdicts)
        if viol_j is not None:
            # A violation is possible in this factor's coordinates alone;
            # decide it under the earlier-factors-tied restriction.
            # Positions below viol_j are infeasible even unrestricted.
            restricted = base.conjoin(System(ties)) if ties else base
            for j in range(viol_j, dims):
                candidate = restricted.conjoin(_lex_decrease(sn, tn, j))
                if _feasible_conservative(candidate):
                    return Violation(dep, offset + j, candidate)
        if not tie:
            # Every dependent pair is strictly ordered by this factor:
            # later factors can never see tied prefixes.  No more ILPs.
            METRICS.inc("legality.factor_ordered")
            return None
        if fi + 1 < len(factors):
            ties.extend(
                Constraint.eq({t: 1, s: -1}, 0) for s, t in zip(sn, tn)
            )
        offset += dims
    return None


def check_legality(
    shackle,
    dependences: list[Dependence] | None = None,
    first_violation_only: bool = False,
    verdict_cache: MutableMapping | None = None,
) -> LegalityResult:
    """Decide Theorem-1 legality of a shackle or product.

    ``dependences`` may be precomputed (e.g. when checking many candidate
    shackles of the same program, as the search driver does).
    ``verdict_cache`` shares factor-alone verdicts across calls; pass one
    mutable mapping per program (never share it across programs).
    """
    METRICS.inc("legality.checks")
    with METRICS.timer("legality.check"):
        program = shackle.factors()[0].program
        if dependences is None:
            dependences = compute_dependences(program)
        factors = shackle.factors()
        src_names = block_var_names(shackle, "s")
        tgt_names = block_var_names(shackle, "t")
        if verdict_cache is None:
            verdict_cache = {}
        memberships: dict = {}

        ordered = list(dependences)
        if first_violation_only and len(ordered) > 1 and _failure_counts:
            # Failure-first: dependences that rejected earlier candidates
            # are most likely to reject this one too — check them first.
            ordered.sort(key=lambda d: -_failure_counts.get(_dep_key(d), 0))

        violations: list[Violation] = []
        for dep in ordered:
            violation = _first_dep_violation(
                factors, dep, src_names, tgt_names, verdict_cache, memberships
            )
            if violation is not None:
                _failure_counts[_dep_key(dep)] = (
                    _failure_counts.get(_dep_key(dep), 0) + 1
                )
                violations.append(violation)
                if first_violation_only:
                    break
        return LegalityResult(shackle, violations, len(dependences))
