"""Automatic shackle search (the paper's Section 8 "ongoing work").

The paper leaves automation open but sketches the method we implement:
enumerate plausible data shackles, test each for legality, and rank the
legal ones.  Candidates are built by choosing, per statement, one of its
references to the blocked array.  Ranking uses Theorem 2 as a static cost
model: fewer unconstrained references means more of the computation's
data traffic is bounded by the block size.

Products are explored greedily: starting from the best single shackle,
extend the product with further legal shackles while some reference
remains unconstrained ("if there is no statement left which has an
unconstrained reference, there is no benefit to extending the product").
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from repro.core.blocking import DataBlocking
from repro.core.legality import check_legality
from repro.core.product import ShackleProduct
from repro.core.shackle import DataShackle
from repro.core.span import unconstrained_references
from repro.dependence.analysis import compute_dependences
from repro.ir.analysis import statement_contexts
from repro.ir.nodes import Program


@dataclass
class SearchResult:
    """A ranked legal shackle (or product) candidate."""

    shackle: object
    unconstrained: int
    choices: dict[str, str]

    def describe(self) -> str:
        picks = ", ".join(f"{label}:{ref}" for label, ref in sorted(self.choices.items()))
        return f"[{picks}] unconstrained={self.unconstrained}"


def candidate_choices(program: Program, array: str) -> list[dict]:
    """All per-statement reference choices to ``array`` (paper Section 6.1).

    Statements that never touch ``array`` make a candidate invalid unless
    the caller supplies dummies, so such programs yield no candidates here.
    """
    per_statement: list[list] = []
    labels: list[str] = []
    for ctx in statement_contexts(program):
        refs = []
        seen = set()
        for ref in ctx.statement.references():
            if ref.array == array and ref not in seen:
                seen.add(ref)
                refs.append(ref)
        if not refs:
            return []
        per_statement.append(refs)
        labels.append(ctx.label)
    return [dict(zip(labels, combo)) for combo in itertools.product(*per_statement)]


def search_shackles(
    program: Program,
    blocking: DataBlocking | list[DataBlocking],
    max_product: int = 2,
) -> list[SearchResult]:
    """Enumerate and rank legal shackles of ``program``.

    ``blocking`` is either a list of candidate blockings, or a single one
    — in which case same-spacing axis-aligned blockings of every other
    array in the program are added automatically, so that products like
    the paper's C x A matmul shackle are reachable.

    Returns legal candidates sorted best-first (fewest Theorem-2
    unconstrained references, then smallest product).  Products up to
    ``max_product`` factors are explored greedily from the best single
    shackles.
    """
    if isinstance(blocking, DataBlocking):
        spacing = blocking.planes[0].spacing
        blockings = [blocking]
        for array in program.arrays.values():
            if array.name != blocking.array:
                blockings.append(DataBlocking.grid(array.name, array.ndim, spacing))
    else:
        blockings = list(blocking)

    dependences = compute_dependences(program)
    singles: list[tuple[DataShackle, dict]] = []
    for candidate_blocking in blockings:
        for choice in candidate_choices(program, candidate_blocking.array):
            shackle = DataShackle(program, candidate_blocking, choice)
            if check_legality(shackle, dependences, first_violation_only=True):
                singles.append((shackle, choice))

    results: list[SearchResult] = []
    for shackle, choice in singles:
        results.append(
            SearchResult(
                shackle,
                len(unconstrained_references(shackle)),
                {k: str(v) for k, v in choice.items()},
            )
        )

    # Greedy product extension: combine legal singles pairwise (and deeper)
    # while unconstrained references remain.  A product of individually
    # legal shackles is always legal (Section 6), so no re-check is needed
    # for these combinations.
    frontier = [
        (res.shackle, dict(res.choices)) for res in results if res.unconstrained > 0
    ]
    depth = 1
    while depth < max_product and frontier:
        next_frontier = []
        for shackle, choices in frontier:
            for single, choice in singles:
                product = ShackleProduct(shackle, single)
                merged = dict(choices)
                for k, v in choice.items():
                    merged[k] = merged[k] + "*" + str(v)
                unconstrained = len(unconstrained_references(product))
                results.append(SearchResult(product, unconstrained, merged))
                if unconstrained > 0:
                    next_frontier.append((product, merged))
        frontier = next_frontier
        depth += 1

    results.sort(key=lambda r: (r.unconstrained, len(r.shackle.factors())))
    return results
