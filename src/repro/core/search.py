"""Automatic shackle search (the paper's Section 8 "ongoing work").

The paper leaves automation open but sketches the method we implement:
enumerate plausible data shackles, test each for legality, and rank the
legal ones.  Candidates are built by choosing, per statement, one of its
references to the blocked array.  Ranking uses Theorem 2 as a static cost
model: fewer unconstrained references means more of the computation's
data traffic is bounded by the block size.

Products are explored greedily: starting from the best single shackle,
extend the product with further legal shackles while some reference
remains unconstrained ("if there is no statement left which has an
unconstrained reference, there is no benefit to extending the product").

Beyond the static Theorem-2 ranking, :func:`score_candidates` prices
ranked candidates on simulated machines.  With ``fidelity="analytic"``
(the default) each candidate's generated code executes once to capture
its trace and every machine geometry is then predicted from reuse
histograms (:mod:`repro.memsim.reuse`) — so scoring N candidates on M
geometries costs N executions, not N*M.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from repro.core.blocking import DataBlocking
from repro.core.legality import check_legality
from repro.core.product import ShackleProduct
from repro.core.shackle import DataShackle
from repro.core.span import unconstrained_references
from repro.dependence.analysis import compute_dependences
from repro.ir.analysis import statement_contexts
from repro.ir.nodes import Program


@dataclass
class SearchResult:
    """A ranked legal shackle (or product) candidate."""

    shackle: object
    unconstrained: int
    choices: dict[str, str]

    def describe(self) -> str:
        picks = ", ".join(f"{label}:{ref}" for label, ref in sorted(self.choices.items()))
        return f"[{picks}] unconstrained={self.unconstrained}"


def candidate_choices(program: Program, array: str) -> list[dict]:
    """All per-statement reference choices to ``array`` (paper Section 6.1).

    Statements that never touch ``array`` make a candidate invalid unless
    the caller supplies dummies, so such programs yield no candidates here.
    """
    per_statement: list[list] = []
    labels: list[str] = []
    for ctx in statement_contexts(program):
        refs = []
        seen = set()
        for ref in ctx.statement.references():
            if ref.array == array and ref not in seen:
                seen.add(ref)
                refs.append(ref)
        if not refs:
            return []
        per_statement.append(refs)
        labels.append(ctx.label)
    return [dict(zip(labels, combo)) for combo in itertools.product(*per_statement)]


def _shackle_key(blocking: DataBlocking, choice: dict) -> tuple:
    """Order-insensitive structural identity of one (blocking, choice) pair.

    Used to deduplicate product factor sets: two products with the same
    unordered multiset of factor keys constrain exactly the same
    references, so only one needs to be ranked.
    """
    return (
        blocking.array,
        tuple((p.normal, p.spacing, p.offset) for p in blocking.planes),
        blocking.directions,
        tuple(sorted((label, str(ref)) for label, ref in choice.items())),
    )


def _legal_flags(
    program: Program,
    candidates: list[tuple[DataBlocking, dict]],
    jobs: int,
    cache,
    journal=None,
) -> list[bool]:
    """Theorem-1 verdict per candidate, in candidate order.

    With ``jobs == 1``, no cache and no journal this is the direct
    in-process loop; otherwise candidates become engine legality jobs so
    verdicts can be served from the content-addressed cache and fresh
    checks can fan out across worker processes (order is preserved
    either way).  ``journal`` checkpoints each verdict by job
    fingerprint — a killed census resumes from the last durable flag
    instead of re-checking from scratch.
    """
    if jobs == 1 and cache is None and journal is None:
        dependences = compute_dependences(program)
        return [
            bool(
                check_legality(
                    DataShackle(program, blocking, choice),
                    dependences,
                    first_violation_only=True,
                )
            )
            for blocking, choice in candidates
        ]
    from repro.engine.jobs import legality_job
    from repro.engine.pool import run_jobs

    specs = [legality_job(program, blocking, choice) for blocking, choice in candidates]
    if journal is None:
        return [out["legal"] for out in run_jobs(specs, jobs=jobs, cache=cache)]

    saved = journal.replay()
    flags: dict[int, bool] = {
        index: bool(saved[spec.fingerprint]["legal"])
        for index, spec in enumerate(specs)
        if spec.fingerprint in saved
    }
    missing = [index for index in range(len(specs)) if index not in flags]
    # Chunked fan-out: a crash loses at most one chunk of verdicts, and
    # each completed chunk becomes durable before the next dispatch.
    chunk_size = max(1, jobs) * 4
    for at in range(0, len(missing), chunk_size):
        chunk = missing[at : at + chunk_size]
        outs = run_jobs([specs[i] for i in chunk], jobs=jobs, cache=cache)
        for index, out in zip(chunk, outs):
            flags[index] = bool(out["legal"])
            journal.append(specs[index].fingerprint, {"legal": bool(out["legal"])})
    return [flags[index] for index in range(len(specs))]


def search_shackles(
    program: Program,
    blocking: DataBlocking | list[DataBlocking],
    max_product: int = 2,
    *,
    jobs: int = 1,
    cache=None,
    max_frontier: int = 64,
    journal=None,
) -> list[SearchResult]:
    """Enumerate and rank legal shackles of ``program``.

    ``blocking`` is either a list of candidate blockings, or a single one
    — in which case same-spacing axis-aligned blockings of every other
    array in the program are added automatically, so that products like
    the paper's C x A matmul shackle are reachable.

    Returns legal candidates sorted best-first (fewest Theorem-2
    unconstrained references, then smallest product).  Products up to
    ``max_product`` factors are explored greedily from the best single
    shackles; factor sets are deduplicated unordered (A x B and B x A
    rank identically, so only the first is kept) and the greedy frontier
    is capped at ``max_frontier`` per depth to bound the blowup.

    ``jobs`` fans the independent legality checks out across worker
    processes (1 = serial; rankings are identical either way), and
    ``cache`` is an optional :class:`repro.engine.cache.ResultCache`
    serving previously computed verdicts by content fingerprint.

    ``journal`` (a directory or :class:`repro.engine.journal.Journal`)
    checkpoints legality verdicts as they complete, keyed by the content
    fingerprint of this census — a killed search resumes without
    re-checking the candidates it already settled.
    """
    if isinstance(blocking, DataBlocking):
        spacing = blocking.planes[0].spacing
        blockings = [blocking]
        for array in program.arrays.values():
            if array.name != blocking.array:
                blockings.append(DataBlocking.grid(array.name, array.ndim, spacing))
    else:
        blockings = list(blocking)

    candidates = [
        (candidate_blocking, choice)
        for candidate_blocking in blockings
        for choice in candidate_choices(program, candidate_blocking.array)
    ]
    if journal is not None:
        from repro.engine.jobs import blocking_spec, fingerprint, program_source
        from repro.engine.journal import resolve_journal

        journal = resolve_journal(
            journal,
            fingerprint(
                "search-legality",
                {
                    "program": program_source(program),
                    "blockings": [blocking_spec(b) for b in blockings],
                    "max_product": max_product,
                },
            ),
        )
    flags = _legal_flags(program, candidates, jobs, cache, journal)
    if journal is not None:
        journal.close()
    singles = [
        (DataShackle(program, candidate_blocking, choice), choice)
        for (candidate_blocking, choice), legal in zip(candidates, flags)
        if legal
    ]

    results: list[SearchResult] = []
    for shackle, choice in singles:
        results.append(
            SearchResult(
                shackle,
                len(unconstrained_references(shackle)),
                {k: str(v) for k, v in choice.items()},
            )
        )

    # Greedy product extension: combine legal singles pairwise (and deeper)
    # while unconstrained references remain.  A product of individually
    # legal shackles is always legal (Section 6), so no re-check is needed
    # for these combinations.
    single_keys = [_shackle_key(s.blocking, c) for s, c in singles]
    frontier = [
        (res.shackle, dict(res.choices), (key,))
        for res, key in zip(results, single_keys)
        if res.unconstrained > 0
    ]
    seen_products: set[tuple] = set()
    depth = 1
    while depth < max_product and frontier:
        next_frontier = []
        for shackle, choices, keys in frontier:
            for (single, choice), single_key in zip(singles, single_keys):
                if single_key in keys:
                    continue  # repeating a factor constrains nothing new
                combo = tuple(sorted(keys + (single_key,)))
                if combo in seen_products:
                    continue  # unordered duplicate (e.g. B x A after A x B)
                seen_products.add(combo)
                product = ShackleProduct(shackle, single)
                merged = dict(choices)
                for k, v in choice.items():
                    merged[k] = merged[k] + "*" + str(v)
                unconstrained = len(unconstrained_references(product))
                results.append(SearchResult(product, unconstrained, merged))
                if unconstrained > 0 and len(next_frontier) < max_frontier:
                    next_frontier.append((product, merged, keys + (single_key,)))
        frontier = next_frontier
        depth += 1

    results.sort(key=lambda r: (r.unconstrained, len(r.shackle.factors())))
    return results


@dataclass
class ScoredCandidate:
    """One search candidate priced on simulated machines."""

    result: SearchResult
    cycles: float  # summed over the scored machines
    measurements: list  # one Measurement per machine, in machine order

    def describe(self) -> str:
        return f"{self.result.describe()} cycles={round(self.cycles)}"


def score_candidates(
    program: Program,
    results: list[SearchResult],
    env: dict[str, int],
    machines: list,
    *,
    init=None,
    fidelity: str = "analytic",
    top: int | None = None,
    trace_store=None,
    jobs: int = 1,
    cache=None,
) -> list[ScoredCandidate]:
    """Price the ``top`` search candidates by simulated cycles.

    Generates each candidate's shackled code and simulates it at ``env``
    on every machine in ``machines``, returning candidates sorted by
    total cycles (cheapest first).  Ties on predicted cycles break by
    the candidate's position in ``results`` (the search ranking), so
    the scored order — and any ``top`` prefix of it — is deterministic
    and identical across ``jobs`` settings.  ``fidelity`` selects the
    memsim tier (``"analytic"`` predicts every geometry from one
    captured trace per candidate); ``init`` defaults to
    :func:`repro.experiments.harness.random_init`.
    """
    from repro.core.codegen import simplified_code
    from repro.experiments.harness import (
        SweepPoint,
        random_init,
        simulate_sweep,
    )

    ranked = results[:top] if top is not None else list(results)
    points = []
    for index, result in enumerate(ranked):
        generated = simplified_code(result.shackle)
        for machine in machines:
            points.append(
                SweepPoint(
                    generated,
                    env,
                    machine,
                    init or random_init,
                    f"cand{index}",
                    options={"seed": 0, "fidelity": fidelity},
                )
            )
    measurements = simulate_sweep(
        points, jobs=jobs, cache=cache, trace_store=trace_store
    )
    scored = []
    for index, result in enumerate(ranked):
        mine = measurements[index * len(machines) : (index + 1) * len(machines)]
        scored.append(
            ScoredCandidate(result, sum(m.cycles for m in mine), mine)
        )
    order = {id(s): index for index, s in enumerate(scored)}
    scored.sort(key=lambda s: (s.cycles, order[id(s)]))
    return scored
