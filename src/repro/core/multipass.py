"""Multi-pass shackling (Section 8 of the paper).

A shackled reference makes a single sweep through the blocked array,
which is inadequate for relaxation-style codes "in which an array
element is eventually affected by every other element".  The paper's
proposed solution, implemented here:

    rather than perform all shackled statement instances when we touch a
    block, we can perform only those instances for which dependences
    have been satisfied.  The array is traversed repeatedly till all
    instances are performed.

:func:`multipass_schedule` executes exactly that discipline and reports
the number of sweeps needed.  Dependences are resolved at instance level
for the given (small) parameter binding, so this is a reference
executor for studying the technique, not a production scheduler.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.instances import BlockSchedule
from repro.dependence.oracle import brute_force_dependences
from repro.ir.analysis import StatementContext


@dataclass
class MultipassResult:
    """The multi-pass execution order and sweep count."""

    schedule: list[tuple[int, tuple[int, ...], StatementContext, tuple[int, ...]]]
    passes: int

    def instance_order(self) -> list[tuple[str, tuple[int, ...]]]:
        return [(ctx.label, ivec) for _, _, ctx, ivec in self.schedule]


def multipass_schedule(shackle, env: dict[str, int], max_passes: int | None = None) -> MultipassResult:
    """Execute the shackle in repeated sweeps, deferring unready instances.

    Each sweep visits the blocks in traversal order; an instance runs the
    first time its block is visited with every dependence predecessor
    already executed.  Raises if ``max_passes`` sweeps do not finish, or
    if a sweep makes no progress (cannot happen for programs whose
    original order satisfies all dependences, but guarded defensively).
    """
    program = shackle.factors()[0].program
    block_schedule = BlockSchedule(shackle)

    predecessors: dict[tuple[str, tuple[int, ...]], set] = {}
    for _, src_label, src_ivec, tgt_label, tgt_ivec in brute_force_dependences(program, env):
        predecessors.setdefault((tgt_label, tgt_ivec), set()).add((src_label, src_ivec))

    blocks = [
        (block, block_schedule.block_instances(block, env))
        for block in block_schedule.blocks(env)
    ]
    blocks = [(b, insts) for b, insts in blocks if insts]
    total = sum(len(insts) for _, insts in blocks)

    executed: set[tuple[str, tuple[int, ...]]] = set()
    schedule: list[tuple[int, tuple[int, ...], StatementContext, tuple[int, ...]]] = []
    passes = 0
    while len(executed) < total:
        passes += 1
        if max_passes is not None and passes > max_passes:
            raise RuntimeError(f"did not finish within {max_passes} passes")
        progressed = False
        for block, instances in blocks:
            # Within a block visit, keep draining newly-ready instances in
            # program order until none fire (instances inside one block may
            # enable each other).
            changed = True
            while changed:
                changed = False
                for ctx, ivec in instances:
                    key = (ctx.label, ivec)
                    if key in executed:
                        continue
                    if predecessors.get(key, set()) <= executed:
                        executed.add(key)
                        schedule.append((passes, block, ctx, ivec))
                        changed = True
                        progressed = True
        if not progressed:  # pragma: no cover - defensive
            raise RuntimeError("no progress in a sweep; dependence cycle?")
    return MultipassResult(schedule, passes)


def single_sweep_suffices(shackle, env: dict[str, int]) -> bool:
    """True iff one sweep executes everything (i.e. the shackle is legal
    at this parameter binding)."""
    return multipass_schedule(shackle, env).passes == 1
