"""Theorem 2: which references does a shackle leave unconstrained?

For a statement with shackled access matrices ``F1..Fn`` and another
reference with access matrix ``F``, the data touched by ``F`` is bounded
by the block-size parameters iff every row of ``F`` is spanned by the
rows of ``F1..Fn``.  This drives the paper's product-sizing heuristic:
extend the Cartesian product while some statement still has an
unconstrained reference; stop when none remains.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ir.analysis import statement_contexts
from repro.ir.expr import Ref
from repro.linalg import FracMatrix


@dataclass
class ReferenceStatus:
    """Whether one reference is bounded under a shackle."""

    label: str
    ref: Ref
    bounded: bool


def _shackled_rows(shackle, ctx) -> list[list]:
    rows: list[list] = []
    for factor in shackle.factors():
        for affine in factor.subscripts(ctx.label):
            rows.append([affine.coeff(v) for v in ctx.loop_vars])
    return rows


def reference_statuses(shackle) -> list[ReferenceStatus]:
    """Theorem-2 status of every reference of every statement."""
    program = shackle.factors()[0].program
    out: list[ReferenceStatus] = []
    for ctx in statement_contexts(program):
        span = FracMatrix(_shackled_rows(shackle, ctx))
        for ref in ctx.statement.references():
            rows = [[idx.coeff(v) for v in ctx.loop_vars] for idx in ref.indices]
            bounded = all(span.row_space_contains(row) for row in rows)
            out.append(ReferenceStatus(ctx.label, ref, bounded))
    return out


def unconstrained_references(shackle) -> list[ReferenceStatus]:
    """References whose data is NOT bounded by block-size parameters."""
    return [s for s in reference_statuses(shackle) if not s.bounded]


def fully_constrained(shackle) -> bool:
    """True iff no statement has an unconstrained reference.

    The paper's guidance: "If there is no statement left which has an
    unconstrained reference, then there is no benefit to be obtained from
    extending the product."
    """
    return not unconstrained_references(shackle)
