"""Theorem 2: which references does a shackle leave unconstrained?

For a statement with shackled access matrices ``F1..Fn`` and another
reference with access matrix ``F``, the data touched by ``F`` is bounded
by the block-size parameters iff every row of ``F`` is spanned by the
rows of ``F1..Fn``.  This drives the paper's product-sizing heuristic:
extend the Cartesian product while some statement still has an
unconstrained reference; stop when none remains.

Span membership is decided through the memoized feasibility solver
(:func:`repro.polyhedra.solver.feasible`): ``r`` lies in the row space
of ``S`` iff the polyhedron ``{x : Sx = 0, r·x >= 1}`` has no solution —
the cone is scale-invariant, so rational and integer feasibility agree,
and repeated queries (the search re-examines the same factors at every
product depth) hit the same canonical memo as the legality census.  The
original Gaussian-elimination path is kept as
:func:`reference_statuses_direct`, the differential oracle.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.engine.metrics import METRICS
from repro.ir.analysis import statement_contexts
from repro.ir.expr import Ref
from repro.linalg import FracMatrix
from repro.polyhedra import solver
from repro.polyhedra.budget import SolverBudget
from repro.polyhedra.constraints import Constraint, System


@dataclass
class ReferenceStatus:
    """Whether one reference is bounded under a shackle."""

    label: str
    ref: Ref
    bounded: bool


def _shackled_rows(shackle, ctx) -> list[list]:
    rows: list[list] = []
    for factor in shackle.factors():
        for affine in factor.subscripts(ctx.label):
            rows.append([affine.coeff(v) for v in ctx.loop_vars])
    return rows


def _row_space_contains(span_rows, row, loop_vars) -> bool:
    """``row in rowspace(span_rows)``, as one feasibility query.

    ``r`` is in the row space iff no ``x`` satisfies ``Sx = 0`` and
    ``r·x >= 1``: a vector outside the row space has a witness in the
    null space of ``S`` with positive inner product (scalable to an
    integer point), while for a spanned ``r``, ``Sx = 0`` forces
    ``r·x = 0``.  A tripped solver budget conservatively reports *not*
    spanned — the reference is treated as unconstrained, which only ever
    extends the product further (never a wrong legality verdict).
    """
    METRICS.inc("span.queries")
    constraints = [Constraint.eq(dict(zip(loop_vars, s)), 0) for s in span_rows]
    constraints.append(Constraint.ge(dict(zip(loop_vars, row)), -1))
    try:
        return not solver.feasible(System(constraints))
    except SolverBudget:
        METRICS.inc("span.budget_exceeded")
        return False


def reference_statuses(shackle) -> list[ReferenceStatus]:
    """Theorem-2 status of every reference of every statement."""
    program = shackle.factors()[0].program
    out: list[ReferenceStatus] = []
    for ctx in statement_contexts(program):
        span = _shackled_rows(shackle, ctx)
        for ref in ctx.statement.references():
            rows = [[idx.coeff(v) for v in ctx.loop_vars] for idx in ref.indices]
            bounded = all(
                _row_space_contains(span, row, ctx.loop_vars) for row in rows
            )
            out.append(ReferenceStatus(ctx.label, ref, bounded))
    return out


def reference_statuses_direct(shackle) -> list[ReferenceStatus]:
    """The original Gaussian-elimination formulation (differential oracle).

    Decides span membership by row reduction over exact rationals
    (:class:`~repro.linalg.FracMatrix`), with no solver or memo in the
    path; ``repro fuzz --check span`` and the property tests compare it
    against :func:`reference_statuses`.
    """
    program = shackle.factors()[0].program
    out: list[ReferenceStatus] = []
    for ctx in statement_contexts(program):
        span = FracMatrix(_shackled_rows(shackle, ctx))
        for ref in ctx.statement.references():
            rows = [[idx.coeff(v) for v in ctx.loop_vars] for idx in ref.indices]
            bounded = all(span.row_space_contains(row) for row in rows)
            out.append(ReferenceStatus(ctx.label, ref, bounded))
    return out


def unconstrained_references(shackle) -> list[ReferenceStatus]:
    """References whose data is NOT bounded by block-size parameters."""
    return [s for s in reference_statuses(shackle) if not s.bounded]


def fully_constrained(shackle) -> bool:
    """True iff no statement has an unconstrained reference.

    The paper's guidance: "If there is no statement left which has an
    unconstrained reference, then there is no benefit to be obtained from
    extending the product."
    """
    return not unconstrained_references(shackle)
