"""Block-by-block enumeration of shackled statement instances.

This realizes the shackle's semantics directly: blocks are visited in
ascending lexicographic order of traversal coordinates, and within a
block the shackled statement instances execute in original program order.
Guard simplification in :mod:`repro.core.codegen` never changes this
order — so this enumerator is both the execution engine (fed to the
memory-hierarchy simulator) and the ground truth that generated code is
tested against.

For speed, the per-statement polyhedron scans are compiled to Python
nested loops with ``exec`` once per (shackle, statement); enumeration for
a given parameter binding then runs without any symbolic machinery.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Iterator

from repro.core.product import block_var_names
from repro.ir.analysis import StatementContext, iteration_domain, statement_contexts
from repro.polyhedra.constraints import Constraint, System
from repro.polyhedra.scan import LoopBounds, scan_bounds


def _bound_expr(bound, kind: str) -> str:
    """Python source for a Bound's ceiling (lower) or floor (upper)."""
    const = bound.const
    if isinstance(const, Fraction):
        if const.denominator != 1:
            # Fold fractional constants conservatively into the division.
            # (Does not occur for normalized integer constraints.)
            raise ValueError("fractional bound constant")
        const = int(const)
    terms = [f"{c}*{v}" for v, c in bound.coeffs.items()]
    terms.append(str(const))
    expr = "+".join(terms).replace("+-", "-")
    if bound.den == 1:
        return f"({expr})"
    if kind == "lower":
        return f"(-((-({expr}))//{bound.den}))"
    return f"(({expr})//{bound.den})"


def _level_source(level: LoopBounds) -> tuple[str, str]:
    los = [_bound_expr(b, "lower") for b in level.lowers]
    his = [_bound_expr(b, "upper") for b in level.uppers]
    lo = los[0] if len(los) == 1 else "max(" + ",".join(los) + ")"
    hi = his[0] if len(his) == 1 else "min(" + ",".join(his) + ")"
    return lo, hi


class _StatementWalker:
    """Compiled scanners for one statement under one shackle."""

    def __init__(self, ctx: StatementContext, system: System, block_vars: list[str]) -> None:
        self.ctx = ctx
        self.block_vars = block_vars
        order = block_vars + ctx.loop_vars
        bounds, residual = scan_bounds(system, order, prune=True)
        self.block_levels = bounds[: len(block_vars)]
        self.loop_levels = bounds[len(block_vars) :]
        self.residual = residual
        params = sorted(
            {
                v
                for lvl in bounds
                for b in lvl.lowers + lvl.uppers
                for v in b.coeffs
                if v not in order
            }
            | {v for c in residual for v in c.variables()}
        )
        self.params = params
        self._compile()

    def _compile(self) -> None:
        # block_bounds(k, w, env) -> (lo, hi) for traversal coordinate k
        # given the k earlier coordinates in w.
        lines = ["def block_bounds(k, w, env):"]
        for p in self.params:
            lines.append(f"    {p} = env['{p}']")
        for k, level in enumerate(self.block_levels):
            lines.append(f"    if k == {k}:")
            for j in range(k):
                lines.append(f"        {self.block_vars[j]} = w[{j}]")
            lo, hi = _level_source(level)
            lines.append(f"        return ({lo}, {hi})")
        lines.append("    raise IndexError(k)")

        # instances(w, env, out): append iteration vectors for block w.
        lines.append("def instances(w, env, out):")
        for p in self.params:
            lines.append(f"    {p} = env['{p}']")
        for j, name in enumerate(self.block_vars):
            lines.append(f"    {name} = w[{j}]")
        indent = "    "
        # Reject blocks outside this statement's block range.
        for k, level in enumerate(self.block_levels):
            lo, hi = _level_source(level)
            lines.append(f"{indent}if not ({lo} <= {self.block_vars[k]} <= {hi}): return")
        append = "out.append"
        for level in self.loop_levels:
            lo, hi = _level_source(level)
            lines.append(f"{indent}for {level.var} in range({lo}, ({hi})+1):")
            indent += "    "
        ivec = ", ".join(self.ctx.loop_vars)
        trailing = "," if len(self.ctx.loop_vars) == 1 else ""
        lines.append(f"{indent}{append}(({ivec}{trailing}))")
        namespace: dict = {}
        exec("\n".join(lines), namespace)  # noqa: S102 - trusted generated code
        self.block_bounds = namespace["block_bounds"]
        self.instances = namespace["instances"]

    def feasible(self, env: dict[str, int]) -> bool:
        return all(c.evaluate(env) for c in self.residual)


class BlockSchedule:
    """Reusable compiled schedule for one shackle over one program."""

    def __init__(self, shackle) -> None:
        self.shackle = shackle
        self.program = shackle.factors()[0].program
        names = block_var_names(shackle, "")
        self.block_vars = [n for group in names for n in group]
        self.walkers: list[_StatementWalker] = []
        for ctx in statement_contexts(self.program):
            system = iteration_domain(ctx, self.program)
            constraints: list[Constraint] = []
            for factor, group in zip(shackle.factors(), names):
                constraints.extend(factor.membership(ctx.label, group))
            system = system.conjoin(System(constraints))
            self.walkers.append(_StatementWalker(ctx, system, self.block_vars))

    def blocks(self, env: dict[str, int]) -> Iterator[tuple[int, ...]]:
        """All block coordinates in ascending traversal order."""
        active = [w for w in self.walkers if w.feasible(env)]
        ndims = len(self.block_vars)

        def recurse(prefix: tuple[int, ...]) -> Iterator[tuple[int, ...]]:
            k = len(prefix)
            if k == ndims:
                yield prefix
                return
            lo = None
            hi = None
            for walker in active:
                wlo, whi = walker.block_bounds(k, prefix, env)
                if wlo > whi:
                    continue
                lo = wlo if lo is None else min(lo, wlo)
                hi = whi if hi is None else max(hi, whi)
            if lo is None:
                return
            for value in range(lo, hi + 1):
                yield from recurse(prefix + (value,))

        yield from recurse(())

    def block_instances(
        self, block: tuple[int, ...], env: dict[str, int]
    ) -> list[tuple[StatementContext, tuple[int, ...]]]:
        """Instances shackled to ``block``, in original program order."""
        collected: list[tuple[tuple, StatementContext, tuple[int, ...]]] = []
        for walker in self.walkers:
            if not walker.feasible(env):
                continue
            out: list[tuple[int, ...]] = []
            walker.instances(block, env, out)
            ctx = walker.ctx
            for ivec in out:
                collected.append((ctx.schedule_key(ivec), ctx, ivec))
        collected.sort(key=lambda t: t[0])
        return [(ctx, ivec) for _, ctx, ivec in collected]


def enumerate_block_instances(
    shackle, env: dict[str, int], schedule: BlockSchedule | None = None
) -> Iterator[tuple[tuple[int, ...], list[tuple[StatementContext, tuple[int, ...]]]]]:
    """Yield ``(block, instances)`` in the shackle's execution order.

    Empty blocks (no shackled instances) are skipped, mirroring the
    generated code which simply runs zero iterations there.
    """
    schedule = schedule or BlockSchedule(shackle)
    for block in schedule.blocks(env):
        instances = schedule.block_instances(block, env)
        if instances:
            yield block, instances


def instance_schedule(
    shackle, env: dict[str, int], schedule: BlockSchedule | None = None
) -> list[tuple[tuple[int, ...], StatementContext, tuple[int, ...]]]:
    """The complete flat execution order: (block, statement, ivec) triples."""
    out: list[tuple[tuple[int, ...], StatementContext, tuple[int, ...]]] = []
    for block, instances in enumerate_block_instances(shackle, env, schedule):
        for ctx, ivec in instances:
            out.append((block, ctx, ivec))
    return out
