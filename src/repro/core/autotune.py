"""Autotuning over (blocking, size, geometry) grids — the parametric payoff.

:func:`tune` drives the whole stack end to end: enumerate legal shackle
candidates per block size (:mod:`repro.core.search`), sweep each
candidate over a handful of **anchor** sizes through the engine tier
(content-addressed cache, worker fan-out), fit one parametric histogram
family per candidate (:mod:`repro.memsim.parametric`), then price every
(candidate, size, machine) point from the fitted families — **zero trace
captures at non-anchor sizes**, by construction: the scoring loop has no
capture path at all.

Two prunes keep the scoring loop honest at scale, both exact (results
are bit-identical with pruning disabled):

* **Counter-class collapse** — machines sharing per-level
  ``(line_shift, num_sets, assoc)`` geometry share one predicted
  counter set; latency/CPI variants re-price cycles from the shared
  counters (``autotune.pruned_latency``).
* **Saturation dominance** — once a geometry's per-level thresholds all
  exceed the re-assembled histogram maxima, its counters are pure cold
  misses plus full write-back mass; every other saturated geometry with
  the same line-size signature is dominated and reuses the counters
  without another histogram query (``autotune.pruned_dominated``).

The report records ``points``, ``points_per_sec``, per-phase timings,
capture counts (``captures_avoided`` is what a capture-per-size tier
would have executed), prune counts, and a deterministic ``top`` list:
rows sort by cycles with ties broken by (candidate, size, machine)
enumeration order, so the ranking is identical across ``jobs`` settings
and store warmth.

Counters: ``autotune.points``, ``autotune.candidates``,
``autotune.pruned_latency``, ``autotune.pruned_dominated``,
``autotune.scoring_captures`` (asserted zero by the CI smoke); timer
``autotune.score``.
"""

from __future__ import annotations

import time

from repro.engine.metrics import METRICS


def geometry_grid(
    lines=(4, 8),
    set_counts=(1, 16, 32),
    assocs=(1, 2, 4, 8),
    *,
    l1_latencies=(1,),
    memory_latencies=(100,),
    scalar_cpi: float = 4.0,
    kernel_cpi: float = 1.0,
):
    """Single-level L1 machine grid for geometry sweeps.

    Crosses ``lines`` x ``set_counts`` x ``assocs`` x ``l1_latencies`` x
    ``memory_latencies`` into :class:`~repro.memsim.cost.MachineSpec`
    instances (``size = line * sets * assoc``, so the derived set count
    is exactly ``sets``).  Latency axes multiply the machine count
    without multiplying predicted-counter work — :func:`tune` collapses
    them onto shared counter classes.
    """
    from repro.memsim.cost import MachineSpec

    machines = []
    for line in sorted(lines):
        for sets in sorted(set_counts):
            for assoc in sorted(assocs):
                for lat in sorted(l1_latencies):
                    for mem in sorted(memory_latencies):
                        machines.append(
                            MachineSpec(
                                name=f"L{line}s{sets}a{assoc}t{lat}m{mem}",
                                levels=[("L1", line * sets * assoc, line, assoc, lat)],
                                memory_latency=mem,
                                scalar_cpi=scalar_cpi,
                                kernel_cpi=kernel_cpi,
                            )
                        )
    return machines


def _counter_class(machine) -> tuple:
    """Geometry-only identity of a machine's predicted counters.

    Machines that differ only in latencies, CPIs, clock or level names
    map to the same class and share one counter prediction.
    """
    return tuple(
        (level.line_shift, level.num_sets, level.assoc)
        for level in machine.hierarchy().levels
    )


def _saturation_signature(key: tuple, curves: dict):
    """Dominance signature of a saturated geometry, or ``None``.

    A level is saturated when its miss threshold exceeds the maximum of
    the quantile curve it reads (every reuse fits), and the write-back
    query is saturated when the last level's capacity clears both
    write-back position curves.  A fully saturated geometry's counters
    depend only on the per-level line shifts — its misses are pure cold
    misses and its write-backs the full fitted mass — so all such
    geometries share one counter set.
    """
    for shift, num_sets, assoc in key:
        c = curves[shift]
        if num_sets == 1:
            curve, threshold = c["dist"], assoc
        elif num_sets in c["sets"]:
            curve, threshold = c["sets"][num_sets], assoc
        else:
            curve, threshold = c["dist"], num_sets * assoc
        if len(curve) and threshold <= curve[-1]:
            return None
    last_shift, last_sets, last_assoc = key[-1]
    c = curves[last_shift]
    capacity = last_sets * last_assoc
    for wb_curve in (c["wbup"], c["wbdn"]):
        if len(wb_curve) and capacity + 1 <= wb_curve[-1]:
            return None
    return tuple(shift for shift, _, _ in key)


def _machine_cycles(counters, machine, flop_cycles: float) -> float:
    """Cycles for ``machine`` from a shared counter set.

    Mirrors :meth:`~repro.memsim.replay.ReplayResult.access_cycles` but
    takes latencies from ``machine`` instead of the counter set's
    representative, which is what lets latency variants share one
    prediction.
    """
    cycles = 0.0
    remaining = counters.total_accesses
    for spec, (_, _, hits, _) in zip(machine.levels, counters.level_stats):
        cycles += remaining * spec[4]
        remaining -= hits
    cycles += counters.memory_accesses * machine.memory_latency
    cycles += counters.memory_writebacks * machine.memory_latency
    return cycles + flop_cycles


def _candidate_programs(
    program, array, blocks, *, max_product, per_block, include_original, jobs, cache
):
    """Labelled candidate programs: the original plus the best ranked
    shackles per block size (generated code, ready to simulate)."""
    from repro.core.blocking import DataBlocking
    from repro.core.codegen import simplified_code
    from repro.core.search import search_shackles

    candidates = []
    if include_original:
        candidates.append(("orig", program))
    spec = program.arrays[array]
    for block in blocks:
        blocking = DataBlocking.grid(array, spec.ndim, block)
        ranked = search_shackles(
            program, blocking, max_product=max_product, jobs=jobs, cache=cache
        )
        for rank, result in enumerate(ranked[:per_block]):
            candidates.append((f"b{block}.{rank}", simplified_code(result.shackle)))
    return candidates


def tune(
    program,
    array: str,
    *,
    sizes: list[dict],
    machines: list,
    anchors: list[dict] | None = None,
    blocks=(8,),
    init=None,
    max_product: int = 1,
    candidates_per_block: int = 2,
    include_original: bool = True,
    top: int = 10,
    trace_store=None,
    jobs: int = 1,
    cache=None,
    degree: int | None = None,
    seed: int = 0,
    check_captures: bool = False,
    journal=None,
) -> dict:
    """Autotune ``program`` over (blocking, size, geometry) and report.

    ``sizes`` are the environments to score (typically *unseen* — no
    trace exists for them and none is captured); ``anchors`` default to
    :func:`~repro.memsim.parametric.anchor_envs` over each parameter's
    observed range in ``sizes``.  ``machines`` is the geometry grid
    (see :func:`geometry_grid`).  Blocking candidates come from the
    shackle search at each spacing in ``blocks``.

    Anchor traces flow through the engine tier (``simulate_sweep`` with
    ``jobs`` workers and the content-addressed ``cache``), so a warm
    store or cache re-tunes without executing anything.  Note that with
    ``jobs > 1`` a memory-only trace store cannot receive worker
    captures — pass a disk-rooted store to share them (the family fit
    falls back to serial captures otherwise).

    ``check_captures=True`` raises if the scoring phase captured any
    trace — the CI proof that non-anchor sizes are priced capture-free.

    ``journal`` (a directory or :class:`repro.engine.journal.Journal`)
    makes the scoring sweep resumable: each scored (candidate, size)
    block is checkpointed as it completes, keyed by the content
    fingerprint of this exact invocation, and a re-run after a crash
    replays the durable blocks instead of re-scoring them.  The report
    is bit-identical either way.

    Returns the report dict (also summarized by ``repro tune``): grid
    shape, per-phase seconds, ``points`` / ``points_per_sec``, capture
    and prune accounting, per-family fit descriptions, and the
    deterministic ``top`` rows.
    """
    from repro.experiments.harness import SweepPoint, random_init, simulate_sweep
    from repro.memsim.parametric import DEFAULT_DEGREE, anchor_envs, fit_family
    from repro.memsim.reuse import ladder_requirements
    from repro.memsim.trace import resolve_trace_store

    if not sizes:
        raise ValueError("tune needs at least one size environment")
    if not machines:
        raise ValueError("tune needs at least one machine")
    params = tuple(sorted(sizes[0]))
    for env in sizes:
        if tuple(sorted(env)) != params:
            raise ValueError(f"size {env} does not match parameters {params}")
    degree = DEFAULT_DEGREE if degree is None else degree
    if anchors is None:
        ranges = {
            p: (min(int(e[p]) for e in sizes), max(int(e[p]) for e in sizes))
            for p in params
        }
        anchors = anchor_envs(ranges, degree=degree)
    store = resolve_trace_store(trace_store)

    if journal is not None:
        from repro.engine.jobs import fingerprint, program_source
        from repro.engine.journal import resolve_journal

        journal = resolve_journal(
            journal,
            fingerprint(
                "tune-scoring",
                {
                    "program": program_source(program),
                    "array": array,
                    "sizes": [{p: int(e[p]) for p in params} for e in sizes],
                    "anchors": [{p: int(e[p]) for p in params} for e in anchors],
                    "machines": [
                        [m.name, [list(lv) for lv in m.levels], m.memory_latency,
                         m.clock_mhz, m.scalar_cpi, m.kernel_cpi]
                        for m in machines
                    ],
                    "blocks": [int(b) for b in blocks],
                    "max_product": max_product,
                    "candidates_per_block": candidates_per_block,
                    "include_original": include_original,
                    "degree": degree,
                    "seed": seed,
                },
            ),
        )

    t0 = time.perf_counter()
    candidates = _candidate_programs(
        program, array, blocks,
        max_product=max_product, per_block=candidates_per_block,
        include_original=include_original, jobs=jobs, cache=cache,
    )
    METRICS.inc("autotune.candidates", len(candidates))
    t_candidates = time.perf_counter() - t0

    # Anchor sweep: warm the store through the engine tier.  Any machine
    # works as the probe — the capture is geometry-independent.
    captures_start = METRICS.get("memsim.trace_capture")
    t0 = time.perf_counter()
    anchor_points = [
        SweepPoint(
            prog, env, machines[0], init or random_init,
            f"tune:{label}", options={"seed": seed, "fidelity": "analytic"},
        )
        for label, prog in candidates
        for env in anchors
    ]
    simulate_sweep(anchor_points, jobs=jobs, cache=cache, trace_store=store)
    t_anchors = time.perf_counter() - t0

    wanted = ladder_requirements([m.hierarchy() for m in machines])
    line_shifts = sorted(wanted)
    set_counts = sorted({s for counts in wanted.values() for s in counts})
    t0 = time.perf_counter()
    families = [
        (
            label,
            fit_family(
                prog, anchors, init=init, line_shifts=line_shifts,
                set_counts=set_counts, trace_store=store, degree=degree, seed=seed,
            ),
        )
        for label, prog in candidates
    ]
    t_fit = time.perf_counter() - t0
    captures_anchor = METRICS.get("memsim.trace_capture") - captures_start

    # Scoring: every (candidate, size, machine) point from the fitted
    # families.  One curve re-assembly per (candidate, size); one
    # histogram query per counter class; one cycle formula per machine.
    classes: dict[tuple, list[int]] = {}
    for index, machine in enumerate(machines):
        classes.setdefault(_counter_class(machine), []).append(index)
    class_keys = sorted(classes)

    captures_mid = METRICS.get("memsim.trace_capture")
    journaled = journal.replay() if journal is not None else {}
    resumed_blocks = 0
    scored_blocks = 0
    rows = []
    pruned_latency = 0
    pruned_dominated = 0
    with METRICS.timer("autotune.score"):
        t0 = time.perf_counter()
        for label, family in families:
            flops_map = family.flops_per_statement()
            for env in sizes:
                block_key = label + "|" + ",".join(
                    f"{p}={int(env[p])}" for p in params
                )
                saved = journaled.get(block_key)
                if saved is not None:
                    # This (candidate, size) block survived the crash:
                    # replay its rows verbatim instead of re-scoring.
                    rows.extend(saved["rows"])
                    pruned_latency += saved["pruned_latency"]
                    pruned_dominated += saved["pruned_dominated"]
                    resumed_blocks += 1
                    continue
                block_rows = []
                block_latency = 0
                block_dominated = 0
                total, curves = family.curves_at(env)
                counts = family.counts_at(env)
                flops = sum(counts[l] * flops_map[l] for l in counts)
                saturated: dict[tuple, object] = {}
                for key in class_keys:
                    members = classes[key]
                    signature = _saturation_signature(key, curves)
                    counters = saturated.get(signature) if signature else None
                    if counters is None:
                        counters = family.predict_from_curves(
                            total, curves, machines[members[0]]
                        )
                        if signature is not None:
                            saturated[signature] = counters
                    else:
                        block_dominated += 1
                    block_latency += len(members) - 1
                    for index in members:
                        machine = machines[index]
                        cycles = _machine_cycles(
                            counters, machine, flops * machine.scalar_cpi
                        )
                        seconds = cycles / (machine.clock_mhz * 1e6)
                        block_rows.append(
                            {
                                "candidate": label,
                                "env": {p: int(env[p]) for p in params},
                                "machine": machine.name,
                                "cycles": float(cycles),
                                "mflops": round(
                                    (flops / 1e6) / seconds if seconds > 0 else 0.0, 3
                                ),
                                "memory_accesses": int(counters.memory_accesses),
                                "writebacks": int(counters.memory_writebacks),
                            }
                        )
                rows.extend(block_rows)
                pruned_latency += block_latency
                pruned_dominated += block_dominated
                scored_blocks += 1
                if journal is not None:
                    journal.append(
                        block_key,
                        {
                            "rows": block_rows,
                            "pruned_latency": block_latency,
                            "pruned_dominated": block_dominated,
                        },
                    )
        t_score = time.perf_counter() - t0
    if journal is not None:
        journal.close()
    captures_scoring = METRICS.get("memsim.trace_capture") - captures_mid
    if check_captures and captures_scoring:
        raise RuntimeError(
            f"scoring phase captured {captures_scoring} traces; expected zero"
        )

    points = len(rows)
    METRICS.inc("autotune.points", points)
    METRICS.inc("autotune.pruned_latency", pruned_latency)
    METRICS.inc("autotune.pruned_dominated", pruned_dominated)
    METRICS.inc("autotune.scoring_captures", captures_scoring)

    order = {id(row): index for index, row in enumerate(rows)}
    ranked = sorted(rows, key=lambda row: (row["cycles"], order[id(row)]))
    best = [dict(row, rank=rank) for rank, row in enumerate(ranked[:top])]

    hull = {
        p: (min(int(e[p]) for e in anchors), max(int(e[p]) for e in anchors))
        for p in params
    }
    out_of_hull = sum(
        1
        for env in sizes
        if any(not hull[p][0] <= int(env[p]) <= hull[p][1] for p in params)
    )
    journal_info = (
        {
            "key": journal.key,
            "resumed_blocks": resumed_blocks,
            "scored_blocks": scored_blocks,
        }
        if journal is not None
        else None
    )
    return {
        "array": array,
        "params": list(params),
        "candidates": [label for label, _ in candidates],
        "families": {label: family.describe() for label, family in families},
        "anchors": [{p: int(e[p]) for p in params} for e in anchors],
        "sizes": len(sizes),
        "sizes_outside_anchor_hull": out_of_hull,
        "machines": len(machines),
        "geometry_classes": len(class_keys),
        "points": points,
        "points_per_sec": round(points / t_score, 1) if t_score > 0 else 0.0,
        "seconds": {
            "candidates": round(t_candidates, 4),
            "anchors": round(t_anchors, 4),
            "fit": round(t_fit, 4),
            "score": round(t_score, 4),
        },
        "captures": {
            "anchor": int(captures_anchor),
            "scoring": int(captures_scoring),
            "avoided": max(0, len(candidates) * len(sizes) - int(captures_anchor)),
        },
        "pruned": {
            "latency_variants": pruned_latency,
            "dominated": pruned_dominated,
        },
        "journal": journal_info,
        "top": best,
    }
