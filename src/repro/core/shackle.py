"""Data shackles: binding statement references to a data blocking.

Definition 1 of the paper, in code: a shackle is (i) a blocked data
object, (ii) an order of enumeration of the blocks (folded into the
blocking's traversal directions), and (iii) for each statement, a chosen
reference of the blocked array — when a block is touched, all instances
whose chosen reference lands in the block are performed, in original
program order.

Statements that do not reference the blocked array receive a *dummy
reference* (the paper's ``+ 0*B[I,J]`` trick): a list of affine subscript
functions supplied by the caller, irrelevant to the computation but
determining when those instances run.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.core.blocking import DataBlocking
from repro.ir.analysis import StatementContext, statement_contexts
from repro.ir.expr import Affine, Ref
from repro.ir.nodes import Program
from repro.polyhedra.constraints import Constraint


class DataShackle:
    """One shackle: a blocking plus a chosen reference per statement."""

    def __init__(
        self,
        program: Program,
        blocking: DataBlocking,
        ref_choice: Mapping[str, Ref] | None = None,
        dummies: Mapping[str, Sequence[Affine | str | int]] | None = None,
        name: str | None = None,
    ) -> None:
        self.program = program
        self.blocking = blocking
        self.name = name or f"shackle({blocking.array})"
        self._contexts = {c.label: c for c in statement_contexts(program)}

        self.ref_choice: dict[str, Ref] = dict(ref_choice or {})
        self.dummies: dict[str, tuple[Affine, ...]] = {
            label: tuple(Affine.lift(a) for a in affines)
            for label, affines in (dummies or {}).items()
        }
        self._validate()

    def _validate(self) -> None:
        array = self.blocking.array
        if array not in self.program.arrays:
            raise ValueError(f"blocked array {array!r} is not declared in the program")
        if self.program.arrays[array].ndim != self.blocking.array_ndim:
            raise ValueError(f"blocking rank does not match array {array!r}")
        for label, ref in self.ref_choice.items():
            ctx = self._context(label)
            if ref.array != array:
                raise ValueError(f"chosen reference {ref} is not to the blocked array {array!r}")
            if ref not in ctx.statement.references():
                raise ValueError(f"{ref} does not occur in statement {label}")
        for label, affines in self.dummies.items():
            ctx = self._context(label)
            if len(affines) != self.blocking.array_ndim:
                raise ValueError(f"dummy reference for {label} has wrong arity")
            scope = set(ctx.loop_vars) | set(self.program.params)
            for a in affines:
                if a.variables() - scope:
                    raise ValueError(f"dummy reference for {label} uses unbound variables")
        for label in self._contexts:
            if label not in self.ref_choice and label not in self.dummies:
                raise ValueError(
                    f"statement {label} has neither a chosen reference nor a dummy; "
                    f"every statement must be shackled"
                )

    def _context(self, label: str) -> StatementContext:
        if label not in self._contexts:
            raise ValueError(f"no statement labelled {label!r}")
        return self._contexts[label]

    # -- interface used by legality / codegen / execution -----------------------------

    def factors(self) -> list["DataShackle"]:
        return [self]

    @property
    def num_block_dims(self) -> int:
        return self.blocking.num_dims

    def subscripts(self, label: str) -> tuple[Affine, ...]:
        """The chosen (or dummy) subscript functions for a statement."""
        if label in self.ref_choice:
            return self.ref_choice[label].indices
        return self.dummies[label]

    def membership(
        self, label: str, block_vars: Sequence[str], rename: Mapping[str, str] | None = None
    ) -> list[Constraint]:
        """Constraints tying ``label``'s instances to traversal coords."""
        indices = self.subscripts(label)
        if rename:
            indices = tuple(a.rename(rename) for a in indices)
        return self.blocking.membership_constraints(indices, block_vars)

    def __repr__(self) -> str:
        return f"DataShackle({self.name}: {self.blocking!r})"


def shackle_refs(
    program: Program,
    blocking: DataBlocking,
    choice: Mapping[str, str | Ref] | str = "lhs",
    dummies: Mapping[str, Sequence[Affine | str | int]] | None = None,
    name: str | None = None,
) -> DataShackle:
    """Convenience constructor for common reference choices.

    ``choice`` may be:

    * ``"lhs"`` — shackle every statement's left-hand-side reference
      (statements whose lhs is a different array must appear in
      ``dummies`` or reference the blocked array somewhere ... their lhs
      must be to the blocked array, otherwise supply an explicit choice);
    * a mapping from statement label to a reference, given either as a
      :class:`Ref` or as source text like ``"A[L,K]"``.
    """
    ref_choice: dict[str, Ref] = {}
    if choice == "lhs":
        for ctx in statement_contexts(program):
            if ctx.statement.lhs.array == blocking.array:
                ref_choice[ctx.label] = ctx.statement.lhs
            elif dummies is None or ctx.label not in dummies:
                raise ValueError(
                    f"statement {ctx.label} does not write {blocking.array}; "
                    f"provide an explicit choice or a dummy reference"
                )
    else:
        for label, ref in choice.items():
            ref_choice[label] = _parse_ref(ref) if isinstance(ref, str) else ref
    return DataShackle(program, blocking, ref_choice, dummies=dummies, name=name)


def _parse_ref(text: str) -> Ref:
    from repro.ir.parser import ParseError, _ExprParser, _tokenize

    parser = _ExprParser(_tokenize(text, 0), 0)
    ref = parser.parse_atom()
    if not isinstance(ref, Ref) or not parser.at_end():
        raise ParseError(f"{text!r} is not an array reference")
    return ref
