"""Cartesian products of data shackles (Section 6 of the paper).

The product ``M1 x M2`` maps each statement instance to the pair of its
block coordinates under both shackles; the product range is ordered
lexicographically.  The first factor partitions the instances coarsely,
later factors refine each partition without reordering across partitions.

Products of products express multi-level blocking (Section 6.3): the
first (outer) factors block for the slowest level of the memory
hierarchy, subsequent factors for faster, smaller levels.
"""

from __future__ import annotations

from typing import Iterable

from repro.core.shackle import DataShackle


class ShackleProduct:
    """An n-ary Cartesian product of shackles over the same program."""

    def __init__(self, *shackles: "DataShackle | ShackleProduct", name: str | None = None) -> None:
        factors: list[DataShackle] = []
        for s in shackles:
            factors.extend(s.factors())
        if not factors:
            raise ValueError("a product needs at least one factor")
        program = factors[0].program
        for f in factors:
            if f.program is not program:
                raise ValueError("all factors of a product must shackle the same program")
        self._factors = factors
        self.program = program
        self.name = name or " x ".join(f.name for f in factors)

    def factors(self) -> list[DataShackle]:
        return list(self._factors)

    @property
    def num_block_dims(self) -> int:
        return sum(f.num_block_dims for f in self._factors)

    def __repr__(self) -> str:
        return f"ShackleProduct({self.name}; {len(self._factors)} factors)"


def multi_level(*levels: Iterable[DataShackle], name: str | None = None) -> ShackleProduct:
    """Build a multi-level blocking product.

    ``levels`` are given outermost (slowest / largest blocks) first; each
    level is an iterable of shackles (itself typically a product, e.g. the
    C- and A-shackles of matrix multiplication at one block size).
    """
    flat: list[DataShackle] = []
    for level in levels:
        for shackle in level:
            flat.extend(shackle.factors())
    return ShackleProduct(*flat, name=name)


def block_var_names(shackle, role: str) -> list[list[str]]:
    """Canonical traversal-coordinate variable names, per factor.

    ``role`` distinguishes several coordinate spaces in one system (e.g.
    source vs target instances in a legality query).
    """
    names: list[list[str]] = []
    for f_index, factor in enumerate(shackle.factors()):
        names.append(
            [f"_w{role}{f_index}_{j}" for j in range(factor.num_block_dims)]
        )
    return names
