"""Data shackling: the paper's primary contribution.

A :class:`~repro.core.blocking.DataBlocking` slices an array into blocks
with sets of parallel cutting planes.  A
:class:`~repro.core.shackle.DataShackle` binds one reference per statement
to that blocking; blocks are visited in lexicographic order of their
(direction-adjusted) coordinates, and when a block is visited every
statement instance whose chosen reference touches it is executed in
original program order.

:class:`~repro.core.shackle.ShackleProduct` composes shackles (Section 6),
refining the partition of statement instances without reordering across
partitions — the route to fully blocked and multi-level-blocked codes.

Legality (Theorem 1) is decided exactly in
:mod:`repro.core.legality`; Theorem 2's bounded-reference test lives in
:mod:`repro.core.span`; code generation in :mod:`repro.core.codegen`; and
direct block-by-block execution order in :mod:`repro.core.instances`.
"""

from repro.core.blocking import CuttingPlanes, DataBlocking
from repro.core.codegen import naive_code, simplified_code
from repro.core.instances import enumerate_block_instances, instance_schedule
from repro.core.legality import LegalityResult, Violation, check_legality
from repro.core.multipass import MultipassResult, multipass_schedule, single_sweep_suffices
from repro.core.product import ShackleProduct, multi_level
from repro.core.search import SearchResult, search_shackles
from repro.core.shackle import DataShackle, shackle_refs
from repro.core.splitting import split_code

__all__ = [
    "CuttingPlanes",
    "DataBlocking",
    "DataShackle",
    "LegalityResult",
    "MultipassResult",
    "SearchResult",
    "ShackleProduct",
    "Violation",
    "check_legality",
    "enumerate_block_instances",
    "instance_schedule",
    "multi_level",
    "multipass_schedule",
    "naive_code",
    "search_shackles",
    "shackle_refs",
    "simplified_code",
    "single_sweep_suffices",
    "split_code",
]
