"""Index-set splitting for shackled code (the paper's Figure 7 form).

The paper's Cholesky figure is produced by the Omega calculator, which
splits loop ranges at block boundaries so that each region carries no
guards: updates-from-the-left / baby-Cholesky on the diagonal block,
then updates / scale-and-update on the off-diagonal blocks (Figure 8).

:func:`split_code` reproduces that: every loop (block loops included) is
split at boundary expressions derived from the per-statement polyhedra —
the projections of each statement's (domain and membership) system onto
the loop variable.  Boundaries must form a provably totally ordered
chain in context (decided exactly); each segment is then regenerated
with the segment constraints in context, so guards vanish into bounds
and infeasible statements disappear.  The instance execution order is
unchanged — segments partition each range in increasing order.

Statement labels may appear in several segments of the output; copies
denote the same source statement restricted to disjoint index sets.
"""

from __future__ import annotations

from repro.core.codegen import (
    _block_loop_specs,
    _fold_shared_guards,
    _fresh_block_names,
    _memberships_flat,
    _merge_guards,
    _prune_loop_bounds,
    _tighten_loop,
    collapse_degenerate_loops,
)
from repro.ir.analysis import iteration_domain, statement_contexts
from repro.ir.expr import Affine, DivBound
from repro.ir.nodes import Guard, Loop, Node, Program, Statement
from repro.polyhedra.constraints import Constraint, System
from repro.polyhedra.fourier_motzkin import project
from repro.polyhedra.omega import integer_feasible
from repro.polyhedra.scan import scan_bounds
from repro.polyhedra.simplify import gist, implies


def _affine_le(a: Affine, b: Affine) -> Constraint:
    diff = b - a
    return Constraint.ge(diff.coeffs, diff.const)


class _SplitBuilder:
    def __init__(self, shackle, max_segments: int = 6) -> None:
        self.shackle = shackle
        self.program = shackle.factors()[0].program
        self.names = _fresh_block_names(shackle)
        self.specs = _block_loop_specs(shackle, self.names)
        self.max_segments = max_segments
        self.params = set(self.program.params)
        self.systems: dict[str, System] = {}
        self.contexts = {}
        for ctx in statement_contexts(self.program):
            membership = System(_memberships_flat(shackle, ctx.label, self.names))
            self.systems[ctx.label] = iteration_domain(ctx, self.program).conjoin(membership)
            self.contexts[ctx.label] = ctx

    # -- helpers ---------------------------------------------------------------

    def _labels_under(self, nodes: list[Node]) -> list[str]:
        out: list[str] = []

        def walk(ns):
            for n in ns:
                if isinstance(n, Statement):
                    out.append(n.label)
                elif isinstance(n, (Loop, Guard)):
                    walk(n.body)

        walk(nodes)
        return out

    def _feasible(self, label: str, context: System) -> bool:
        return integer_feasible(self.systems[label].conjoin(context))

    def _boundaries(
        self, labels: list[str], context: System, var: str, scope: set[str]
    ) -> list[Affine]:
        """Candidate split starts for ``var`` from per-statement projections."""
        allowed = scope | self.params
        seen: dict[tuple, Affine] = {}
        for label in labels:
            system = self.systems[label].conjoin(context)
            projected = project(system, allowed | {var})
            bounds, _ = scan_bounds(projected, [var], prune=True)
            for b in bounds[0].lowers:
                if b.den == 1 and set(b.coeffs) <= allowed:
                    start = Affine(b.coeffs, b.const)
                    seen.setdefault(start._key(), start)
            for b in bounds[0].uppers:
                if b.den == 1 and set(b.coeffs) <= allowed:
                    start = Affine(b.coeffs, b.const) + 1
                    seen.setdefault(start._key(), start)
        return list(seen.values())

    def _useful(self, boundary: Affine, loop: Loop, context: System) -> bool:
        """Discard boundaries provably at/outside the loop's range.

        A boundary past some upper bound (or at/below some lower bound)
        cannot start a distinct non-empty segment, and keeping it often
        breaks the total-order requirement (e.g. ``N+1`` vs ``64*t1+1``).
        """
        for u in loop.uppers:
            # boundary > floor(aff/den)  <=>  den*boundary >= aff + 1
            diff = boundary * u.den - u.affine
            if implies(context, Constraint.ge(diff.coeffs, diff.const - 1)):
                return False
        for l in loop.lowers:
            # boundary <= ceil(aff/den)  <=>  aff - den*(boundary - 1) >= 1
            diff = l.affine - boundary * l.den + l.den
            if implies(context, Constraint.ge(diff.coeffs, diff.const - 1)):
                return False
        return True

    def _chain(self, boundaries: list[Affine], context: System) -> list[Affine] | None:
        """Greedily build a provably totally ordered boundary chain.

        Boundaries that are incomparable (in context) with an already
        placed one are skipped — splitting there would need runtime
        min/max region tests, which the paper's figures never require.
        """
        ordered: list[Affine] = []
        for b in boundaries:
            if len(ordered) >= self.max_segments:
                break
            placed = False
            comparable = True
            position = len(ordered)
            for i, existing in enumerate(ordered):
                le = implies(context, _affine_le(b, existing))
                ge = implies(context, _affine_le(existing, b))
                if le and ge:
                    placed = True  # equal in context: drop duplicate
                    break
                if le and position == len(ordered):
                    position = i
                if not le and not ge:
                    comparable = False
                    break
            if placed or not comparable:
                continue
            ordered.insert(position, b)
        return ordered or None

    # -- rebuilding --------------------------------------------------------------

    def build(self) -> Program:
        body: list[Node] = [
            Statement(s.label, s.lhs, s.rhs) if isinstance(s, Statement) else s
            for s in self.program.body
        ]
        nest: list[Node] = list(self.program.body)
        for var, lower, upper in reversed(self.specs):
            nest = [Loop(var, lower, upper, nest)]
        out = self.rebuild(nest, System(self.program.assumptions), set())
        return Program(
            f"{self.program.name}_shackled_split",
            params=list(self.program.params),
            arrays=list(self.program.arrays.values()),
            body=collapse_degenerate_loops(out),
            assumptions=list(self.program.assumptions),
        )

    def rebuild(self, nodes: list[Node], context: System, scope: set[str]) -> list[Node]:
        out: list[Node] = []
        for node in nodes:
            if isinstance(node, Statement):
                if not self._feasible(node.label, context):
                    continue
                reduced = gist(self.systems[node.label], context)
                stmt = Statement(node.label, node.lhs, node.rhs)
                if len(reduced):
                    out.append(Guard(list(reduced), [stmt]))
                else:
                    out.append(stmt)
            elif isinstance(node, Guard):
                inner_ctx = context.conjoin(System(node.conditions))
                body = self.rebuild(node.body, inner_ctx, scope)
                if not body:
                    continue
                reduced = gist(System(node.conditions), context)
                if len(reduced):
                    out.append(_merge_guards(Guard(list(reduced), body)))
                else:
                    out.extend(body)
            elif isinstance(node, Loop):
                out.extend(self._rebuild_loop(node, context, scope))
            else:  # pragma: no cover - defensive
                raise TypeError(f"unknown node {node!r}")
        return out

    def _rebuild_loop(self, loop: Loop, context: System, scope: set[str]) -> list[Node]:
        labels = self._labels_under(loop.body)
        base_ctx = context.conjoin(System(loop.bounds_constraints()))
        boundaries = self._boundaries(labels, base_ctx, loop.var, scope)
        boundaries = [b for b in boundaries if self._useful(b, loop, context)]
        chain = self._chain(boundaries, base_ctx)
        segments: list[tuple[list[DivBound], list[DivBound]]] = []
        if chain:
            starts = chain
            for i, start in enumerate(starts):
                extra_lo = [DivBound(start)]
                extra_hi = (
                    [DivBound(starts[i + 1] - 1)] if i + 1 < len(starts) else []
                )
                segments.append((extra_lo, extra_hi))
            # Leading segment before the first boundary.
            segments.insert(0, ([], [DivBound(starts[0] - 1)]))
        else:
            segments = [([], [])]

        out: list[Node] = []
        for extra_lo, extra_hi in segments:
            seg_loop = Loop(
                loop.var,
                list(loop.lowers) + extra_lo,
                list(loop.uppers) + extra_hi,
                [],
            )
            seg_ctx = context.conjoin(System(seg_loop.bounds_constraints()))
            if not integer_feasible(seg_ctx):
                continue
            if not any(self._feasible(label, seg_ctx) for label in labels):
                continue
            body = self.rebuild(loop.body, seg_ctx, scope | {loop.var})
            if not body:
                continue
            seg_loop.body[:] = body
            tightened = _merge_guards(_tighten_loop(_fold_shared_guards(seg_loop)))
            if isinstance(tightened, Loop):
                tightened = _prune_loop_bounds(tightened, context)
            elif (
                isinstance(tightened, Guard)
                and len(tightened.body) == 1
                and isinstance(tightened.body[0], Loop)
            ):
                inner = _prune_loop_bounds(
                    tightened.body[0], context.conjoin(System(tightened.conditions))
                )
                tightened = Guard(tightened.conditions, [inner])
            out.append(tightened)
        return out


def split_code(shackle, name: str | None = None, max_segments: int = 6) -> Program:
    """Generate shackled code with index-set splitting (Figure 7 style)."""
    builder = _SplitBuilder(shackle, max_segments=max_segments)
    program = builder.build()
    if name:
        program.name = name
    return program
