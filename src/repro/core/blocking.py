"""Data blockings: cutting planes over array index space.

Following Definition 1 of the paper, an array is sliced by sets of
parallel cutting planes.  Each set has an integer *normal* vector over the
array's dimensions, a positive *spacing* between planes, and an *offset*.
A data element ``a`` has block coordinate ``z`` along plane set ``j`` iff

    spacing * (z - 1)  <  normal . a - offset  <=  spacing * z

which is the paper's ``25b - 24 <= x <= 25b`` convention for spacing 25.

The cutting-planes matrix of the paper is the matrix whose columns are
the normals, in application order.
"""

from __future__ import annotations

from typing import Sequence

from repro.ir.expr import Affine
from repro.ir.nodes import Array
from repro.linalg import FracMatrix
from repro.linalg.intmath import ceil_div
from repro.polyhedra.constraints import Constraint


class CuttingPlanes:
    """One set of parallel cutting planes."""

    __slots__ = ("normal", "spacing", "offset")

    def __init__(self, normal: Sequence[int], spacing: int, offset: int = 0) -> None:
        self.normal = tuple(int(n) for n in normal)
        self.spacing = int(spacing)
        self.offset = int(offset)
        if self.spacing <= 0:
            raise ValueError("cutting plane spacing must be positive")
        if all(n == 0 for n in self.normal):
            raise ValueError("cutting plane normal must be nonzero")

    def value(self, indices: Sequence[Affine]) -> Affine:
        """``normal . indices - offset`` as an affine form."""
        if len(indices) != len(self.normal):
            raise ValueError("dimension mismatch between normal and subscripts")
        out = Affine({}, -self.offset)
        for n, idx in zip(self.normal, indices):
            if n:
                out = out + idx * n
        return out

    def block_of(self, point: Sequence[int]) -> int:
        """The block coordinate of a concrete data point."""
        x = sum(n * p for n, p in zip(self.normal, point)) - self.offset
        return ceil_div(x, self.spacing)

    def __repr__(self) -> str:
        return f"CuttingPlanes(normal={self.normal}, spacing={self.spacing}, offset={self.offset})"


class DataBlocking:
    """A blocking of one named array by several cutting-plane sets.

    ``directions[j]`` is +1 to walk block coordinates ascending along set
    ``j`` and -1 descending (the paper's "bottom to top or right to left"
    traversal for cases like triangular solves).  Internally a *traversal
    coordinate* ``w_j = directions[j] * z_j`` is used so that block
    enumeration is always an ascending lexicographic walk of ``w``.
    """

    def __init__(
        self,
        array: str,
        planes: Sequence[CuttingPlanes],
        directions: Sequence[int] | None = None,
    ) -> None:
        self.array = array
        self.planes: tuple[CuttingPlanes, ...] = tuple(planes)
        if not self.planes:
            raise ValueError("a blocking needs at least one set of cutting planes")
        dims = {len(p.normal) for p in self.planes}
        if len(dims) != 1:
            raise ValueError("all cutting plane sets must agree on array dimensionality")
        self.directions: tuple[int, ...] = tuple(directions or (1,) * len(self.planes))
        if len(self.directions) != len(self.planes) or any(
            d not in (-1, 1) for d in self.directions
        ):
            raise ValueError("directions must be +1/-1, one per plane set")

    # -- constructors -------------------------------------------------------------

    @classmethod
    def grid(
        cls,
        array: str,
        ndim: int,
        sizes: Sequence[int] | int,
        dims: Sequence[int] | None = None,
        directions: Sequence[int] | None = None,
    ) -> "DataBlocking":
        """Axis-aligned blocking: plane set per dimension in ``dims``.

        ``sizes`` may be one int (same block size on every blocked dim) or
        one per blocked dim.  ``dims`` defaults to all dimensions; passing
        e.g. ``dims=[1]`` blocks only columns (the paper's QR shackle).
        """
        blocked_dims = list(dims) if dims is not None else list(range(ndim))
        if isinstance(sizes, int):
            sizes = [sizes] * len(blocked_dims)
        if len(sizes) != len(blocked_dims):
            raise ValueError("one size per blocked dimension required")
        planes = []
        for d, s in zip(blocked_dims, sizes):
            normal = [0] * ndim
            normal[d] = 1
            planes.append(CuttingPlanes(normal, s))
        return cls(array, planes, directions)

    # -- queries ---------------------------------------------------------------------

    @property
    def num_dims(self) -> int:
        return len(self.planes)

    @property
    def array_ndim(self) -> int:
        return len(self.planes[0].normal)

    def cutting_planes_matrix(self) -> FracMatrix:
        """The paper's cutting-planes matrix (normals as columns)."""
        return FracMatrix([[p.normal[i] for p in self.planes] for i in range(self.array_ndim)])

    def block_of(self, point: Sequence[int]) -> tuple[int, ...]:
        """Concrete block coordinates (z, not direction-adjusted)."""
        return tuple(p.block_of(point) for p in self.planes)

    def traversal_of(self, point: Sequence[int]) -> tuple[int, ...]:
        """Direction-adjusted traversal coordinates w = d * z."""
        return tuple(d * z for d, z in zip(self.directions, self.block_of(point)))

    def membership_constraints(
        self, indices: Sequence[Affine], block_vars: Sequence[str]
    ) -> list[Constraint]:
        """Constraints tying subscripts to traversal coordinates ``block_vars``.

        For plane set j with direction d and spacing s::

            s*(d*w_j - 1) + 1 <= normal.indices - offset <= s*(d*w_j)
        """
        if len(block_vars) != self.num_dims:
            raise ValueError("one block variable per plane set required")
        out: list[Constraint] = []
        for plane, direction, w in zip(self.planes, self.directions, block_vars):
            x = plane.value(indices)
            s = plane.spacing
            # x <= s*d*w  ->  s*d*w - x >= 0
            upper = {w: s * direction}
            for v, c in x.coeffs.items():
                upper[v] = upper.get(v, 0) - c
            out.append(Constraint.ge(upper, -x.const))
            # x >= s*(d*w - 1) + 1  ->  x - s*d*w + s - 1 >= 0
            lower = {w: -s * direction}
            for v, c in x.coeffs.items():
                lower[v] = lower.get(v, 0) + c
            out.append(Constraint.ge(lower, x.const + s - 1))
        return out

    def data_domain_constraints(self, array: Array, point_vars: Sequence[str]) -> list[Constraint]:
        """``1 <= a_i <= extent_i`` for a symbolic data point ``point_vars``."""
        if array.ndim != self.array_ndim:
            raise ValueError("array rank mismatch")
        out: list[Constraint] = []
        for var, extent in zip(point_vars, array.extents):
            out.append(Constraint.ge({var: 1}, -1))
            coeffs = {var: -1}
            for v, c in extent.coeffs.items():
                coeffs[v] = coeffs.get(v, 0) + c
            out.append(Constraint.ge(coeffs, extent.const))
        return out

    def __repr__(self) -> str:
        return (
            f"DataBlocking({self.array}, {len(self.planes)} plane sets, "
            f"spacings={[p.spacing for p in self.planes]}, directions={self.directions})"
        )
