"""Fourier-Motzkin elimination over the rationals.

Used for projection (loop-bound extraction in the code generator) and as
the inequality engine inside the exact integer test in
:mod:`repro.polyhedra.omega`.
"""

from __future__ import annotations

from fractions import Fraction

from repro.engine.metrics import METRICS
from repro.polyhedra import budget as _budget
from repro.polyhedra.constraints import Constraint, System


def _combine(lower: Constraint, upper: Constraint, var: str, dark: bool = False) -> Constraint:
    """Combine a lower bound (positive coeff) and an upper bound (negative).

    ``lower``:  b*var + e_l >= 0  (b > 0),  ``upper``: -a*var + e_u >= 0 (a > 0).
    The real shadow is ``a*e_l + b*e_u >= 0``; the dark shadow subtracts
    ``(a-1)*(b-1)`` (Pugh's Omega test), guaranteeing an integer point for
    ``var`` whenever the shadow holds.
    """
    b = lower.coeff(var)
    a = -upper.coeff(var)
    if b <= 0 or a <= 0:
        raise ValueError("mis-oriented bounds in FM combination")
    coeffs: dict[str, Fraction] = {}
    for v, c in lower.coeffs.items():
        if v != var:
            coeffs[v] = Fraction(a * c)
    for v, c in upper.coeffs.items():
        if v != var:
            coeffs[v] = coeffs.get(v, Fraction(0)) + b * c
    const = a * lower.const + b * upper.const
    if dark:
        const -= (a - 1) * (b - 1)
    return Constraint.ge(coeffs, const)


def eliminate_variable(system: System, var: str, dark: bool = False) -> System:
    """Project ``var`` out of an inequality-only system.

    With ``dark=False`` this is the exact rational (real) shadow; with
    ``dark=True`` it is Pugh's dark shadow, a sufficient condition for an
    integer point to exist for ``var``.

    Equalities involving ``var`` must have been eliminated beforehand.
    """
    METRICS.inc("fm.eliminations")
    _budget.charge()
    lowers: list[Constraint] = []
    uppers: list[Constraint] = []
    rest: list[Constraint] = []
    for c in system:
        if c.is_eq and c.coeff(var) != 0:
            raise ValueError(f"equality involving {var!r} present during FM elimination")
        a = c.coeff(var)
        if a > 0:
            lowers.append(c)
        elif a < 0:
            uppers.append(c)
        else:
            rest.append(c)
    for lo in lowers:
        for hi in uppers:
            rest.append(_combine(lo, hi, var, dark=dark))
    return System(rest)


def project(system: System, keep: set[str] | frozenset[str]) -> System:
    """Rational projection of ``system`` onto the variables in ``keep``."""
    out = _substitute_equalities_rational(system)
    for var in sorted(out.variables() - set(keep)):
        out = eliminate_variable(out, var)
    return out


def _substitute_equalities_rational(system: System) -> System:
    """Remove equalities by rational substitution (sound for projection)."""
    constraints = list(system)
    while True:
        eq = next((c for c in constraints if c.is_eq and c.coeffs), None)
        if eq is None:
            return System(constraints)
        # Solve the equality for one variable (rationally) and substitute.
        var, coeff = next(iter(eq.coeffs.items()))
        sub_coeffs = {v: Fraction(-c, coeff) for v, c in eq.coeffs.items() if v != var}
        sub_const = Fraction(-eq.const, coeff)
        constraints = [
            c.substitute(var, sub_coeffs, sub_const) for c in constraints if c is not eq
        ]


def rational_feasible(system: System) -> bool:
    """True iff the system has a rational solution (classic FM decision)."""
    out = _substitute_equalities_rational(system)
    if out.has_obvious_contradiction():
        return False
    for var in sorted(out.variables()):
        out = eliminate_variable(out, var)
        if out.has_obvious_contradiction():
            return False
    return not out.has_obvious_contradiction()
