"""Canonical forms of constraint systems, with a stable content hash.

The legality/search pipeline solves thousands of integer-feasibility
queries whose systems are *structurally* identical — the same dependence
polyhedron conjoined with the same membership constraints, differing only
in which traversal-coordinate names were generated for a factor's
position inside a product (``_ws0_0`` vs ``_ws1_0``).  This module maps a
:class:`~repro.polyhedra.constraints.System` to a canonical key that is

* invariant under permutation of the constraints,
* invariant under positive scaling and duplication of constraints
  (guaranteed by :class:`Constraint`'s own normalization plus row dedup),
* invariant under sign of equality rows (an equality and its negation
  describe the same hyperplane), and
* *name-blind*: variables are relabelled by a partition-refinement pass,
  so systems that differ only by a renaming of variables canonicalize
  identically whenever the refinement separates all variables (symmetric
  systems may canonicalize differently per naming — a missed memo hit,
  never a wrong answer).

Soundness does not depend on the refinement converging: the key always
*is* a concrete constraint system over indexed variables, and integer
feasibility is invariant under variable bijections, so two systems with
equal keys necessarily have equal feasibility.

Everything in a key is an int or a tuple of ints (constants appear as
``(numerator, denominator)`` pairs): keys hash and compare fast, and
``repr(key)`` is a stable cross-process serialization to fingerprint.
"""

from __future__ import annotations

import hashlib

from repro.polyhedra.constraints import System

_REFINE_ROUNDS = 4
"""Partition-refinement rounds; legality systems separate in 2-3."""


def _normalized_rows(system: System) -> list[tuple[bool, tuple[int, int], dict[str, int]]]:
    """(is_eq, (const_num, const_den), coeffs) rows, equality sign canonical.

    An equality row and its negation are the same constraint; keep the
    representative whose name-blind signature (sorted coefficient values,
    then constant pair) is the larger of the two.
    """
    rows: list[tuple[bool, tuple[int, int], dict[str, int]]] = []
    for c in system.constraints:
        coeffs = c.coeffs
        num, den = c.const.numerator, c.const.denominator
        if c.is_eq and coeffs:
            values = sorted(coeffs.values())
            neg_values = sorted(-a for a in values)
            if (neg_values, (-num, den)) > (values, (num, den)):
                coeffs = {v: -a for v, a in coeffs.items()}
                num = -num
        rows.append((c.is_eq, (num, den), coeffs))
    return rows


def _compress(labels: list) -> list[int]:
    """Map arbitrary orderable labels to dense integer ranks."""
    rank = {label: i for i, label in enumerate(sorted(set(labels)))}
    return [rank[label] for label in labels]


def canonical_key(system: System) -> tuple:
    """A hashable, name-blind canonical key for ``system``.

    The key is ``(num_vars, rows)`` where each row is
    ``(is_eq, (const_num, const_den), ((var_index, coeff), ...))`` over
    refinement-ordered variable indices.
    """
    rows = _normalized_rows(system)
    if not rows:
        return (0, ())
    occurrences: dict[str, list[tuple[int, int]]] = {}
    for r, (_, _, coeffs) in enumerate(rows):
        for v, a in coeffs.items():
            occurrences.setdefault(v, []).append((r, a))
    variables = sorted(occurrences)

    # Partition refinement: rows and variables label each other until the
    # partitions stabilize (or a small round bound is hit).
    row_labels = _compress(
        [
            (is_eq, tuple(sorted(coeffs.values())), const)
            for is_eq, const, coeffs in rows
        ]
    )
    var_labels = dict.fromkeys(variables, 0)
    num_vars = len(variables)
    for _ in range(_REFINE_ROUNDS):
        new_var = {
            v: (
                var_labels[v],
                tuple(sorted((a, row_labels[r]) for r, a in occurrences[v])),
            )
            for v in variables
        }
        compressed = _compress([new_var[v] for v in variables])
        next_var = dict(zip(variables, compressed))
        if max(compressed, default=0) == num_vars - 1:
            # All variables separated — the final order is determined, and
            # row labels are not part of the output.  Stop refining.
            var_labels = next_var
            break
        new_row = [
            (
                row_labels[r],
                tuple(sorted((a, next_var[v]) for v, a in coeffs.items())),
            )
            for r, (_, _, coeffs) in enumerate(rows)
        ]
        next_row = _compress(new_row)
        if next_var == var_labels and next_row == row_labels:
            break
        var_labels, row_labels = next_var, next_row

    # Final variable order: refinement label, then name as the last-resort
    # tiebreak (only reached between automorphic variables).
    variables.sort(key=lambda v: (var_labels[v], v))
    index = {v: i for i, v in enumerate(variables)}
    out_rows = sorted(
        (
            is_eq,
            const,
            tuple(sorted((index[v], a) for v, a in coeffs.items())),
        )
        for is_eq, const, coeffs in rows
    )
    return (len(variables), tuple(out_rows))


def key_fingerprint(key: tuple) -> str:
    """SHA-256 hex digest of a canonical key (stable across processes)."""
    return hashlib.sha256(repr(key).encode()).hexdigest()


def canonical_fingerprint(system: System) -> str:
    """Stable content hash of a system's canonical form."""
    return key_fingerprint(canonical_key(system))
