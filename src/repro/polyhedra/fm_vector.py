"""Vectorized Fourier-Motzkin / Omega feasibility over NumPy integer matrices.

The scalar solver in :mod:`repro.polyhedra.omega` builds a fresh
``Constraint`` (dict + ``Fraction``) for every lower/upper bound pair of
every elimination — the dominant cost of a legality census.  This module
runs the identical algorithm on an ``int64`` matrix: one row per
inequality (variable coefficients followed by the constant), so one
elimination is a single broadcast multiply-add over all bound pairs,
with GCD tightening, syntactic-dominance pruning and duplicate removal
as vectorized passes between eliminations.

The algorithm is Pugh's Omega test, unchanged: equalities are eliminated
through the integer solution lattice, exact eliminations when every
bound pair has a unit coefficient, dark/real shadows plus splintering
otherwise.  Exactness is preserved; the scalar path remains available as
a differential oracle (:func:`repro.polyhedra.omega.integer_feasible_scalar`)
and is fuzzed against this one (``repro fuzz --check solver``).

Coefficients stay small in practice (block spacings, subscript offsets);
:class:`Fallback` is raised before any int64 computation could overflow,
and the caller reruns the query on the arbitrary-precision scalar path.
"""

from __future__ import annotations

import itertools

import numpy as np

from repro.engine.metrics import METRICS
from repro.linalg.intmath import gcd_list
from repro.polyhedra import budget as _budget
from repro.polyhedra.constraints import Constraint, System

_OVERFLOW_GUARD = 1 << 62
"""Products beyond this risk int64 wraparound; fall back to scalar."""


class Fallback(Exception):
    """Raised when int64 headroom is insufficient for an exact answer."""


# -- System <-> matrix -------------------------------------------------------------


def _constraints_to_rows(constraints, index: dict, width: int):
    """``(eq_matrix, ineq_matrix)`` with the constant as the last column,
    or ``None`` when the constraint set is trivially infeasible (an
    equality whose normalized constant is fractional, or a constant
    contradiction)."""
    eq_rows: list[list[int]] = []
    ineq_rows: list[list[int]] = []
    for c in constraints:
        if c.is_trivially_false():
            return None
        if c.is_eq and c.const.denominator != 1:
            return None  # e.g. 2x+1 == 0 normalized to x + 1/2 == 0
        row = [0] * width
        for v, a in c.coeffs.items():
            row[index[v]] = a
        row[-1] = int(c.const)
        (eq_rows if c.is_eq else ineq_rows).append(row)
    try:
        eq = np.array(eq_rows, dtype=np.int64).reshape(len(eq_rows), width)
        ineq = np.array(ineq_rows, dtype=np.int64).reshape(len(ineq_rows), width)
    except OverflowError:
        raise Fallback("constraint coefficients exceed int64") from None
    return eq, ineq


def _split_system(system: System):
    """``(variables, eq_matrix, ineq_matrix)`` or ``None`` when trivially
    infeasible (see :func:`_constraints_to_rows`)."""
    variables = sorted(system.variables())
    index = {v: i for i, v in enumerate(variables)}
    rows = _constraints_to_rows(system.constraints, index, len(variables) + 1)
    if rows is None:
        return None
    return variables, rows[0], rows[1]


def _matrix_to_system(matrix: np.ndarray, variables: list[str]) -> System:
    """Inequality rows back to a :class:`System` (splinter recursion)."""
    out = []
    for row in matrix:
        coeffs = {v: int(a) for v, a in zip(variables, row[:-1]) if a}
        out.append(Constraint.ge(coeffs, int(row[-1])))
    return System(out)


# -- equality elimination (integer lattice) ----------------------------------------

_HERMITE_GUARD = 1 << 30
"""Once any Hermite working value reaches this, the next column update
could overflow int64 (products stay below 2^60, sums below 2^61); the
reduction restarts on the arbitrary-precision path."""


class _HermiteOverflow(Exception):
    """Internal: vectorized Hermite needs the Python-int path."""


class _NoUnitPivot(Exception):
    """Internal: the unit-substitution fast path needs full Hermite."""


def _solve_lattice_unit(eq: np.ndarray, n: int):
    """Equality elimination by unit-pivot substitution.

    Legality systems are dominated by equalities with a ±1 coefficient
    (subscript equality, lexicographic ties); each such row is solved for
    its unit variable and substituted — a handful of small matrix ops,
    no unimodular column reduction.  The unit pivot makes the remaining
    free integers a bijection onto the solution set, so the
    ``x = x0 + F t`` parameterization is exact.  Raises
    :class:`_NoUnitPivot` when a row has no ±1 coefficient (or values
    grow past the guard) — the caller falls back to Hermite.
    """
    F = np.eye(n, dtype=np.int64)
    x0 = np.zeros(n, dtype=np.int64)
    nfree = n
    for row in eq:
        r = row[:-1] @ F
        c = int(row[-1]) + int(row[:-1] @ x0)
        nz = np.nonzero(r)[0]
        if nz.size == 0:
            if c != 0:
                return None
            continue
        unit = nz[np.abs(r[nz]) == 1]
        if unit.size == 0:
            raise _NoUnitPivot
        j = int(unit[0])
        a = int(r[j])  # ±1, so 1/a == a
        # a*t_j + rest·t + c == 0  =>  t_j = -a*(rest·t + c)
        s = (-a) * r
        s[j] = 0
        x0 = x0 + F[:, j] * (-a * c)
        F = F + np.outer(F[:, j], s)
        F = np.delete(F, j, axis=1)
        nfree -= 1
        peak = max(int(np.abs(F).max(initial=0)), int(np.abs(x0).max(initial=0)))
        if peak >= _HERMITE_GUARD:
            raise _NoUnitPivot
    return (
        [int(v) for v in x0],
        [[int(v) for v in row] for row in F],
        n - nfree,
    )


def _solve_lattice_int64(eq: np.ndarray, n: int):
    """Vectorized Hermite column reduction of the equality subsystem.

    Raises :class:`_HermiteOverflow` whenever a working value approaches
    int64 limits — the caller reruns on Python ints.  ``y`` values (and
    everything derived from them) stay Python ints throughout: they are
    quotients of right-hand sides and can be arbitrarily large without
    endangering the int64 matrices.
    """
    k = len(eq)
    matrix = eq[:, :-1].astype(np.int64, copy=True)
    rhs = [-int(v) for v in eq[:, -1]]
    unimodular = np.eye(n, dtype=np.int64)
    if matrix.size and int(np.abs(matrix).max()) >= _HERMITE_GUARD:
        raise _HermiteOverflow
    pivot = 0
    y_values: list[int] = []
    for r in range(k):
        while True:
            tail = matrix[r, pivot:]
            nz = np.nonzero(tail)[0]
            if nz.size == 0:
                break
            best = pivot + int(nz[int(np.abs(tail[nz]).argmin())])
            if best != pivot:
                matrix[:, [pivot, best]] = matrix[:, [best, pivot]]
                unimodular[:, [pivot, best]] = unimodular[:, [best, pivot]]
            if matrix[r, pivot] < 0:
                matrix[:, pivot] = -matrix[:, pivot]
                unimodular[:, pivot] = -unimodular[:, pivot]
            quots = matrix[r, pivot + 1 :] // matrix[r, pivot]
            if not quots.any():
                break
            matrix[:, pivot + 1 :] -= quots[None, :] * matrix[:, pivot : pivot + 1]
            unimodular[:, pivot + 1 :] -= (
                quots[None, :] * unimodular[:, pivot : pivot + 1]
            )
            peak = max(int(np.abs(matrix).max()), int(np.abs(unimodular).max()))
            if peak >= _HERMITE_GUARD:
                raise _HermiteOverflow
            if not matrix[r, pivot + 1 :].any():
                break
        residual = rhs[r] - sum(
            int(matrix[r, j]) * y_values[j] for j in range(pivot)
        )
        if not matrix[r, pivot:].any():
            if residual != 0:
                return None
            continue
        p = int(matrix[r, pivot])
        if residual % p != 0:
            return None
        y_values.append(residual // p)
        pivot += 1
    x0 = [
        sum(int(unimodular[i, j]) * y_values[j] for j in range(pivot))
        for i in range(n)
    ]
    free = [[int(unimodular[i, j]) for j in range(pivot, n)] for i in range(n)]
    return x0, free, pivot


def _solve_lattice_bigint(eq: np.ndarray, n: int):
    """Hermite reduction on Python-int lists — exact for any magnitude."""
    k = len(eq)
    matrix = [[int(a) for a in row[:-1]] for row in eq]
    rhs = [-int(row[-1]) for row in eq]
    unimodular = [[int(i == j) for j in range(n)] for i in range(n)]

    def swap_cols(a: int, b: int) -> None:
        for row in itertools.chain(matrix, unimodular):
            row[a], row[b] = row[b], row[a]

    def negate_col(a: int) -> None:
        for row in itertools.chain(matrix, unimodular):
            row[a] = -row[a]

    def add_col(dst: int, src: int, factor: int) -> None:
        for row in itertools.chain(matrix, unimodular):
            row[dst] += factor * row[src]

    pivot = 0
    y_values: list[int | None] = [None] * n
    for r in range(k):
        while True:
            nonzero = [j for j in range(pivot, n) if matrix[r][j] != 0]
            if not nonzero:
                break
            best = min(nonzero, key=lambda j: abs(matrix[r][j]))
            if best != pivot:
                swap_cols(best, pivot)
            if matrix[r][pivot] < 0:
                negate_col(pivot)
            reduced_all = True
            for j in range(pivot + 1, n):
                if matrix[r][j] != 0:
                    add_col(j, pivot, -(matrix[r][j] // matrix[r][pivot]))
                    if matrix[r][j] != 0:
                        reduced_all = False
            if reduced_all:
                break
        residual = rhs[r] - sum(
            matrix[r][j] * y_values[j] for j in range(pivot) if y_values[j] is not None
        )
        if all(matrix[r][j] == 0 for j in range(pivot, n)):
            if residual != 0:
                return None
            continue
        if residual % matrix[r][pivot] != 0:
            return None
        y_values[pivot] = residual // matrix[r][pivot]
        pivot += 1
    x0 = [
        sum(unimodular[i][j] * y_values[j] for j in range(pivot)) for i in range(n)
    ]
    free = [[unimodular[i][j] for j in range(pivot, n)] for i in range(n)]
    return x0, free, pivot


def _solve_lattice(eq: np.ndarray, n: int):
    """``(x0, free, pivot)`` describing all integer solutions of the
    equality subsystem as ``x = x0 + F t``, or ``None`` when there are
    none.  ``x0``/``free`` are Python ints (the unimodular multipliers
    can exceed int64; :func:`_substitute_lattice` guards the conversion).
    """
    try:
        return _solve_lattice_unit(eq, n)
    except _NoUnitPivot:
        pass
    try:
        return _solve_lattice_int64(eq, n)
    except _HermiteOverflow:
        return _solve_lattice_bigint(eq, n)


def _substitute_lattice(
    rows: np.ndarray, x0: list, free: list, n: int
) -> np.ndarray:
    """Substitute ``x = x0 + F t`` into constraint rows (eq or ineq).

    One integer matrix product; raises :class:`Fallback` when the result
    could exceed int64 headroom (huge lattice multipliers, so the caller
    must rerun on the scalar engine).
    """
    nfree = len(free[0]) if free else 0
    if not len(rows):
        return rows.reshape(0, nfree + 1)
    bound = max((abs(v) for row in free for v in row), default=0)
    bound = max(bound, max((abs(v) for v in x0), default=0))
    coeff_bound = int(np.abs(rows[:, :-1]).max()) if rows[:, :-1].size else 0
    if coeff_bound * bound * max(n, 1) >= _OVERFLOW_GUARD:
        raise Fallback("equality substitution exceeds int64 headroom")
    x0_vec = np.array(x0, dtype=np.int64)
    free_mat = np.array(free, dtype=np.int64).reshape(n, nfree)
    coeffs = rows[:, :-1]
    new_const = rows[:, -1] + coeffs @ x0_vec
    new_coeffs = coeffs @ free_mat
    return np.concatenate([new_coeffs, new_const[:, None]], axis=1)


def _eliminate_equalities(eq: np.ndarray, ineq: np.ndarray, variables: list[str]):
    """Substitute the equality lattice into the inequalities.

    Returns ``(ineq_matrix, variables)`` over the lattice's free
    variables, or ``None`` when the equality subsystem has no integer
    solution.
    """
    n = len(variables)
    lattice = _solve_lattice(eq, n)
    if lattice is None:
        return None
    x0, free, pivot = lattice
    out = _substitute_lattice(ineq, x0, free, n)
    fresh = [f"_t{j}" for j in range(n - pivot)]
    return out, fresh


# -- inequality elimination --------------------------------------------------------


def _prune(matrix: np.ndarray, stats: dict):
    """Drop trivially-true rows, duplicates, and dominated rows.

    Two rows with the same coefficient vector express ``c.x >= -k``; the
    smaller constant is the stronger bound, so only it is kept (the
    syntactic-dominance prune).  Returns ``None`` on a constant
    contradiction.
    """
    if not len(matrix):
        return matrix
    zero_coeffs = ~matrix[:, :-1].any(axis=1)
    if zero_coeffs.any():
        if (matrix[zero_coeffs, -1] < 0).any():
            return None
        matrix = matrix[~zero_coeffs]
    if len(matrix) > 1:
        # Dedup by coefficient vector, keeping the tightest constant.  A
        # bytes-keyed dict beats np.unique(axis=0) by a wide margin at the
        # few-dozen-row sizes legality systems have.
        coeffs = np.ascontiguousarray(matrix[:, :-1])
        blob = coeffs.tobytes()
        width = coeffs.shape[1] * coeffs.itemsize
        consts = matrix[:, -1].tolist()
        strongest: dict[bytes, int] = {}
        for i in range(len(matrix)):
            key = blob[i * width : (i + 1) * width]
            j = strongest.get(key)
            if j is None or consts[i] < consts[j]:
                strongest[key] = i
        if len(strongest) < len(matrix):
            stats["pruned"] += len(matrix) - len(strongest)
            matrix = matrix[sorted(strongest.values())]
    return matrix


_INT64_MAX = np.iinfo(np.int64).max

_INT128_MULT_LIMIT = 1 << 30
"""Two-limb products are exact only while both FM multipliers fit in 30
bits: ``|a*hi_limb| < 2^30 * 2^31`` keeps every limb sum below 2^62."""

_LIMB_MASK = (1 << 32) - 1


def _combine_int128(
    lowers: np.ndarray, uppers: np.ndarray, a: np.ndarray, b: np.ndarray, dark: bool
) -> np.ndarray:
    """FM bound-pair combination in two-limb int128 arithmetic.

    Each int64 value splits as ``v = hi * 2^32 + lo`` with ``hi`` the
    arithmetic shift (so ``hi`` carries the sign, ``lo`` in [0, 2^32)).
    ``a*L + b*U`` is computed per limb, the low-limb carry folded into
    the high limb, and any entry whose exact value fits int64 is packed
    back.  Rows with oversized entries are GCD-reduced on Python ints;
    only a row that stays oversized *after* tightening (and is not a
    constant-only tautology/contradiction) raises :class:`Fallback`.
    """
    width = lowers.shape[1]
    if (
        int(a.max(initial=0)) >= _INT128_MULT_LIMIT
        or int(b.max(initial=0)) >= _INT128_MULT_LIMIT
    ):
        raise Fallback("FM multipliers exceed two-limb headroom")
    lhi, llo = lowers >> 32, lowers & _LIMB_MASK
    uhi, ulo = uppers >> 32, uppers & _LIMB_MASK
    hi = (
        a[None, :, None] * lhi[:, None, :] + b[:, None, None] * uhi[None, :, :]
    ).reshape(-1, width)
    lo = (
        a[None, :, None] * llo[:, None, :] + b[:, None, None] * ulo[None, :, :]
    ).reshape(-1, width)
    if dark:
        lo[:, -1] -= ((b[:, None] - 1) * (a[None, :] - 1)).reshape(-1)
    carry = lo >> 32  # arithmetic shift == floor division: exact for negatives
    hi += carry
    lo &= _LIMB_MASK
    fits = (hi >= -(1 << 31)) & (hi < (1 << 31))
    safe_hi = np.where(fits, hi, 0)
    out = (safe_hi << 32) | np.where(fits, lo, 0)
    for r in np.nonzero(~fits.all(axis=1))[0]:
        values = [int(h) * (1 << 32) + int(l) for h, l in zip(hi[r], lo[r])]
        coeffs, const = values[:-1], values[-1]
        if not any(coeffs):
            # Constant-only row: decided here, no headroom needed.
            out[r, :-1] = 0
            out[r, -1] = 0 if const >= 0 else -1
            continue
        g = gcd_list(coeffs)
        if g > 1:
            coeffs = [c // g for c in coeffs]
            const //= g  # floor: sound integer tightening
        if any(abs(c) >= _OVERFLOW_GUARD for c in coeffs) or abs(const) >= (
            _OVERFLOW_GUARD
        ):
            raise Fallback("combined row exceeds int64 after GCD tightening")
        out[r, :-1] = coeffs
        out[r, -1] = const
    return out


def _combine(
    matrix: np.ndarray,
    lower_mask: np.ndarray,
    upper_mask: np.ndarray,
    col: int,
    dark: bool,
    drop_last: bool = False,
    stats: dict | None = None,
):
    """One FM elimination of column ``col`` over all bound pairs.

    ``lower_mask``/``upper_mask`` are the sign masks of the column (the
    caller already computed them while choosing the column).  Returns the
    new matrix (rest rows plus all pairwise combinations, GCD-tightened).
    When the conservative int64 guard trips, the combination reruns on
    the two-limb int128 path (counted under ``solver.int128_combines``)
    instead of punting the whole system to the scalar engine.
    ``drop_last`` unsoundly discards the last combined row — it exists
    only for the fuzzer's planted ``solver-bad-prune`` mutation, proving
    the scalar differential oracle catches exactly this class of bug.
    """
    lowers = matrix[lower_mask]
    uppers = matrix[upper_mask]
    rest = matrix[~(lower_mask | upper_mask)]
    b = lowers[:, col]
    a = -uppers[:, col]
    peak = int(np.abs(matrix).max(initial=1))
    if (int(a.max(initial=1)) + int(b.max(initial=1))) * peak >= _OVERFLOW_GUARD:
        if stats is not None:
            stats["int128"] += 1
        combined = _combine_int128(lowers, uppers, a, b, dark)
    else:
        combined = (
            a[None, :, None] * lowers[:, None, :]
            + b[:, None, None] * uppers[None, :, :]
        ).reshape(-1, matrix.shape[1])
        if dark:
            combined[:, -1] -= ((b[:, None] - 1) * (a[None, :] - 1)).reshape(-1)
    if drop_last and len(combined):
        combined = combined[:-1]
    if len(combined):
        gcds = np.gcd.reduce(np.abs(combined[:, :-1]), axis=1)
        tighten = gcds > 1
        if tighten.any():
            combined[tighten, :-1] //= gcds[tighten, None]
            combined[tighten, -1] = np.floor_divide(
                combined[tighten, -1], gcds[tighten]
            )
    return np.concatenate([rest, combined], axis=0)


def _ineq_feasible_matrix(
    matrix: np.ndarray, variables: list[str], recurse, drop_last: bool, stats: dict
) -> bool:
    """Exact integer feasibility of an inequality-only matrix."""
    while True:
        matrix = _prune(matrix, stats)
        if matrix is None:
            return False
        # One fused pass computes the sign masks shared by the
        # unbounded-variable drop, the column choice, and the combine.
        while True:
            if not len(matrix):
                return True
            coeffs = matrix[:, :-1]
            pos = coeffs > 0
            neg = coeffs < 0
            n_lower = pos.sum(axis=0)
            n_upper = neg.sum(axis=0)
            one_sided = (n_lower > 0) ^ (n_upper > 0)
            if not one_sided.any():
                break
            # Rows mentioning a variable bounded on one side only can
            # always be satisfied; drop them and re-derive the masks.
            matrix = matrix[~(coeffs[:, one_sided] != 0).any(axis=1)]
        if not len(matrix):
            return True
        stats["eliminations"] += 1
        _budget.charge()
        eliminable = (n_lower > 0) & (n_upper > 0)
        max_lower = np.where(pos, coeffs, 0).max(axis=0, initial=0)
        max_upper = np.where(neg, -coeffs, 0).max(axis=0, initial=0)
        exact_cols = eliminable & ((max_lower == 1) | (max_upper == 1))
        pool = exact_cols if exact_cols.any() else eliminable
        col = int(np.where(pool, n_lower * n_upper, _INT64_MAX).argmin())
        lower_mask, upper_mask = pos[:, col], neg[:, col]
        if exact_cols[col]:
            matrix = _combine(
                matrix, lower_mask, upper_mask, col, dark=False,
                drop_last=drop_last, stats=stats,
            )
            continue

        dark = _combine(
            matrix, lower_mask, upper_mask, col, dark=True,
            drop_last=drop_last, stats=stats,
        )
        if _ineq_feasible_matrix(dark, variables, recurse, drop_last, stats):
            return True
        real = _combine(
            matrix, lower_mask, upper_mask, col, dark=False,
            drop_last=drop_last, stats=stats,
        )
        if not _ineq_feasible_matrix(real, variables, recurse, drop_last, stats):
            return False
        # Gray region between the shadows: splinter on equality
        # hyperplanes (Pugh), deciding each splinter with the full solver.
        lowers = matrix[lower_mask]
        a_max = int(-matrix[upper_mask, col].min())
        current = _matrix_to_system(matrix, variables)
        for lo in lowers:
            b = int(lo[col])
            limit = (a_max * b - a_max - b) // a_max
            for i in range(limit + 1):
                coeffs = {v: int(c) for v, c in zip(variables, lo[:-1]) if c}
                hyperplane = Constraint(coeffs, int(lo[-1]) - i, is_eq=True)
                if recurse(current.conjoin(hyperplane)):
                    return True
        return False


def feasible_vector(system: System, recurse, drop_last: bool = False) -> bool:
    """Exact integer feasibility of ``system`` on the vectorized core.

    ``recurse`` decides the splintered subproblems (production passes the
    memoized solver entry point so splinters share the canonical cache).
    Raises :class:`Fallback` when int64 headroom is insufficient.
    """
    split = _split_system(system)
    if split is None:
        return False
    variables, eq, ineq = split
    # Counters are accumulated locally and flushed once: METRICS.inc takes a
    # lock, and the elimination loop is the hottest code in the solver.
    stats = _fresh_stats()
    try:
        if len(eq):
            reduced = _eliminate_equalities(eq, ineq, variables)
            if reduced is None:
                return False
            ineq, variables = reduced
        return _ineq_feasible_matrix(ineq, variables, recurse, drop_last, stats)
    finally:
        _flush_stats(stats)


def _fresh_stats() -> dict:
    return {"eliminations": 0, "pruned": 0, "int128": 0, "prefix": 0}


def _flush_stats(stats: dict) -> None:
    if stats["eliminations"]:
        METRICS.inc("fm.vector_eliminations", stats["eliminations"])
    if stats["pruned"]:
        METRICS.inc("solver.fm_rows_pruned", stats["pruned"])
    if stats["int128"]:
        METRICS.inc("solver.int128_combines", stats["int128"])
    if stats["prefix"]:
        METRICS.inc("fm.prefix_eliminations", stats["prefix"])


# -- family solves (shared-prefix batching) ----------------------------------------


def _shared_prefix_reduce(matrix: np.ndarray, locked: np.ndarray, stats: dict):
    """Reduce the family's shared inequality rows as far as is provably
    member-independent.

    ``locked`` marks columns mentioned by at least one member's delta
    rows.  An *unlocked* column appears only in shared rows, so the full
    member system sees exactly the same bounds for it as the shared
    matrix does; one-sided drops and exact (unit-coefficient)
    eliminations of unlocked columns therefore commute with conjoining
    any member's delta rows and are performed once per family.  Lossy
    steps (dark shadow, splintering) are never shared.  Returns ``None``
    on a constant contradiction (the whole family is infeasible).
    """
    while True:
        matrix = _prune(matrix, stats)
        if matrix is None:
            return None
        while True:
            if not len(matrix):
                return matrix
            coeffs = matrix[:, :-1]
            pos = coeffs > 0
            neg = coeffs < 0
            n_lower = pos.sum(axis=0)
            n_upper = neg.sum(axis=0)
            one_sided = ((n_lower > 0) ^ (n_upper > 0)) & ~locked
            if not one_sided.any():
                break
            matrix = matrix[~(coeffs[:, one_sided] != 0).any(axis=1)]
        eliminable = (n_lower > 0) & (n_upper > 0) & ~locked
        if not eliminable.any():
            return matrix
        max_lower = np.where(pos, coeffs, 0).max(axis=0, initial=0)
        max_upper = np.where(neg, -coeffs, 0).max(axis=0, initial=0)
        exact_cols = eliminable & ((max_lower == 1) | (max_upper == 1))
        if not exact_cols.any():
            return matrix
        col = int(np.where(exact_cols, n_lower * n_upper, _INT64_MAX).argmin())
        stats["eliminations"] += 1
        stats["prefix"] += 1
        _budget.charge()
        matrix = _combine(
            matrix, pos[:, col], neg[:, col], col, dark=False, stats=stats
        )


_MEMBER_FALLBACK = object()
"""Sentinel: this member needs the scalar engine (int64 headroom)."""


def feasible_family(
    base: System, deltas: list, recurse, drop_shared: bool = False
) -> list:
    """Decide every member ``base ∧ deltas[i]`` of a candidate family.

    The base matrices are built once; the base equality lattice is solved
    once and substituted into the shared rows *and* every member's delta
    rows with one guard; the shared inequalities are then reduced by
    :func:`_shared_prefix_reduce` before the per-member finishes run.

    Returns one entry per member: ``True``/``False``, or ``None`` for a
    member whose finish exceeded int64 headroom (the caller reruns just
    that member on the scalar engine).  Raises :class:`Fallback` only
    when the shared prefix itself cannot be built in int64.

    ``drop_shared`` unsoundly discards the last shared row after the
    prefix reduction — it exists only for the fuzzer's planted
    ``batch-bad-prefix`` mutation, proving the scalar differential
    oracle catches a broken shared-prefix elimination.
    """
    if not deltas:
        return []
    variables = sorted(set(base.variables()).union(*(d.variables() for d in deltas)))
    index = {v: i for i, v in enumerate(variables)}
    n = len(variables)
    width = n + 1
    stats = _fresh_stats()
    try:
        base_rows = _constraints_to_rows(base.constraints, index, width)
        if base_rows is None:
            return [False] * len(deltas)
        base_eq, shared = base_rows
        members: list = []
        for delta in deltas:
            members.append(_constraints_to_rows(delta.constraints, index, width))
        nfree = n
        if len(base_eq):
            lattice = _solve_lattice(base_eq, n)
            if lattice is None:
                return [False] * len(deltas)
            x0, free, pivot = lattice
            nfree = n - pivot
            shared = _substitute_lattice(shared, x0, free, n)
            transformed: list = []
            for rows in members:
                if rows is None:
                    transformed.append(None)
                    continue
                try:
                    transformed.append(
                        (
                            _substitute_lattice(rows[0], x0, free, n),
                            _substitute_lattice(rows[1], x0, free, n),
                        )
                    )
                except Fallback:
                    transformed.append(_MEMBER_FALLBACK)
            members = transformed
        locked = np.zeros(nfree, dtype=bool)
        for rows in members:
            if rows is None or rows is _MEMBER_FALLBACK:
                continue
            for part in rows:
                if len(part):
                    locked |= (part[:, :-1] != 0).any(axis=0)
        shared = _shared_prefix_reduce(shared, locked, stats)
        if shared is None:
            return [False] * len(deltas)
        if drop_shared and len(shared):
            shared = shared[:-1]
        names = [f"_t{j}" for j in range(nfree)]
        out: list = []
        for rows in members:
            if rows is None:
                out.append(False)
                continue
            if rows is _MEMBER_FALLBACK:
                out.append(None)
                continue
            member_eq, member_ineq = rows
            try:
                matrix = np.concatenate([shared, member_ineq], axis=0)
                member_names = names
                if len(member_eq):
                    member_lattice = _solve_lattice(member_eq, nfree)
                    if member_lattice is None:
                        out.append(False)
                        continue
                    mx0, mfree, mpivot = member_lattice
                    matrix = _substitute_lattice(matrix, mx0, mfree, nfree)
                    member_names = [f"_t{j}" for j in range(nfree - mpivot)]
                out.append(
                    _ineq_feasible_matrix(matrix, member_names, recurse, False, stats)
                )
            except Fallback:
                out.append(None)
        return out
    finally:
        _flush_stats(stats)
