"""Vectorized Fourier-Motzkin / Omega feasibility over NumPy integer matrices.

The scalar solver in :mod:`repro.polyhedra.omega` builds a fresh
``Constraint`` (dict + ``Fraction``) for every lower/upper bound pair of
every elimination — the dominant cost of a legality census.  This module
runs the identical algorithm on an ``int64`` matrix: one row per
inequality (variable coefficients followed by the constant), so one
elimination is a single broadcast multiply-add over all bound pairs,
with GCD tightening, syntactic-dominance pruning and duplicate removal
as vectorized passes between eliminations.

The algorithm is Pugh's Omega test, unchanged: equalities are eliminated
through the integer solution lattice, exact eliminations when every
bound pair has a unit coefficient, dark/real shadows plus splintering
otherwise.  Exactness is preserved; the scalar path remains available as
a differential oracle (:func:`repro.polyhedra.omega.integer_feasible_scalar`)
and is fuzzed against this one (``repro fuzz --check solver``).

Coefficients stay small in practice (block spacings, subscript offsets);
:class:`Fallback` is raised before any int64 computation could overflow,
and the caller reruns the query on the arbitrary-precision scalar path.
"""

from __future__ import annotations

import itertools

import numpy as np

from repro.engine.metrics import METRICS
from repro.polyhedra import budget as _budget
from repro.polyhedra.constraints import Constraint, System

_OVERFLOW_GUARD = 1 << 62
"""Products beyond this risk int64 wraparound; fall back to scalar."""


class Fallback(Exception):
    """Raised when int64 headroom is insufficient for an exact answer."""


# -- System <-> matrix -------------------------------------------------------------


def _split_system(system: System):
    """``(variables, eq_matrix, ineq_matrix)`` with the constant as the
    last column, or ``None`` when the system is trivially infeasible
    (an equality whose normalized constant is fractional, or a constant
    contradiction)."""
    variables = sorted(system.variables())
    index = {v: i for i, v in enumerate(variables)}
    width = len(variables) + 1
    eq_rows: list[list[int]] = []
    ineq_rows: list[list[int]] = []
    for c in system.constraints:
        if c.is_trivially_false():
            return None
        if c.is_eq and c.const.denominator != 1:
            return None  # e.g. 2x+1 == 0 normalized to x + 1/2 == 0
        row = [0] * width
        for v, a in c.coeffs.items():
            row[index[v]] = a
        row[-1] = int(c.const)
        (eq_rows if c.is_eq else ineq_rows).append(row)
    eq = np.array(eq_rows, dtype=np.int64).reshape(len(eq_rows), width)
    ineq = np.array(ineq_rows, dtype=np.int64).reshape(len(ineq_rows), width)
    return variables, eq, ineq


def _matrix_to_system(matrix: np.ndarray, variables: list[str]) -> System:
    """Inequality rows back to a :class:`System` (splinter recursion)."""
    out = []
    for row in matrix:
        coeffs = {v: int(a) for v, a in zip(variables, row[:-1]) if a}
        out.append(Constraint.ge(coeffs, int(row[-1])))
    return System(out)


# -- equality elimination (integer lattice) ----------------------------------------


def _eliminate_equalities(eq: np.ndarray, ineq: np.ndarray, variables: list[str]):
    """Substitute the equality lattice into the inequalities.

    Returns ``(ineq_matrix, variables)`` over the lattice's free
    variables, or ``None`` when the equality subsystem has no integer
    solution.  The Hermite-style column reduction runs on Python ints
    (multipliers can exceed int64); the substitution of ``x = x0 + F t``
    into the inequalities is a single integer matrix product.
    """
    n = len(variables)
    k = len(eq)
    matrix = [[int(a) for a in row[:-1]] for row in eq]
    rhs = [-int(row[-1]) for row in eq]
    unimodular = [[int(i == j) for j in range(n)] for i in range(n)]

    def swap_cols(a: int, b: int) -> None:
        for row in itertools.chain(matrix, unimodular):
            row[a], row[b] = row[b], row[a]

    def negate_col(a: int) -> None:
        for row in itertools.chain(matrix, unimodular):
            row[a] = -row[a]

    def add_col(dst: int, src: int, factor: int) -> None:
        for row in itertools.chain(matrix, unimodular):
            row[dst] += factor * row[src]

    pivot = 0
    y_values: list[int | None] = [None] * n
    for r in range(k):
        while True:
            nonzero = [j for j in range(pivot, n) if matrix[r][j] != 0]
            if not nonzero:
                break
            best = min(nonzero, key=lambda j: abs(matrix[r][j]))
            if best != pivot:
                swap_cols(best, pivot)
            if matrix[r][pivot] < 0:
                negate_col(pivot)
            reduced_all = True
            for j in range(pivot + 1, n):
                if matrix[r][j] != 0:
                    add_col(j, pivot, -(matrix[r][j] // matrix[r][pivot]))
                    if matrix[r][j] != 0:
                        reduced_all = False
            if reduced_all:
                break
        residual = rhs[r] - sum(
            matrix[r][j] * y_values[j] for j in range(pivot) if y_values[j] is not None
        )
        if all(matrix[r][j] == 0 for j in range(pivot, n)):
            if residual != 0:
                return None
            continue
        if residual % matrix[r][pivot] != 0:
            return None
        y_values[pivot] = residual // matrix[r][pivot]
        pivot += 1

    # x = x0 + F t: particular solution plus the free lattice columns.
    x0 = [
        sum(unimodular[i][j] * y_values[j] for j in range(pivot)) for i in range(n)
    ]
    free = [[unimodular[i][j] for j in range(pivot, n)] for i in range(n)]
    bound = max((abs(v) for row in unimodular for v in row), default=0)
    bound = max(bound, max((abs(v) for v in x0), default=0))
    coeff_bound = int(np.abs(ineq[:, :-1]).max()) if ineq.size else 0
    if coeff_bound * bound * max(n, 1) >= _OVERFLOW_GUARD:
        raise Fallback("equality substitution exceeds int64 headroom")

    x0_vec = np.array(x0, dtype=np.int64)
    free_mat = np.array(free, dtype=np.int64).reshape(n, n - pivot)
    coeffs = ineq[:, :-1]
    new_const = ineq[:, -1] + coeffs @ x0_vec
    new_coeffs = coeffs @ free_mat
    out = np.concatenate([new_coeffs, new_const[:, None]], axis=1)
    fresh = [f"_t{j}" for j in range(n - pivot)]
    return out, fresh


# -- inequality elimination --------------------------------------------------------


def _prune(matrix: np.ndarray, stats: dict):
    """Drop trivially-true rows, duplicates, and dominated rows.

    Two rows with the same coefficient vector express ``c.x >= -k``; the
    smaller constant is the stronger bound, so only it is kept (the
    syntactic-dominance prune).  Returns ``None`` on a constant
    contradiction.
    """
    if not len(matrix):
        return matrix
    zero_coeffs = ~matrix[:, :-1].any(axis=1)
    if zero_coeffs.any():
        if (matrix[zero_coeffs, -1] < 0).any():
            return None
        matrix = matrix[~zero_coeffs]
    if len(matrix) > 1:
        # Dedup by coefficient vector, keeping the tightest constant.  A
        # bytes-keyed dict beats np.unique(axis=0) by a wide margin at the
        # few-dozen-row sizes legality systems have.
        coeffs = np.ascontiguousarray(matrix[:, :-1])
        blob = coeffs.tobytes()
        width = coeffs.shape[1] * coeffs.itemsize
        consts = matrix[:, -1].tolist()
        strongest: dict[bytes, int] = {}
        for i in range(len(matrix)):
            key = blob[i * width : (i + 1) * width]
            j = strongest.get(key)
            if j is None or consts[i] < consts[j]:
                strongest[key] = i
        if len(strongest) < len(matrix):
            stats["pruned"] += len(matrix) - len(strongest)
            matrix = matrix[sorted(strongest.values())]
    return matrix


_INT64_MAX = np.iinfo(np.int64).max


def _combine(
    matrix: np.ndarray,
    lower_mask: np.ndarray,
    upper_mask: np.ndarray,
    col: int,
    dark: bool,
    drop_last: bool = False,
):
    """One FM elimination of column ``col`` over all bound pairs.

    ``lower_mask``/``upper_mask`` are the sign masks of the column (the
    caller already computed them while choosing the column).  Returns the
    new matrix (rest rows plus all pairwise combinations, GCD-tightened).
    ``drop_last`` unsoundly discards the last combined row — it exists
    only for the fuzzer's planted ``solver-bad-prune`` mutation, proving
    the scalar differential oracle catches exactly this class of bug.
    """
    lowers = matrix[lower_mask]
    uppers = matrix[upper_mask]
    rest = matrix[~(lower_mask | upper_mask)]
    b = lowers[:, col]
    a = -uppers[:, col]
    peak = int(np.abs(matrix).max(initial=1))
    if (int(a.max(initial=1)) + int(b.max(initial=1))) * peak >= _OVERFLOW_GUARD:
        raise Fallback("FM combination exceeds int64 headroom")
    combined = (
        a[None, :, None] * lowers[:, None, :] + b[:, None, None] * uppers[None, :, :]
    ).reshape(-1, matrix.shape[1])
    if dark:
        combined[:, -1] -= ((b[:, None] - 1) * (a[None, :] - 1)).reshape(-1)
    if drop_last and len(combined):
        combined = combined[:-1]
    if len(combined):
        gcds = np.gcd.reduce(np.abs(combined[:, :-1]), axis=1)
        tighten = gcds > 1
        if tighten.any():
            combined[tighten, :-1] //= gcds[tighten, None]
            combined[tighten, -1] = np.floor_divide(
                combined[tighten, -1], gcds[tighten]
            )
    return np.concatenate([rest, combined], axis=0)


def _ineq_feasible_matrix(
    matrix: np.ndarray, variables: list[str], recurse, drop_last: bool, stats: dict
) -> bool:
    """Exact integer feasibility of an inequality-only matrix."""
    while True:
        matrix = _prune(matrix, stats)
        if matrix is None:
            return False
        # One fused pass computes the sign masks shared by the
        # unbounded-variable drop, the column choice, and the combine.
        while True:
            if not len(matrix):
                return True
            coeffs = matrix[:, :-1]
            pos = coeffs > 0
            neg = coeffs < 0
            n_lower = pos.sum(axis=0)
            n_upper = neg.sum(axis=0)
            one_sided = (n_lower > 0) ^ (n_upper > 0)
            if not one_sided.any():
                break
            # Rows mentioning a variable bounded on one side only can
            # always be satisfied; drop them and re-derive the masks.
            matrix = matrix[~(coeffs[:, one_sided] != 0).any(axis=1)]
        if not len(matrix):
            return True
        stats["eliminations"] += 1
        _budget.charge()
        eliminable = (n_lower > 0) & (n_upper > 0)
        max_lower = np.where(pos, coeffs, 0).max(axis=0, initial=0)
        max_upper = np.where(neg, -coeffs, 0).max(axis=0, initial=0)
        exact_cols = eliminable & ((max_lower == 1) | (max_upper == 1))
        pool = exact_cols if exact_cols.any() else eliminable
        col = int(np.where(pool, n_lower * n_upper, _INT64_MAX).argmin())
        lower_mask, upper_mask = pos[:, col], neg[:, col]
        if exact_cols[col]:
            matrix = _combine(matrix, lower_mask, upper_mask, col, dark=False, drop_last=drop_last)
            continue

        dark = _combine(matrix, lower_mask, upper_mask, col, dark=True, drop_last=drop_last)
        if _ineq_feasible_matrix(dark, variables, recurse, drop_last, stats):
            return True
        real = _combine(matrix, lower_mask, upper_mask, col, dark=False, drop_last=drop_last)
        if not _ineq_feasible_matrix(real, variables, recurse, drop_last, stats):
            return False
        # Gray region between the shadows: splinter on equality
        # hyperplanes (Pugh), deciding each splinter with the full solver.
        lowers = matrix[lower_mask]
        a_max = int(-matrix[upper_mask, col].min())
        current = _matrix_to_system(matrix, variables)
        for lo in lowers:
            b = int(lo[col])
            limit = (a_max * b - a_max - b) // a_max
            for i in range(limit + 1):
                coeffs = {v: int(c) for v, c in zip(variables, lo[:-1]) if c}
                hyperplane = Constraint(coeffs, int(lo[-1]) - i, is_eq=True)
                if recurse(current.conjoin(hyperplane)):
                    return True
        return False


def feasible_vector(system: System, recurse, drop_last: bool = False) -> bool:
    """Exact integer feasibility of ``system`` on the vectorized core.

    ``recurse`` decides the splintered subproblems (production passes the
    memoized solver entry point so splinters share the canonical cache).
    Raises :class:`Fallback` when int64 headroom is insufficient.
    """
    split = _split_system(system)
    if split is None:
        return False
    variables, eq, ineq = split
    # Counters are accumulated locally and flushed once: METRICS.inc takes a
    # lock, and the elimination loop is the hottest code in the solver.
    stats = {"eliminations": 0, "pruned": 0}
    try:
        if len(eq):
            reduced = _eliminate_equalities(eq, ineq, variables)
            if reduced is None:
                return False
            ineq, variables = reduced
        return _ineq_feasible_matrix(ineq, variables, recurse, drop_last, stats)
    finally:
        if stats["eliminations"]:
            METRICS.inc("fm.vector_eliminations", stats["eliminations"])
        if stats["pruned"]:
            METRICS.inc("solver.fm_rows_pruned", stats["pruned"])
