"""Exact integer feasibility of affine constraint systems (the Omega test).

This module answers the question at the core of the paper's Theorem 1: does
a conjunction of affine (in)equalities over integer variables have an
integer solution?  The algorithm follows Pugh's Omega test:

1. equalities are eliminated exactly by computing the integer solution
   lattice (a Hermite-style unimodular column reduction), substituting
   ``x = x0 + U t`` into the inequalities;
2. inequality variables are eliminated by Fourier-Motzkin; an elimination
   step is *exact* when every lower/upper bound pair has a unit
   coefficient, otherwise the *dark shadow* (sufficient) and *real shadow*
   (necessary) conditions bracket the answer and the residual gray region
   is searched by *splintering* on equality hyperplanes.

The test is exact — no approximation is involved at any step.
"""

from __future__ import annotations

import itertools
from fractions import Fraction

from repro.engine.metrics import METRICS
from repro.polyhedra.constraints import Constraint, System
from repro.polyhedra.fourier_motzkin import eliminate_variable


class _Infeasible(Exception):
    """Raised internally when equality elimination proves infeasibility."""


def _solve_equalities(system: System) -> System:
    """Eliminate all equalities, returning an inequality-only system.

    The integer solutions of the equality subsystem ``A x = b`` form either
    the empty set (raise :class:`_Infeasible`) or an affine lattice
    ``x = x0 + U_free t``; the substitution is applied to the inequalities.
    New variables are named ``_t<k>`` (guaranteed fresh).
    """
    equalities = system.equalities()
    if not equalities:
        return system
    for eq in equalities:
        if eq.const.denominator != 1:
            raise _Infeasible  # e.g. 2x + 1 == 0 normalized to x + 1/2 == 0
        if not eq.coeffs and eq.const != 0:
            raise _Infeasible
    equalities = [eq for eq in equalities if eq.coeffs]
    if not equalities:
        return System(system.inequalities())

    variables = sorted({v for eq in equalities for v in eq.coeffs})
    n = len(variables)
    index = {v: i for i, v in enumerate(variables)}
    # A x = b with integer entries (normalization guarantees integrality).
    matrix = [[0] * n for _ in equalities]
    rhs = [0] * len(equalities)
    for r, eq in enumerate(equalities):
        for v, c in eq.coeffs.items():
            matrix[r][index[v]] = c
        rhs[r] = -int(eq.const)

    unimodular = [[int(i == j) for j in range(n)] for i in range(n)]

    def swap_cols(a: int, b: int) -> None:
        for row in matrix:
            row[a], row[b] = row[b], row[a]
        for row in unimodular:
            row[a], row[b] = row[b], row[a]

    def negate_col(a: int) -> None:
        for row in matrix:
            row[a] = -row[a]
        for row in unimodular:
            row[a] = -row[a]

    def add_col(dst: int, src: int, factor: int) -> None:
        for row in matrix:
            row[dst] += factor * row[src]
        for row in unimodular:
            row[dst] += factor * row[src]

    pivot = 0
    y_values: list[int | None] = [None] * n
    for r in range(len(equalities)):
        # Reduce row r over columns pivot..n-1 to a single gcd entry at `pivot`.
        while True:
            nonzero = [j for j in range(pivot, n) if matrix[r][j] != 0]
            if not nonzero:
                break
            best = min(nonzero, key=lambda j: abs(matrix[r][j]))
            if best != pivot:
                swap_cols(best, pivot)
            if matrix[r][pivot] < 0:
                negate_col(pivot)
            reduced_all = True
            for j in range(pivot + 1, n):
                if matrix[r][j] != 0:
                    add_col(j, pivot, -(matrix[r][j] // matrix[r][pivot]))
                    if matrix[r][j] != 0:
                        reduced_all = False
            if reduced_all:
                break
        residual = rhs[r] - sum(
            matrix[r][j] * y_values[j] for j in range(pivot) if y_values[j] is not None
        )
        if all(matrix[r][j] == 0 for j in range(pivot, n)):
            if residual != 0:
                raise _Infeasible
            continue
        if residual % matrix[r][pivot] != 0:
            raise _Infeasible
        y_values[pivot] = residual // matrix[r][pivot]
        pivot += 1

    # x_i = sum_j U[i][j] * y_j where pivot y's are constants and the rest
    # are fresh free integer variables.
    existing = system.variables()
    fresh = (f"_t{k}" for k in itertools.count())
    free_names: dict[int, str] = {}
    for j in range(pivot, n):
        name = next(name for name in fresh if name not in existing)
        free_names[j] = name

    substitutions: dict[str, tuple[dict[str, int], int]] = {}
    for v in variables:
        i = index[v]
        const = sum(
            unimodular[i][j] * y_values[j] for j in range(pivot) if y_values[j] is not None
        )
        coeffs = {free_names[j]: unimodular[i][j] for j in range(pivot, n) if unimodular[i][j] != 0}
        substitutions[v] = (coeffs, const)

    out: list[Constraint] = []
    for c in system.inequalities():
        for v, (coeffs, const) in substitutions.items():
            c = c.substitute(v, coeffs, const)
        out.append(c)
    return System(out)


def _bound_partition(system: System, var: str) -> tuple[list[Constraint], list[Constraint], list[Constraint]]:
    lowers, uppers, rest = [], [], []
    for c in system:
        a = c.coeff(var)
        if a > 0:
            lowers.append(c)
        elif a < 0:
            uppers.append(c)
        else:
            rest.append(c)
    return lowers, uppers, rest


def _drop_unbounded(system: System) -> System:
    """Remove variables bounded on at most one side (always satisfiable)."""
    while True:
        for var in sorted(system.variables()):
            lowers, uppers, rest = _bound_partition(system, var)
            if not lowers or not uppers:
                system = System(rest)
                break
        else:
            return system


def _ineq_feasible(system: System, recurse=None) -> bool:
    """Exact integer feasibility for an inequality-only system.

    ``recurse`` decides the splintered gray-region subproblems; the
    default is the production (memoized) entry point, while the pure
    scalar oracle passes itself so no memo or vector code is consulted.
    """
    decide = integer_feasible if recurse is None else recurse
    while True:
        if system.has_obvious_contradiction():
            return False
        system = _drop_unbounded(system)
        if system.has_obvious_contradiction():
            return False
        variables = sorted(system.variables())
        if not variables:
            return True

        def cost(v: str) -> tuple[int, int, str]:
            lowers, uppers, _ = _bound_partition(system, v)
            exact = all(
                min(lo.coeff(v), -hi.coeff(v)) == 1 for lo in lowers for hi in uppers
            )
            return (0 if exact else 1, len(lowers) * len(uppers), v)

        var = min(variables, key=cost)
        lowers, uppers, _ = _bound_partition(system, var)
        exact = all(min(lo.coeff(var), -hi.coeff(var)) == 1 for lo in lowers for hi in uppers)
        if exact:
            system = eliminate_variable(system, var)
            continue

        dark = eliminate_variable(system, var, dark=True)
        if _ineq_feasible(dark, recurse):
            return True
        real = eliminate_variable(system, var, dark=False)
        if not _ineq_feasible(real, recurse):
            return False
        # Gray region: splinter on equality hyperplanes (Pugh).
        a_max = max(-hi.coeff(var) for hi in uppers)
        for lo in lowers:
            b = lo.coeff(var)
            limit = (a_max * b - a_max - b) // a_max
            for i in range(limit + 1):
                # b*var + e_l - i == 0, i.e. b*var == -e_l + i.
                hyperplane = Constraint({**lo.coeffs}, lo.const - i, is_eq=True)
                if decide(system.conjoin(hyperplane)):
                    return True
        return False


def integer_feasible_scalar(system: System) -> bool:
    """The pure scalar Omega test: no memo, no vector code, no cache.

    This is the differential oracle the vectorized solver is checked
    against (``repro fuzz --check solver`` and the property tests); it
    must stay an independent computation path.
    """
    METRICS.inc("omega.scalar_calls")
    try:
        ineq_only = _solve_equalities(system)
    except _Infeasible:
        return False
    return _ineq_feasible(ineq_only, recurse=integer_feasible_scalar)


def integer_feasible(system: System) -> bool:
    """True iff the system has an integer solution. Exact.

    Delegates to the memoized solver front-end
    (:func:`repro.polyhedra.solver.feasible`): canonical-form memo first,
    then the configured engine (vectorized FM by default).
    """
    METRICS.inc("omega.feasibility_calls")
    from repro.polyhedra import solver

    return solver.feasible(system)


def _rational_bounds(system: System, var: str) -> tuple[Fraction | None, Fraction | None]:
    """Constant rational bounds of ``var`` after projecting everything else."""
    projected = system
    for other in sorted(system.variables() - {var}):
        projected = eliminate_variable(projected, other)
    lo: Fraction | None = None
    hi: Fraction | None = None
    for c in projected:
        a = c.coeff(var)
        if a > 0:
            cand = Fraction(-c.const, a)
            lo = cand if lo is None else max(lo, cand)
        elif a < 0:
            cand = Fraction(c.const, -a)
            hi = cand if hi is None else min(hi, cand)
    return lo, hi


def integer_sample(system: System, search_radius: int = 1000) -> dict[str, int] | None:
    """Find one integer solution, or None if the system is infeasible.

    Intended for producing legality-violation witnesses; the systems it is
    called on are small.  Unbounded directions are searched within
    ``search_radius`` of zero.
    """
    if not integer_feasible(system):
        return None

    def relax_equalities(sys: System) -> System:
        out: list[Constraint] = []
        for c in sys:
            if c.is_eq:
                out.append(Constraint.ge(c.coeffs, c.const))
                out.append(Constraint.ge({v: -a for v, a in c.coeffs.items()}, -c.const))
            else:
                out.append(c)
        return System(out)

    def search(sys: System, env: dict[str, int]) -> dict[str, int] | None:
        variables = sorted(sys.variables())
        if not variables:
            return dict(env)
        var = variables[0]
        lo, hi = _rational_bounds(relax_equalities(sys), var)
        lo_int = -search_radius if lo is None else int(lo.__ceil__())
        hi_int = search_radius if hi is None else int(hi.__floor__())
        for value in range(lo_int, hi_int + 1):
            fixed = System(
                [c.substitute(var, {}, value) for c in sys]
            )
            if fixed.has_obvious_contradiction():
                continue
            if not integer_feasible(fixed):
                continue
            result = search(fixed, {**env, var: value})
            if result is not None:
                return result
        return None

    try:
        ineq_only = _solve_equalities(system)
    except _Infeasible:
        return None
    # Solve over the substituted space, then recover original variables by
    # sampling the original system directly (simpler: search original).
    del ineq_only
    return search(system, {})


def enumerate_points(system: System, order: list[str]) -> list[tuple[int, ...]]:
    """Enumerate all integer points (must be bounded in every variable).

    Test helper used as a brute-force oracle against :func:`integer_feasible`
    and the dependence analyzer.
    """
    points: list[tuple[int, ...]] = []

    def recurse(sys: System, env: dict[str, int], remaining: list[str]) -> None:
        if not remaining:
            if all(c.evaluate(env) for c in system):
                points.append(tuple(env[v] for v in order))
            return
        var = remaining[0]
        relaxed: list[Constraint] = []
        for c in sys:
            if c.is_eq:
                relaxed.append(Constraint.ge(c.coeffs, c.const))
                relaxed.append(Constraint.ge({v: -a for v, a in c.coeffs.items()}, -c.const))
            else:
                relaxed.append(c)
        lo, hi = _rational_bounds(System(relaxed), var)
        if lo is None or hi is None:
            raise ValueError(f"variable {var!r} is unbounded; cannot enumerate")
        for value in range(int(lo.__ceil__()), int(hi.__floor__()) + 1):
            fixed = System([c.substitute(var, {}, value) for c in sys])
            if fixed.has_obvious_contradiction():
                continue
            recurse(fixed, {**env, var: value}, remaining[1:])

    extra = system.variables() - set(order)
    if extra:
        raise ValueError(f"order is missing variables: {sorted(extra)}")
    recurse(system, {}, list(order))
    return points
